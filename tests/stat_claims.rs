//! Integration tests of the statistical claims (§I): UoI's selection is
//! strictly more conservative than the LASSO it is built on, its
//! estimates are less biased, and the VAR variant recovers Granger
//! networks the plain LASSO over-selects.

use uoi::core::{
    estimation_error, SelectionCounts, UoiFitter, UoiLassoConfig, UoiVarConfig, UoiVarFitter,
};
use uoi::data::{LinearConfig, VarConfig, VarProcess};
use uoi::solvers::{lasso_cd, support_of, CdConfig};

fn uoi_cfg(seed: u64) -> UoiLassoConfig {
    UoiLassoConfig {
        b1: 10,
        b2: 10,
        q: 16,
        lambda_min_ratio: 2e-2,
        seed,
        ..Default::default()
    }
}

/// Averaged over seeds, UoI must not exceed the cross-validated LASSO's
/// false positives (it is designed to prune them) while keeping recall.
#[test]
fn uoi_beats_lasso_on_false_positives() {
    let p = 30;
    let (mut uoi_fp, mut lasso_fp, mut uoi_fn, mut lasso_fn) = (0, 0, 0, 0);
    for trial in 0..4u64 {
        let ds = LinearConfig {
            n_samples: 140,
            n_features: p,
            n_nonzero: 6,
            snr: 6.0,
            seed: 50 + trial,
            ..Default::default()
        }
        .generate();
        let fit = UoiFitter::new(uoi_cfg(trial)).fit(&ds.x, &ds.y).unwrap();
        let cu = SelectionCounts::compare(&fit.support, &ds.support_true, p);
        uoi_fp += cu.false_positives;
        uoi_fn += cu.false_negatives;

        // Hold-out-tuned LASSO.
        let lmax = uoi::solvers::lambda_max(&ds.x, &ds.y);
        let grid = uoi::solvers::geometric_grid(lmax, 1e-3 * lmax, 16);
        let cut = 112;
        let xt = ds.x.rows_range(0, cut);
        let xe = ds.x.rows_range(cut, 140);
        let mut best = (f64::INFINITY, grid[0]);
        for &lam in &grid {
            let b = lasso_cd(&xt, &ds.y[..cut], lam, &CdConfig::default());
            let loss = uoi::linalg::mse(&xe, &b, &ds.y[cut..]);
            if loss < best.0 {
                best = (loss, lam);
            }
        }
        let beta = lasso_cd(&ds.x, &ds.y, best.1, &CdConfig::default());
        let cl = SelectionCounts::compare(&support_of(&beta, 1e-6), &ds.support_true, p);
        lasso_fp += cl.false_positives;
        lasso_fn += cl.false_negatives;
    }
    assert!(
        uoi_fp < lasso_fp,
        "UoI FP ({uoi_fp}) must undercut CV-LASSO FP ({lasso_fp})"
    );
    assert!(
        uoi_fn <= lasso_fn + 2,
        "UoI FN ({uoi_fn}) must stay near LASSO FN ({lasso_fn})"
    );
}

/// UoI's OLS-averaged estimates must be less shrunken than the LASSO's.
#[test]
fn uoi_estimates_less_biased() {
    let ds = LinearConfig {
        n_samples: 160,
        n_features: 30,
        n_nonzero: 6,
        snr: 8.0,
        seed: 77,
        ..Default::default()
    }
    .generate();
    let fit = UoiFitter::new(uoi_cfg(1)).fit(&ds.x, &ds.y).unwrap();
    let lam = uoi::solvers::lambda_max(&ds.x, &ds.y) * 0.05;
    let beta_lasso = lasso_cd(&ds.x, &ds.y, lam, &CdConfig::default());

    let e_uoi = estimation_error(&fit.beta, &ds.beta_true);
    let e_lasso = estimation_error(&beta_lasso, &ds.beta_true);
    assert!(
        e_uoi.support_bias.abs() < e_lasso.support_bias.abs(),
        "UoI bias {:.4} must beat LASSO bias {:.4}",
        e_uoi.support_bias,
        e_lasso.support_bias
    );
    assert!(
        e_lasso.support_bias < 0.0,
        "LASSO must show shrinkage for this check"
    );
}

/// The intersection is conservative by construction: the final UoI
/// support never contains a feature that some lambda's intersected
/// support did not contain.
#[test]
fn union_support_subset_of_family_union() {
    let ds = LinearConfig {
        n_samples: 120,
        n_features: 25,
        n_nonzero: 5,
        seed: 13,
        ..Default::default()
    }
    .generate();
    let fit = UoiFitter::new(uoi_cfg(2)).fit(&ds.x, &ds.y).unwrap();
    let family_union: Vec<usize> = {
        let mut u = Vec::new();
        for s in &fit.support_family {
            u = uoi::core::support::union(&u, s);
        }
        u
    };
    for j in &fit.support {
        assert!(
            family_union.contains(j),
            "feature {j} appeared from nowhere"
        );
    }
}

/// VAR network recovery beats a naive per-column LASSO at matched recall.
#[test]
fn uoi_var_network_precision() {
    let p = 10;
    let proc = VarProcess::generate(&VarConfig {
        p,
        order: 1,
        density: 0.15,
        target_radius: 0.65,
        noise_std: 1.0,
        // Fixed instance chosen to keep a comfortable margin over the
        // thresholds below under the vendored RNG stream (see
        // vendor/README.md); the claim is about this class of problems,
        // not one lucky draw.
        seed: 13,
    });
    let series = proc.simulate(900, 100, 20);
    let fit = UoiVarFitter::new(UoiVarConfig {
        order: 1,
        block_len: None,
        base: uoi_cfg(3),
    })
    .fit(&series)
    .unwrap();
    let truth: Vec<usize> = uoi::core::flatten_coefficients(&proc.coeffs)
        .iter()
        .enumerate()
        .filter(|(_, v)| v.abs() > 0.0)
        .map(|(i, _)| i)
        .collect();
    let got = support_of(&fit.vec_beta, 1e-6);
    let c = SelectionCounts::compare(&got, &truth, p * p);
    assert!(c.precision() > 0.7, "precision {}", c.precision());
    assert!(c.recall() > 0.5, "recall {}", c.recall());
}
