//! End-to-end `UoI_LASSO` integration: dataset on disk → SHF container →
//! tiered distribution → distributed fit on the simulated cluster →
//! agreement with the serial fit and with the ground truth.

use uoi::core::{
    DistOptions, ExecMode, ParallelLayout, SelectionCounts, UoiFitter, UoiLassoConfig,
};
use uoi::data::LinearConfig;
use uoi::mpisim::{Cluster, MachineModel};
use uoi::solvers::AdmmConfig;
use uoi::tieredio::{randomized, write_matrix, ShfDataset};

fn cfg() -> UoiLassoConfig {
    UoiLassoConfig::builder()
        .b1(6)
        .b2(6)
        .q(10)
        .lambda_min_ratio(2e-2)
        .admm(AdmmConfig {
            max_iter: 2500,
            abstol: 1e-9,
            reltol: 1e-8,
            ..Default::default()
        })
        .support_tol(1e-6)
        .seed(11)
        .build()
        .expect("valid config")
}

#[test]
fn file_to_distributed_fit_roundtrip() {
    let ds = LinearConfig {
        n_samples: 96,
        n_features: 24,
        n_nonzero: 5,
        snr: 9.0,
        seed: 31,
        ..Default::default()
    }
    .generate();

    // Persist the dataset (design | response) as an SHF container.
    let stored = {
        let mut m = uoi::linalg::Matrix::zeros(96, 25);
        for i in 0..96 {
            m.row_mut(i)[..24].copy_from_slice(ds.x.row(i));
            m.row_mut(i)[24] = ds.y[i];
        }
        m
    };
    let path = std::env::temp_dir().join(format!("uoi_e2e_{}.shf", std::process::id()));
    write_matrix(&path, &stored).unwrap();
    let file = ShfDataset::open(&path).unwrap();

    // Each rank loads its stripe through the randomized three-tier
    // distribution, reassembles the dataset, and runs the distributed fit.
    let report = Cluster::new(4, MachineModel::deterministic()).run(move |ctx, world| {
        // Tier-1 + Tier-2: fetch this rank's (identity) stripe from disk.
        let rows: Vec<usize> = (0..96).collect();
        let (full, timing) = randomized(ctx, world, &file, &rows);
        assert!(timing.read > 0.0);
        let x = full.gather_cols(&(0..24).collect::<Vec<_>>());
        let y = full.col(24);
        UoiFitter::new(cfg())
            .mode(ExecMode::Dist(
                DistOptions::default().layout(ParallelLayout::admm_only()),
            ))
            .fit_on(ctx, world, &x, &y)
    });
    std::fs::remove_file(&path).ok();

    let dist = &report.results[0];
    for r in 1..4 {
        assert_eq!(dist.beta, report.results[r].beta, "ranks disagree");
    }

    // Matches the serial reference statistically.
    let serial = UoiFitter::new(cfg()).fit(&ds.x, &ds.y).unwrap();
    assert_eq!(dist.supports_per_lambda, serial.supports_per_lambda);

    // And recovers the planted support.
    let counts = SelectionCounts::compare(&dist.support, &ds.support_true, 24);
    assert!(counts.recall() >= 0.8, "recall {}", counts.recall());
    assert!(counts.false_positives <= 5, "FP {}", counts.false_positives);
}

#[test]
fn nested_layout_preserves_statistics() {
    let ds = LinearConfig {
        n_samples: 64,
        n_features: 16,
        n_nonzero: 4,
        seed: 5,
        ..Default::default()
    }
    .generate();
    let run = |p_b: usize, p_l: usize| {
        let (x, y) = (ds.x.clone(), ds.y.clone());
        Cluster::new(8, MachineModel::deterministic())
            .run(move |ctx, world| {
                UoiFitter::new(cfg())
                    .mode(ExecMode::Dist(
                        DistOptions::default().layout(ParallelLayout { p_b, p_lambda: p_l }),
                    ))
                    .fit_on(ctx, world, &x, &y)
            })
            .results
            .remove(0)
    };
    let flat = run(1, 1);
    let two = run(2, 2);
    let four = run(4, 2);
    assert_eq!(flat.supports_per_lambda, two.supports_per_lambda);
    assert_eq!(flat.supports_per_lambda, four.supports_per_lambda);
    for (a, b) in flat.beta.iter().zip(&two.beta) {
        assert!((a - b).abs() < 0.05);
    }
}

#[test]
fn modeled_scale_changes_time_not_statistics() {
    let ds = LinearConfig {
        n_samples: 48,
        n_features: 12,
        n_nonzero: 3,
        seed: 9,
        ..Default::default()
    }
    .generate();
    let run = |modeled: usize| {
        let (x, y) = (ds.x.clone(), ds.y.clone());
        let report = Cluster::new(4, MachineModel::deterministic())
            .modeled_ranks(modeled)
            .run(move |ctx, world| {
                let fit = UoiFitter::new(cfg())
                    .mode(ExecMode::Dist(
                        DistOptions::default().layout(ParallelLayout::admm_only()),
                    ))
                    .fit_on(ctx, world, &x, &y);
                (fit.beta, ctx.ledger().comm)
            });
        report.results[0].clone()
    };
    let (beta_small, comm_small) = run(4);
    let (beta_big, comm_big) = run(4096);
    assert_eq!(
        beta_small, beta_big,
        "modeled scale must not affect results"
    );
    assert!(
        comm_big > comm_small,
        "modeled scale must affect virtual comm time"
    );
}
