//! End-to-end `UoI_VAR` integration: the full §VI pipeline on the
//! synthetic market (daily closes → weekly aggregation → differencing →
//! fit → network), plus serial/distributed agreement on spike-count data.

use uoi::core::{
    DistOptions, ExecMode, ParallelLayout, UoiLassoConfig, UoiVarConfig, UoiVarFitter,
};
use uoi::data::preprocess::{aggregate_last, first_differences, Standardizer};
use uoi::data::{FinanceConfig, NeuroConfig, DAYS_PER_WEEK};
use uoi::mpisim::{Cluster, MachineModel};
use uoi::solvers::AdmmConfig;

fn base(seed: u64) -> UoiLassoConfig {
    UoiLassoConfig::builder()
        .b1(12)
        .b2(4)
        .q(12)
        .lambda_min_ratio(5e-2)
        .admm(AdmmConfig {
            max_iter: 1500,
            abstol: 1e-8,
            reltol: 1e-7,
            ..Default::default()
        })
        .support_tol(1e-6)
        .seed(seed)
        .build()
        .expect("valid config")
}

#[test]
fn finance_pipeline_recovers_sparse_network() {
    let market = FinanceConfig {
        n_companies: 20,
        n_sectors: 4,
        weeks: 156,
        seed: 17,
        ..Default::default()
    }
    .generate();
    let weekly = aggregate_last(&market.daily_closes, DAYS_PER_WEEK);
    assert_eq!(weekly.rows(), 156);
    let diffs = first_differences(&weekly);

    let fit = UoiVarFitter::new(UoiVarConfig {
        order: 1,
        block_len: None,
        base: base(3),
    })
    .fit(&diffs)
    .unwrap();
    let net = fit.network(0.0);

    // Sparse and non-trivial.
    assert!(net.edge_count() > 0, "network must not be empty");
    assert!(
        net.density() < 0.25,
        "network must be sparse, density {}",
        net.density()
    );

    // Recovered edges should substantially overlap with the generator's.
    let truth = market.truth.true_adjacency();
    let adj = net.adjacency();
    let mut tp = 0;
    let mut selected = 0;
    for i in 0..20 {
        for j in 0..20 {
            if adj[(i, j)] != 0.0 {
                selected += 1;
                if truth[(i, j)] != 0.0 {
                    tp += 1;
                }
            }
        }
    }
    let precision = tp as f64 / selected.max(1) as f64;
    assert!(
        precision > 0.5,
        "edge precision {precision} too low ({tp}/{selected})"
    );
}

#[test]
fn neuro_counts_serial_vs_distributed() {
    let rec = NeuroConfig {
        n_channels: 10,
        n_samples: 500,
        density: 0.1,
        seed: 23,
        ..Default::default()
    }
    .generate();
    let z = Standardizer::fit(&rec.counts).transform(&rec.counts);

    let var_cfg = UoiVarConfig {
        order: 1,
        block_len: None,
        base: base(7),
    };
    let serial = UoiVarFitter::new(var_cfg.clone()).fit(&z).unwrap();

    let fitter = UoiVarFitter::new(var_cfg).mode(ExecMode::Dist(
        DistOptions::default()
            .layout(ParallelLayout::admm_only())
            .n_readers(2),
    ));
    let z2 = z;
    let report = Cluster::new(5, MachineModel::deterministic())
        .run(move |ctx, world| fitter.fit_on(ctx, world, &z2).0);
    let dist = &report.results[0];

    assert_eq!(serial.supports_per_lambda, dist.supports_per_lambda);
    for (a, b) in serial.vec_beta.iter().zip(&dist.vec_beta) {
        assert!((a - b).abs() < 5e-3, "serial {a} vs dist {b}");
    }
}

#[test]
fn var2_pipeline_works_end_to_end() {
    // Second-order dynamics through the whole stack.
    let proc = uoi::data::VarProcess::generate(&uoi::data::VarConfig {
        p: 6,
        order: 2,
        density: 0.12,
        target_radius: 0.6,
        noise_std: 1.0,
        seed: 29,
    });
    let series = proc.simulate(600, 80, 30);
    let fit = UoiVarFitter::new(UoiVarConfig {
        order: 2,
        block_len: Some(12),
        base: base(11),
    })
    .fit(&series)
    .unwrap();
    assert_eq!(fit.a_mats.len(), 2);
    let net = fit.network(0.0);
    assert!(net.edge_count() > 0);
    // The fitted model must itself be stable (sanity of the estimates).
    let fitted = uoi::data::VarProcess::from_coeffs(fit.a_mats, 1.0);
    assert!(
        fitted.radius() < 1.1,
        "fitted dynamics wildly unstable: {}",
        fitted.radius()
    );
}
