//! Integration tests of the scaling *shapes* the paper's figures rest on
//! — the qualitative laws the harnesses must reproduce regardless of the
//! machine-model constants.

use uoi::mpisim::{Cluster, MachineModel, Phase, Window};

/// Weak scaling: same per-rank payload, growing modeled core count →
/// communication grows, compute stays fixed.
#[test]
fn weak_scaling_comm_grows_compute_flat() {
    let run = |modeled: usize| {
        Cluster::new(4, MachineModel::deterministic())
            .modeled_ranks(modeled)
            .run(|ctx, world| {
                ctx.compute_flops(1e8, 1e7);
                for _ in 0..20 {
                    let mut v = vec![1.0; 4096];
                    world.allreduce_sum(ctx, &mut v);
                }
                ctx.ledger()
            })
            .phase_max()
    };
    let small = run(4);
    let big = run(131_072);
    assert_eq!(small.get(Phase::Compute), big.get(Phase::Compute));
    assert!(
        big.get(Phase::Comm) > 3.0 * small.get(Phase::Comm),
        "comm {} -> {}",
        small.get(Phase::Comm),
        big.get(Phase::Comm)
    );
}

/// Strong scaling: fixed total work split over more modeled cores →
/// executed per-rank flops shrink and the cache bonus kicks in below the
/// working-set threshold.
#[test]
fn strong_scaling_cache_bonus() {
    let model = MachineModel::deterministic();
    let big_ws = model.cache_bytes * 8.0;
    let small_ws = model.cache_bytes / 8.0;
    let t_big = model.compute_time(1e9, big_ws);
    let t_small = model.compute_time(1e9, small_ws);
    assert!(
        (t_big / t_small - model.cache_speedup).abs() < 1e-9,
        "cache speedup must apply below the threshold"
    );
}

/// Reader-window serialisation: the Kron-distribution law — fewer readers
/// or more modeled requesters ⇒ more distribution time.
#[test]
fn reader_window_law() {
    let run = |readers: usize, modeled: usize| {
        Cluster::new(8, MachineModel::deterministic())
            .modeled_ranks(modeled)
            .run(move |ctx, world| {
                let local = if world.rank() < readers {
                    vec![1.0; 4096]
                } else {
                    Vec::new()
                };
                let win = Window::create(ctx, world, local);
                win.fence(ctx, world);
                let mut out = vec![0.0; 64];
                let mut epoch = win.epoch(ctx);
                for j in 0..256 {
                    let owner = (j + world.rank()) % readers;
                    epoch.get_into(ctx, owner, 0..64, &mut out);
                }
                epoch.finish(ctx);
                win.fence(ctx, world);
                ctx.ledger().get(Phase::Distribution)
            })
            .results
            .into_iter()
            .fold(0.0, f64::max)
    };
    // Readers must be a strict subset of the ranks for the fixed-reader
    // contention model to engage (all-expose windows scale with the
    // machine instead).
    let base = run(4, 8 * 64);
    let fewer_readers = run(1, 8 * 64);
    let more_ranks = run(4, 8 * 512);
    assert!(
        fewer_readers > 2.0 * base,
        "1 reader ({fewer_readers:.4}) vs 4 ({base:.4})"
    );
    assert!(
        more_ranks > 2.0 * base,
        "8x more modeled ranks ({more_ranks:.4}) vs base ({base:.4})"
    );
}

/// The Table II law: conventional read time linear in bytes, randomized
/// read time saturating at the stripe bandwidth.
#[test]
fn io_strategy_law() {
    let model = MachineModel::deterministic();
    let gb = 1024.0 * 1024.0 * 1024.0;
    let conv_128 = model.io.serial_chunked_read_time(128.0 * gb, 2048);
    let conv_1024 = model.io.serial_chunked_read_time(1024.0 * gb, 16_384);
    let ratio = conv_1024 / conv_128;
    assert!(
        (ratio - 8.0).abs() < 0.5,
        "conventional must scale linearly: {ratio}"
    );

    let rand_128 = model.io.parallel_read_time(4_352, 128.0 * gb);
    let rand_1024 = model.io.parallel_read_time(34_816, 1024.0 * gb);
    assert!(
        rand_1024 < conv_1024 / 100.0,
        "randomized must beat conventional >100x"
    );
    assert!(rand_128 > 0.0 && rand_1024 / rand_128 < 10.0);
}

/// The p^3-class problem-size law of the vectorised VAR design.
#[test]
fn var_problem_explosion_law() {
    let series_small = uoi::linalg::Matrix::zeros(401, 100);
    let series_big = uoi::linalg::Matrix::zeros(401, 200);
    let small = uoi::core::VarRegression::build(&series_small, 1).vectorized_problem_bytes();
    let big = uoi::core::VarRegression::build(&series_big, 1).vectorized_problem_bytes();
    let ratio = big as f64 / small as f64;
    assert!(
        (ratio - 8.0).abs() < 0.5,
        "fixed-N doubling of p must 8x the problem: {ratio}"
    );
}

/// Virtual-clock conservation: every rank's final clock equals its phase
/// ledger total, and collectives synchronise clocks.
#[test]
fn clock_conservation_under_mixed_workload() {
    let report = Cluster::new(6, MachineModel::deterministic())
        .modeled_ranks(600)
        .run(|ctx, world| {
            ctx.compute_flops(1e7 * (1.0 + world.rank() as f64), 1e6);
            let mut v = vec![world.rank() as f64; 100];
            world.allreduce_sum(ctx, &mut v);
            let sub = world.split(ctx, (world.rank() % 2) as i64, world.rank() as i64);
            let mut w = vec![1.0; 10];
            sub.allreduce_sum(ctx, &mut w);
            world.barrier(ctx);
            ctx.clock()
        });
    for (clock, ledger) in report.clocks.iter().zip(&report.ledgers) {
        assert!((clock - ledger.total()).abs() < 1e-9);
    }
}
