#!/usr/bin/env python3
"""Validate a `uoi-trace` Chrome trace export against the checked-in
schema (schemas/chrome_trace.schema.json).

    scripts/validate_chrome_trace.py results/fig2_lasso_single_node.trace.chrome.json

Uses the `jsonschema` package when available; otherwise falls back to a
built-in structural validator that enforces the same constraints (keep
it in sync with the schema file by hand — the CI trace-validate job
runs whichever is installed). Exits 0 when the trace validates,
1 otherwise.
"""

import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "schemas" / "chrome_trace.schema.json"

PH_KINDS = {"X", "i", "C", "M"}
REQUIRED_BY_PH = {
    "X": ("ts", "dur", "tid", "cat", "args"),
    "i": ("ts", "tid", "s"),
    "C": ("ts", "tid", "cat", "args"),
    "M": ("args",),
}


def _fail(errors, path, msg):
    errors.append(f"{path}: {msg}")


def _check_nonneg_num(errors, path, obj, key):
    if key in obj:
        v = obj[key]
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            _fail(errors, f"{path}.{key}", f"expected a number, got {type(v).__name__}")
        elif v < 0:
            _fail(errors, f"{path}.{key}", f"must be >= 0, got {v}")


def builtin_validate(doc):
    """Mirror of schemas/chrome_trace.schema.json for hosts without
    `jsonschema`. Returns a list of error strings (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["$: top level must be an object"]
    if "traceEvents" not in doc:
        return ["$: missing required key 'traceEvents'"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["$.traceEvents: must be an array"]
    if "displayTimeUnit" in doc and doc["displayTimeUnit"] not in ("ms", "ns"):
        _fail(errors, "$.displayTimeUnit", f"must be 'ms' or 'ns', got {doc['displayTimeUnit']!r}")
    for i, ev in enumerate(events):
        path = f"$.traceEvents[{i}]"
        if not isinstance(ev, dict):
            _fail(errors, path, "event must be an object")
            continue
        for key in ("name", "ph", "pid"):
            if key not in ev:
                _fail(errors, path, f"missing required key '{key}'")
        ph = ev.get("ph")
        if ph is not None and ph not in PH_KINDS:
            _fail(errors, f"{path}.ph", f"must be one of {sorted(PH_KINDS)}, got {ph!r}")
        for key in ("name", "cat"):
            if key in ev and not isinstance(ev[key], str):
                _fail(errors, f"{path}.{key}", "must be a string")
        if "s" in ev and ev["s"] not in ("t", "p", "g"):
            _fail(errors, f"{path}.s", f"must be 't', 'p' or 'g', got {ev['s']!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            _fail(errors, f"{path}.args", "must be an object")
        for key in ("ts", "dur", "pid", "tid"):
            _check_nonneg_num(errors, path, ev, key)
        for key in REQUIRED_BY_PH.get(ph, ()):
            if key not in ev:
                _fail(errors, path, f"ph={ph!r} events require key '{key}'")
        if len(errors) > 20:
            errors.append("... (truncated)")
            break
    return errors


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trace_path = Path(sys.argv[1])
    try:
        doc = json.loads(trace_path.read_text())
    except (OSError, ValueError) as e:
        print(f"{trace_path}: cannot load: {e}", file=sys.stderr)
        return 1

    try:
        import jsonschema
    except ImportError:
        jsonschema = None

    if jsonschema is not None:
        schema = json.loads(SCHEMA_PATH.read_text())
        validator = jsonschema.Draft7Validator(schema)
        errors = [
            f"$.{'.'.join(str(p) for p in err.absolute_path)}: {err.message}"
            for err in validator.iter_errors(doc)
        ]
        mode = "jsonschema"
    else:
        errors = builtin_validate(doc)
        mode = "builtin validator (jsonschema not installed)"

    n = len(doc.get("traceEvents", [])) if isinstance(doc, dict) else 0
    if errors:
        print(f"{trace_path}: INVALID ({mode}):", file=sys.stderr)
        for err in errors[:20]:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"{trace_path}: valid Chrome trace ({n} events, {mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
