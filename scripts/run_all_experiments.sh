#!/usr/bin/env bash
# Regenerate every table/figure of the paper. Results land in results/*.csv
# and the combined log in results/experiments.log.
set -uo pipefail
cd "$(dirname "$0")/.."

BINS=(
  table1_setup
  fig2_lasso_single_node
  fig3_lasso_parallelism
  table2_distribution
  fig4_lasso_weak
  fig5_allreduce_minmax
  fig6_lasso_strong
  fig7_var_single_node
  fig8_var_parallelism
  fig9_var_weak
  fig10_var_strong
  fig11_sp500_network
  sec6_real_data_runtimes
  stat_selection_accuracy
  ablation_comm_avoiding
  ablation_pb_kron
  ablation_async_overlap
  ablation_intersection
)

mkdir -p results
: > results/experiments.log
cargo build -p uoi-bench --release 2>&1 | tail -1

for bin in "${BINS[@]}"; do
  echo "### $bin" | tee -a results/experiments.log
  if ! cargo run -p uoi-bench --release --bin "$bin" >> results/experiments.log 2>&1; then
    echo "!! $bin FAILED" | tee -a results/experiments.log
  fi
done
echo "done — see results/experiments.log"
