#!/usr/bin/env bash
# Wall-clock snapshot of the two end-to-end pipeline binaries the
# zero-copy bootstrap work is gated on (Fig 2 LASSO, Fig 7 VAR).
#
# Runs each binary REPS times, takes the minimum wall-clock, and writes a
# schema-versioned BENCH_PIPELINE.json at the repo root. Pass a baseline
# JSON (a previous snapshot) as $1 to record before/after speedups:
#
#   scripts/bench_snapshot.sh                  # fresh snapshot
#   scripts/bench_snapshot.sh old.json         # snapshot + speedup vs old
#
# Environment: REPS (default 3), BINDIR (prebuilt binaries; defaults to
# target/release via cargo build).
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${REPS:-3}"
BINS=(fig2_lasso_single_node fig7_var_single_node)
BASELINE="${1:-}"

if [[ -z "${BINDIR:-}" ]]; then
  cargo build -p uoi-bench --release --bin fig2_lasso_single_node \
    --bin fig7_var_single_node 2>&1 | tail -1
  BINDIR=target/release
fi

declare -A MIN_MS
for bin in "${BINS[@]}"; do
  best=""
  for _ in $(seq "$REPS"); do
    start=$(date +%s%3N)
    "$BINDIR/$bin" > /dev/null 2>&1
    elapsed=$(( $(date +%s%3N) - start ))
    if [[ -z "$best" || "$elapsed" -lt "$best" ]]; then best=$elapsed; fi
    echo "  $bin: ${elapsed} ms" >&2
  done
  MIN_MS[$bin]=$best
done

baseline_ms() { # $1 = bin name; echoes baseline min_ms or empty
  [[ -n "$BASELINE" ]] || return 0
  python3 - "$BASELINE" "$1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for e in doc.get("pipelines", []):
    if e["name"] == sys.argv[2]:
        print(e["min_wall_ms"])
EOF
}

{
  echo '{'
  echo '  "schema_version": 1,'
  echo "  \"reps\": $REPS,"
  echo "  \"generated_by\": \"scripts/bench_snapshot.sh\","
  echo '  "pipelines": ['
  sep=''
  for bin in "${BINS[@]}"; do
    base=$(baseline_ms "$bin")
    extra=''
    if [[ -n "$base" ]]; then
      speedup=$(python3 -c "print(f'{$base/${MIN_MS[$bin]}:.2f}')")
      extra=", \"baseline_wall_ms\": $base, \"speedup\": $speedup"
    fi
    printf '%s    { "name": "%s", "min_wall_ms": %s%s }' \
      "$sep" "$bin" "${MIN_MS[$bin]}" "$extra"
    sep=$',\n'
  done
  echo
  echo '  ]'
  echo '}'
} > BENCH_PIPELINE.json

echo "wrote BENCH_PIPELINE.json" >&2
cat BENCH_PIPELINE.json
