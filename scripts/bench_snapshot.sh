#!/usr/bin/env bash
# Wall-clock + per-phase snapshot of the two end-to-end pipeline
# binaries the zero-copy bootstrap work is gated on (Fig 2 LASSO,
# Fig 7 VAR).
#
# Runs each binary REPS times untraced, takes the minimum wall-clock,
# then runs REPS traced reps (UOI_TRACE=1) and folds the per-phase
# minimum modeled times from the run reports into a schema-versioned
# BENCH_PIPELINE.json at the repo root (schema_version 7). Per-phase
# minima are the same estimator as the walls: the modeled time of a
# phase varies run to run with thread scheduling (one-sided serving
# order), and the minimum is the stable best case. Since schema 3 each
# pipeline entry also records the run parameters that shape the modeled
# admm_local time (in-rank `threads`, `admm_schedule`) so a snapshot is
# self-describing about the configuration that produced it; schema 4
# adds the Gram kernel variant (`gram_kernel`) the run was built with.
#
# Schema 5 adds a `straggler` sub-object per pipeline from one extra
# rep with UOI_STRAGGLER=4.0 UOI_SPECULATE=1: hedge counts plus the
# modeled healthy/unhedged/hedged makespans of the speculative-hedging
# study (crates/bench/src/straggler.rs), and the effective watchdog_ms.
# The snapshot itself gates on the study recovering at least 50% of the
# straggler-induced modeled slowdown — no baseline needed — so a hedging
# regression fails the snapshot even on a fresh checkout. The straggler
# rep runs after the wall-clock reps and never touches the walls.
#
# Schema 6 adds a `convergence` sub-object per pipeline from the traced
# reps' run-report convergence blocks: solver task count, non-converged
# fraction, iteration-cap hits, and the median ADMM iteration count of
# the selection solves. --compare fails when the non-converged fraction
# regresses (grows) against the baseline snapshot.
#
# Schema 7 adds a `numerical` sub-object per pipeline from one extra
# guarded rep (UOI_NUMERICAL=1): the run-report numerical-health block
# (jitter retries, rho restarts, dropped tasks, sanitized cells, clean
# bit). The figure datasets are clean and well-conditioned, so a guarded
# run must report zero interventions; --compare fails when a "clean" run
# reports jitter events, rho restarts, or dropped tasks — a guard firing
# on clean input is a numerical regression, baseline or no baseline.
# The guarded rep runs after the wall-clock reps and never touches the
# walls.
#
#   scripts/bench_snapshot.sh                    # fresh snapshot
#   scripts/bench_snapshot.sh old.json           # snapshot + speedup vs old
#   scripts/bench_snapshot.sh --compare old.json # snapshot + per-phase diff;
#                                                # exits 1 on a >15% regression
#
# --compare diffs the modeled per-phase seconds (virtual clock, so
# deterministic across machines) against a previous snapshot and fails
# when any phase that mattered in the baseline (>= 1% of its makespan)
# slowed down by more than 15%. The `admm_local` phase (solver inner
# loop) and the `gram_build` phase (batched Gram engine) — the two
# hot paths the kernel work targets — are always gated, floor or no
# floor. Baselines written by the v1 script have no phase data;
# comparing against them only checks wall-clock and always exits 0.
#
# Environment: REPS (default 3), BINDIR (prebuilt binaries; defaults to
# target/release via cargo build).
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${REPS:-3}"
BINS=(fig2_lasso_single_node fig7_var_single_node)
BASELINE=""
COMPARE=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --compare)
      [[ $# -ge 2 ]] || { echo "--compare needs a snapshot path" >&2; exit 2; }
      COMPARE="$2"; shift 2 ;;
    -h|--help)
      sed -n '2,58p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *)
      BASELINE="$1"; shift ;;
  esac
done

if [[ -z "${BINDIR:-}" ]]; then
  cargo build -p uoi-bench --release --bin fig2_lasso_single_node \
    --bin fig7_var_single_node 2>&1 | tail -1
  BINDIR=target/release
fi

TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT

SPECS=()
for bin in "${BINS[@]}"; do
  best=""
  for _ in $(seq "$REPS"); do
    start=$(date +%s%3N)
    "$BINDIR/$bin" > /dev/null 2>&1
    elapsed=$(( $(date +%s%3N) - start ))
    if [[ -z "$best" || "$elapsed" -lt "$best" ]]; then best=$elapsed; fi
    echo "  $bin: ${elapsed} ms" >&2
  done
  # Traced reps land in per-rep subdirs so each run report survives;
  # the snapshot takes per-phase minima across them.
  for rep in $(seq "$REPS"); do
    mkdir -p "$TRACE_DIR/rep$rep"
    UOI_TRACE=1 UOI_RESULTS_DIR="$TRACE_DIR/rep$rep" "$BINDIR/$bin" > /dev/null 2>&1
  done
  # One hedging-study rep (schema 5): a 4x straggler with speculation
  # on. Deterministic modeled numbers, so a single rep suffices.
  mkdir -p "$TRACE_DIR/straggler"
  UOI_STRAGGLER=4.0 UOI_SPECULATE=1 UOI_RESULTS_DIR="$TRACE_DIR/straggler" \
    "$BINDIR/$bin" > /dev/null 2>&1
  # One guarded rep (schema 7): numerical-resilience guards armed. The
  # health report is deterministic, so a single rep suffices.
  mkdir -p "$TRACE_DIR/numerical"
  UOI_NUMERICAL=1 UOI_RESULTS_DIR="$TRACE_DIR/numerical" \
    "$BINDIR/$bin" > /dev/null 2>&1
  SPECS+=("$bin=$best")
done

python3 - "$REPS" "$TRACE_DIR" "$BASELINE" "${SPECS[@]}" <<'EOF'
import json, os, sys

reps, trace_dir, baseline = int(sys.argv[1]), sys.argv[2], sys.argv[3]
base_doc = json.load(open(baseline)) if baseline else {}
base_by_name = {e["name"]: e for e in base_doc.get("pipelines", [])}

doc = {
    "schema_version": 7,
    "reps": reps,
    "generated_by": "scripts/bench_snapshot.sh",
    "pipelines": [],
}

# The hedging study must recover at least this fraction of the
# straggler-induced modeled slowdown or the snapshot fails.
RECOVERY_FLOOR = 0.5
gate_failed = False
for spec in sys.argv[4:]:
    name, min_ms = spec.rsplit("=", 1)
    entry = {"name": name, "min_wall_ms": int(min_ms)}
    makespans, phases = [], {}
    for rep in range(1, reps + 1):
        report_path = os.path.join(trace_dir, f"rep{rep}", f"{name}.json")
        try:
            report = json.load(open(report_path))
        except (OSError, ValueError):
            continue
        for key in ("threads", "admm_schedule", "gram_kernel"):
            val = report.get("params", {}).get(key)
            if val is not None:
                entry[key] = val
        # Solver-quality block (schema 6): convergence is deterministic
        # across reps, so the first report that carries one suffices.
        conv = report.get("convergence")
        if conv and "convergence" not in entry:
            sel_iters = (conv.get("stages", {}).get("selection", {})
                         .get("iterations", {}))
            entry["convergence"] = {
                "tasks": conv.get("tasks"),
                "nonconverged_fraction": conv.get("nonconverged_fraction"),
                "cap_hits": conv.get("cap_hits"),
                "median_admm_iterations": sel_iters.get("p50"),
            }
        breakdown = report.get("breakdown")
        if not breakdown:
            continue
        makespans.append(breakdown["makespan"])
        for phase, agg in breakdown.get("aggregate", {}).items():
            t = agg["max"]
            phases[phase] = min(phases.get(phase, t), t)
    if makespans:
        entry["makespan_model_s"] = min(makespans)
        entry["phases_model_s"] = phases
    else:
        print(f"warning: no breakdown for {name}; phases omitted", file=sys.stderr)
    # Numerical-health block (schema 7) from the guarded rep. The
    # figure datasets are clean, so a missing block means the guarded
    # rep failed outright and the snapshot must not pretend otherwise.
    num_path = os.path.join(trace_dir, "numerical", f"{name}.json")
    try:
        num = json.load(open(num_path)).get("numerical")
    except (OSError, ValueError):
        num = None
    if num:
        entry["numerical"] = {
            "clean": num.get("clean"),
            "jitter_events": num.get("jitter", {}).get("events"),
            "jitter_attempts_total": num.get("jitter", {}).get("attempts_total"),
            "rho_restarts": num.get("rho_restarts"),
            "divergences": num.get("divergence", {}).get("trips"),
            "dropped_tasks": num.get("dropped_tasks"),
            "sanitized_cells": num.get("sanitized_cells"),
        }
    else:
        print(f"GATE: {name} guarded rep produced no numerical block",
              file=sys.stderr)
        gate_failed = True
    study_path = os.path.join(trace_dir, "straggler", f"{name}.json")
    try:
        study = json.load(open(study_path)).get("params", {})
    except (OSError, ValueError):
        study = {}
    if "speculation_recovered" in study:
        entry["watchdog_ms"] = study.get("watchdog_ms")
        entry["straggler"] = {
            "factor": study.get("straggler_factor"),
            "hedges_spawned": study.get("hedges_spawned"),
            "hedges_won": study.get("hedges_won"),
            "hedges_cancelled": study.get("hedges_cancelled"),
            "makespan_healthy_s": study.get("speculation_makespan_healthy"),
            "makespan_unhedged_s": study.get("speculation_makespan_unhedged"),
            "makespan_hedged_s": study.get("speculation_makespan_hedged"),
            "recovered": study.get("speculation_recovered"),
        }
        recovered = study["speculation_recovered"]
        if recovered < RECOVERY_FLOOR:
            print(f"GATE: {name} hedging recovered {recovered:.0%} "
                  f"< {RECOVERY_FLOOR:.0%} of the straggler slowdown",
                  file=sys.stderr)
            gate_failed = True
    else:
        print(f"GATE: {name} straggler rep produced no hedging account",
              file=sys.stderr)
        gate_failed = True
    base = base_by_name.get(name)
    if base and base.get("min_wall_ms"):
        entry["baseline_wall_ms"] = base["min_wall_ms"]
        entry["speedup"] = round(base["min_wall_ms"] / max(entry["min_wall_ms"], 1), 2)
    doc["pipelines"].append(entry)

with open("BENCH_PIPELINE.json", "w") as fh:
    json.dump(doc, fh, indent=2)
    fh.write("\n")
sys.exit(1 if gate_failed else 0)
EOF

echo "wrote BENCH_PIPELINE.json" >&2
cat BENCH_PIPELINE.json

if [[ -n "$COMPARE" ]]; then
  python3 - "$COMPARE" <<'EOF'
import json, sys

THRESHOLD = 0.15   # fail on >15% slowdown
FLOOR = 0.01       # ignore phases under 1% of the baseline makespan
# Gated regardless of FLOOR: the solver inner loop and the batched
# Gram engine — the two phases the kernel work optimises.
ALWAYS_GATED = {"admm_local", "gram_build"}

old = json.load(open(sys.argv[1]))
new = json.load(open("BENCH_PIPELINE.json"))
old_by_name = {e["name"]: e for e in old.get("pipelines", [])}

failed = False
for entry in new["pipelines"]:
    base = old_by_name.get(entry["name"])
    if base is None:
        print(f"{entry['name']}: not in baseline, skipped")
        continue
    wall_new, wall_old = entry["min_wall_ms"], base.get("min_wall_ms")
    if wall_old:
        print(f"{entry['name']}: wall {wall_old} ms -> {wall_new} ms "
              f"({wall_new / wall_old - 1.0:+.1%})")
    old_conv, new_conv = base.get("convergence"), entry.get("convergence")
    if old_conv and new_conv:
        f_old = old_conv.get("nonconverged_fraction") or 0.0
        f_new = new_conv.get("nonconverged_fraction") or 0.0
        it_old = old_conv.get("median_admm_iterations")
        it_new = new_conv.get("median_admm_iterations")
        flag = ""
        if f_new > f_old + 1e-12:
            flag = "  REGRESSION (non-converged fraction grew)"
            failed = True
        print(f"  nonconverged     {f_old:12.4%}  -> {f_new:12.4%} {flag}")
        if it_old is not None and it_new is not None:
            print(f"  admm iter p50    {it_old:12.1f}  -> {it_new:12.1f}")
    # Clean-run numerical gate (schema 7): the figure datasets are
    # well-conditioned, so any guard intervention is a regression in the
    # solver stack — gated unconditionally, baseline or no baseline.
    num = entry.get("numerical")
    if num:
        fired = {k: num.get(k) or 0
                 for k in ("jitter_events", "rho_restarts", "dropped_tasks")}
        flag = ""
        if any(fired.values()):
            flag = "  REGRESSION (guards fired on clean input)"
            failed = True
        print(f"  numerical        jitter {fired['jitter_events']}, "
              f"restarts {fired['rho_restarts']}, "
              f"dropped {fired['dropped_tasks']}{flag}")
    old_phases = base.get("phases_model_s")
    if not old_phases:
        print(f"{entry['name']}: baseline has no phase data (schema v1?); "
              "phase comparison skipped")
        continue
    floor = FLOOR * base.get("makespan_model_s", 0.0)
    for phase, t_old in sorted(old_phases.items()):
        t_new = entry.get("phases_model_s", {}).get(phase)
        if t_new is None or (t_old < floor and phase not in ALWAYS_GATED):
            continue
        delta = t_new / t_old - 1.0
        flag = ""
        if delta > THRESHOLD:
            flag = f"  REGRESSION (> {THRESHOLD:.0%})"
            failed = True
        print(f"  {phase:16s} {t_old:12.6f}s -> {t_new:12.6f}s ({delta:+.1%}){flag}")
sys.exit(1 if failed else 0)
EOF
fi
