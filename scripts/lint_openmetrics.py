#!/usr/bin/env python3
"""Lint an OpenMetrics text exposition written by the uoi-telemetry
exporter (`render_openmetrics` / `uoi-trace export-metrics`).

    scripts/lint_openmetrics.py results/fig2_lasso_single_node.metrics.prom

Mirrors the in-crate `parse_openmetrics` lint so CI can check the
on-disk artifact without building Rust: every line must be a
`# TYPE`/`# HELP`/`# UNIT` comment or a `name[{labels}] value` sample
whose family was declared by a preceding `# TYPE` line, metric names
must stick to the OpenMetrics charset, summaries need `_sum`/`_count`,
and the exposition must end with the mandatory `# EOF` marker. Exits 0
when the file lints clean, 1 otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[A-Za-z_:][A-Za-z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>\S+)(?:\s+\S+)?$"
)
TYPES = {"counter", "gauge", "summary", "histogram", "info", "unknown"}


def family_of(sample_name: str, declared: set) -> str | None:
    """The declared family a sample belongs to, honoring the
    `_total`/`_sum`/`_count` suffixes counters and summaries append."""
    if sample_name in declared:
        return sample_name
    for suffix in ("_total", "_sum", "_count", "_bucket", "_created"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in declared:
                return base
    return None


def lint(text: str) -> list:
    errors = []
    declared: set = set()
    types: dict = {}
    sampled: set = set()
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if saw_eof:
            errors.append(f"line {lineno}: content after # EOF")
            break
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP", "UNIT"):
                if len(parts) < 3 or not NAME_RE.match(parts[2]):
                    errors.append(f"line {lineno}: malformed {parts[1]} comment")
                    continue
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in TYPES:
                        errors.append(f"line {lineno}: unknown metric type")
                        continue
                    declared.add(parts[2])
                    types[parts[2]] = parts[3]
            else:
                errors.append(f"line {lineno}: unrecognised comment {line!r}")
            continue
        if not line.strip():
            errors.append(f"line {lineno}: blank line in exposition")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        value = m.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                errors.append(f"line {lineno}: non-numeric value {value!r}")
                continue
        fam = family_of(m.group("name"), declared)
        if fam is None:
            errors.append(
                f"line {lineno}: sample {m.group('name')!r} has no preceding # TYPE"
            )
            continue
        sampled.add(fam)
    if not saw_eof:
        errors.append("exposition does not end with # EOF")
    for fam, kind in types.items():
        if kind == "summary" and fam in sampled:
            for suffix in ("_sum", "_count"):
                if not re.search(
                    rf"^{re.escape(fam)}{suffix}\s", text, re.MULTILINE
                ):
                    errors.append(f"summary {fam!r} is missing {fam}{suffix}")
    return errors


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        text = open(sys.argv[1], encoding="utf-8").read()
    except OSError as e:
        print(f"lint_openmetrics: {e}", file=sys.stderr)
        return 1
    errors = lint(text)
    for err in errors:
        print(f"lint_openmetrics: {sys.argv[1]}: {err}", file=sys.stderr)
    if not errors:
        families = text.count("# TYPE ")
        samples = sum(
            1
            for line in text.splitlines()
            if line and not line.startswith("#")
        )
        print(f"{sys.argv[1]}: OK ({families} families, {samples} samples)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
