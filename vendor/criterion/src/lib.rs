//! Offline minimal stand-in for `criterion` (see `vendor/README.md`).
//!
//! Supports the bench-definition surface the workspace uses —
//! `criterion_group!`/`criterion_main!`, `Criterion::default().sample_size`,
//! `bench_function`, `benchmark_group` with `throughput`/`bench_with_input`
//! — and reports the median wall-clock time per iteration. `--test` (as
//! passed by `cargo bench -- --test` or CI smoke jobs) runs each benchmark
//! body once and skips timing.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, self.sample_size, self.test_mode, |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        run_one(
            &format!("{}/{}", self.name, id),
            self.throughput,
            self.sample_size,
            self.test_mode,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.throughput,
            self.sample_size,
            self.test_mode,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` names and `BenchmarkId`s for `bench_function`.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            hint::black_box(f());
            return;
        }
        // One warm-up call, then timed samples.
        hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok (smoke)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label}: no samples (body never called iter)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let per_iter_ns = median.as_secs_f64() * 1e9;
    match throughput {
        Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
            let rate = n as f64 / median.as_secs_f64();
            println!("{label}: median {per_iter_ns:.1} ns/iter, {rate:.3e} elem/s");
        }
        Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
            let rate = n as f64 / median.as_secs_f64() / (1 << 30) as f64;
            println!("{label}: median {per_iter_ns:.1} ns/iter, {rate:.3} GiB/s");
        }
        _ => println!("{label}: median {per_iter_ns:.1} ns/iter"),
    }
}

/// Declares a benchmark group function, in either upstream form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        sample_bench(&mut c);
        let mut smoke = Criterion {
            sample_size: 3,
            test_mode: true,
        };
        sample_bench(&mut smoke);
    }
}
