//! Offline stand-in for `bytes` (see `vendor/README.md`): the cursor-style
//! [`Buf`]/[`BufMut`] traits for `&[u8]` readers and `Vec<u8>` writers,
//! little-endian accessors only — the surface the SHF container format
//! uses. Reads past the end panic, as in the upstream crate.

/// Sequential reader over a shrinking `&[u8]` window.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "Buf: read past end of buffer");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "Buf: advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Appending writer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut w: Vec<u8> = Vec::new();
        w.put_slice(b"SHF0");
        w.put_u32_le(7);
        w.put_u64_le(123_456_789_012);
        w.put_f64_le(-0.5);
        let mut r = &w[..];
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"SHF0");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), 123_456_789_012);
        assert_eq!(r.get_f64_le(), -0.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
