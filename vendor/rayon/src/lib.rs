//! Sequential stand-in for `rayon` (offline builds; see `vendor/README.md`).
//!
//! The adapters wrap a plain [`std::iter::Iterator`] and execute eagerly in
//! order, so every reduction is performed in ascending index order — a
//! strict subset of the behaviours real rayon permits, and exactly the
//! deterministic order the workspace's `to_bits` reproducibility contracts
//! assume. Code written against this shim compiles unchanged against real
//! rayon.

/// Number of worker threads the "pool" would have. The shim is sequential,
/// so this reports the machine's available parallelism purely as a sizing
/// hint for block decompositions.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sequential stand-in for `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The parallel-iterator wrapper. Adapters mirror the `rayon` names but
/// delegate to the inner sequential iterator.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    #[inline]
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    #[inline]
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    #[inline]
    pub fn step_by(self, step: usize) -> ParIter<std::iter::StepBy<I>> {
        ParIter(self.0.step_by(step))
    }

    #[inline]
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    #[inline]
    pub fn zip<J: IntoIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::IntoIter>> {
        ParIter(self.0.zip(other.into_iter()))
    }

    #[inline]
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// `reduce(identity, op)` with rayon's signature; sequential fold from
    /// the identity, in iterator order.
    #[inline]
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    #[inline]
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    #[inline]
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Collect into a caller-owned vector, replacing its contents.
    #[inline]
    pub fn collect_into_vec(self, out: &mut Vec<I::Item>) {
        out.clear();
        out.extend(self.0);
    }
}

/// `into_par_iter()` for anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` / `par_chunks()` over shared slices.
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, chunk: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk))
    }
}

/// `par_iter_mut()` / `par_chunks_mut()` over mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk))
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..10).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_folds_in_order() {
        let s: Vec<usize> = (0..5)
            .into_par_iter()
            .map(|i| vec![i])
            .reduce(Vec::new, |mut a, b| {
                a.extend(b);
                a
            });
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_chunks_mut_enumerate() {
        let mut buf = vec![0usize; 9];
        buf.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for v in c {
                *v = i;
            }
        });
        assert_eq!(buf, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }
}
