//! Offline stand-in for `parking_lot` built on `std::sync` (see
//! `vendor/README.md`). Exposes the non-poisoning `parking_lot` API shape:
//! `lock()`/`read()`/`write()` return guards directly, and a poisoned
//! `std` lock is transparently recovered (the workspace treats panics in
//! critical sections as fatal anyway).

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

fn unpoison<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(sync::PoisonError::into_inner)
}

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a `Condvar` wait can move the std guard out and back.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(unpoison(self.inner.lock())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard taken during wait");
        guard.guard = Some(unpoison(self.inner.wait(g)));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard taken during wait");
        let (g, res) = unpoison(
            self.inner
                .wait_timeout(g, timeout)
                .map_err(|e| sync::PoisonError::new(e.into_inner())),
        );
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: unpoison(self.inner.read()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: unpoison(self.inner.write()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").field("data", &&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0usize));
        let cv = Arc::new(Condvar::new());
        {
            let mut g = m.lock();
            *g = 5;
            let res = cv.wait_for(&mut g, Duration::from_millis(1));
            assert!(res.timed_out());
            assert_eq!(*g, 5);
        }
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
