//! Offline deterministic stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the API the workspace's property tests use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range and tuple strategies, `prop::collection::vec`,
//! [`Strategy::prop_map`], and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a fixed per-case
//! SplitMix64 seed (fully deterministic, no `PROPTEST_*` env handling) and
//! there is **no shrinking** — a failure reports the generated inputs of
//! the failing case verbatim.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 source driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, width: u64) -> u64 {
        debug_assert!(width > 0);
        let zone = u64::MAX - u64::MAX % width;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % width;
            }
        }
    }
}

/// Why a test case did not pass: a genuine failure or a rejected
/// assumption (`prop_assume!`).
pub enum TestCaseError {
    Fail(String),
    Reject,
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values; the stub generates directly with no value tree,
/// so strategies are just deterministic sampling rules.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`]; resamples until the predicate
/// holds (bounded, then panics naming the filter).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive samples", self.reason)
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(width + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u8, i64, i32, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Element-count specifier: a fixed size or a size range.
        pub trait SizeBounds {
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeBounds for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeBounds for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.clone().generate(rng)
            }
        }

        impl SizeBounds for RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.clone().generate(rng)
            }
        }

        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// `prop::collection::vec(element, len)` — a vector whose length is
        /// drawn from `len` and whose elements are drawn from `element`.
        pub fn vec<S: Strategy, L: SizeBounds>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: SizeBounds> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub struct BTreeSetStrategy<S, L> {
            element: S,
            len: L,
        }

        /// `prop::collection::btree_set(element, len)` — up to `len` draws,
        /// deduplicated, so the resulting set size is at most the drawn
        /// count (mirroring upstream's "try to reach the target size").
        pub fn btree_set<S: Strategy, L: SizeBounds>(element: S, len: L) -> BTreeSetStrategy<S, L>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy { element, len }
        }

        impl<S: Strategy, L: SizeBounds> Strategy for BTreeSetStrategy<S, L>
        where
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", *l, *r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", *l, *r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-defining macro. Supports the upstream shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in (0f64..1.0, 0f64..1.0)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            // Stable per-test stream: hash of the test name, then one
            // substream per case index.
            let __base: u64 = {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut __rejected = 0u32;
            let mut __case = 0u64;
            let mut __run = 0u32;
            while __run < __cfg.cases {
                let mut __rng = $crate::TestRng::new(__base ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                __case += 1;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => { __run += 1; }
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected < 10 * __cfg.cases.max(256),
                            "proptest '{}': too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case #{}: {}\n(no shrinking in the offline stand-in; \
                             re-run reproduces this case deterministically)",
                            stringify!($name), __case - 1, msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -1.0f64..1.0), n in 1u64..=5) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            prop_assert!((1..=5).contains(&n));
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec(0i32..100, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = prop::collection::vec(0u64..1000, 8usize);
        let a: Vec<u64> = Strategy::generate(&s, &mut crate::TestRng::new(7));
        let b: Vec<u64> = Strategy::generate(&s, &mut crate::TestRng::new(7));
        assert_eq!(a, b);
    }
}
