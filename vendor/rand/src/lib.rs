//! Offline stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides the narrow surface the workspace uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`RngExt`] sampling methods
//! (`random::<f64/bool>()`, `random_range` over float and integer ranges).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — fully deterministic
//! per seed, but **not** stream-compatible with upstream `rand`'s ChaCha12
//! `StdRng`. Benchmark baselines committed in this repository were
//! generated against this stream.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// Seedable construction, with the SplitMix64-expanded `seed_from_u64`
/// convenience mirroring `rand_core`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Uniform sampling over a range type; backs [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types samplable by [`RngExt::random`].
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Unbiased integer sampling in `[0, width)` by rejection above the last
/// full multiple of `width`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    let zone = u64::MAX - u64::MAX % width;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % width;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "random_range: empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, width + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, i64, i32, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// The user-facing sampling extension trait (`rand`'s `Rng`/`RngExt`).
pub trait RngExt: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand`'s ChaCha12 `StdRng`; see
    /// the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point of xoshiro; redirect it.
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
            let x = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.random_range(0u64..=5);
            assert!(j <= 5);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<f64>() == b.random::<f64>()).count();
        assert!(same < 4);
    }
}
