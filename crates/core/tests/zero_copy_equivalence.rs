//! Public-API equivalence gate for the zero-copy bootstrap path.
//!
//! Rebuilds the pre-optimisation UoI_LASSO pipeline out of public
//! pieces — `gather_rows`-materialised resamples, `LassoAdmm::new`,
//! design-space OLS and MSE — and checks that `fit_uoi_lasso` (which
//! never copies the design: weighted Gram selection, per-bootstrap
//! union-Gram estimation) selects the identical supports and agrees on
//! the coefficients to floating-point summation-order tolerance.

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter`/`UoiVarFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use uoi_core::support::{dedup_family, intersect_many};
use uoi_core::{fit_uoi_lasso, EstimationScore, UoiLassoConfig};
use uoi_data::bootstrap::row_bootstrap;
use uoi_data::rng::substream;
use uoi_data::LinearConfig;
use uoi_linalg::Matrix;
use uoi_solvers::{lambda_path, ols_on_support, support_of, LassoAdmm};

/// The paper's original materialising pipeline, reconstructed from the
/// public API only. Mirrors `fit_uoi_lasso`'s RNG substreams exactly.
#[allow(clippy::type_complexity)]
fn materialized_fit(
    x: &Matrix,
    y: &[f64],
    cfg: &UoiLassoConfig,
) -> (Vec<Vec<usize>>, Vec<Vec<usize>>, Vec<f64>, f64) {
    let (n, p) = x.shape();
    let x_means = x.col_means();
    let y_mean = y.iter().sum::<f64>() / n as f64;
    let mut xc = x.clone();
    xc.center_cols(&x_means);
    let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

    let lambdas = lambda_path(&xc, &yc, cfg.q, cfg.lambda_min_ratio);

    // Selection: materialise every bootstrap design.
    let supports_by_bootstrap: Vec<Vec<Vec<usize>>> = (0..cfg.b1)
        .map(|k| {
            let mut rng = substream(cfg.seed, k as u64);
            let idx = row_bootstrap(&mut rng, n, n);
            let xb = xc.gather_rows(&idx);
            let yb: Vec<f64> = idx.iter().map(|&i| yc[i]).collect();
            let solver = LassoAdmm::new(xb, cfg.admm.clone());
            solver
                .solve_path(&yb, &lambdas)
                .into_iter()
                .map(|sol| support_of(&sol.beta, cfg.support_tol))
                .collect()
        })
        .collect();

    // Strict intersection (the test pins intersection_frac = 1.0).
    let supports_per_lambda: Vec<Vec<usize>> = (0..cfg.q)
        .map(|j| {
            let per_k: Vec<Vec<usize>> = supports_by_bootstrap
                .iter()
                .map(|sk| sk[j].clone())
                .collect();
            intersect_many(&per_k)
        })
        .collect();
    let support_family = dedup_family(supports_per_lambda.clone());

    // Estimation: materialise every train resample, score in design space.
    let mut beta = vec![0.0; p];
    for k in 0..cfg.b2 {
        let mut rng = substream(cfg.seed, 10_000 + k as u64);
        let train_idx = row_bootstrap(&mut rng, n, n);
        let mut in_train = vec![false; n];
        for &i in &train_idx {
            in_train[i] = true;
        }
        let eval_idx: Vec<usize> = (0..n).filter(|&i| !in_train[i]).collect();
        assert!(
            !eval_idx.is_empty(),
            "test sizes must leave out-of-bag rows"
        );

        let xt = xc.gather_rows(&train_idx);
        let yt: Vec<f64> = train_idx.iter().map(|&i| yc[i]).collect();

        let mut best: Option<(f64, Vec<f64>)> = None;
        for support in &support_family {
            // `ols_on_support` already embeds into full-p coordinates.
            let full = ols_on_support(&xt, &yt, support);
            let loss = match cfg.score {
                EstimationScore::Mse => {
                    let mut sum = 0.0;
                    for &e in &eval_idx {
                        let d = uoi_linalg::dot(xc.row(e), &full) - yc[e];
                        sum += d * d;
                    }
                    sum / eval_idx.len() as f64
                }
                EstimationScore::Bic => uoi_core::bic(&xt, &full, &yt, support.len()),
            };
            if best.as_ref().is_none_or(|(l, _)| loss < *l) {
                best = Some((loss, full));
            }
        }
        if let Some((_, full)) = best {
            for (bi, v) in beta.iter_mut().zip(&full) {
                *bi += v;
            }
        }
    }
    for b in &mut beta {
        *b /= cfg.b2 as f64;
    }
    let intercept = y_mean - uoi_linalg::dot(&x_means, &beta);

    (supports_per_lambda, support_family, beta, intercept)
}

fn cfg(score: EstimationScore) -> UoiLassoConfig {
    UoiLassoConfig::builder()
        .b1(6)
        .b2(8)
        .q(12)
        .lambda_min_ratio(1e-2)
        .support_tol(1e-6)
        .seed(97)
        .score(score)
        .intersection_frac(1.0)
        .build()
        .expect("valid config")
}

fn check(score: EstimationScore) {
    let ds = LinearConfig {
        n_samples: 80,
        n_features: 18,
        n_nonzero: 4,
        snr: 8.0,
        seed: 41,
        ..Default::default()
    }
    .generate();
    let cfg = cfg(score);

    let fit = fit_uoi_lasso(&ds.x, &ds.y, &cfg);
    let (ref_spl, ref_family, ref_beta, ref_icpt) = materialized_fit(&ds.x, &ds.y, &cfg);

    // The weighted-Gram path must select the identical model.
    assert_eq!(
        fit.supports_per_lambda, ref_spl,
        "supports diverged ({score:?})"
    );
    assert_eq!(
        fit.support_family, ref_family,
        "family diverged ({score:?})"
    );

    // Coefficients agree to summation-order tolerance.
    for (a, b) in fit.beta.iter().zip(&ref_beta) {
        assert!(
            (a - b).abs() < 1e-6,
            "beta diverged ({score:?}): {a} vs {b}"
        );
    }
    assert!(
        (fit.intercept - ref_icpt).abs() < 1e-6,
        "intercept diverged ({score:?})"
    );
}

#[test]
fn zero_copy_matches_materialized_reference_mse() {
    check(EstimationScore::Mse);
}

#[test]
fn zero_copy_matches_materialized_reference_bic() {
    check(EstimationScore::Bic);
}
