//! Error paths of the fallible fitting API: every invalid-input case
//! returns `Err` (never panics), the panicking wrappers preserve their
//! old contract, and the builders reject bad configurations.

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter`/`UoiVarFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use uoi_core::{try_fit_uoi_lasso, try_fit_uoi_var, UoiError, UoiLassoConfig, UoiVarConfig};
use uoi_data::LinearConfig;
use uoi_linalg::Matrix;

fn small_ds() -> (Matrix, Vec<f64>) {
    let ds = LinearConfig {
        n_samples: 40,
        n_features: 8,
        n_nonzero: 2,
        seed: 1,
        ..Default::default()
    }
    .generate();
    (ds.x, ds.y)
}

fn quick_cfg() -> UoiLassoConfig {
    UoiLassoConfig::builder().b1(3).b2(3).q(5).build().unwrap()
}

#[test]
fn empty_design_is_an_error() {
    let x = Matrix::zeros(0, 0);
    assert_eq!(
        try_fit_uoi_lasso(&x, &[], &quick_cfg()).unwrap_err(),
        UoiError::EmptyDesign
    );
    let no_cols = Matrix::zeros(10, 0);
    assert_eq!(
        try_fit_uoi_lasso(&no_cols, &[0.0; 10], &quick_cfg()).unwrap_err(),
        UoiError::EmptyDesign
    );
}

#[test]
fn mismatched_lengths_are_an_error() {
    let (x, mut y) = small_ds();
    y.pop();
    assert_eq!(
        try_fit_uoi_lasso(&x, &y, &quick_cfg()).unwrap_err(),
        UoiError::DimensionMismatch {
            expected: 40,
            got: 39
        }
    );
}

#[test]
fn too_few_samples_is_an_error() {
    let x = Matrix::zeros(3, 5);
    let y = vec![0.0; 3];
    assert_eq!(
        try_fit_uoi_lasso(&x, &y, &quick_cfg()).unwrap_err(),
        UoiError::TooFewSamples { n: 3, min: 4 }
    );
}

#[test]
fn non_finite_inputs_are_an_error() {
    let (mut x, y) = small_ds();
    x[(2, 3)] = f64::NAN;
    assert_eq!(
        try_fit_uoi_lasso(&x, &y, &quick_cfg()).unwrap_err(),
        UoiError::NonFiniteInput("design matrix x")
    );
    let (x, mut y) = small_ds();
    y[7] = f64::INFINITY;
    assert_eq!(
        try_fit_uoi_lasso(&x, &y, &quick_cfg()).unwrap_err(),
        UoiError::NonFiniteInput("response y")
    );
}

#[test]
fn zero_bootstraps_is_an_error_not_a_panic() {
    let (x, y) = small_ds();
    let cfg = UoiLassoConfig {
        b1: 0,
        ..quick_cfg()
    };
    match try_fit_uoi_lasso(&x, &y, &cfg) {
        Err(UoiError::InvalidConfig(msg)) => assert!(msg.contains("b1")),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    let cfg = UoiLassoConfig {
        b2: 0,
        ..quick_cfg()
    };
    assert!(matches!(
        try_fit_uoi_lasso(&x, &y, &cfg),
        Err(UoiError::InvalidConfig(_))
    ));
    let cfg = UoiLassoConfig {
        q: 0,
        ..quick_cfg()
    };
    assert!(matches!(
        try_fit_uoi_lasso(&x, &y, &cfg),
        Err(UoiError::InvalidConfig(_))
    ));
}

#[test]
fn bad_solver_config_propagates() {
    let (x, y) = small_ds();
    let mut cfg = quick_cfg();
    cfg.admm.rho = -1.0;
    match try_fit_uoi_lasso(&x, &y, &cfg) {
        Err(UoiError::InvalidConfig(msg)) => assert!(msg.contains("rho")),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn valid_input_fits_ok() {
    let (x, y) = small_ds();
    let fit = try_fit_uoi_lasso(&x, &y, &quick_cfg()).unwrap();
    assert_eq!(fit.beta.len(), 8);
}

#[test]
fn lasso_builder_rejects_bad_fields() {
    assert!(UoiLassoConfig::builder()
        .lambda_min_ratio(0.0)
        .build()
        .is_err());
    assert!(UoiLassoConfig::builder()
        .lambda_min_ratio(1.5)
        .build()
        .is_err());
    assert!(UoiLassoConfig::builder()
        .support_tol(f64::NAN)
        .build()
        .is_err());
    assert!(UoiLassoConfig::builder()
        .intersection_frac(0.0)
        .build()
        .is_err());
    assert!(UoiLassoConfig::builder()
        .intersection_frac(1.1)
        .build()
        .is_err());
    assert!(UoiLassoConfig::builder().b1(0).build().is_err());
    // The happy path round-trips all fields.
    let cfg = UoiLassoConfig::builder()
        .b1(7)
        .b2(9)
        .q(11)
        .seed(99)
        .intersection_frac(0.8)
        .build()
        .unwrap();
    assert_eq!((cfg.b1, cfg.b2, cfg.q, cfg.seed), (7, 9, 11, 99));
    assert_eq!(cfg.intersection_frac, 0.8);
}

#[test]
fn var_series_too_short_is_an_error() {
    let series = Matrix::zeros(5, 3);
    let cfg = UoiVarConfig::builder()
        .order(1)
        .b1(2)
        .b2(2)
        .q(3)
        .build()
        .unwrap();
    assert_eq!(
        try_fit_uoi_var(&series, &cfg).unwrap_err(),
        UoiError::SeriesTooShort { n: 5, min: 5 }
    );
    assert_eq!(
        try_fit_uoi_var(&Matrix::zeros(0, 0), &cfg).unwrap_err(),
        UoiError::EmptyDesign
    );
}

#[test]
fn var_non_finite_series_is_an_error() {
    let mut series = Matrix::zeros(60, 3);
    for i in 0..60 {
        for j in 0..3 {
            series[(i, j)] = ((i * 7 + j * 13) % 11) as f64 - 5.0;
        }
    }
    series[(30, 1)] = f64::NEG_INFINITY;
    let cfg = UoiVarConfig::builder()
        .order(1)
        .b1(2)
        .b2(2)
        .q(3)
        .build()
        .unwrap();
    assert_eq!(
        try_fit_uoi_var(&series, &cfg).unwrap_err(),
        UoiError::NonFiniteInput("series")
    );
}

#[test]
fn var_builder_validates_order_and_base() {
    assert!(UoiVarConfig::builder().order(0).build().is_err());
    assert!(UoiVarConfig::builder().block_len(Some(0)).build().is_err());
    assert!(UoiVarConfig::builder().q(0).build().is_err());
    let cfg = UoiVarConfig::builder()
        .order(2)
        .block_len(Some(10))
        .b1(5)
        .seed(3)
        .build()
        .unwrap();
    assert_eq!(cfg.order, 2);
    assert_eq!(cfg.block_len, Some(10));
    assert_eq!((cfg.base.b1, cfg.base.seed), (5, 3));
}

#[test]
fn panicking_wrapper_still_panics() {
    let result = std::panic::catch_unwind(|| {
        let x = Matrix::zeros(2, 2);
        uoi_core::fit_uoi_lasso(&x, &[0.0, 0.0], &quick_cfg())
    });
    assert!(
        result.is_err(),
        "fit_uoi_lasso must keep its panicking contract"
    );
}
