//! Property-based coverage of task ownership under speculation
//! (ISSUE 8, satellite): hedging is a scheduling overlay — it never
//! moves ownership, never lets a cancelled replica publish, and always
//! derives the same schedule from the same observed record.

use proptest::prelude::*;
use uoi_core::{SpeculationConfig, TaskOwnership};
use uoi_mpisim::{
    plan_hedges, DeadlinePolicy, PublishOutcome, RankTimings, SpeculationBoard, TaskHeartbeat,
};

/// A world size, a seed, and a strict subset of failed ranks (derived
/// from raw draws so it composes on the stub's range strategies).
fn world_strategy() -> impl Strategy<Value = (usize, u64, Vec<usize>)> {
    (
        2usize..=6,
        0u64..u64::MAX,
        prop::collection::vec(0usize..6, 0..5),
    )
        .prop_map(|(world, seed, raw)| {
            let mut failed: Vec<usize> = raw.into_iter().map(|r| r % world).collect();
            failed.sort_unstable();
            failed.dedup();
            failed.truncate(world - 1); // always leave a survivor
            (world, seed, failed)
        })
}

const FACTORS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// Per-rank straggle factors and task counts for a synthetic stage.
fn timings_strategy() -> impl Strategy<Value = Vec<RankTimings>> {
    (
        2usize..=5,
        1usize..=4,
        prop::collection::vec(0usize..FACTORS.len(), 5),
    )
        .prop_map(|(world, per_rank, factor_idx)| {
            (0..world)
                .map(|rank| {
                    let straggle = FACTORS[factor_idx[rank]];
                    RankTimings {
                        rank,
                        straggle,
                        tasks: (0..per_rank)
                            .map(|i| TaskHeartbeat {
                                task: rank * per_rank + i,
                                nominal: 1.0,
                                actual: straggle,
                            })
                            .collect(),
                    }
                })
                .collect()
        })
}

fn policy_strategy() -> impl Strategy<Value = DeadlinePolicy> {
    (0usize..3, 1.0f64..3.0, 0u32..=6, 1usize..=4).prop_map(
        |(q_idx, multiplier, heartbeats_per_deadline, min_samples)| DeadlinePolicy {
            quantile: [0.5, 0.75, 0.9][q_idx],
            multiplier,
            floor: 0.0,
            heartbeats_per_deadline,
            min_samples,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The owner assignment sequence is a pure function of
    /// `(seed, fault plan)` — the speculation flag is not even an input
    /// to [`TaskOwnership`], and reconstructing the map with speculation
    /// configured on or off yields the identical sequence, a partition
    /// of the task range that never names a failed rank.
    #[test]
    fn owner_sequence_is_invariant_under_speculation(
        (world, seed, failed) in world_strategy(),
        total in 0usize..=40,
        speculate_raw in 0usize..2,
    ) {
        let scfg = SpeculationConfig {
            enabled: speculate_raw == 1,
            ..SpeculationConfig::default()
        };
        prop_assert!(scfg.validate().is_ok());

        let a = TaskOwnership::new(world, seed);
        let b = TaskOwnership::new(world, seed);
        let seq_a: Vec<usize> = (0..total).map(|k| a.owner(k, &failed)).collect();
        let seq_b: Vec<usize> = (0..total).map(|k| b.owner(k, &failed)).collect();
        prop_assert_eq!(&seq_a, &seq_b, "ownership must be reconstruction-invariant");
        for &o in &seq_a {
            prop_assert!(o < world && !failed.contains(&o));
        }

        // owned_tasks partitions the range exactly once across survivors.
        let mut seen = vec![0usize; total];
        for r in 0..world {
            let owned = a.owned_tasks(r, total, &failed);
            if failed.contains(&r) {
                prop_assert!(owned.is_empty(), "failed ranks own nothing");
            }
            for k in owned {
                prop_assert_eq!(seq_a[k], r);
                seen[k] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "every task exactly one owner");
    }

    /// The hedge schedule is deterministic in the observed record and
    /// structurally sound: replicas are real other ranks, every rank has
    /// a finish time, and hedging never lengthens the modeled makespan.
    #[test]
    fn hedge_schedule_is_deterministic_and_sound(
        timings in timings_strategy(),
        policy in policy_strategy(),
    ) {
        let s1 = plan_hedges(&timings, &policy);
        let s2 = plan_hedges(&timings, &policy);
        prop_assert_eq!(&s1, &s2, "same record, same schedule");

        let ranks: Vec<usize> = timings.iter().map(|t| t.rank).collect();
        for ev in &s1.events {
            prop_assert!(ev.owner != ev.replica, "a rank never hedges itself");
            prop_assert!(ranks.contains(&ev.owner) && ranks.contains(&ev.replica));
            prop_assert!(ev.replica_end >= ev.replica_start);
        }
        for r in &ranks {
            prop_assert!(s1.rank_finish.contains_key(r));
        }
        let unhedged = uoi_mpisim::makespan_unhedged(&timings);
        prop_assert!(
            s1.makespan <= unhedged + 1e-9,
            "hedging must never lengthen the makespan: {} > {}",
            s1.makespan, unhedged
        );
        if policy.heartbeats_per_deadline == 0 {
            prop_assert!(s1.events.is_empty(), "zero ticks disables hedging");
        }
    }

    /// A cancelled replica can never publish: its late result is
    /// rejected and the board keeps serving the owner's bits.
    #[test]
    fn cancelled_replicas_never_publish(
        payload in prop::collection::vec(-1e3f64..1e3, 1..16),
        task in 0usize..32,
        owner in 0usize..4,
    ) {
        let replica = (owner + 1) % 4;
        let board = SpeculationBoard::default();
        prop_assert!(matches!(
            board.publish(0, "stage", task, owner, &payload),
            PublishOutcome::Stored
        ));
        board.cancel(0, "stage", task, replica);
        prop_assert!(matches!(
            board.publish(0, "stage", task, replica, &payload),
            PublishOutcome::Rejected
        ), "a cancelled replica's publication must be rejected");

        let (winner, bits) = board.result(0, "stage", task).unwrap();
        prop_assert_eq!(winner, owner, "the owner's result must stand");
        prop_assert_eq!(bits.len(), payload.len());
        for (a, b) in bits.iter().zip(&payload) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
