//! Property-based tests of the UoI support algebra, the VAR
//! rearrangement, and the Granger-network extraction.

use proptest::prelude::*;
use uoi_core::support::{
    decode_support, dedup_family, encode_support, from_summed_indicator, indicator, intersect,
    intersect_many, union, union_many,
};
use uoi_core::{flatten_coefficients, partition_coefficients, GrangerNetwork, VarRegression};
use uoi_linalg::Matrix;

fn support_strategy(p: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0..p, 0..p).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intersect_commutative_and_contained(a in support_strategy(24), b in support_strategy(24)) {
        let ab = intersect(&a, &b);
        let ba = intersect(&b, &a);
        prop_assert_eq!(&ab, &ba);
        for i in &ab {
            prop_assert!(a.contains(i) && b.contains(i));
        }
        // Intersection is idempotent.
        prop_assert_eq!(intersect(&ab, &a), ab.clone());
    }

    #[test]
    fn union_commutative_and_covering(a in support_strategy(24), b in support_strategy(24)) {
        let ab = union(&a, &b);
        prop_assert_eq!(&ab, &union(&b, &a));
        for i in a.iter().chain(&b) {
            prop_assert!(ab.contains(i));
        }
        prop_assert!(ab.len() <= a.len() + b.len());
        // Sorted, deduplicated.
        for w in ab.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn de_morgan_style_monotonicity(fam in prop::collection::vec(support_strategy(16), 1..6)) {
        // intersect_many(F) ⊆ every member ⊆ union_many(F).
        let inter = intersect_many(&fam);
        let uni = union_many(&fam);
        for member in &fam {
            for i in &inter {
                prop_assert!(member.contains(i));
            }
            for i in member {
                prop_assert!(uni.contains(i));
            }
        }
        // Adding a member can only shrink the intersection.
        let mut fam2 = fam.clone();
        fam2.push(vec![0, 1, 2]);
        let inter2 = intersect_many(&fam2);
        for i in &inter2 {
            prop_assert!(inter.contains(i));
        }
    }

    #[test]
    fn indicator_reduce_equals_intersection(fam in prop::collection::vec(support_strategy(20), 1..5)) {
        // The distributed allreduce realisation of eq. 3 must equal the
        // direct merge-based intersection.
        let mut sum = vec![0.0; 20];
        for s in &fam {
            for (acc, v) in sum.iter_mut().zip(indicator(s, 20)) {
                *acc += v;
            }
        }
        prop_assert_eq!(from_summed_indicator(&sum, fam.len()), intersect_many(&fam));
    }

    #[test]
    fn encode_decode_roundtrip(s in support_strategy(1000)) {
        prop_assert_eq!(decode_support(&encode_support(&s)), s);
    }

    #[test]
    fn dedup_family_preserves_members(fam in prop::collection::vec(support_strategy(12), 0..8)) {
        let dd = dedup_family(fam.clone());
        // No duplicates, no empties, every member came from the input.
        for (i, a) in dd.iter().enumerate() {
            prop_assert!(!a.is_empty());
            prop_assert!(fam.contains(a));
            for b in &dd[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
        for s in fam.iter().filter(|s| !s.is_empty()) {
            prop_assert!(dd.contains(s));
        }
    }

    #[test]
    fn coefficients_roundtrip(p in 1usize..6, d in 1usize..4, seed in 0u64..100) {
        let mats: Vec<Matrix> = (0..d)
            .map(|l| Matrix::from_fn(p, p, |i, j| ((i * 7 + j * 3 + l + seed as usize) % 11) as f64 - 5.0))
            .collect();
        let flat = flatten_coefficients(&mats);
        prop_assert_eq!(flat.len(), d * p * p);
        let back = partition_coefficients(&flat, p, d);
        prop_assert_eq!(back, mats);
    }

    #[test]
    fn var_regression_shapes(n in 6usize..40, p in 1usize..6, d in 1usize..4) {
        prop_assume!(n > d + 1);
        let series = Matrix::from_fn(n, p, |i, j| ((i * 13 + j * 5) % 17) as f64);
        let reg = VarRegression::build(&series, d);
        prop_assert_eq!(reg.samples(), n - d);
        prop_assert_eq!(reg.x.cols(), d * p);
        prop_assert_eq!(reg.vec_y().len(), (n - d) * p);
        let (rows, cols) = reg.kron_design().shape();
        prop_assert_eq!(rows, (n - d) * p);
        prop_assert_eq!(cols, d * p * p);
    }

    #[test]
    fn network_edges_match_nonzeros(p in 2usize..8, seed in 0u64..200) {
        let a = Matrix::from_fn(p, p, |i, j| {
            let h = (i * 31 + j * 17 + seed as usize) % 7;
            if h == 0 { 0.5 } else { 0.0 }
        });
        let net = GrangerNetwork::from_coefficients(std::slice::from_ref(&a), 0.0);
        prop_assert_eq!(net.edge_count(), a.count_nonzero(0.0));
        // Degrees are consistent with the edge list.
        let total: usize = net.degrees().iter().sum();
        prop_assert_eq!(total, 2 * net.edge_count_no_loops());
        prop_assert_eq!(net.adjacency().count_nonzero(0.0), net.edge_count());
    }
}
