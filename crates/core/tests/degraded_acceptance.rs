//! Degraded-mode and checkpoint/resume acceptance tests (ISSUE 3).
//!
//! * A fixed fault seed injecting `k <= B1/2` bootstrap failures lets
//!   `fit_uoi_lasso` complete in degraded mode, with a
//!   [`DegradationReport`] that is byte-identical across reruns and
//!   selected supports matching the fault-free reference.
//! * A checkpointed run killed at ~50% of the bootstraps resumes
//!   bit-identically to an uninterrupted run with the same seed.

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter`/`UoiVarFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use uoi_core::{
    try_fit_uoi_lasso, try_fit_uoi_var, BootstrapFaultPlan, CheckpointConfig, DegradationConfig,
    SelectionCounts, UoiError, UoiLassoConfig,
};
use uoi_data::LinearConfig;
use uoi_solvers::AdmmConfig;

const B1: usize = 8;
const B2: usize = 8;

fn lasso_cfg() -> uoi_core::UoiLassoConfigBuilder {
    UoiLassoConfig::builder()
        .b1(B1)
        .b2(B2)
        .q(8)
        .lambda_min_ratio(3e-2)
        .admm(AdmmConfig {
            max_iter: 1500,
            abstol: 1e-8,
            reltol: 1e-7,
            ..Default::default()
        })
        .support_tol(1e-6)
        .seed(13)
}

fn dataset() -> uoi_data::LinearDataset {
    LinearConfig {
        n_samples: 160,
        n_features: 16,
        n_nonzero: 4,
        snr: 16.0,
        seed: 29,
        ..Default::default()
    }
    .generate()
}

fn temp_ckpt_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("uoi_acc_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Acceptance: k = B1/2 failed selection bootstraps plus two failed
/// estimation bootstraps. The fit completes, reports the degradation
/// deterministically (byte-identical JSON across reruns), and still
/// recovers the same support as the fault-free reference.
#[test]
fn degraded_fit_completes_and_matches_fault_free_supports() {
    let ds = dataset();
    let plan = BootstrapFaultPlan::new(77)
        .with_random_selection_failures(B1, B1 / 2)
        .with_random_estimation_failures(B2, 2);
    let degraded_cfg = lasso_cfg()
        .degradation(DegradationConfig {
            plan: Some(plan),
            min_quorum_frac: 0.5,
        })
        .build()
        .unwrap();
    let clean_cfg = lasso_cfg().build().unwrap();

    let degraded = try_fit_uoi_lasso(&ds.x, &ds.y, &degraded_cfg).expect("quorum holds");
    let clean = try_fit_uoi_lasso(&ds.x, &ds.y, &clean_cfg).unwrap();

    let report = degraded
        .degradation
        .as_ref()
        .expect("plan given => report attached");
    assert!(report.is_degraded());
    assert_eq!(report.b1_planned, B1);
    assert_eq!(report.b1_effective, B1 - B1 / 2);
    assert_eq!(report.b2_planned, B2);
    assert_eq!(report.b2_effective, B2 - 2);
    assert_eq!(report.failed_selection.len(), B1 / 2);

    // Byte-identical degradation report across reruns.
    let rerun = try_fit_uoi_lasso(&ds.x, &ds.y, &degraded_cfg).unwrap();
    assert_eq!(
        report.to_json().to_string_compact(),
        rerun.degradation.unwrap().to_json().to_string_compact()
    );
    assert_eq!(
        degraded.beta, rerun.beta,
        "degraded fit must be deterministic"
    );

    // The clean fit carries no report, and half the bootstraps dying must
    // not change which features survive the intersection on this
    // well-conditioned problem.
    assert!(clean.degradation.is_none());
    assert_eq!(
        degraded.support, clean.support,
        "supports must match fault-free run"
    );
    let counts = SelectionCounts::compare(&degraded.support, &ds.support_true, 16);
    assert!(counts.recall() >= 0.75, "recall {}", counts.recall());
}

/// Losing more bootstraps than the quorum allows is a typed error, not a
/// silently wrong fit.
#[test]
fn quorum_loss_is_a_typed_error() {
    let ds = dataset();
    let mut plan = BootstrapFaultPlan::new(0);
    for k in 0..B1 - 1 {
        plan = plan.fail_selection(k);
    }
    let cfg = lasso_cfg()
        .degradation(DegradationConfig {
            plan: Some(plan),
            min_quorum_frac: 0.5,
        })
        .build()
        .unwrap();
    match try_fit_uoi_lasso(&ds.x, &ds.y, &cfg) {
        Err(UoiError::QuorumLost {
            stage: "selection",
            surviving: 1,
            required: 4,
        }) => {}
        other => panic!("expected QuorumLost, got {other:?}"),
    }
}

/// Acceptance: kill a checkpointed run at ~50% of the bootstrap tasks
/// (via the `abort_after` budget), then resume from the same checkpoint
/// directory. The resumed fit is bit-identical to an uninterrupted run
/// with the same seed.
#[test]
fn interrupted_checkpoint_run_resumes_bit_identical() {
    let ds = dataset();
    let dir = temp_ckpt_dir("lasso_resume");

    // Uninterrupted reference (no checkpointing at all).
    let reference = try_fit_uoi_lasso(&ds.x, &ds.y, &lasso_cfg().build().unwrap()).unwrap();

    // Phase 1: budget of B1/2 freshly computed tasks, then interruption.
    let interrupted_cfg = lasso_cfg()
        .checkpoint(CheckpointConfig {
            abort_after: Some(B1 / 2),
            ..CheckpointConfig::in_dir(&dir)
        })
        .build()
        .unwrap();
    match try_fit_uoi_lasso(&ds.x, &ds.y, &interrupted_cfg) {
        Err(UoiError::Interrupted { completed }) => {
            assert!(
                completed >= B1 / 2,
                "budget must be spent before interrupting"
            );
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }

    // Phase 2: resume without a budget; checkpointed bootstraps are
    // loaded, the rest computed fresh.
    let resume_cfg = lasso_cfg()
        .checkpoint(CheckpointConfig::in_dir(&dir))
        .build()
        .unwrap();
    let resumed = try_fit_uoi_lasso(&ds.x, &ds.y, &resume_cfg).unwrap();

    assert_eq!(resumed.beta, reference.beta, "resume must be bit-identical");
    assert_eq!(resumed.support, reference.support);
    assert_eq!(resumed.supports_per_lambda, reference.supports_per_lambda);

    // Third run: everything is checkpointed now; still bit-identical.
    let warm = try_fit_uoi_lasso(&ds.x, &ds.y, &resume_cfg).unwrap();
    assert_eq!(warm.beta, reference.beta);

    std::fs::remove_dir_all(&dir).ok();
}

/// A checkpoint directory written for one dataset/config must be ignored
/// (not corrupt the fit) when the data changes: the store fingerprint
/// embeds the data words.
#[test]
fn checkpoints_are_invalidated_by_data_changes() {
    let ds_a = dataset();
    let ds_b = LinearConfig {
        n_samples: 160,
        n_features: 16,
        n_nonzero: 4,
        snr: 16.0,
        seed: 30, // different data, same shape
        ..Default::default()
    }
    .generate();
    let dir = temp_ckpt_dir("lasso_fp");
    let cfg = lasso_cfg()
        .checkpoint(CheckpointConfig::in_dir(&dir))
        .build()
        .unwrap();

    let _ = try_fit_uoi_lasso(&ds_a.x, &ds_a.y, &cfg).unwrap();
    let fresh = try_fit_uoi_lasso(&ds_b.x, &ds_b.y, &cfg).unwrap();
    let clean = try_fit_uoi_lasso(&ds_b.x, &ds_b.y, &lasso_cfg().build().unwrap()).unwrap();
    assert_eq!(
        fresh.beta, clean.beta,
        "stale checkpoints must not leak across datasets"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The VAR pipeline shares the machinery: interrupted checkpoint runs
/// resume bit-identically there too.
#[test]
fn var_checkpoint_resume_bit_identical() {
    use uoi_core::UoiVarConfig;
    let proc = uoi_data::VarProcess::generate(&uoi_data::VarConfig {
        p: 4,
        order: 1,
        density: 0.25,
        target_radius: 0.6,
        noise_std: 1.0,
        seed: 5,
    });
    let series = proc.simulate(150, 40, 7);
    let dir = temp_ckpt_dir("var_resume");

    let base = || {
        UoiVarConfig::builder()
            .b1(4)
            .b2(4)
            .q(6)
            .lambda_min_ratio(5e-2)
            .admm(AdmmConfig {
                max_iter: 800,
                abstol: 1e-7,
                reltol: 1e-6,
                ..Default::default()
            })
            .seed(21)
            .block_len(Some(12))
    };
    let reference = try_fit_uoi_var(&series, &base().build().unwrap()).unwrap();

    let interrupted = base()
        .checkpoint(CheckpointConfig {
            abort_after: Some(2),
            ..CheckpointConfig::in_dir(&dir)
        })
        .build()
        .unwrap();
    match try_fit_uoi_var(&series, &interrupted) {
        Err(UoiError::Interrupted { .. }) => {}
        other => panic!("expected Interrupted, got {other:?}"),
    }

    let resumed = try_fit_uoi_var(
        &series,
        &base()
            .checkpoint(CheckpointConfig::in_dir(&dir))
            .build()
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        resumed.vec_beta, reference.vec_beta,
        "VAR resume must be bit-identical"
    );

    std::fs::remove_dir_all(&dir).ok();
}
