//! Observation must never perturb the statistics: a UoI fit with tracing
//! and metrics attached is bit-identical to the same seeded fit with
//! telemetry disabled, and the instrumentation actually fires.

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter`/`UoiVarFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use std::sync::Arc;
use uoi_core::{fit_uoi_lasso, fit_uoi_var, UoiLassoConfig, UoiVarConfig};
use uoi_data::{LinearConfig, VarConfig, VarProcess};
use uoi_telemetry::{MemorySink, MetricsRegistry, Telemetry, TraceEvent};

fn lasso_cfg(telemetry: Telemetry) -> UoiLassoConfig {
    UoiLassoConfig::builder()
        .b1(6)
        .b2(5)
        .q(8)
        .seed(11)
        .telemetry(telemetry)
        .build()
        .unwrap()
}

#[test]
fn lasso_fit_is_bit_identical_with_and_without_telemetry() {
    let ds = LinearConfig {
        n_samples: 90,
        n_features: 24,
        n_nonzero: 5,
        snr: 8.0,
        seed: 17,
        ..Default::default()
    }
    .generate();

    let plain = fit_uoi_lasso(&ds.x, &ds.y, &lasso_cfg(Telemetry::disabled()));

    let sink = Arc::new(MemorySink::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let observed = fit_uoi_lasso(
        &ds.x,
        &ds.y,
        &lasso_cfg(Telemetry::new(sink.clone(), metrics.clone())),
    );

    // Bit-identical statistics: same support, same coefficients, exactly.
    assert_eq!(plain.support, observed.support);
    assert_eq!(plain.beta.len(), observed.beta.len());
    for (a, b) in plain.beta.iter().zip(&observed.beta) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "beta must not drift under observation"
        );
    }
    assert_eq!(plain.support_family, observed.support_family);

    // ... and the observation actually happened.
    assert!(
        !sink.is_empty(),
        "tracing sink must have received spans/events"
    );
    assert!(
        metrics.counter("admm.solves") > 0,
        "ADMM solve counter must advance"
    );
    assert!(metrics.counter("uoi.estimation.bootstraps") > 0);

    // Convergence records: one per (bootstrap, λ) selection solve plus
    // one per estimation bootstrap, with the solver-health metrics
    // advanced alongside.
    let (mut sel, mut est) = (0usize, 0usize);
    for e in sink.snapshot() {
        if let TraceEvent::Convergence { stage, .. } = e {
            match stage {
                "selection" => sel += 1,
                _ => est += 1,
            }
        }
    }
    assert_eq!(sel, 6 * 8, "one selection record per (bootstrap, λ)");
    assert_eq!(est, 5, "one estimation record per estimation bootstrap");
    assert!(
        !metrics.samples("solver.iterations").is_empty(),
        "solver.iterations histogram must have samples"
    );
}

#[test]
fn var_fit_is_bit_identical_with_and_without_telemetry() {
    let proc = VarProcess::generate(&VarConfig {
        p: 8,
        order: 1,
        density: 0.15,
        target_radius: 0.6,
        noise_std: 1.0,
        seed: 23,
    });
    let series = proc.simulate(260, 60, 24);

    let base = |telemetry: Telemetry| UoiVarConfig {
        order: 1,
        block_len: None,
        base: UoiLassoConfig::builder()
            .b1(5)
            .b2(4)
            .q(6)
            .seed(7)
            .telemetry(telemetry)
            .build()
            .unwrap(),
    };

    let plain = fit_uoi_var(&series, &base(Telemetry::disabled()));

    let sink = Arc::new(MemorySink::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let observed = fit_uoi_var(
        &series,
        &base(Telemetry::new(sink.clone(), metrics.clone())),
    );

    for (a, b) in plain.vec_beta.iter().zip(&observed.vec_beta) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "vec_beta must not drift under observation"
        );
    }
    assert!(!sink.is_empty());
    assert!(metrics.counter("admm.solves") > 0);

    // VAR aggregates the per-column solves into one convergence record
    // per (bootstrap, λ), plus one per estimation bootstrap.
    let conv = sink
        .snapshot()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Convergence { .. }))
        .count();
    assert_eq!(conv, 5 * 6 + 4);
}

#[test]
fn disabled_telemetry_records_nothing() {
    let t = Telemetry::disabled();
    assert!(!t.tracing_enabled());
    assert!(!t.metrics_enabled());
    assert!(t.metrics().is_none());
    // The hot-path hooks are no-ops and must not panic.
    t.incr("admm.solves", 1);
    t.gauge("uoi.support_size", 4.0);
    t.observe("admm.iterations", 12.0);
}
