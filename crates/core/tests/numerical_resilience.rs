//! Numerical-resilience acceptance matrix (ISSUE 10).
//!
//! * Clean-input invariance: arming the guards must not change a single
//!   bit of the fitted coefficients, and the attached health report must
//!   read clean.
//! * Adversarial matrix: duplicated columns with `p > n`, constant
//!   features, 1e12 scale disparity, and injected NaN/Inf all complete
//!   under [`NumericalConfig::guarded`] across the serial, distributed,
//!   and recovering pipelines, with byte-identical health reports
//!   across reruns.

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter`/`UoiVarFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use uoi_core::{
    fit_uoi_lasso_dist, try_fit_uoi_lasso, try_fit_uoi_var, NumericalConfig, ParallelLayout,
    RecoveryConfig, UoiError, UoiLassoConfig, UoiVarConfig,
};
use uoi_data::{LinearConfig, ValidationPolicy, VarConfig, VarProcess};
use uoi_linalg::Matrix;
use uoi_mpisim::{Cluster, MachineModel};
use uoi_solvers::AdmmConfig;

fn lasso_cfg() -> UoiLassoConfig {
    UoiLassoConfig {
        b1: 6,
        b2: 6,
        q: 8,
        lambda_min_ratio: 3e-2,
        admm: AdmmConfig {
            max_iter: 1500,
            abstol: 1e-8,
            reltol: 1e-7,
            ..Default::default()
        },
        support_tol: 1e-6,
        seed: 13,
        ..Default::default()
    }
}

fn clean_dataset() -> uoi_data::LinearDataset {
    LinearConfig {
        n_samples: 96,
        n_features: 16,
        n_nonzero: 4,
        snr: 12.0,
        seed: 29,
        ..Default::default()
    }
    .generate()
}

/// `p > n` design whose right half bitwise-duplicates its left half —
/// the Gram is exactly rank-deficient, so every unguarded factorisation
/// would break down.
fn duplicated_columns_p_gt_n() -> (Matrix, Vec<f64>) {
    let ds = LinearConfig {
        n_samples: 12,
        n_features: 12,
        n_nonzero: 3,
        snr: 8.0,
        seed: 5,
        ..Default::default()
    }
    .generate();
    let (n, p) = ds.x.shape();
    let mut x = Matrix::zeros(n, 2 * p);
    for i in 0..n {
        for j in 0..p {
            x[(i, j)] = ds.x[(i, j)];
            x[(i, p + j)] = ds.x[(i, j)];
        }
    }
    (x, ds.y)
}

/// Three exactly-constant features (one of them all-zero).
fn constant_features() -> (Matrix, Vec<f64>) {
    let ds = clean_dataset();
    let mut x = ds.x;
    let (n, _) = x.shape();
    for i in 0..n {
        x[(i, 2)] = 1.0;
        x[(i, 7)] = -3.5;
        x[(i, 11)] = 0.0;
    }
    (x, ds.y)
}

/// Column scales spanning 24 orders of magnitude.
fn scale_disparity() -> (Matrix, Vec<f64>) {
    let ds = clean_dataset();
    let mut x = ds.x;
    let (n, _) = x.shape();
    for i in 0..n {
        x[(i, 0)] *= 1e12;
        x[(i, 1)] *= 1e-12;
    }
    (x, ds.y)
}

/// NaN and infinities sprinkled over the design and response.
fn corrupted_cells() -> (Matrix, Vec<f64>) {
    let ds = clean_dataset();
    let mut x = ds.x;
    let mut y = ds.y;
    x[(3, 4)] = f64::NAN;
    x[(10, 0)] = f64::INFINITY;
    x[(40, 9)] = f64::NEG_INFINITY;
    y[17] = f64::NAN;
    (x, y)
}

fn adversarial_matrix() -> Vec<(&'static str, Matrix, Vec<f64>)> {
    let (xd, yd) = duplicated_columns_p_gt_n();
    let (xc, yc) = constant_features();
    let (xs, ys) = scale_disparity();
    let (xn, yn) = corrupted_cells();
    vec![
        ("dup_columns", xd, yd),
        ("const_features", xc, yc),
        ("scale_disparity", xs, ys),
        ("nan_inf", xn, yn),
    ]
}

/// Arming the full guard stack on a clean, well-conditioned problem
/// must not change a single coefficient bit, and the report must say
/// so.
#[test]
fn clean_input_guarded_fit_is_bit_identical() {
    let ds = clean_dataset();
    let plain = try_fit_uoi_lasso(&ds.x, &ds.y, &lasso_cfg()).unwrap();
    let mut gcfg = lasso_cfg();
    gcfg.numerical = NumericalConfig::guarded();
    let guarded = try_fit_uoi_lasso(&ds.x, &ds.y, &gcfg).unwrap();

    assert!(plain.numerical.is_none(), "inert config must attach nothing");
    let bits = |b: &[f64]| b.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&plain.beta),
        bits(&guarded.beta),
        "guards must be bit-invisible on clean input"
    );
    let report = guarded.numerical.expect("guarded fit carries a report");
    assert!(report.is_clean(), "clean input must report clean: {report:?}");
    assert_eq!(report.sanitized_cells, 0);
}

/// Every degeneracy kind completes under the guarded posture, and its
/// health report is byte-identical JSON across reruns.
#[test]
fn adversarial_matrix_completes_serial_with_deterministic_reports() {
    for (name, x, y) in adversarial_matrix() {
        let run = || {
            let mut cfg = lasso_cfg();
            cfg.numerical = NumericalConfig::guarded();
            try_fit_uoi_lasso(&x, &y, &cfg)
                .unwrap_or_else(|e| panic!("{name}: guarded fit must complete: {e}"))
        };
        let a = run();
        let b = run();
        let ra = a.numerical.expect("report attached");
        let rb = b.numerical.expect("report attached");
        assert_eq!(
            ra.to_json().to_string_compact(),
            rb.to_json().to_string_compact(),
            "{name}: report must be byte-identical across reruns"
        );
        assert!(
            a.beta.iter().all(|v| v.is_finite()),
            "{name}: coefficients must stay finite"
        );
        let bits = |b: &[f64]| b.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.beta), bits(&b.beta), "{name}: fit must be deterministic");
    }
}

/// The NaN/Inf case is actually observed: `Sanitize` scrubs and records
/// the cells, `Reject` surfaces a typed coordinate-bearing error.
#[test]
fn corrupted_cells_sanitize_vs_reject() {
    let (x, y) = corrupted_cells();

    let mut scfg = lasso_cfg();
    scfg.numerical = NumericalConfig::guarded();
    let fit = try_fit_uoi_lasso(&x, &y, &scfg).expect("sanitize completes");
    let report = fit.numerical.unwrap();
    assert_eq!(report.sanitized_cells, 4, "3 design cells + 1 response cell");
    assert!(report.data_issues.values().sum::<usize>() >= 4);

    let mut rcfg = lasso_cfg();
    rcfg.numerical = NumericalConfig::default().validation(Some(ValidationPolicy::Reject));
    match try_fit_uoi_lasso(&x, &y, &rcfg) {
        Err(UoiError::Numerical { stage, detail }) => {
            assert_eq!(stage, "validation");
            assert!(
                detail.contains("(3, 4)"),
                "error names the first corrupt coordinate: {detail}"
            );
        }
        other => panic!("Reject must produce a typed Numerical error, got {other:?}"),
    }
}

/// The distributed pipeline completes the adversarial matrix, all ranks
/// agree, and the report matches across reruns.
#[test]
fn adversarial_matrix_completes_dist() {
    for (name, x, y) in adversarial_matrix() {
        let run = || {
            let (x, y) = (x.clone(), y.clone());
            Cluster::new(4, MachineModel::deterministic())
                .run(move |ctx, world| {
                    let mut cfg = lasso_cfg();
                    cfg.numerical = NumericalConfig::guarded();
                    let fit =
                        fit_uoi_lasso_dist(ctx, world, &x, &y, &cfg, ParallelLayout::admm_only());
                    (
                        fit.beta,
                        fit.numerical
                            .map(|r| r.to_json().to_string_compact())
                            .unwrap_or_default(),
                    )
                })
                .results
        };
        let a = run();
        for r in 1..4 {
            assert_eq!(a[0].0, a[r].0, "{name}: rank {r} disagrees on beta");
        }
        let b = run();
        assert_eq!(a[0].1, b[0].1, "{name}: dist report must be deterministic");
        assert!(a[0].0.iter().all(|v| v.is_finite()), "{name}: finite beta");
    }
}

/// The recovering pipeline completes the adversarial matrix too (the
/// same guarded tasks run under the shrink-and-recover exchange).
#[test]
fn adversarial_matrix_completes_recovering() {
    let rcfg = RecoveryConfig {
        world: 3,
        ..Default::default()
    };
    for (name, x, y) in adversarial_matrix() {
        let mut cfg = lasso_cfg();
        cfg.numerical = NumericalConfig::guarded();
        let fit = uoi_core::fit_uoi_lasso_recovering(&x, &y, &cfg, &rcfg)
            .unwrap_or_else(|e| panic!("{name}: recovering fit must complete: {e}"));
        assert!(fit.numerical.is_some(), "{name}: report attached");
        assert!(fit.beta.iter().all(|v| v.is_finite()), "{name}: finite beta");
    }
}

/// One (degeneracy kind × pipeline) cell of the CI adversarial matrix,
/// parameterised through the environment (`ADVERSARIAL_KIND` in
/// {dup_columns, const_features, scale_disparity, nan_inf},
/// `ADVERSARIAL_PIPELINE` in {serial, dist, recovering}). Each cell
/// asserts the guarded fit completes with finite coefficients and a
/// byte-identical health report across a rerun.
#[test]
fn adversarial_matrix_cell() {
    let kind =
        std::env::var("ADVERSARIAL_KIND").unwrap_or_else(|_| "dup_columns".to_string());
    let pipeline =
        std::env::var("ADVERSARIAL_PIPELINE").unwrap_or_else(|_| "serial".to_string());
    let (name, x, y) = adversarial_matrix()
        .into_iter()
        .find(|(n, _, _)| *n == kind)
        .unwrap_or_else(|| {
            panic!(
                "unknown ADVERSARIAL_KIND {kind:?} \
                 (use dup_columns|const_features|scale_disparity|nan_inf)"
            )
        });
    let mut cfg = lasso_cfg();
    cfg.numerical = NumericalConfig::guarded();

    let run = || -> (Vec<f64>, String) {
        match pipeline.as_str() {
            "serial" => {
                let fit = try_fit_uoi_lasso(&x, &y, &cfg)
                    .unwrap_or_else(|e| panic!("{name}/serial must complete: {e}"));
                let report = fit.numerical.expect("report attached");
                (fit.beta, report.to_json().to_string_compact())
            }
            "dist" => {
                let (x, y, cfg) = (x.clone(), y.clone(), cfg.clone());
                let mut results = Cluster::new(4, MachineModel::deterministic())
                    .run(move |ctx, world| {
                        let fit = fit_uoi_lasso_dist(
                            ctx,
                            world,
                            &x,
                            &y,
                            &cfg,
                            ParallelLayout::admm_only(),
                        );
                        (
                            fit.beta,
                            fit.numerical
                                .map(|r| r.to_json().to_string_compact())
                                .unwrap_or_default(),
                        )
                    })
                    .results;
                for r in 1..results.len() {
                    assert_eq!(results[0].0, results[r].0, "{name}/dist: rank {r} disagrees");
                }
                results.swap_remove(0)
            }
            "recovering" => {
                let rcfg = RecoveryConfig {
                    world: 3,
                    ..Default::default()
                };
                let fit = uoi_core::fit_uoi_lasso_recovering(&x, &y, &cfg, &rcfg)
                    .unwrap_or_else(|e| panic!("{name}/recovering must complete: {e}"));
                let report = fit.numerical.expect("report attached");
                (fit.beta, report.to_json().to_string_compact())
            }
            other => panic!(
                "unknown ADVERSARIAL_PIPELINE {other:?} (use serial|dist|recovering)"
            ),
        }
    };

    let (beta_a, report_a) = run();
    let (beta_b, report_b) = run();
    assert!(
        beta_a.iter().all(|v| v.is_finite()),
        "{name}/{pipeline}: coefficients must stay finite"
    );
    let bits = |b: &[f64]| b.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&beta_a), bits(&beta_b), "{name}/{pipeline}: nondeterministic fit");
    assert_eq!(report_a, report_b, "{name}/{pipeline}: nondeterministic report");
}

fn var_cfg() -> UoiVarConfig {
    UoiVarConfig {
        order: 1,
        block_len: None,
        base: UoiLassoConfig {
            b1: 6,
            b2: 6,
            q: 6,
            lambda_min_ratio: 5e-3,
            admm: AdmmConfig {
                max_iter: 1500,
                abstol: 1e-8,
                reltol: 1e-7,
                ..Default::default()
            },
            support_tol: 1e-6,
            seed: 11,
            ..Default::default()
        },
    }
}

fn var_series() -> Matrix {
    VarProcess::generate(&VarConfig {
        p: 5,
        order: 1,
        density: 0.3,
        target_radius: 0.7,
        noise_std: 0.25,
        seed: 23,
    })
    .simulate(240, 50, 31)
}

/// VAR: guards are bit-invisible on a clean series and carry a clean
/// report; a NaN-corrupted series is scrubbed and the fit completes.
#[test]
fn var_guarded_clean_identity_and_nan_recovery() {
    let series = var_series();
    let plain = try_fit_uoi_var(&series, &var_cfg()).unwrap();
    let mut gcfg = var_cfg();
    gcfg.base.numerical = NumericalConfig::guarded();
    let guarded = try_fit_uoi_var(&series, &gcfg).unwrap();

    let bits = |b: &[f64]| b.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert!(plain.numerical.is_none());
    assert_eq!(bits(&plain.vec_beta), bits(&guarded.vec_beta));
    assert!(guarded.numerical.unwrap().is_clean());

    let mut corrupt = series.clone();
    corrupt[(5, 1)] = f64::NAN;
    corrupt[(100, 3)] = f64::INFINITY;
    let fit = try_fit_uoi_var(&corrupt, &gcfg).expect("scrubbed series fits");
    let report = fit.numerical.unwrap();
    assert_eq!(report.sanitized_cells, 2);
    assert!(fit.vec_beta.iter().all(|v| v.is_finite()));
    // The unguarded path rejects the same series outright.
    assert!(try_fit_uoi_var(&corrupt, &var_cfg()).is_err());
}
