//! Shrink-and-recover acceptance tests (ISSUE 5).
//!
//! * Every fault-matrix cell — rank crash mid-exchange, straggler
//!   timeout (hang), transient window-op drop — times {lasso, var}
//!   yields supports and coefficients bit-identical (`f64::to_bits`) to
//!   the fault-free serial fit.
//! * The [`RecoveryReport`] JSON is byte-identical across same-seed
//!   reruns.
//! * `max_recovery_rounds = 0` reproduces the degraded-mode output
//!   exactly (regression against a directly-constructed fallback plan).
//! * A traced recovering run renders the `recovery` pipeline phase.
//! * `recovery_matrix_cell` is the env-driven CI entry point
//!   (`RECOVERY_FAULT_KIND` × `RECOVERY_FAULT_SEED` × `UOI_RECOVERY`).

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter`/`UoiVarFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use std::sync::Arc;
use std::time::Duration;
use uoi_core::{
    degraded_fallback_plan, fit_uoi_lasso_recovering, fit_uoi_var_recovering, try_fit_uoi_lasso,
    try_fit_uoi_var, CheckpointConfig, RecoveryConfig, TaskOwnership, UoiFit, UoiLassoConfig,
    UoiVarConfig, UoiVarFit,
};
use uoi_data::{LinearConfig, VarConfig, VarProcess};
use uoi_mpisim::FaultPlan;
use uoi_solvers::AdmmConfig;
use uoi_telemetry::{
    analyze, build_timeline, MemorySink, MetricsRegistry, PipelinePhase, Telemetry,
};

const B1: usize = 8;
const B2: usize = 8;
const WORLD: usize = 4;

fn lasso_cfg() -> uoi_core::UoiLassoConfigBuilder {
    UoiLassoConfig::builder()
        .b1(B1)
        .b2(B2)
        .q(8)
        .lambda_min_ratio(3e-2)
        .admm(AdmmConfig {
            max_iter: 1500,
            abstol: 1e-8,
            reltol: 1e-7,
            ..Default::default()
        })
        .support_tol(1e-6)
        .seed(13)
}

fn dataset() -> uoi_data::LinearDataset {
    LinearConfig {
        n_samples: 160,
        n_features: 16,
        n_nonzero: 4,
        snr: 16.0,
        seed: 29,
        ..Default::default()
    }
    .generate()
}

fn var_cfg() -> uoi_core::UoiVarConfigBuilder {
    UoiVarConfig::builder()
        .b1(4)
        .b2(4)
        .q(6)
        .lambda_min_ratio(5e-2)
        .admm(AdmmConfig {
            max_iter: 800,
            abstol: 1e-7,
            reltol: 1e-6,
            ..Default::default()
        })
        .seed(21)
        .block_len(Some(12))
}

fn var_series() -> uoi_linalg::Matrix {
    VarProcess::generate(&VarConfig {
        p: 4,
        order: 1,
        density: 0.25,
        target_radius: 0.6,
        noise_std: 1.0,
        seed: 5,
    })
    .simulate(150, 40, 7)
}

/// The victim rank for a fault seed: any rank in `1..WORLD`, derived
/// deterministically so reruns inject the identical fault.
fn victim_of(seed: u64) -> usize {
    1 + (seed as usize % (WORLD - 1))
}

/// One fault-matrix cell. The round's collective steps per rank are
/// `[0] sel window create, [1] sel fence, [2] est create, [3] est
/// fence`, so step 1 is "mid-exchange" — after the victim computed and
/// published its selection tasks, before the glue.
fn fault_cell(kind: &str, seed: u64) -> FaultPlan {
    let v = victim_of(seed);
    match kind {
        "crash" => FaultPlan::new(seed).crash_rank(v, 1),
        "hang" => FaultPlan::new(seed).hang_rank(v, 1),
        "drop" => FaultPlan::new(seed).drop_window_op(v, 0),
        other => panic!("unknown fault kind {other:?}"),
    }
}

fn rcfg(kind: &str, seed: u64) -> RecoveryConfig {
    RecoveryConfig {
        enabled: true,
        world: WORLD,
        max_rounds: 2,
        plan: Some(fault_cell(kind, seed)),
        // Hang resolution is watchdog-bounded: keep it short for that
        // cell, generous elsewhere so debug-mode compute imbalance can
        // never trip a spurious timeout.
        watchdog: if kind == "hang" {
            Duration::from_secs(2)
        } else {
            Duration::from_secs(10)
        },
        get_attempts: 4,
        speculation: Default::default(),
    }
}

fn assert_lasso_bits(fit: &UoiFit, reference: &UoiFit, cell: &str) {
    assert_eq!(fit.beta.len(), reference.beta.len());
    for (a, b) in fit.beta.iter().zip(&reference.beta) {
        assert_eq!(a.to_bits(), b.to_bits(), "[{cell}] beta bits must match");
    }
    assert_eq!(
        fit.intercept.to_bits(),
        reference.intercept.to_bits(),
        "[{cell}] intercept bits must match"
    );
    assert_eq!(fit.support, reference.support, "[{cell}] support");
    assert_eq!(
        fit.supports_per_lambda, reference.supports_per_lambda,
        "[{cell}] per-lambda supports"
    );
    assert_eq!(
        fit.support_family, reference.support_family,
        "[{cell}] support family"
    );
}

fn assert_var_bits(fit: &UoiVarFit, reference: &UoiVarFit, cell: &str) {
    assert_eq!(fit.vec_beta.len(), reference.vec_beta.len());
    for (a, b) in fit.vec_beta.iter().zip(&reference.vec_beta) {
        assert_eq!(a.to_bits(), b.to_bits(), "[{cell}] vec_beta bits");
    }
    for (a, b) in fit.mu.iter().zip(&reference.mu) {
        assert_eq!(a.to_bits(), b.to_bits(), "[{cell}] mu bits");
    }
    assert_eq!(
        fit.supports_per_lambda, reference.supports_per_lambda,
        "[{cell}] per-lambda supports"
    );
}

/// Acceptance: every fault kind recovers to the fault-free serial bits
/// for the lasso pipeline. Crash and hang cost one recovery round;
/// a transient window drop is absorbed by the data plane in round 0.
#[test]
fn lasso_recovery_matrix_is_bit_identical() {
    let ds = dataset();
    let cfg = lasso_cfg().build().unwrap();
    let reference = try_fit_uoi_lasso(&ds.x, &ds.y, &cfg).unwrap();

    // Fault-free recovering run: one round, nothing failed, same bits.
    let clean_rcfg = RecoveryConfig {
        world: WORLD,
        watchdog: Duration::from_secs(10),
        ..RecoveryConfig::default()
    };
    let clean = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &clean_rcfg).unwrap();
    assert_lasso_bits(&clean, &reference, "fault-free");
    let report = clean.recovery.as_ref().unwrap();
    assert_eq!(report.rounds_attempted, 1);
    assert!(report.failed_ranks.is_empty());
    assert!(!report.degraded_fallback);

    let seed = 5;
    for kind in ["crash", "hang", "drop"] {
        let fit = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg(kind, seed)).unwrap();
        assert_lasso_bits(&fit, &reference, kind);
        let report = fit.recovery.as_ref().unwrap();
        assert!(!report.degraded_fallback, "[{kind}] no fallback expected");
        if kind == "drop" {
            // Absorbed by checksum-verified retries: no rank ever fails.
            assert_eq!(report.rounds_attempted, 1, "[{kind}]");
            assert!(report.failed_ranks.is_empty(), "[{kind}]");
        } else {
            assert_eq!(report.rounds_attempted, 2, "[{kind}]");
            assert_eq!(report.failed_ranks, vec![victim_of(seed)], "[{kind}]");
            assert!(
                !report.reassigned_selection.is_empty(),
                "[{kind}] the victim owned selection tasks"
            );
        }
    }
}

/// The VAR pipeline shares the recovery machinery: the same matrix, the
/// same bit-identity.
#[test]
fn var_recovery_matrix_is_bit_identical() {
    let series = var_series();
    let cfg = var_cfg().build().unwrap();
    let reference = try_fit_uoi_var(&series, &cfg).unwrap();

    let seed = 9;
    for kind in ["crash", "hang", "drop"] {
        let fit = fit_uoi_var_recovering(&series, &cfg, &rcfg(kind, seed)).unwrap();
        assert_var_bits(&fit, &reference, kind);
        let report = fit.recovery.as_ref().unwrap();
        assert!(!report.degraded_fallback, "[{kind}]");
        if kind == "drop" {
            assert_eq!(report.rounds_attempted, 1, "[{kind}]");
        } else {
            assert_eq!(report.rounds_attempted, 2, "[{kind}]");
            assert_eq!(report.failed_ranks, vec![victim_of(seed)], "[{kind}]");
        }
    }
}

/// The recovery report is a pure function of `(config, fault plan)`:
/// same-seed reruns render byte-identical JSON (and the same fit bits).
#[test]
fn recovery_report_json_is_byte_identical_across_reruns() {
    let ds = dataset();
    let cfg = lasso_cfg().build().unwrap();
    let a = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg("crash", 5)).unwrap();
    let b = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg("crash", 5)).unwrap();
    assert_eq!(
        a.recovery.as_ref().unwrap().to_json().to_string_compact(),
        b.recovery.as_ref().unwrap().to_json().to_string_compact(),
        "report must be byte-identical across reruns"
    );
    assert_lasso_bits(&a, &b, "rerun");
}

/// Regression: a zero recovery budget must reproduce the degraded-mode
/// output exactly — the fallback plan marks precisely the tasks whose
/// round-0 owner died, and the fit equals the directly-constructed
/// degraded serial fit bit for bit.
#[test]
fn max_rounds_zero_reproduces_degraded_mode_exactly() {
    let ds = dataset();
    let cfg = lasso_cfg().build().unwrap();
    let seed = 5;
    let v = victim_of(seed);

    let zero_rounds = RecoveryConfig {
        max_rounds: 0,
        ..rcfg("crash", seed)
    };
    let fit = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &zero_rounds).unwrap();
    let report = fit.recovery.as_ref().unwrap();
    assert!(report.degraded_fallback, "budget 0 must fall back");
    assert_eq!(report.rounds_attempted, 1);
    assert_eq!(report.failed_ranks, vec![v]);

    // The directly-constructed degraded fit is the ground truth.
    let ownership = TaskOwnership::new(WORLD, cfg.seed);
    let plan = degraded_fallback_plan(&[v], &ownership, B1, B2, cfg.seed);
    let mut degraded_cfg = cfg;
    degraded_cfg.degradation.plan = Some(plan);
    let direct = try_fit_uoi_lasso(&ds.x, &ds.y, &degraded_cfg).unwrap();

    assert_lasso_bits(&fit, &direct, "fallback");
    assert_eq!(
        fit.degradation
            .as_ref()
            .unwrap()
            .to_json()
            .to_string_compact(),
        direct
            .degradation
            .as_ref()
            .unwrap()
            .to_json()
            .to_string_compact(),
        "fallback must carry the same degradation report"
    );
}

/// A Gram-checkpointed recovering run re-solves from the stored
/// `(X^T W X, X^T W y)` instead of re-accumulating — and stays
/// bit-identical. A second run over the same store hits the cache.
#[test]
fn gram_checkpointed_recovery_is_bit_identical() {
    let ds = dataset();
    let dir = std::env::temp_dir().join(format!("uoi_rec_gram_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let reference = try_fit_uoi_lasso(&ds.x, &ds.y, &lasso_cfg().build().unwrap()).unwrap();

    let ck_cfg = lasso_cfg()
        .checkpoint(CheckpointConfig::in_dir(&dir))
        .build()
        .unwrap();
    let first = fit_uoi_lasso_recovering(&ds.x, &ds.y, &ck_cfg, &rcfg("crash", 5)).unwrap();
    assert_lasso_bits(&first, &reference, "gram-cold");

    // Warm pass: count the Gram-checkpoint hits through metrics.
    let sink = Arc::new(MemorySink::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let warm_cfg = lasso_cfg()
        .checkpoint(CheckpointConfig::in_dir(&dir))
        .telemetry(Telemetry::new(sink, metrics.clone()))
        .build()
        .unwrap();
    let warm = fit_uoi_lasso_recovering(&ds.x, &ds.y, &warm_cfg, &rcfg("crash", 5)).unwrap();
    assert_lasso_bits(&warm, &reference, "gram-warm");
    assert!(
        metrics.counter("uoi.recovery.gram_hits") > 0,
        "warm run must re-solve from stored Grams"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// A traced recovering run must expose the `recovery` pipeline phase to
/// the timeline analysis (the `uoi-trace` rendering path).
#[test]
fn traced_recovering_run_renders_recovery_phase() {
    let ds = dataset();
    let sink = Arc::new(MemorySink::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let cfg = lasso_cfg()
        .telemetry(Telemetry::new(sink.clone(), metrics))
        .build()
        .unwrap();
    let fit = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg("crash", 5)).unwrap();
    assert_eq!(fit.recovery.as_ref().unwrap().rounds_attempted, 2);

    let events = sink.snapshot();
    assert!(!events.is_empty(), "the traced run must emit events");
    let breakdown = analyze(&build_timeline(&events));
    assert!(
        breakdown.phases.contains_key(&PipelinePhase::Recovery),
        "timeline must attribute work to the recovery phase"
    );
    let rendered = breakdown.render();
    assert!(
        rendered.contains("recovery"),
        "rendered report must show the recovery phase:\n{rendered}"
    );
}

/// CI entry point: one fault-matrix cell driven by the environment.
/// `RECOVERY_FAULT_KIND` ∈ {crash, hang, drop} selects the cell,
/// `RECOVERY_FAULT_SEED` the injection seed, and `UOI_RECOVERY` gates
/// the recovering execution (off → plain serial semantics, no report).
/// Skips silently when the kind is unset so plain `cargo test` runs are
/// unaffected.
#[test]
fn recovery_matrix_cell() {
    let kind = match std::env::var("RECOVERY_FAULT_KIND") {
        Ok(k) if !k.is_empty() => k,
        _ => return, // not a matrix run
    };
    let seed: u64 = std::env::var("RECOVERY_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let ds = dataset();
    let cfg = lasso_cfg().build().unwrap();
    let reference = try_fit_uoi_lasso(&ds.x, &ds.y, &cfg).unwrap();

    let rcfg = RecoveryConfig {
        plan: Some(fault_cell(&kind, seed)),
        ..RecoveryConfig {
            world: WORLD,
            max_rounds: 2,
            get_attempts: 4,
            watchdog: if kind == "hang" {
                Duration::from_secs(2)
            } else {
                Duration::from_secs(10)
            },
            ..RecoveryConfig::from_env()
        }
    };
    let fit = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg).unwrap();
    assert_lasso_bits(&fit, &reference, &format!("cell {kind}/{seed}"));
    if rcfg.enabled {
        let report = fit.recovery.as_ref().expect("recovering run must report");
        assert!(!report.degraded_fallback);
    } else {
        assert!(
            fit.recovery.is_none(),
            "disabled recovery must be the plain serial fit"
        );
    }
}
