//! Speculative-execution acceptance tests (ISSUE 8).
//!
//! * Under single- and double-straggler plans the hedged lasso/VAR fits
//!   are bit-identical (`f64::to_bits`) to the fault-free serial fit —
//!   hedging changes the modeled schedule, never the math.
//! * The [`SpeculationReport`] recovers at least half of the
//!   straggler-induced modeled slowdown and its JSON is byte-identical
//!   across same-seed reruns.
//! * `UOI_SPECULATE` off leaves `fit.speculation` empty.
//! * A traced speculating run renders the `speculation` pipeline phase
//!   and the hedge counters.
//! * `straggler_matrix_cell` is the env-driven CI entry point
//!   (`STRAGGLER_PLAN` × `STRAGGLER_SEED` × `UOI_SPECULATE`).

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter`/`UoiVarFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use std::sync::Arc;
use std::time::Duration;
use uoi_core::{
    fit_uoi_lasso_recovering, fit_uoi_var_recovering, try_fit_uoi_lasso, try_fit_uoi_var,
    RecoveryConfig, SpeculationConfig, UoiFit, UoiLassoConfig, UoiVarConfig, UoiVarFit,
};
use uoi_data::{LinearConfig, VarConfig, VarProcess};
use uoi_mpisim::FaultPlan;
use uoi_solvers::AdmmConfig;
use uoi_telemetry::{
    analyze, build_timeline, MemorySink, MetricsRegistry, PipelinePhase, Telemetry,
};

const B1: usize = 8;
const B2: usize = 8;
const WORLD: usize = 4;

fn lasso_cfg() -> uoi_core::UoiLassoConfigBuilder {
    UoiLassoConfig::builder()
        .b1(B1)
        .b2(B2)
        .q(8)
        .lambda_min_ratio(3e-2)
        .admm(AdmmConfig {
            max_iter: 1500,
            abstol: 1e-8,
            reltol: 1e-7,
            ..Default::default()
        })
        .support_tol(1e-6)
        .seed(13)
}

fn dataset() -> uoi_data::LinearDataset {
    LinearConfig {
        n_samples: 160,
        n_features: 16,
        n_nonzero: 4,
        snr: 16.0,
        seed: 29,
        ..Default::default()
    }
    .generate()
}

// `b1 = b2 = 8` over 4 ranks gives every rank two tasks per stage, so a
// flagged straggler's later tasks exercise hedge-at-start acceleration.
fn var_cfg() -> uoi_core::UoiVarConfigBuilder {
    UoiVarConfig::builder()
        .b1(B1)
        .b2(B2)
        .q(6)
        .lambda_min_ratio(5e-2)
        .admm(AdmmConfig {
            max_iter: 800,
            abstol: 1e-7,
            reltol: 1e-6,
            ..Default::default()
        })
        .seed(21)
        .block_len(Some(12))
}

fn var_series() -> uoi_linalg::Matrix {
    VarProcess::generate(&VarConfig {
        p: 4,
        order: 1,
        density: 0.25,
        target_radius: 0.6,
        noise_std: 1.0,
        seed: 5,
    })
    .simulate(150, 40, 7)
}

/// The primary straggling rank for a seed: any rank in `1..WORLD`,
/// derived deterministically so reruns inject the identical slowdown.
fn victim_of(seed: u64) -> usize {
    1 + (seed as usize % (WORLD - 1))
}

/// One straggler-plan cell. `single` slows one rank 4x; `double` adds a
/// second, milder straggler so replica placement must dodge it. The
/// second factor stays under the deadline multiplier: a quantile policy
/// cannot flag a fleet where half the observed durations straggle, so a
/// 2x peer keeps the q75 deadline anchored to the healthy ranks.
fn straggler_plan(kind: &str, seed: u64) -> FaultPlan {
    let v = victim_of(seed);
    match kind {
        "single" => FaultPlan::new(seed).straggler(v, 4.0),
        // The 2x peer raises the q75 deadline to 3.5x nominal, so the
        // primary must straggle harder than in `single` for a replica
        // launched at the deadline to still beat the owner.
        "double" => {
            let w = 1 + (v % (WORLD - 1));
            FaultPlan::new(seed).straggler(v, 6.0).straggler(w, 2.0)
        }
        other => panic!("unknown straggler plan {other:?}"),
    }
}

fn rcfg(kind: &str, seed: u64, speculate: bool) -> RecoveryConfig {
    RecoveryConfig {
        enabled: true,
        world: WORLD,
        max_rounds: 2,
        plan: Some(straggler_plan(kind, seed)),
        watchdog: Duration::from_secs(10),
        get_attempts: 4,
        speculation: SpeculationConfig {
            enabled: speculate,
            ..SpeculationConfig::default()
        },
    }
}

fn assert_lasso_bits(fit: &UoiFit, reference: &UoiFit, cell: &str) {
    assert_eq!(fit.beta.len(), reference.beta.len());
    for (a, b) in fit.beta.iter().zip(&reference.beta) {
        assert_eq!(a.to_bits(), b.to_bits(), "[{cell}] beta bits must match");
    }
    assert_eq!(
        fit.intercept.to_bits(),
        reference.intercept.to_bits(),
        "[{cell}] intercept bits must match"
    );
    assert_eq!(fit.support, reference.support, "[{cell}] support");
    assert_eq!(
        fit.supports_per_lambda, reference.supports_per_lambda,
        "[{cell}] per-lambda supports"
    );
    assert_eq!(
        fit.support_family, reference.support_family,
        "[{cell}] support family"
    );
}

fn assert_var_bits(fit: &UoiVarFit, reference: &UoiVarFit, cell: &str) {
    assert_eq!(fit.vec_beta.len(), reference.vec_beta.len());
    for (a, b) in fit.vec_beta.iter().zip(&reference.vec_beta) {
        assert_eq!(a.to_bits(), b.to_bits(), "[{cell}] vec_beta bits");
    }
    for (a, b) in fit.mu.iter().zip(&reference.mu) {
        assert_eq!(a.to_bits(), b.to_bits(), "[{cell}] mu bits");
    }
    assert_eq!(
        fit.supports_per_lambda, reference.supports_per_lambda,
        "[{cell}] per-lambda supports"
    );
}

/// Acceptance: hedged fits are bit-identical to the fault-free serial
/// fit under both straggler plans, the report accounts real hedges, and
/// the modeled makespan recovers at least half of the slowdown.
#[test]
fn hedged_lasso_fit_is_bit_identical_and_recovers_makespan() {
    let ds = dataset();
    let cfg = lasso_cfg().build().unwrap();
    let reference = try_fit_uoi_lasso(&ds.x, &ds.y, &cfg).unwrap();

    for kind in ["single", "double"] {
        let fit = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg(kind, 5, true)).unwrap();
        assert_lasso_bits(&fit, &reference, kind);
        let report = fit.speculation.as_ref().expect("speculating run reports");
        assert!(report.enabled);
        assert_eq!(report.stages.len(), 2, "[{kind}] sel + est stages");
        assert!(
            report.hedges_spawned() > 0,
            "[{kind}] a 4x straggler must get hedged"
        );
        assert_eq!(
            report.hedges_won() + report.hedges_cancelled(),
            report.hedges_spawned(),
            "[{kind}] every hedge resolves as win or cancellation"
        );
        assert!(report.heartbeats() > 0, "[{kind}] owners must heartbeat");
        let recovered = report
            .recovered_fraction()
            .expect("stragglers induce a slowdown");
        assert!(
            recovered >= 0.5,
            "[{kind}] hedging must recover >= 50% of the modeled slowdown, got {recovered}"
        );
    }
}

/// The VAR pipeline shares the speculation machinery: same bit-identity,
/// same recovery floor.
#[test]
fn hedged_var_fit_is_bit_identical_and_recovers_makespan() {
    let series = var_series();
    let cfg = var_cfg().build().unwrap();
    let reference = try_fit_uoi_var(&series, &cfg).unwrap();

    for kind in ["single", "double"] {
        let fit = fit_uoi_var_recovering(&series, &cfg, &rcfg(kind, 9, true)).unwrap();
        assert_var_bits(&fit, &reference, kind);
        let report = fit.speculation.as_ref().expect("speculating run reports");
        assert!(report.hedges_spawned() > 0, "[{kind}]");
        let recovered = report.recovered_fraction().unwrap();
        assert!(recovered >= 0.5, "[{kind}] got {recovered}");
    }
}

/// With speculation off the same straggler plan yields the same bits and
/// no report — the hedging layer is fully inert.
#[test]
fn speculation_off_is_inert() {
    let ds = dataset();
    let cfg = lasso_cfg().build().unwrap();
    let reference = try_fit_uoi_lasso(&ds.x, &ds.y, &cfg).unwrap();
    let fit = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg("single", 5, false)).unwrap();
    assert_lasso_bits(&fit, &reference, "speculation-off");
    assert!(
        fit.speculation.is_none(),
        "disabled speculation must not report"
    );
}

/// The speculation report is a pure function of `(config, fault plan)`:
/// same-seed reruns render byte-identical JSON.
#[test]
fn speculation_report_json_is_byte_identical_across_reruns() {
    let ds = dataset();
    let cfg = lasso_cfg().build().unwrap();
    let a = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg("double", 5, true)).unwrap();
    let b = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg("double", 5, true)).unwrap();
    assert_eq!(
        a.speculation
            .as_ref()
            .unwrap()
            .to_json()
            .to_string_compact(),
        b.speculation
            .as_ref()
            .unwrap()
            .to_json()
            .to_string_compact(),
        "report must be byte-identical across reruns"
    );
    assert_lasso_bits(&a, &b, "rerun");
}

/// A traced speculating run must expose the `speculation` pipeline phase
/// and the cluster-wide hedge counters.
#[test]
fn traced_speculating_run_renders_speculation_phase() {
    let ds = dataset();
    let sink = Arc::new(MemorySink::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let cfg = lasso_cfg()
        .telemetry(Telemetry::new(sink.clone(), metrics.clone()))
        .build()
        .unwrap();
    let fit = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg("single", 5, true)).unwrap();
    let report = fit.speculation.as_ref().unwrap();
    assert!(report.hedges_spawned() > 0);

    assert_eq!(
        metrics.counter("speculation.spawned"),
        report.hedges_spawned() as u64,
        "counter must match the report"
    );
    assert_eq!(
        metrics.counter("speculation.won"),
        report.hedges_won() as u64
    );
    assert_eq!(
        metrics.counter("speculation.cancelled"),
        report.hedges_cancelled() as u64
    );
    assert!(metrics.counter("speculation.heartbeats") > 0);

    let events = sink.snapshot();
    let breakdown = analyze(&build_timeline(&events));
    assert!(
        breakdown.phases.contains_key(&PipelinePhase::Speculation),
        "timeline must attribute work to the speculation phase"
    );
    let rendered = breakdown.render();
    assert!(
        rendered.contains("speculation"),
        "rendered report must show the speculation phase:\n{rendered}"
    );
}

/// CI entry point: one straggler-matrix cell driven by the environment.
/// `STRAGGLER_PLAN` ∈ {single, double} selects the plan,
/// `STRAGGLER_SEED` the injection seed, and `UOI_SPECULATE` gates the
/// hedging. Whatever the gate, the fit must equal the fault-free serial
/// fit bit for bit. Skips silently when the plan is unset so plain
/// `cargo test` runs are unaffected.
#[test]
fn straggler_matrix_cell() {
    let kind = match std::env::var("STRAGGLER_PLAN") {
        Ok(k) if !k.is_empty() => k,
        _ => return, // not a matrix run
    };
    let seed: u64 = std::env::var("STRAGGLER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let speculation = SpeculationConfig::from_env();
    let speculate = speculation.enabled;

    let ds = dataset();
    let cfg = lasso_cfg().build().unwrap();
    let reference = try_fit_uoi_lasso(&ds.x, &ds.y, &cfg).unwrap();

    let rcfg = RecoveryConfig {
        speculation,
        ..rcfg(&kind, seed, speculate)
    };
    let fit = fit_uoi_lasso_recovering(&ds.x, &ds.y, &cfg, &rcfg).unwrap();
    assert_lasso_bits(&fit, &reference, &format!("cell {kind}/{seed}/{speculate}"));
    if speculate {
        let report = fit.speculation.as_ref().expect("speculating run reports");
        assert!(report.hedges_spawned() > 0, "stragglers must get hedged");
        let recovered = report.recovered_fraction().unwrap();
        assert!(
            recovered >= 0.5,
            "cell {kind}/{seed}: recovered only {recovered}"
        );
    } else {
        assert!(fit.speculation.is_none());
    }
}
