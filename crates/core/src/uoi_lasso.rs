//! `UoI_LASSO` (paper Algorithm 1): Union of Intersections for sparse
//! linear regression, shared-memory implementation with rayon parallelism
//! over bootstrap resamples (the `P_B` axis).
//!
//! **Model selection** (lines 1–11): for `B1` bootstrap resamples, solve a
//! LASSO-ADMM path over `q` lambdas, record the nonzero supports, and
//! intersect supports across resamples per lambda (eq. 3), producing a
//! family of candidate supports.
//!
//! **Model estimation** (lines 12–24): for `B2` train/evaluation
//! resamples, fit the unbiased OLS estimator on every candidate support,
//! score it on the held-out evaluation rows, keep the best support per
//! resample, and average the winning estimates (the union of eq. 4).

use crate::degraded::{
    data_words, fingerprint, CheckpointConfig, CheckpointStore, DegradationConfig,
    DegradationReport,
};
use crate::error::{all_finite, UoiError};
use crate::numerical::NumericalConfig;
use crate::support::{dedup_family, intersect_many};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use uoi_data::bootstrap::{resample_weights, row_bootstrap};
use uoi_data::rng::substream;
use uoi_linalg::{dot, kernels, weighted_sumsq, Matrix};
use uoi_solvers::{
    lambda_path, ols_on_support_gram, ols_on_support_gram_health, support_of, AdmmConfig,
    LassoAdmm, ResilientLasso, SolverError,
};
use uoi_telemetry::{NumericalHealthReport, Telemetry, TraceEvent};

/// Run `body` inside a named trace span when tracing is on. Serial fits
/// have no virtual clock, so the span carries wall time: `t = 0` at
/// open, elapsed wall seconds at close.
pub(crate) fn traced<R>(tel: &Telemetry, name: &str, body: impl FnOnce() -> R) -> R {
    if !tel.tracing_enabled() {
        return body();
    }
    let id = tel.next_span_id();
    tel.record(TraceEvent::SpanStart {
        id,
        parent: None,
        name: name.to_string(),
        rank: 0,
        t: 0.0,
    });
    let t0 = std::time::Instant::now();
    let out = body();
    tel.record(TraceEvent::SpanEnd {
        id,
        rank: 0,
        t: t0.elapsed().as_secs_f64(),
    });
    out
}

/// How candidate supports are scored in the estimation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimationScore {
    /// Held-out mean squared error on the out-of-bag rows (Algorithm 1
    /// line 19) — the paper's choice.
    #[default]
    Mse,
    /// Bayesian information criterion on the training resample:
    /// `n ln(RSS/n) + k ln(n)` — the PyUoI-style alternative that needs
    /// no evaluation set.
    Bic,
}

/// Hyperparameters of `UoI_LASSO`.
#[derive(Debug, Clone)]
pub struct UoiLassoConfig {
    /// Selection bootstraps `B1`.
    pub b1: usize,
    /// Estimation bootstraps `B2`.
    pub b2: usize,
    /// Number of regularisation values `q`.
    pub q: usize,
    /// Smallest lambda as a fraction of `lambda_max`.
    pub lambda_min_ratio: f64,
    /// ADMM solver settings.
    pub admm: AdmmConfig,
    /// Magnitude below which a coefficient counts as zero.
    pub support_tol: f64,
    /// Master seed; every bootstrap derives an independent stream.
    pub seed: u64,
    /// Estimation-step model-scoring rule.
    pub score: EstimationScore,
    /// Soft-intersection threshold: a feature enters the lambda's support
    /// when it appears in at least `ceil(intersection_frac * B1)`
    /// bootstrap supports. `1.0` is the paper's strict intersection
    /// (eq. 3); lower values trade false negatives for false positives.
    pub intersection_frac: f64,
    /// Observability handle: when its metrics registry is enabled, fits
    /// record selection/estimation statistics and the per-solve ADMM
    /// metrics. Disabled (free) by default.
    pub telemetry: Telemetry,
    /// Degraded-mode execution: an optional deterministic task-failure
    /// plan and the quorum rule applied over surviving bootstraps.
    pub degradation: DegradationConfig,
    /// Bootstrap-granular checkpoint/resume; `None` disables it.
    pub checkpoint: Option<CheckpointConfig>,
    /// Numerical resilience: guarded solves (jitter ladder, divergence
    /// tripwires, rho restarts), optional input validation, and the
    /// per-fit health report. Fully inert by default — the unguarded
    /// path is taken and results are bit-identical to it.
    pub numerical: NumericalConfig,
}

impl Default for UoiLassoConfig {
    fn default() -> Self {
        Self {
            b1: 10,
            b2: 10,
            q: 20,
            lambda_min_ratio: 1e-2,
            admm: AdmmConfig::default(),
            support_tol: 1e-7,
            seed: 42,
            score: EstimationScore::Mse,
            intersection_frac: 1.0,
            telemetry: Telemetry::disabled(),
            degradation: DegradationConfig::default(),
            checkpoint: None,
            numerical: NumericalConfig::default(),
        }
    }
}

impl UoiLassoConfig {
    /// Start a validated chainable builder:
    /// `UoiLassoConfig::builder().b1(20).q(30).build()?`.
    pub fn builder() -> UoiLassoConfigBuilder {
        UoiLassoConfigBuilder::default()
    }

    /// Check every field; `Err` names the first offending one.
    pub fn validate(&self) -> Result<(), UoiError> {
        if self.b1 == 0 {
            return Err(UoiError::InvalidConfig("b1 must be >= 1".into()));
        }
        if self.b2 == 0 {
            return Err(UoiError::InvalidConfig("b2 must be >= 1".into()));
        }
        if self.q == 0 {
            return Err(UoiError::InvalidConfig("q must be >= 1".into()));
        }
        if !(self.lambda_min_ratio.is_finite()
            && self.lambda_min_ratio > 0.0
            && self.lambda_min_ratio < 1.0)
        {
            return Err(UoiError::InvalidConfig(format!(
                "lambda_min_ratio must be in (0, 1), got {}",
                self.lambda_min_ratio
            )));
        }
        if !(self.support_tol.is_finite() && self.support_tol >= 0.0) {
            return Err(UoiError::InvalidConfig(format!(
                "support_tol must be finite and >= 0, got {}",
                self.support_tol
            )));
        }
        if !(self.intersection_frac.is_finite()
            && self.intersection_frac > 0.0
            && self.intersection_frac <= 1.0)
        {
            return Err(UoiError::InvalidConfig(format!(
                "intersection_frac must be in (0, 1], got {}",
                self.intersection_frac
            )));
        }
        self.admm.validate()?;
        self.degradation.validate()?;
        Ok(())
    }

    /// Checkpoint fingerprint of this configuration over dataset `(x, y)`.
    ///
    /// Deliberately excludes `b1`/`b2`: every bootstrap's result depends
    /// only on `(seed, k)` and the data, so checkpoints stay valid when
    /// the bootstrap counts change between runs. Includes everything a
    /// per-bootstrap result *does* depend on: seed, lambda grid inputs,
    /// solver settings, and every data bit.
    pub(crate) fn ckpt_fingerprint(&self, x: &Matrix, y: &[f64]) -> u64 {
        let words = [
            self.seed,
            self.q as u64,
            self.lambda_min_ratio.to_bits(),
            self.support_tol.to_bits(),
            self.admm.rho.to_bits(),
            self.admm.max_iter as u64,
            self.admm.abstol.to_bits(),
            self.admm.reltol.to_bits(),
            // The path schedule changes the iterates (fused solves every
            // lambda cold), so it invalidates checkpoints; `threads`
            // deliberately does not — it never affects the numbers.
            (self.admm.schedule == uoi_solvers::PathSchedule::Fused) as u64,
            // Guarded solves can alter results on degenerate inputs (the
            // clean path is bit-identical, but a checkpoint cannot know
            // the input was clean), so arming resilience invalidates.
            self.numerical.enabled as u64,
            x.rows() as u64,
            x.cols() as u64,
        ];
        fingerprint(
            words
                .into_iter()
                .chain(data_words(x.as_slice()))
                .chain(data_words(y)),
        )
    }
}

/// Chainable builder for [`UoiLassoConfig`]; `build()` validates.
#[derive(Debug, Clone, Default)]
pub struct UoiLassoConfigBuilder {
    cfg: UoiLassoConfig,
}

impl UoiLassoConfigBuilder {
    pub fn b1(mut self, b1: usize) -> Self {
        self.cfg.b1 = b1;
        self
    }

    pub fn b2(mut self, b2: usize) -> Self {
        self.cfg.b2 = b2;
        self
    }

    pub fn q(mut self, q: usize) -> Self {
        self.cfg.q = q;
        self
    }

    pub fn lambda_min_ratio(mut self, ratio: f64) -> Self {
        self.cfg.lambda_min_ratio = ratio;
        self
    }

    pub fn admm(mut self, admm: AdmmConfig) -> Self {
        self.cfg.admm = admm;
        self
    }

    pub fn support_tol(mut self, tol: f64) -> Self {
        self.cfg.support_tol = tol;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn score(mut self, score: EstimationScore) -> Self {
        self.cfg.score = score;
        self
    }

    pub fn intersection_frac(mut self, frac: f64) -> Self {
        self.cfg.intersection_frac = frac;
        self
    }

    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    pub fn degradation(mut self, degradation: DegradationConfig) -> Self {
        self.cfg.degradation = degradation;
        self
    }

    pub fn checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.cfg.checkpoint = Some(checkpoint);
        self
    }

    pub fn numerical(mut self, numerical: NumericalConfig) -> Self {
        self.cfg.numerical = numerical;
        self
    }

    pub fn build(self) -> Result<UoiLassoConfig, UoiError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A fitted UoI model.
#[derive(Debug, Clone)]
pub struct UoiFit {
    /// Averaged coefficient estimate (length `p`), in the original
    /// (uncentred) coordinates.
    pub beta: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
    /// Nonzero indices of `beta`.
    pub support: Vec<usize>,
    /// The lambda grid used for selection.
    pub lambdas: Vec<f64>,
    /// Intersected support per lambda (before deduplication) — the
    /// family `S = [S_1 ... S_q]` of eq. 3.
    pub supports_per_lambda: Vec<Vec<usize>>,
    /// Deduplicated candidate family actually scored in estimation.
    pub support_family: Vec<Vec<usize>>,
    /// Degraded-execution account, present when a fault plan was active:
    /// which tasks failed and the effective bootstrap counts used.
    pub degradation: Option<DegradationReport>,
    /// Shrink-and-recover account, present when the fit ran through
    /// [`fit_uoi_lasso_recovering`](crate::uoi_lasso_recovering::fit_uoi_lasso_recovering).
    pub recovery: Option<crate::recovery::RecoveryReport>,
    /// Speculative-hedging account, present when the fit ran through the
    /// recovering pipeline with speculation enabled.
    pub speculation: Option<crate::speculation::SpeculationReport>,
    /// Numerical-health account, present when
    /// [`NumericalConfig::active`](crate::numerical::NumericalConfig::active)
    /// — every jitter escalation, rho restart, divergence outcome, data
    /// issue, and dropped task, folded into a deterministic report.
    pub numerical: Option<NumericalHealthReport>,
}

impl UoiFit {
    /// Predict responses for a design matrix in original coordinates.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut out = uoi_linalg::gemv(x, &self.beta);
        for v in &mut out {
            *v += self.intercept;
        }
        out
    }
}

/// Fit `UoI_LASSO` on `(x, y)`, panicking on invalid input.
///
/// Thin wrapper over [`try_fit_uoi_lasso`] for callers that prefer the
/// assert-style contract; library code should use the fallible form.
#[deprecated(
    since = "0.6.0",
    note = "use `uoi_core::UoiFitter::new(cfg).fit(x, y)` instead"
)]
#[allow(deprecated)]
pub fn fit_uoi_lasso(x: &Matrix, y: &[f64], cfg: &UoiLassoConfig) -> UoiFit {
    try_fit_uoi_lasso(x, y, cfg).unwrap_or_else(|e| panic!("fit_uoi_lasso: {e}"))
}

/// Fit `UoI_LASSO` on `(x, y)`.
///
/// Data is column-centred internally (the paper's `n x (p+1)` intercept
/// column is handled by centring instead of penalised estimation); the
/// returned intercept restores original coordinates.
///
/// Returns `Err` — and never panics — on an empty design, mismatched
/// `x`/`y` lengths, too few samples to resample, non-finite inputs, or an
/// invalid configuration.
#[deprecated(
    since = "0.6.0",
    note = "use `uoi_core::UoiFitter::new(cfg).fit(x, y)` instead"
)]
pub fn try_fit_uoi_lasso(x: &Matrix, y: &[f64], cfg: &UoiLassoConfig) -> Result<UoiFit, UoiError> {
    // The validation pass runs before the structural checks: under
    // `Sanitize` it scrubs the non-finite cells the structural check
    // would otherwise reject.
    if let Some((xs, ys)) = cfg.numerical.prevalidate(x, y, &cfg.telemetry)? {
        validate_lasso_inputs(&xs, &ys, cfg)?;
        return fit_inner(&xs, &ys, cfg);
    }
    validate_lasso_inputs(x, y, cfg)?;
    fit_inner(x, y, cfg)
}

/// Input validation shared by the serial and recovering fits; `Ok` means
/// `fit_inner` (or a recovering re-execution of its tasks) may run.
pub(crate) fn validate_lasso_inputs(
    x: &Matrix,
    y: &[f64],
    cfg: &UoiLassoConfig,
) -> Result<(), UoiError> {
    let (n, p) = x.shape();
    if n == 0 || p == 0 {
        return Err(UoiError::EmptyDesign);
    }
    if y.len() != n {
        return Err(UoiError::DimensionMismatch {
            expected: n,
            got: y.len(),
        });
    }
    if n < 4 {
        return Err(UoiError::TooFewSamples { n, min: 4 });
    }
    if !all_finite(x.as_slice()) {
        return Err(UoiError::NonFiniteInput("design matrix x"));
    }
    if !all_finite(y) {
        return Err(UoiError::NonFiniteInput("response y"));
    }
    cfg.validate()
}

/// Column-centre `(x, y)`: returns `(xc, yc, x_means, y_mean)`. Shared
/// verbatim by the serial fit and the recovering pipeline so both centre
/// bit-identically.
pub(crate) fn centre_data(x: &Matrix, y: &[f64]) -> (Matrix, Vec<f64>, Vec<f64>, f64) {
    let n = x.rows();
    let x_means = x.col_means();
    let y_mean = y.iter().sum::<f64>() / n as f64;
    let mut xc = x.clone();
    xc.center_cols(&x_means);
    let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
    (xc, yc, x_means, y_mean)
}

/// Selection bootstrap `k`'s resample multiplicities — the zero-copy
/// weight vector that stands in for the materialised resample.
pub(crate) fn selection_weights(n: usize, seed: u64, k: usize) -> Vec<f64> {
    let mut rng = substream(seed, k as u64);
    let idx = row_bootstrap(&mut rng, n, n);
    resample_weights(&idx, n)
}

/// Selection bootstrap `k`'s weighted Gram and right-hand side — the
/// `O(n p^2)` half of the task, checkpointable for recovery re-solves.
///
/// A batch of one through the batched Gram engine: per-resample results
/// are independent of batch composition, so this is bit-identical to the
/// same bootstrap inside `fit_inner`'s batched pass. The Gram comes back
/// upper-stored (strict lower zero); every consumer — `from_gram`,
/// `ols_on_support_gram`, `symv`, the checkpoint round-trip — reads only
/// the upper triangle.
pub(crate) fn selection_gram(xc: &Matrix, yc: &[f64], seed: u64, k: usize) -> (Matrix, Vec<f64>) {
    let w = selection_weights(xc.rows(), seed, k);
    let (gram, xty) = uoi_linalg::gram_rhs_batch(xc, yc, &[&w])
        .pop()
        .expect("batch of one");
    (gram.into_upper(), xty)
}

/// Solve selection bootstrap `k`'s lambda path from its (possibly
/// checkpoint-restored) Gram, yielding the per-lambda supports.
///
/// When tracing is on, residual-curve capture is enabled on a local
/// copy of the solver config (capture never changes the iterates) and
/// one [`TraceEvent::Convergence`] is emitted per lambda.
pub(crate) fn selection_solve(
    gram: Matrix,
    xty: &[f64],
    lambdas: &[f64],
    cfg: &UoiLassoConfig,
    k: usize,
) -> Vec<Vec<usize>> {
    // A task that falls off the fallback ladder degrades to the empty
    // model on every lambda: callers that cannot drop tasks (the
    // recovering pipeline's exchange protocol requires a payload per
    // task) still complete, contributing nothing to any intersection.
    selection_solve_checked(gram, xty, lambdas, cfg, k)
        .unwrap_or_else(|| vec![Vec::new(); lambdas.len()])
}

/// [`selection_solve`] with drop semantics: `None` means the task fell
/// off the end of the numerical fallback ladder (factorisation exhausted
/// or a lambda stayed diverged through every rho restart) and should be
/// dropped into the degraded-mode quorum accounting.
///
/// With resilience disabled this is the historical unguarded solve —
/// zero extra work, bit-identical iterates — and never returns `None`
/// (breakdowns panic, as they always did).
pub(crate) fn selection_solve_checked(
    gram: Matrix,
    xty: &[f64],
    lambdas: &[f64],
    cfg: &UoiLassoConfig,
    k: usize,
) -> Option<Vec<Vec<usize>>> {
    let mut admm = cfg.admm.clone();
    admm.capture_curve = cfg.telemetry.tracing_enabled();
    if !cfg.numerical.enabled {
        let mut solver = LassoAdmm::from_gram(gram, admm);
        if let Some(m) = cfg.telemetry.metrics() {
            solver = solver.with_metrics(m);
        }
        let sols = solver.solve_path_with_rhs(xty, lambdas);
        return Some(record_selection_supports(sols, lambdas, cfg, k));
    }
    let ledger = cfg.numerical.ledger();
    let mut solver = match ResilientLasso::from_gram(gram, admm, cfg.numerical.resilience) {
        Ok(s) => s,
        Err(e) => {
            if let SolverError::Factorization(b) = &e {
                ledger.note_factor(
                    &cfg.telemetry,
                    "selection",
                    k,
                    &uoi_solvers::FactorHealth {
                        attempts: u32::MAX,
                        jitter: b.last_jitter,
                        condest: None,
                    },
                );
            }
            ledger.note_task_dropped(&cfg.telemetry, "selection", k, &e.to_string());
            return None;
        }
    };
    if let Some(m) = cfg.telemetry.metrics() {
        solver = solver.with_metrics(m);
    }
    let (sols, health) = solver.solve_path_with_rhs(xty, lambdas);
    ledger.note_path(&cfg.telemetry, "selection", k, &health);
    if !health.diverged.is_empty() {
        ledger.note_task_dropped(&cfg.telemetry, "selection", k, "divergence_unrecovered");
        return None;
    }
    Some(record_selection_supports(sols, lambdas, cfg, k))
}

/// Extract per-lambda supports from a solved path, emitting one
/// [`TraceEvent::Convergence`] per lambda — shared by the guarded and
/// unguarded selection solves so their trace output is identical.
fn record_selection_supports(
    sols: Vec<uoi_solvers::AdmmSolution>,
    lambdas: &[f64],
    cfg: &UoiLassoConfig,
    k: usize,
) -> Vec<Vec<usize>> {
    let mut supports = Vec::with_capacity(sols.len());
    for (j, sol) in sols.into_iter().enumerate() {
        let support = support_of(&sol.beta, cfg.support_tol);
        cfg.telemetry.record_with(|| TraceEvent::Convergence {
            rank: 0,
            stage: "selection",
            bootstrap: k,
            lambda_idx: j,
            lambda: lambdas[j],
            iterations: sol.iterations,
            max_iter: cfg.admm.max_iter,
            converged: sol.converged,
            primal_residual: sol.primal_residual,
            dual_residual: sol.dual_residual,
            support: support.clone(),
            curve: sol.curve,
            t: 0.0,
        });
        supports.push(support);
    }
    supports
}

/// Emit estimation resample `k`'s convergence record. The estimation
/// step is a direct OLS solve — no iterative solver runs — so the task
/// reports zero iterations and always converges; it exists so progress
/// tracking and the task census cover both stages.
pub(crate) fn record_estimation_convergence(tel: &Telemetry, k: usize) {
    tel.record_with(|| TraceEvent::Convergence {
        rank: 0,
        stage: "estimation",
        bootstrap: k,
        lambda_idx: 0,
        lambda: 0.0,
        iterations: 0,
        max_iter: 0,
        converged: true,
        primal_residual: 0.0,
        dual_residual: 0.0,
        support: Vec::new(),
        curve: Vec::new(),
        t: 0.0,
    });
}

/// The full selection task body for bootstrap `k` (Algorithm 1 lines
/// 2–10): shared by the serial rayon loop and the recovering pipeline's
/// per-rank task execution, so re-executed tasks are bit-identical.
pub(crate) fn selection_task(
    xc: &Matrix,
    yc: &[f64],
    lambdas: &[f64],
    cfg: &UoiLassoConfig,
    k: usize,
) -> Vec<Vec<usize>> {
    let (gram, xty) = selection_gram(xc, yc, cfg.seed, k);
    selection_solve(gram, &xty, lambdas, cfg, k)
}

/// Intersect per-lambda supports across surviving bootstraps (eq. 3 with
/// the soft-threshold generalisation).
pub(crate) fn intersect_per_lambda(
    supports_by_bootstrap: &[&Vec<Vec<usize>>],
    q: usize,
    p: usize,
    needed: usize,
) -> Vec<Vec<usize>> {
    let effective = supports_by_bootstrap.len();
    (0..q)
        .map(|j| {
            if needed == effective {
                let per_k: Vec<Vec<usize>> = supports_by_bootstrap
                    .iter()
                    .map(|sk| sk[j].clone())
                    .collect();
                intersect_many(&per_k)
            } else {
                let mut votes = vec![0usize; p];
                for sk in supports_by_bootstrap {
                    for &f in &sk[j] {
                        votes[f] += 1;
                    }
                }
                (0..p).filter(|&f| votes[f] >= needed).collect()
            }
        })
        .collect()
}

/// Project the centred design onto the candidate family's feature union:
/// returns `(union, xu, family_u)` with the family re-indexed into union
/// coordinates.
pub(crate) fn estimation_setup(
    support_family: &[Vec<usize>],
    p: usize,
    xc: &Matrix,
) -> (Vec<usize>, Matrix, Vec<Vec<usize>>) {
    let mut union: Vec<usize> = support_family.iter().flatten().copied().collect();
    union.sort_unstable();
    union.dedup();
    let mut union_pos = vec![usize::MAX; p];
    for (a, &f) in union.iter().enumerate() {
        union_pos[f] = a;
    }
    let xu = xc.gather_cols(&union);
    let family_u: Vec<Vec<usize>> = support_family
        .iter()
        .map(|s| s.iter().map(|&f| union_pos[f]).collect())
        .collect();
    (union, xu, family_u)
}

/// Estimation resample `k`'s train/eval split: the zero-copy train
/// weights, the out-of-bag evaluation rows, and the train count.
pub(crate) fn estimation_resample(n: usize, seed: u64, k: usize) -> (Vec<f64>, Vec<usize>, usize) {
    let mut rng = substream(seed, 10_000 + k as u64);
    let (train_idx, eval_idx) = bootstrap_with_oob(&mut rng, n);
    let n_train = train_idx.len();
    let w = resample_weights(&train_idx, n);
    (w, eval_idx, n_train)
}

/// One estimation resample's linear system plus its split — everything
/// [`estimation_score`] needs beyond the shared projected design.
pub(crate) struct EstimationSystem {
    /// Upper-stored weighted union Gram `X_u^T diag(w) X_u`.
    pub gram_u: Matrix,
    /// `X_u^T diag(w) y`.
    pub xty_u: Vec<f64>,
    /// Train multiplicities.
    pub w: Vec<f64>,
    /// Out-of-bag evaluation rows.
    pub eval_idx: Vec<usize>,
    /// Training sample count.
    pub n_train: usize,
}

/// The full estimation task body for resample `k` (Algorithm 1 lines
/// 13–23): scores every candidate support and returns the winner
/// embedded in full-`p` coordinates. Shared by the serial loop and the
/// recovering pipeline; a batch of one through the batched Gram engine,
/// bit-identical to the same resample inside `fit_inner`'s batched pass.
pub(crate) fn estimation_task(
    xu: &Matrix,
    yc: &[f64],
    family_u: &[Vec<usize>],
    union: &[usize],
    p: usize,
    cfg: &UoiLassoConfig,
    k: usize,
) -> Vec<f64> {
    let (w, eval_idx, n_train) = estimation_resample(xu.rows(), cfg.seed, k);
    let (gram_u, xty_u) = uoi_linalg::gram_rhs_batch(xu, yc, &[&w])
        .pop()
        .expect("batch of one");
    let sys = EstimationSystem {
        gram_u: gram_u.into_upper(),
        xty_u,
        w,
        eval_idx,
        n_train,
    };
    let full = estimation_score(xu, yc, family_u, union, p, cfg, &sys, k);
    record_estimation_convergence(&cfg.telemetry, k);
    full
}

/// Score every candidate support on one resample's system and return the
/// winner embedded in full-`p` coordinates. All Gram reads (sub-Gram
/// extraction, `symv` quad form) touch only the upper triangle, so the
/// upper-stored batched Gram needs no mirror.
pub(crate) fn estimation_score(
    xu: &Matrix,
    yc: &[f64],
    family_u: &[Vec<usize>],
    union: &[usize],
    p: usize,
    cfg: &UoiLassoConfig,
    sys: &EstimationSystem,
    k: usize,
) -> Vec<f64> {
    let EstimationSystem {
        gram_u,
        xty_u,
        w,
        eval_idx,
        n_train,
    } = sys;
    let (eval_idx, n_train) = (eval_idx.as_slice(), *n_train);
    // Weighted training RSS identity for BIC:
    // ||X_b b - y_b||^2 = b'Gb - 2 b'(X^T y)_w + sum_i w_i y_i^2.
    let ysq_w = match cfg.score {
        EstimationScore::Bic => weighted_sumsq(w, yc),
        EstimationScore::Mse => 0.0,
    };

    let mut best: Option<(f64, Vec<f64>)> = None;
    for (c, support_u) in family_u.iter().enumerate() {
        // The guarded OLS walks the jitter ladder on singular sub-Grams
        // and reports what it consumed; the unguarded historical path
        // stays the default (identical results on clean candidates).
        let beta_u = if cfg.numerical.enabled {
            let (beta_u, health) = ols_on_support_gram_health(gram_u, xty_u, support_u, n_train);
            if health != uoi_solvers::FactorHealth::clean() {
                cfg.numerical.ledger().note_candidate_factor(
                    &cfg.telemetry,
                    "estimation",
                    k,
                    c,
                    &health,
                );
            }
            beta_u
        } else {
            ols_on_support_gram(gram_u, xty_u, support_u, n_train)
        };
        let loss = match cfg.score {
            EstimationScore::Mse => {
                let mut sum = 0.0;
                for &e in eval_idx {
                    let d = dot(xu.row(e), &beta_u) - yc[e];
                    sum += d * d;
                }
                sum / eval_idx.len() as f64
            }
            EstimationScore::Bic => {
                // The Gram is symmetric, so the cache-blocked symv halves
                // the memory traffic of the quad-form against a general
                // gemv (agreement ~1e-12, well inside BIC's resolution).
                let mut gb = vec![0.0; beta_u.len()];
                kernels::symv(gram_u, &beta_u, &mut gb);
                let quad = dot(&beta_u, &gb);
                let rss = (quad - 2.0 * dot(&beta_u, xty_u) + ysq_w).max(0.0);
                bic_from_rss(rss, n_train, support_u.len())
            }
        };
        if best.as_ref().is_none_or(|(l, _)| loss < *l) {
            best = Some((loss, beta_u));
        }
    }
    // Embed the winner back into full-p coordinates; an empty family (or
    // all-empty supports) estimates zero.
    let mut full = vec![0.0; p];
    if let Some((_, bu)) = best {
        for (&f, &v) in union.iter().zip(&bu) {
            full[f] = v;
        }
    }
    full
}

/// Average the winning estimates (eq. 4) and restore the intercept:
/// `y ≈ (x - x̄) b + ȳ  =>  icpt = ȳ - x̄·b`.
pub(crate) fn average_and_intercept(
    best_estimates: &[&Vec<f64>],
    p: usize,
    x_means: &[f64],
    y_mean: f64,
) -> (Vec<f64>, f64) {
    let effective_b2 = best_estimates.len();
    let mut beta = vec![0.0; p];
    for est in best_estimates {
        for (b, e) in beta.iter_mut().zip(est.iter()) {
            *b += e;
        }
    }
    for b in &mut beta {
        *b /= effective_b2 as f64;
    }
    let intercept = y_mean - uoi_linalg::dot(x_means, &beta);
    (beta, intercept)
}

/// The validated fit body (inputs already checked).
pub(crate) fn fit_inner(x: &Matrix, y: &[f64], cfg: &UoiLassoConfig) -> Result<UoiFit, UoiError> {
    let p = x.cols();

    // Degraded-mode / checkpoint machinery. All of it is inert (and
    // free) in the default configuration.
    let plan = cfg.degradation.plan.as_ref();
    let store = match &cfg.checkpoint {
        Some(ck) => Some(
            CheckpointStore::open(&ck.dir, cfg.ckpt_fingerprint(x, y))?
                .with_telemetry(&cfg.telemetry),
        ),
        None => None,
    };
    // Preemption hook: a shared budget of newly computed tasks; once it
    // runs dry the remaining tasks refuse to start and the fit returns
    // `Interrupted`, leaving finished checkpoints behind.
    let budget = cfg
        .checkpoint
        .as_ref()
        .and_then(|ck| ck.abort_after)
        .map(|k| AtomicI64::new(k as i64));
    let interrupted = AtomicBool::new(false);
    let computed = AtomicUsize::new(0);
    // Reserve one budget unit; `false` → the run is being preempted.
    let reserve = || match &budget {
        None => true,
        Some(b) => {
            if b.fetch_sub(1, Ordering::SeqCst) > 0 {
                true
            } else {
                interrupted.store(true, Ordering::SeqCst);
                false
            }
        }
    };

    // Centre.
    let (xc, yc, x_means, y_mean) = centre_data(x, y);

    // Shared lambda grid from the full centred data.
    let lambdas = lambda_path(&xc, &yc, cfg.q, cfg.lambda_min_ratio);

    // --- Model selection: B1 bootstraps x q lambdas. ---
    // Zero-copy: the resample never materialises X_b. The multiplicity
    // vector c of the bootstrap gives X_b^T X_b = sum_i c_i x_i x_i^T and
    // X_b^T y_b = sum_i c_i y_i x_i, so each bootstrap accumulates a
    // weighted Gram + rhs over the shared centred design and solves the
    // whole lambda path from those.
    // Triage first (fault plan, checkpoint hits, preemption budget — all
    // sequential in ascending k, so budget consumption is deterministic),
    // then one batched Gram + rhs pass over the centred design covers
    // every bootstrap still to compute: the design streams from memory
    // once instead of once per bootstrap. A slot holds `Some(supports)`
    // on success and `None` when the fault plan killed the task or the
    // preemption budget ran dry; `Err` only for checkpoint write failures.
    let selection_results: Vec<Option<Vec<Vec<usize>>>> =
        traced(&cfg.telemetry, "uoi_lasso.selection", || {
            let mut slots: Vec<Option<Vec<Vec<usize>>>> = (0..cfg.b1).map(|_| None).collect();
            let mut to_compute: Vec<usize> = Vec::new();
            for k in 0..cfg.b1 {
                if plan.is_some_and(|pl| pl.selection_failed(k)) {
                    cfg.telemetry.incr("uoi.degraded.selection_failures", 1);
                    continue;
                }
                if let Some(st) = &store {
                    if let Some(loaded) = st.load_supports("sel", k, cfg.q) {
                        cfg.telemetry.incr("uoi.ckpt.selection_hits", 1);
                        slots[k] = Some(loaded);
                        continue;
                    }
                }
                if reserve() {
                    to_compute.push(k);
                }
            }
            let weights: Vec<Vec<f64>> = to_compute
                .iter()
                .map(|&k| selection_weights(xc.rows(), cfg.seed, k))
                .collect();
            if cfg.numerical.active() {
                for (&k, w) in to_compute.iter().zip(&weights) {
                    note_degenerate_resample(cfg, "selection", k, w);
                }
            }
            let wrefs: Vec<&[f64]> = weights.iter().map(|w| w.as_slice()).collect();
            let systems = uoi_linalg::gram_rhs_batch(&xc, &yc, &wrefs);
            let work: Vec<_> = to_compute.iter().copied().zip(systems).collect();
            let solved = work
                .into_par_iter()
                .map(|(k, (gram, xty))| {
                    // `None` = the task fell off the numerical fallback
                    // ladder; the slot stays empty and the task joins
                    // the degraded-mode quorum accounting below. Dropped
                    // tasks are never checkpointed: a rerun retries them.
                    let supports = selection_solve_checked(gram.into_upper(), &xty, &lambdas, cfg, k);
                    if let (Some(st), Some(sup)) = (&store, &supports) {
                        st.save_supports("sel", k, sup)?;
                    }
                    computed.fetch_add(1, Ordering::SeqCst);
                    Ok((k, supports))
                })
                .collect::<Result<Vec<_>, UoiError>>()?;
            for (k, supports) in solved {
                slots[k] = supports;
            }
            Ok::<_, UoiError>(slots)
        })?;
    if interrupted.load(Ordering::SeqCst) {
        return Err(UoiError::Interrupted {
            completed: computed.load(Ordering::SeqCst),
        });
    }
    let supports_by_bootstrap: Vec<&Vec<Vec<usize>>> = selection_results.iter().flatten().collect();
    let effective_b1 = supports_by_bootstrap.len();
    cfg.degradation
        .check_quorum("selection", effective_b1, cfg.b1)?;

    // Intersect across *surviving* bootstraps per lambda (eq. 3), with
    // the soft threshold generalisation: keep features present in at
    // least `ceil(frac * B1_effective)` surviving supports.
    let needed = required_votes(cfg.intersection_frac, effective_b1);
    let supports_per_lambda = intersect_per_lambda(&supports_by_bootstrap, cfg.q, p, needed);
    let support_family = dedup_family(supports_per_lambda.clone());

    cfg.telemetry
        .incr("uoi.selection.bootstraps", effective_b1 as u64);
    for s in &supports_per_lambda {
        cfg.telemetry
            .observe("uoi.selection.support_size", s.len() as f64);
    }
    cfg.telemetry
        .gauge("uoi.selection.family_size", support_family.len() as f64);

    // --- Model estimation: B2 train/eval resamples. ---
    // The candidate family only ever references the union of its
    // features, so the design is projected onto those columns once per
    // fit; each resample then builds one weighted union-Gram and every
    // support's OLS is an |S|x|S| sub-Gram extraction + factor, with no
    // per-resample (or per-support) row gathering.
    let (union, xu, family_u) = estimation_setup(&support_family, p, &xc);

    // Estimation checkpoints additionally depend on the candidate family
    // (which shifts when B1 or the fault plan changes), so the family is
    // folded into the stage name — stale estimates from a different
    // family can never be replayed.
    let est_stage = store.as_ref().map(|_| {
        let fam_words = support_family
            .iter()
            .flat_map(|s| std::iter::once(s.len() as u64).chain(s.iter().map(|&f| f as u64)));
        format!("est_{:016x}", fingerprint(fam_words))
    });

    // Same triage-then-batch shape as selection: one batched pass over
    // the projected design builds every surviving resample's union Gram
    // and rhs together.
    let est_results: Vec<Option<Vec<f64>>> =
        traced(&cfg.telemetry, "uoi_lasso.estimation", || {
            let mut slots: Vec<Option<Vec<f64>>> = (0..cfg.b2).map(|_| None).collect();
            let mut to_compute: Vec<usize> = Vec::new();
            for k in 0..cfg.b2 {
                if plan.is_some_and(|pl| pl.estimation_failed(k)) {
                    cfg.telemetry.incr("uoi.degraded.estimation_failures", 1);
                    continue;
                }
                if let (Some(st), Some(stage)) = (&store, &est_stage) {
                    if let Some(loaded) = st.load_coeffs(stage, k, p) {
                        cfg.telemetry.incr("uoi.ckpt.estimation_hits", 1);
                        slots[k] = Some(loaded);
                        continue;
                    }
                }
                if reserve() {
                    to_compute.push(k);
                }
            }
            let resamples: Vec<(Vec<f64>, Vec<usize>, usize)> = to_compute
                .iter()
                .map(|&k| estimation_resample(xu.rows(), cfg.seed, k))
                .collect();
            if cfg.numerical.active() {
                for (&k, (w, _, _)) in to_compute.iter().zip(&resamples) {
                    note_degenerate_resample(cfg, "estimation", k, w);
                }
            }
            let wrefs: Vec<&[f64]> = resamples.iter().map(|(w, _, _)| w.as_slice()).collect();
            let systems = uoi_linalg::gram_rhs_batch(&xu, &yc, &wrefs);
            let work: Vec<_> = to_compute
                .iter()
                .copied()
                .zip(resamples.into_iter().zip(systems))
                .collect();
            let solved = work
                .into_par_iter()
                .map(|(k, ((w, eval_idx, n_train), (gram_u, xty_u)))| {
                    let sys = EstimationSystem {
                        gram_u: gram_u.into_upper(),
                        xty_u,
                        w,
                        eval_idx,
                        n_train,
                    };
                    let full = estimation_score(&xu, &yc, &family_u, &union, p, cfg, &sys, k);
                    record_estimation_convergence(&cfg.telemetry, k);
                    if let (Some(st), Some(stage)) = (&store, &est_stage) {
                        st.save_coeffs(stage, k, &full)?;
                    }
                    computed.fetch_add(1, Ordering::SeqCst);
                    Ok((k, full))
                })
                .collect::<Result<Vec<_>, UoiError>>()?;
            for (k, full) in solved {
                slots[k] = Some(full);
            }
            Ok::<_, UoiError>(slots)
        })?;
    if interrupted.load(Ordering::SeqCst) {
        return Err(UoiError::Interrupted {
            completed: computed.load(Ordering::SeqCst),
        });
    }
    let best_estimates: Vec<&Vec<f64>> = est_results.iter().flatten().collect();
    let effective_b2 = best_estimates.len();
    cfg.degradation
        .check_quorum("estimation", effective_b2, cfg.b2)?;

    // Average the winners (eq. 4) over surviving estimation bootstraps and
    // restore the intercept.
    let (beta, intercept) = average_and_intercept(&best_estimates, p, &x_means, y_mean);
    let support = support_of(&beta, cfg.support_tol);

    cfg.telemetry
        .incr("uoi.estimation.bootstraps", effective_b2 as u64);
    cfg.telemetry
        .gauge("uoi.support_size", support.len() as f64);

    let degradation = plan.map(|pl| DegradationReport {
        b1_planned: cfg.b1,
        b1_effective: effective_b1,
        b2_planned: cfg.b2,
        b2_effective: effective_b2,
        failed_selection: (0..cfg.b1).filter(|&k| pl.selection_failed(k)).collect(),
        failed_estimation: (0..cfg.b2).filter(|&k| pl.estimation_failed(k)).collect(),
        quorum_votes: needed,
        min_quorum_frac: cfg.degradation.min_quorum_frac,
    });

    Ok(UoiFit {
        beta,
        intercept,
        support,
        lambdas,
        supports_per_lambda,
        support_family,
        degradation,
        recovery: None,
        speculation: None,
        numerical: cfg
            .numerical
            .active()
            .then(|| cfg.numerical.ledger().drain_report()),
    })
}

/// Flag a resample whose multiplicity mass sits on at most one distinct
/// row: its weighted Gram has rank <= 1, the classic zero-variance
/// degeneracy. Flag-only — the guarded solver absorbs the singular
/// system; this just names the cause in the health report.
pub(crate) fn note_degenerate_resample(cfg: &UoiLassoConfig, stage: &'static str, k: usize, w: &[f64]) {
    let distinct = w.iter().filter(|v| **v > 0.0).count();
    if distinct <= 1 {
        cfg.numerical.ledger().note_resample_issue(
            &cfg.telemetry,
            stage,
            k,
            &uoi_data::DataIssue::DegenerateResample {
                bootstrap: k,
                distinct_rows: distinct,
            },
        );
    }
}

/// Votes required by the soft intersection: `ceil(frac * b1)`, clamped
/// to `[1, b1]`.
pub(crate) fn required_votes(frac: f64, b1: usize) -> usize {
    assert!(
        (0.0..=1.0).contains(&frac) && frac > 0.0,
        "intersection_frac must be in (0, 1]"
    );
    ((frac * b1 as f64).ceil() as usize).clamp(1, b1)
}

/// Bayesian information criterion of an OLS fit:
/// `n ln(RSS/n) + k ln(n)` (additive constants dropped).
pub fn bic(x: &Matrix, beta: &[f64], y: &[f64], k: usize) -> f64 {
    let n = y.len().max(1) as f64;
    let rss = uoi_linalg::mse(x, beta, y) * n;
    bic_from_rss(rss, y.len(), k)
}

/// BIC from a precomputed residual sum of squares — the Gram-space
/// estimation loop gets `RSS` from the weighted-Gram identity without
/// ever forming predictions.
pub fn bic_from_rss(rss: f64, n: usize, k: usize) -> f64 {
    let n = n.max(1) as f64;
    n * (rss / n).max(1e-300).ln() + k as f64 * n.ln()
}

/// A bootstrap training resample plus its out-of-bag evaluation rows.
/// Falls back to a half/half split if the resample covered every row.
pub(crate) fn bootstrap_with_oob(
    rng: &mut rand::rngs::StdRng,
    n: usize,
) -> (Vec<usize>, Vec<usize>) {
    let train = row_bootstrap(rng, n, n);
    let mut in_train = vec![false; n];
    for &i in &train {
        in_train[i] = true;
    }
    let eval: Vec<usize> = (0..n).filter(|&i| !in_train[i]).collect();
    if eval.is_empty() {
        // Degenerate (only possible for tiny n): deterministic half split.
        let cut = (n / 2).max(1);
        ((0..cut).collect(), (cut..n).collect())
    } else {
        (train, eval)
    }
}

/// The pre-zero-copy reference fit: materialises every bootstrap design
/// with `gather_rows` and scores candidates in design space. Kept as the
/// equivalence oracle for the weighted-Gram fast path — any divergence
/// beyond floating-point summation order is a bug in the fast path.
#[cfg(test)]
pub(crate) fn fit_inner_materialized(x: &Matrix, y: &[f64], cfg: &UoiLassoConfig) -> UoiFit {
    use uoi_solvers::ols_on_support;
    let (n, p) = x.shape();

    let x_means = x.col_means();
    let y_mean = y.iter().sum::<f64>() / n as f64;
    let mut xc = x.clone();
    xc.center_cols(&x_means);
    let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

    let lambdas = lambda_path(&xc, &yc, cfg.q, cfg.lambda_min_ratio);

    let supports_by_bootstrap: Vec<Vec<Vec<usize>>> = (0..cfg.b1)
        .map(|k| {
            let mut rng = substream(cfg.seed, k as u64);
            let idx = row_bootstrap(&mut rng, n, n);
            let xb = xc.gather_rows(&idx);
            let yb: Vec<f64> = idx.iter().map(|&i| yc[i]).collect();
            let solver = LassoAdmm::new(xb, cfg.admm.clone());
            solver
                .solve_path(&yb, &lambdas)
                .into_iter()
                .map(|sol| support_of(&sol.beta, cfg.support_tol))
                .collect()
        })
        .collect();

    let needed = required_votes(cfg.intersection_frac, cfg.b1);
    let supports_per_lambda: Vec<Vec<usize>> = (0..cfg.q)
        .map(|j| {
            if needed == cfg.b1 {
                let per_k: Vec<Vec<usize>> = supports_by_bootstrap
                    .iter()
                    .map(|sk| sk[j].clone())
                    .collect();
                intersect_many(&per_k)
            } else {
                let mut votes = vec![0usize; p];
                for sk in &supports_by_bootstrap {
                    for &f in &sk[j] {
                        votes[f] += 1;
                    }
                }
                (0..p).filter(|&f| votes[f] >= needed).collect()
            }
        })
        .collect();
    let support_family = dedup_family(supports_per_lambda.clone());

    let best_estimates: Vec<Vec<f64>> = (0..cfg.b2)
        .map(|k| {
            let mut rng = substream(cfg.seed, 10_000 + k as u64);
            let (train_idx, eval_idx) = bootstrap_with_oob(&mut rng, n);
            let xt = xc.gather_rows(&train_idx);
            let yt: Vec<f64> = train_idx.iter().map(|&i| yc[i]).collect();
            let xe = xc.gather_rows(&eval_idx);
            let ye: Vec<f64> = eval_idx.iter().map(|&i| yc[i]).collect();

            let mut best: Option<(f64, Vec<f64>)> = None;
            for support in &support_family {
                let beta = ols_on_support(&xt, &yt, support);
                let loss = match cfg.score {
                    EstimationScore::Mse => uoi_linalg::mse(&xe, &beta, &ye),
                    EstimationScore::Bic => bic(&xt, &beta, &yt, support.len()),
                };
                if best.as_ref().is_none_or(|(l, _)| loss < *l) {
                    best = Some((loss, beta));
                }
            }
            best.map(|(_, b)| b).unwrap_or_else(|| vec![0.0; p])
        })
        .collect();

    let mut beta = vec![0.0; p];
    for est in &best_estimates {
        for (b, e) in beta.iter_mut().zip(est) {
            *b += e;
        }
    }
    for b in &mut beta {
        *b /= cfg.b2 as f64;
    }

    let intercept = y_mean - uoi_linalg::dot(&x_means, &beta);
    let support = support_of(&beta, cfg.support_tol);

    UoiFit {
        beta,
        intercept,
        support,
        lambdas,
        supports_per_lambda,
        support_family,
        degradation: None,
        recovery: None,
        speculation: None,
        numerical: None,
    }
}

#[cfg(test)]
// Exercises the deprecated free-function fit surface on purpose: these
// tests pin its behaviour for as long as the wrappers exist.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::metrics::SelectionCounts;
    use uoi_data::{LinearConfig, LinearDataset};

    fn dataset() -> LinearDataset {
        LinearConfig {
            n_samples: 120,
            n_features: 30,
            n_nonzero: 5,
            snr: 10.0,
            seed: 7,
            ..Default::default()
        }
        .generate()
    }

    fn quick_cfg() -> UoiLassoConfig {
        UoiLassoConfig {
            b1: 10,
            b2: 8,
            q: 14,
            lambda_min_ratio: 2e-2,
            admm: AdmmConfig {
                max_iter: 800,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn recovers_true_support_with_few_false_positives() {
        let ds = dataset();
        let fit = fit_uoi_lasso(&ds.x, &ds.y, &quick_cfg());
        let counts = SelectionCounts::compare(&fit.support, &ds.support_true, 30);
        assert!(
            counts.recall() >= 0.8,
            "recall {} support {:?} truth {:?}",
            counts.recall(),
            fit.support,
            ds.support_true
        );
        assert!(
            counts.false_positives <= 3,
            "FP = {}",
            counts.false_positives
        );
    }

    #[test]
    fn estimates_have_low_bias() {
        // The union/OLS step should undo LASSO shrinkage: estimates on the
        // true support close to the truth.
        let ds = dataset();
        let fit = fit_uoi_lasso(&ds.x, &ds.y, &quick_cfg());
        for &j in &ds.support_true {
            if fit.support.contains(&j) {
                assert!(
                    (fit.beta[j] - ds.beta_true[j]).abs() < 0.25,
                    "feature {j}: {} vs {}",
                    fit.beta[j],
                    ds.beta_true[j]
                );
            }
        }
    }

    #[test]
    fn union_support_contains_family_winners() {
        let ds = dataset();
        let fit = fit_uoi_lasso(&ds.x, &ds.y, &quick_cfg());
        // Every supported coefficient must belong to at least one family
        // member (averaging cannot invent features).
        for &j in &fit.support {
            assert!(
                fit.support_family.iter().any(|s| s.contains(&j)),
                "feature {j} outside the candidate family"
            );
        }
    }

    #[test]
    fn zero_copy_fit_matches_materialized_reference() {
        let ds = dataset();
        for cfg in [
            quick_cfg(),
            UoiLassoConfig {
                score: EstimationScore::Bic,
                ..quick_cfg()
            },
        ] {
            let fast = fit_uoi_lasso(&ds.x, &ds.y, &cfg);
            let reference = fit_inner_materialized(&ds.x, &ds.y, &cfg);
            assert_eq!(fast.supports_per_lambda, reference.supports_per_lambda);
            assert_eq!(fast.support_family, reference.support_family);
            assert_eq!(fast.support, reference.support);
            for (a, b) in fast.beta.iter().zip(&reference.beta) {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
            assert!((fast.intercept - reference.intercept).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ds = dataset();
        let a = fit_uoi_lasso(&ds.x, &ds.y, &quick_cfg());
        let b = fit_uoi_lasso(&ds.x, &ds.y, &quick_cfg());
        assert_eq!(a.beta, b.beta);
        assert_eq!(a.support, b.support);
    }

    #[test]
    fn intercept_recovered() {
        // Shift y by a constant; the intercept must absorb it.
        let ds = dataset();
        let y_shift: Vec<f64> = ds.y.iter().map(|v| v + 7.5).collect();
        let base = fit_uoi_lasso(&ds.x, &ds.y, &quick_cfg());
        let shifted = fit_uoi_lasso(&ds.x, &y_shift, &quick_cfg());
        assert!(
            (shifted.intercept - base.intercept - 7.5).abs() < 1e-6,
            "intercepts {} vs {}",
            shifted.intercept,
            base.intercept
        );
        for (a, b) in shifted.beta.iter().zip(&base.beta) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn predict_matches_truth_on_clean_data() {
        let ds = LinearConfig {
            n_samples: 100,
            n_features: 12,
            n_nonzero: 3,
            snr: 1e5,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let fit = fit_uoi_lasso(&ds.x, &ds.y, &quick_cfg());
        let pred = fit.predict(&ds.x);
        let resid: f64 = pred
            .iter()
            .zip(&ds.y)
            .map(|(p, y)| (p - y) * (p - y))
            .sum::<f64>()
            / ds.y.len() as f64;
        let var_y: f64 = {
            let m = ds.y.iter().sum::<f64>() / ds.y.len() as f64;
            ds.y.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / ds.y.len() as f64
        };
        assert!(resid < 0.01 * var_y, "residual {resid} vs var {var_y}");
    }

    #[test]
    fn soft_intersection_grows_supports() {
        let ds = dataset();
        let strict = fit_uoi_lasso(&ds.x, &ds.y, &quick_cfg());
        let soft = fit_uoi_lasso(
            &ds.x,
            &ds.y,
            &UoiLassoConfig {
                intersection_frac: 0.6,
                ..quick_cfg()
            },
        );
        // Every strict lambda-support is contained in the soft one.
        for (s, f) in strict
            .supports_per_lambda
            .iter()
            .zip(&soft.supports_per_lambda)
        {
            for j in s {
                assert!(f.contains(j), "soft intersection must be a superset");
            }
        }
        // And soft keeps at least the strict recall.
        let cs = SelectionCounts::compare(&strict.support, &ds.support_true, 30);
        let cf = SelectionCounts::compare(&soft.support, &ds.support_true, 30);
        assert!(cf.recall() >= cs.recall());
    }

    #[test]
    fn required_votes_bounds() {
        assert_eq!(required_votes(1.0, 10), 10);
        assert_eq!(required_votes(0.5, 10), 5);
        assert_eq!(required_votes(0.01, 10), 1);
        assert_eq!(required_votes(0.95, 10), 10);
    }

    #[test]
    fn bic_scoring_also_recovers_support() {
        let ds = dataset();
        let fit = fit_uoi_lasso(
            &ds.x,
            &ds.y,
            &UoiLassoConfig {
                score: EstimationScore::Bic,
                ..quick_cfg()
            },
        );
        let counts = SelectionCounts::compare(&fit.support, &ds.support_true, 30);
        assert!(counts.recall() >= 0.8, "BIC recall {}", counts.recall());
        assert!(
            counts.false_positives <= 3,
            "BIC FP {}",
            counts.false_positives
        );
    }

    #[test]
    fn bic_prefers_parsimony() {
        // A support with irrelevant extras must score worse than the true
        // support under BIC on clean data.
        let ds = LinearConfig {
            n_samples: 150,
            n_features: 20,
            n_nonzero: 4,
            snr: 50.0,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let beta_true_fit = uoi_solvers::ols_on_support(&ds.x, &ds.y, &ds.support_true);
        let mut padded = ds.support_true.clone();
        for j in 0..20 {
            if !padded.contains(&j) && padded.len() < 12 {
                padded.push(j);
            }
        }
        padded.sort_unstable();
        let beta_padded = uoi_solvers::ols_on_support(&ds.x, &ds.y, &padded);
        let b_true = bic(&ds.x, &beta_true_fit, &ds.y, ds.support_true.len());
        let b_pad = bic(&ds.x, &beta_padded, &ds.y, padded.len());
        assert!(b_true < b_pad, "BIC true {b_true} vs padded {b_pad}");
    }

    #[test]
    fn bootstrap_with_oob_partitions() {
        let mut rng = uoi_data::rng::seeded(3);
        let (train, eval) = bootstrap_with_oob(&mut rng, 100);
        assert_eq!(train.len(), 100);
        assert!(!eval.is_empty());
        for &e in &eval {
            assert!(!train.contains(&e), "eval row {e} leaked into training");
        }
    }

    #[test]
    fn more_selection_bootstraps_never_grow_supports() {
        // Monotonicity of the intersection in B1 (same seed prefix).
        let ds = dataset();
        let small = fit_uoi_lasso(
            &ds.x,
            &ds.y,
            &UoiLassoConfig {
                b1: 4,
                ..quick_cfg()
            },
        );
        let large = fit_uoi_lasso(
            &ds.x,
            &ds.y,
            &UoiLassoConfig {
                b1: 8,
                ..quick_cfg()
            },
        );
        for (s_large, s_small) in large
            .supports_per_lambda
            .iter()
            .zip(&small.supports_per_lambda)
        {
            for j in s_large {
                assert!(
                    s_small.contains(j),
                    "lambda-wise intersection must shrink with B1"
                );
            }
        }
    }
}
