//! Shrink-and-recover execution for the UoI pipelines.
//!
//! Control plane lives in `uoi-mpisim` (`revoke → agree → shrink` and
//! [`Cluster::try_run_recovering`](uoi_mpisim::Cluster::try_run_recovering));
//! data plane in `uoi-tieredio` (checksummed exchange, re-striping). This
//! module is the *task* plane: a deterministic per-task ownership map, a
//! checksummed whole-blob result exchange, the degraded-mode fallback
//! plan for when the round budget runs out, and the [`RecoveryReport`]
//! that accounts for all of it.
//!
//! The invariant the recovering pipelines build on: task bodies are pure
//! functions of `(data, config, task index)`, so *who* executes a task —
//! original owner, stash replay, or a reassigned survivor — cannot
//! change its bits.

use crate::degraded::BootstrapFaultPlan;
use crate::speculation::SpeculationConfig;
use std::time::Duration;
use uoi_mpisim::{
    watchdog_from_env, Comm, FaultPlan, MpiError, RankCtx, SplitMix64, Window, DEFAULT_WATCHDOG,
};
use uoi_telemetry::Json;
use uoi_tieredio::{row_checksum, verify_row, DEFAULT_GET_ATTEMPTS};

/// Environment variable that switches the recovering pipelines on
/// (`1`/`true`); anything else leaves plain degraded-mode execution.
pub const UOI_RECOVERY_ENV: &str = "UOI_RECOVERY";

/// Deterministic round-robin task → original-rank assignment with
/// failure-aware reassignment.
///
/// The home rank of task `k` is `(rotation + k) % world`, with `rotation`
/// drawn from the run seed so different seeds exercise different
/// placements. When ranks fail, a task probes *forward over original
/// ranks* from its home until it hits a survivor: assignment is sticky
/// (survivors keep every task they already owned) and independent of the
/// dense re-ranking, so re-execution rounds recompute only what died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskOwnership {
    world: usize,
    rotation: usize,
}

impl TaskOwnership {
    /// Ownership over `world` original ranks, rotated by the run seed.
    pub fn new(world: usize, seed: u64) -> Self {
        assert!(world >= 1, "ownership needs at least one rank");
        let rotation = (SplitMix64::new(seed).next_u64() % world as u64) as usize;
        Self { world, rotation }
    }

    /// Original world size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// The original rank that owns `task` given the (sorted) failed set.
    /// Panics if every rank failed — the driver never asks in that state.
    pub fn owner(&self, task: usize, failed: &[usize]) -> usize {
        let home = (self.rotation + task) % self.world;
        for off in 0..self.world {
            let r = (home + off) % self.world;
            if !failed.contains(&r) {
                return r;
            }
        }
        panic!("no surviving rank to own task {task}");
    }

    /// Tasks in `0..total` owned by original rank `orig` under `failed`.
    pub fn owned_tasks(&self, orig: usize, total: usize, failed: &[usize]) -> Vec<usize> {
        (0..total)
            .filter(|&k| self.owner(k, failed) == orig)
            .collect()
    }
}

/// Knobs of a recovering fit: the simulated world it runs on, the fault
/// plan injected into it, and the recovery round budget.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Master switch; off → the caller should use the plain serial fit.
    pub enabled: bool,
    /// Simulated world size (original, before any shrink).
    pub world: usize,
    /// Re-execution rounds allowed after the initial attempt; `0` means
    /// any failure falls straight back to degraded-mode execution.
    pub max_rounds: usize,
    /// Faults injected into the simulated run (None → fault-free).
    pub plan: Option<FaultPlan>,
    /// Watchdog for hung collectives inside the simulated run.
    pub watchdog: Duration,
    /// Retry budget per verified blob fetch in the result exchange.
    pub get_attempts: u32,
    /// Speculative straggler hedging (deadline policy + master switch).
    pub speculation: SpeculationConfig,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            world: 4,
            max_rounds: 2,
            plan: None,
            watchdog: DEFAULT_WATCHDOG,
            get_attempts: DEFAULT_GET_ATTEMPTS,
            speculation: SpeculationConfig::default(),
        }
    }
}

impl RecoveryConfig {
    /// Default config with `enabled` taken from the `UOI_RECOVERY`
    /// environment variable (`1` or `true`, case-insensitive), the
    /// watchdog from `UOI_WATCHDOG_MS` (positive integer milliseconds),
    /// and speculation from `UOI_SPECULATE`.
    pub fn from_env() -> Self {
        let enabled = std::env::var(UOI_RECOVERY_ENV)
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "1" || v == "true"
            })
            .unwrap_or(false);
        Self {
            enabled,
            watchdog: watchdog_from_env().unwrap_or(DEFAULT_WATCHDOG),
            speculation: SpeculationConfig::from_env(),
            ..Self::default()
        }
    }
}

/// What a recovering fit did: rounds attempted, which ranks died, which
/// tasks moved, and whether the round budget was exhausted into the
/// degraded-mode fallback. Fully determined by `(config, fault plan)`,
/// so [`RecoveryReport::to_json`] is byte-identical across same-seed
/// reruns.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Original simulated world size.
    pub world: usize,
    /// Re-execution round budget.
    pub max_rounds: usize,
    /// Rounds attempted (1 = fault-free single attempt).
    pub rounds_attempted: usize,
    /// Original ranks that failed over the whole execution, sorted.
    pub failed_ranks: Vec<usize>,
    /// Selection tasks whose round-0 owner failed (reassigned or, on
    /// fallback, dropped), ascending.
    pub reassigned_selection: Vec<usize>,
    /// Estimation tasks whose round-0 owner failed, ascending.
    pub reassigned_estimation: Vec<usize>,
    /// True when the round budget ran out and the fit fell back to
    /// degraded-mode execution over the survivors' tasks.
    pub degraded_fallback: bool,
}

impl RecoveryReport {
    /// Deterministic JSON rendering (stable key order, integer-valued
    /// numbers) — byte-identical across reruns of the same configuration.
    pub fn to_json(&self) -> Json {
        let ids = |v: &[usize]| Json::Arr(v.iter().map(|&k| Json::num(k as f64)).collect());
        Json::obj(vec![
            ("world", Json::num(self.world as f64)),
            ("max_rounds", Json::num(self.max_rounds as f64)),
            ("rounds_attempted", Json::num(self.rounds_attempted as f64)),
            ("failed_ranks", ids(&self.failed_ranks)),
            ("reassigned_selection", ids(&self.reassigned_selection)),
            ("reassigned_estimation", ids(&self.reassigned_estimation)),
            ("degraded_fallback", Json::Bool(self.degraded_fallback)),
        ])
    }
}

/// The degraded-mode fallback plan for an exhausted recovery: every task
/// whose *round-0* owner is in the failed set is marked failed, exactly
/// as if those bootstraps had been lost to the dead ranks — so a
/// `max_rounds = 0` recovering fit reproduces the plain degraded fit.
pub fn degraded_fallback_plan(
    failed: &[usize],
    ownership: &TaskOwnership,
    b1: usize,
    b2: usize,
    seed: u64,
) -> BootstrapFaultPlan {
    let mut plan = BootstrapFaultPlan::new(seed);
    for k in 0..b1 {
        if failed.contains(&ownership.owner(k, &[])) {
            plan = plan.fail_selection(k);
        }
    }
    for k in 0..b2 {
        if failed.contains(&ownership.owner(k, &[])) {
            plan = plan.fail_estimation(k);
        }
    }
    plan
}

// --- Task-result blob encoding -----------------------------------------
//
// A rank's per-stage results travel as one flat f64 blob:
//   [task_id, payload_len, payload...]*
// with a trailing whole-blob checksum keyed by the *original* rank (so a
// dropped or corrupted transfer can never verify, and a blob fetched from
// the wrong rank fails closed).

/// Append one task record to a blob under construction.
pub(crate) fn push_task_record(blob: &mut Vec<f64>, task: usize, payload: &[f64]) {
    blob.push(task as f64);
    blob.push(payload.len() as f64);
    blob.extend_from_slice(payload);
}

/// Split a blob back into `(task, payload)` records.
pub(crate) fn parse_task_records(blob: &[f64]) -> Vec<(usize, Vec<f64>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < blob.len() {
        let task = blob[i] as usize;
        let len = blob[i + 1] as usize;
        out.push((task, blob[i + 2..i + 2 + len].to_vec()));
        i += 2 + len;
    }
    out
}

/// Encode a list of index lists (per-lambda supports) as a flat payload:
/// `[n_lists, len_0, items..., len_1, items..., ...]`.
pub(crate) fn encode_index_lists(lists: &[Vec<usize>]) -> Vec<f64> {
    let mut out = vec![lists.len() as f64];
    for l in lists {
        out.push(l.len() as f64);
        out.extend(l.iter().map(|&v| v as f64));
    }
    out
}

/// Inverse of [`encode_index_lists`].
pub(crate) fn decode_index_lists(payload: &[f64]) -> Vec<Vec<usize>> {
    let n = payload[0] as usize;
    let mut out = Vec::with_capacity(n);
    let mut i = 1;
    for _ in 0..n {
        let len = payload[i] as usize;
        out.push(
            payload[i + 1..i + 1 + len]
                .iter()
                .map(|&v| v as usize)
                .collect(),
        );
        i += 1 + len;
    }
    out
}

/// Exchange per-rank result blobs through a one-sided window with
/// whole-blob checksum verification and bounded retries.
///
/// Every rank exposes `my_blob` plus a trailing
/// [`row_checksum`] keyed by its *original* rank; each peer blob is
/// fetched and verified up to `max_attempts` times (each retry consumes
/// the next injected window-op fault, so transient drop/corrupt
/// injections are survived). Returns the verified payloads indexed by
/// dense rank. Budget exhaustion is a runtime invariant violation —
/// escalated as a typed internal error, which the recovery driver maps
/// to [`uoi_mpisim::RecoveryError::Fatal`] (retrying a round cannot fix
/// a peer that never serves a clean blob).
pub(crate) fn exchange_blobs(
    ctx: &mut RankCtx,
    comm: &Comm,
    my_blob: Vec<f64>,
    rank_map: &[usize],
    max_attempts: u32,
) -> Vec<Vec<f64>> {
    let me = comm.rank();
    let my_orig = rank_map[me];
    let mut exposed = my_blob.clone();
    exposed.push(row_checksum(&my_blob, my_orig));
    let win = Window::create(ctx, comm, exposed);
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(rank_map.len());
    for (dense, &orig) in rank_map.iter().enumerate() {
        if dense == me {
            out.push(my_blob.clone());
            continue;
        }
        let len = win.len_of(dense);
        let mut got = None;
        for attempt in 0..max_attempts.max(1) {
            let buf = win.get(ctx, dense, 0..len);
            if verify_row(&buf, orig) {
                let mut payload = buf;
                payload.pop();
                got = Some(payload);
                break;
            }
            ctx.record_fault(
                "recovery_blob_retry",
                format!("blob from rank {orig} failed checksum (attempt {attempt})"),
            );
        }
        match got {
            Some(p) => out.push(p),
            None => {
                // Close the epoch before escalating so peers are not left
                // waiting on a fence that never comes.
                win.fence(ctx, comm);
                std::panic::panic_any(MpiError::Internal {
                    what: format!(
                        "result blob from original rank {orig} failed verification \
                         {max_attempts} times"
                    ),
                });
            }
        }
    }
    win.fence(ctx, comm);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uoi_mpisim::{Cluster, MachineModel};

    #[test]
    fn ownership_is_sticky_and_survivor_only() {
        let own = TaskOwnership::new(4, 13);
        // Fault-free: a rotation of round-robin covering all ranks.
        let homes: Vec<usize> = (0..8).map(|k| own.owner(k, &[])).collect();
        for r in 0..4 {
            assert!(homes.contains(&r), "rank {r} owns nothing");
        }
        // Kill rank homes[2]: only its tasks move, everyone else's stay.
        let dead = homes[2];
        for (k, &h) in homes.iter().enumerate() {
            let now = own.owner(k, &[dead]);
            if h == dead {
                assert_ne!(now, dead, "task {k} still owned by dead rank");
            } else {
                assert_eq!(now, h, "task {k} moved although its owner survived");
            }
        }
        // Reassignment is deterministic and survivor-valued.
        assert_eq!(own.owner(2, &[dead]), own.owner(2, &[dead]));
        // owned_tasks partitions the task range.
        let failed = [dead];
        let mut all: Vec<usize> = (0..4)
            .filter(|r| !failed.contains(r))
            .flat_map(|r| own.owned_tasks(r, 8, &failed))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
        assert!(own.owned_tasks(dead, 8, &failed).is_empty());
    }

    #[test]
    fn different_seeds_rotate_the_assignment() {
        // Small adjacent seeds can hash to the same rotation mod world;
        // assert instead that *some* seed in a small spread rotates away
        // from seed 1's assignment.
        let a = TaskOwnership::new(5, 1);
        let map_a: Vec<usize> = (0..5).map(|k| a.owner(k, &[])).collect();
        let rotated = (2u64..10).any(|s| {
            let b = TaskOwnership::new(5, s);
            (0..5).map(|k| b.owner(k, &[])).collect::<Vec<_>>() != map_a
        });
        assert!(
            rotated,
            "seed spread 2..10 should produce a different rotation"
        );
    }

    #[test]
    fn fallback_plan_matches_round0_ownership() {
        let own = TaskOwnership::new(3, 7);
        let plan = degraded_fallback_plan(&[1], &own, 6, 6, 7);
        for k in 0..6 {
            assert_eq!(plan.selection_failed(k), own.owner(k, &[]) == 1);
            assert_eq!(plan.estimation_failed(k), own.owner(k, &[]) == 1);
        }
    }

    #[test]
    fn report_json_is_deterministic_and_complete() {
        let rep = RecoveryReport {
            world: 4,
            max_rounds: 2,
            rounds_attempted: 2,
            failed_ranks: vec![1],
            reassigned_selection: vec![0, 3],
            reassigned_estimation: vec![2],
            degraded_fallback: false,
        };
        let a = rep.to_json().to_string_compact();
        let b = rep.to_json().to_string_compact();
        assert_eq!(a, b);
        for key in [
            "world",
            "max_rounds",
            "rounds_attempted",
            "failed_ranks",
            "reassigned_selection",
            "reassigned_estimation",
            "degraded_fallback",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
    }

    #[test]
    fn blob_records_roundtrip() {
        let mut blob = Vec::new();
        push_task_record(&mut blob, 3, &[1.5, -2.0]);
        push_task_record(
            &mut blob,
            0,
            &encode_index_lists(&[vec![1, 4], vec![], vec![2]]),
        );
        let recs = parse_task_records(&blob);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (3, vec![1.5, -2.0]));
        assert_eq!(
            decode_index_lists(&recs[1].1),
            vec![vec![1, 4], vec![], vec![2]]
        );
    }

    #[test]
    fn exchange_survives_transient_window_faults() {
        // Rank 1's first get is dropped and rank 2's first is corrupted;
        // both retries verify, and every rank ends with all three blobs.
        let plan = FaultPlan::new(0)
            .drop_window_op(1, 0)
            .corrupt_window_op(2, 0);
        let cluster = Cluster::new(3, MachineModel::deterministic()).with_fault_plan(plan);
        let report = cluster.run(|ctx, comm| {
            let rank = comm.rank();
            let blob = vec![rank as f64 * 10.0, 1.0 + rank as f64];
            let rank_map: Vec<usize> = (0..3).collect();
            exchange_blobs(ctx, comm, blob, &rank_map, 4)
        });
        for blobs in &report.results {
            assert_eq!(blobs.len(), 3);
            for (r, b) in blobs.iter().enumerate() {
                assert_eq!(b, &vec![r as f64 * 10.0, 1.0 + r as f64]);
            }
        }
    }

    #[test]
    fn exchange_exhaustion_is_a_typed_internal_error() {
        // Rank 1 drops every one of its 3 attempts against rank 0's blob:
        // the budget exhausts and the failure surfaces as Internal (which
        // the recovery driver treats as fatal, not retryable).
        let plan = FaultPlan::new(0)
            .drop_window_op(1, 0)
            .drop_window_op(1, 1)
            .drop_window_op(1, 2);
        let cluster = Cluster::new(2, MachineModel::deterministic()).with_fault_plan(plan);
        let err = match cluster.try_run(|ctx, comm| {
            let rank = comm.rank();
            let rank_map: Vec<usize> = (0..2).collect();
            exchange_blobs(ctx, comm, vec![rank as f64], &rank_map, 3)
        }) {
            Ok(_) => panic!("exhausted budget must fail the run"),
            Err(e) => e,
        };
        assert!(err
            .failures
            .iter()
            .any(|f| matches!(f.error, Some(MpiError::Internal { .. }))));
    }
}
