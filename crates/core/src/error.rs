//! Error types for the fallible fitting API.
//!
//! [`try_fit_uoi_lasso`](crate::uoi_lasso::try_fit_uoi_lasso) and
//! [`try_fit_uoi_var`](crate::uoi_var::try_fit_uoi_var) report every
//! invalid-input condition through [`UoiError`] instead of panicking; the
//! original `fit_*` entry points remain as thin panicking wrappers for
//! callers that prefer the assert-style contract.

use std::fmt;

/// Everything that can go wrong before a UoI fit starts: structural
/// problems with the data or an invalid configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UoiError {
    /// The design matrix has zero rows or zero columns.
    EmptyDesign,
    /// Fewer samples than the algorithm can resample (`n < min`).
    TooFewSamples { n: usize, min: usize },
    /// `x` and `y` disagree on the number of samples.
    DimensionMismatch { expected: usize, got: usize },
    /// A NaN or infinity in the named input.
    NonFiniteInput(&'static str),
    /// The time series is too short for the requested VAR order.
    SeriesTooShort { n: usize, min: usize },
    /// A configuration field failed validation.
    InvalidConfig(String),
    /// Too few bootstraps survived fault injection for the named stage to
    /// proceed under the configured quorum rule.
    QuorumLost {
        stage: &'static str,
        surviving: usize,
        required: usize,
    },
    /// The run was preempted after `completed` newly computed bootstrap
    /// tasks (checkpoint `abort_after` hook); completed work is on disk
    /// and a rerun resumes from it.
    Interrupted { completed: usize },
    /// A checkpoint file could not be written.
    Checkpoint(String),
    /// A recovering fit hit an unrecoverable failure: the fault could
    /// not be attributed to a specific rank, or a runtime invariant
    /// broke mid-recovery. Re-executing cannot help.
    Unrecoverable(String),
    /// A speculative replica's result differed bitwise from its owner's.
    /// Tasks are pure functions of `(data, config, task index)`, so this
    /// is never a scheduling artifact — it is silent corruption, and the
    /// fit refuses to pick a winner.
    SpeculationDivergence { stage: String, task: usize },
    /// A numerical breakdown the resilience ladder could not absorb, or
    /// an input the validation pass rejected under
    /// [`ValidationPolicy::Reject`](uoi_data::ValidationPolicy). `detail`
    /// names the first offending coordinate or the exhausted fallback
    /// rung.
    Numerical {
        stage: &'static str,
        detail: String,
    },
}

impl fmt::Display for UoiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UoiError::EmptyDesign => write!(f, "design matrix is empty"),
            UoiError::TooFewSamples { n, min } => {
                write!(f, "need at least {min} samples, got {n}")
            }
            UoiError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "response length {got} does not match {expected} design rows"
                )
            }
            UoiError::NonFiniteInput(what) => {
                write!(f, "non-finite value (NaN or infinity) in {what}")
            }
            UoiError::SeriesTooShort { n, min } => {
                write!(
                    f,
                    "series of {n} observations is too short; need more than {min}"
                )
            }
            UoiError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            UoiError::QuorumLost {
                stage,
                surviving,
                required,
            } => write!(
                f,
                "quorum lost in {stage}: only {surviving} bootstraps survived, need {required}"
            ),
            UoiError::Interrupted { completed } => {
                write!(
                    f,
                    "run interrupted after {completed} bootstrap tasks (resumable)"
                )
            }
            UoiError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
            UoiError::Unrecoverable(msg) => write!(f, "unrecoverable failure: {msg}"),
            UoiError::SpeculationDivergence { stage, task } => write!(
                f,
                "speculative replica diverged from owner result for task {task} in {stage} \
                 (silent corruption tripwire)"
            ),
            UoiError::Numerical { stage, detail } => {
                write!(f, "numerical failure in {stage}: {detail}")
            }
        }
    }
}

impl std::error::Error for UoiError {}

impl From<uoi_solvers::InvalidConfig> for UoiError {
    fn from(e: uoi_solvers::InvalidConfig) -> Self {
        UoiError::InvalidConfig(e.0)
    }
}

impl From<uoi_data::DataError> for UoiError {
    fn from(e: uoi_data::DataError) -> Self {
        UoiError::Numerical {
            stage: "validation",
            detail: e.to_string(),
        }
    }
}

/// `true` iff every element of `v` is finite.
pub(crate) fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        assert!(UoiError::EmptyDesign.to_string().contains("empty"));
        assert!(UoiError::TooFewSamples { n: 2, min: 4 }
            .to_string()
            .contains("at least 4"));
        assert!(UoiError::DimensionMismatch {
            expected: 10,
            got: 7
        }
        .to_string()
        .contains("7"));
        assert!(UoiError::NonFiniteInput("y").to_string().contains("y"));
        assert!(UoiError::SeriesTooShort { n: 3, min: 5 }
            .to_string()
            .contains("short"));
        let div = UoiError::SpeculationDivergence {
            stage: "lasso.sel".into(),
            task: 4,
        }
        .to_string();
        assert!(div.contains("task 4") && div.contains("lasso.sel"), "{div}");
    }

    #[test]
    fn solver_config_error_converts() {
        let e: UoiError = uoi_solvers::InvalidConfig("rho must be positive".into()).into();
        assert_eq!(e, UoiError::InvalidConfig("rho must be positive".into()));
    }
}
