//! VAR(d) → multivariate least-squares rearrangement (paper eqs. 7–9).
//!
//! From a series `{X_t}` the regression pair is built as
//! `Y = X B + E` with `Y: (N-d) x p` (eq. 7), `X: (N-d) x (dp)` of lagged
//! values (eq. 8), and `B = (A_1 ... A_d)'` stacked `(dp) x p`. The
//! vectorised form `vec Y = (I_p ⊗ X) vec B + vec E` (eq. 9) turns the
//! problem into one large sparse LASSO; [`uoi_linalg::IdentityKron`]
//! represents `(I ⊗ X)` without materialising it.
//!
//! Rows here run in *forward* time order (`t = d .. N-1`); the paper's
//! eq. 7 lists them reversed, which is an inconsequential row permutation
//! of the least-squares problem.

use uoi_linalg::{IdentityKron, Matrix};

/// The regression rearrangement of a VAR(d) problem.
#[derive(Debug, Clone)]
pub struct VarRegression {
    /// Response matrix `(N-d) x p` (eq. 7).
    pub y: Matrix,
    /// Lagged design matrix `(N-d) x (dp)` (eq. 8).
    pub x: Matrix,
    /// Lag order.
    pub order: usize,
}

impl VarRegression {
    /// Build `Y`/`X` from an `N x p` series (row `t` = observation `X_t`).
    pub fn build(series: &Matrix, order: usize) -> VarRegression {
        let (n, p) = series.shape();
        assert!(order >= 1, "VAR order must be >= 1");
        assert!(n > order, "need more than `order` observations");
        let rows = n - order;
        let mut y = Matrix::zeros(rows, p);
        let mut x = Matrix::zeros(rows, order * p);
        for t in order..n {
            let r = t - order;
            y.row_mut(r).copy_from_slice(series.row(t));
            for lag in 1..=order {
                let src = series.row(t - lag);
                let dst = &mut x.row_mut(r)[(lag - 1) * p..lag * p];
                dst.copy_from_slice(src);
            }
        }
        VarRegression { y, x, order }
    }

    /// Node count `p`.
    pub fn dim(&self) -> usize {
        self.y.cols()
    }

    /// Effective sample count `N - d`.
    pub fn samples(&self) -> usize {
        self.y.rows()
    }

    /// Vectorised response `vec Y` (column stacking, eq. 9 LHS).
    pub fn vec_y(&self) -> Vec<f64> {
        self.y.vectorize()
    }

    /// The `(I_p ⊗ X)` operator of eq. 9.
    pub fn kron_design(&self) -> IdentityKron {
        IdentityKron::new(self.x.clone(), self.dim())
    }

    /// The "problem size" the paper reports: bytes of the *dense*
    /// vectorised design (this is what scales ≈ p^3).
    pub fn vectorized_problem_bytes(&self) -> u64 {
        self.kron_design().dense_bytes()
    }

    /// Gather the regression restricted to a row subset (bootstrap
    /// resample of regression rows; block bootstrap keeps lag-consistent
    /// runs together).
    pub fn gather(&self, rows: &[usize]) -> VarRegression {
        VarRegression {
            y: self.y.gather_rows(rows),
            x: self.x.gather_rows(rows),
            order: self.order,
        }
    }

    /// Restrict to a contiguous row range (temporal train/eval split).
    pub fn slice(&self, range: std::ops::Range<usize>) -> VarRegression {
        VarRegression {
            y: self.y.rows_range(range.start, range.end),
            x: self.x.rows_range(range.start, range.end),
            order: self.order,
        }
    }
}

/// Partition the vectorised coefficient estimate (length `d*p*p`, column
/// stacking of `B: (dp) x p`) back into `(A_1, ..., A_d)` — Algorithm 2
/// line 31.
///
/// `vec B` stacks the columns of `B`; column `i` of `B` holds, at position
/// `(lag-1)*p + c`, the coefficient `A_lag[i, c]`.
pub fn partition_coefficients(vec_b: &[f64], p: usize, order: usize) -> Vec<Matrix> {
    assert_eq!(vec_b.len(), order * p * p, "coefficient length mismatch");
    let dp = order * p;
    let mut a_mats = vec![Matrix::zeros(p, p); order];
    for i in 0..p {
        // Column i of B occupies vec_b[i*dp .. (i+1)*dp].
        let col = &vec_b[i * dp..(i + 1) * dp];
        for lag in 0..order {
            for c in 0..p {
                a_mats[lag][(i, c)] = col[lag * p + c];
            }
        }
    }
    a_mats
}

/// Inverse of [`partition_coefficients`]: flatten `(A_1, ..., A_d)` into
/// `vec B`.
pub fn flatten_coefficients(a_mats: &[Matrix]) -> Vec<f64> {
    assert!(!a_mats.is_empty());
    let p = a_mats[0].rows();
    let order = a_mats.len();
    let dp = order * p;
    let mut v = vec![0.0; dp * p];
    for i in 0..p {
        for (lag, a) in a_mats.iter().enumerate() {
            for c in 0..p {
                v[i * dp + lag * p + c] = a[(i, c)];
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use uoi_data::{VarConfig, VarProcess};
    use uoi_linalg::{gemm, gemv};

    #[test]
    fn build_small_var1() {
        // Series rows X_0..X_3, p = 2.
        let series = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0], &[4.0, 40.0]]);
        let reg = VarRegression::build(&series, 1);
        assert_eq!(reg.samples(), 3);
        assert_eq!(reg.y.row(0), &[2.0, 20.0]); // X_1
        assert_eq!(reg.x.row(0), &[1.0, 10.0]); // X_0
        assert_eq!(reg.y.row(2), &[4.0, 40.0]);
        assert_eq!(reg.x.row(2), &[3.0, 30.0]);
    }

    #[test]
    fn build_var2_lag_layout() {
        let series = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, -2.0], &[3.0, -3.0], &[4.0, -4.0]]);
        let reg = VarRegression::build(&series, 2);
        assert_eq!(reg.samples(), 2);
        assert_eq!(reg.x.cols(), 4);
        // Row for t=2: [X_1 | X_0].
        assert_eq!(reg.x.row(0), &[2.0, -2.0, 1.0, -1.0]);
        assert_eq!(reg.y.row(0), &[3.0, -3.0]);
    }

    #[test]
    fn noiseless_var_satisfies_y_eq_xb() {
        // Simulate a noiseless VAR(1): Y must equal X B exactly.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 0.5;
        a[(1, 0)] = 0.3;
        a[(2, 1)] = -0.4;
        let proc = VarProcess::from_coeffs(vec![a.clone()], 0.0);
        // noise_std = 0 → dynamics decay to 0; seed initial via small noise
        // then zero: instead simulate with tiny noise and check residual is
        // tiny relative to signal.
        let proc_noisy = VarProcess::from_coeffs(vec![a.clone()], 1.0);
        let series = proc_noisy.simulate(200, 20, 3);
        let reg = VarRegression::build(&series, 1);
        // B = A' for VAR(1): B[(c, i)] = A[i, c].
        let b = a.transpose();
        let pred = gemm(&reg.x, &b);
        // Residual = noise, which has unit variance: check the regression
        // identity by reconstructing Y - X B ≈ U (bounded, uncorrelated
        // with X). Sanity: with the true A the residual variance per entry
        // ≈ 1.
        let mut resid = reg.y;
        resid.sub_assign(&pred);
        let var = resid.frobenius_norm().powi(2) / resid.len() as f64;
        assert!((var - 1.0).abs() < 0.2, "residual variance {var}");
        let _ = proc;
    }

    #[test]
    fn vec_form_matches_matrix_form() {
        let series = Matrix::from_fn(20, 3, |t, j| ((t * 3 + j * 7) % 11) as f64 - 5.0);
        let reg = VarRegression::build(&series, 2);
        let kron = reg.kron_design();
        // vec(X B) == (I ⊗ X) vec(B) for arbitrary B.
        let b = Matrix::from_fn(6, 3, |i, j| (i as f64) * 0.1 - (j as f64) * 0.2);
        let lhs = gemm(&reg.x, &b).vectorize();
        let rhs = kron.matvec(&b.vectorize());
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-12);
        }
        assert_eq!(reg.vec_y().len(), kron.shape().0);
    }

    #[test]
    fn partition_flatten_roundtrip() {
        let a1 = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let a2 = Matrix::from_fn(3, 3, |i, j| -((i + j) as f64));
        let v = flatten_coefficients(&[a1.clone(), a2.clone()]);
        let back = partition_coefficients(&v, 3, 2);
        assert_eq!(back[0], a1);
        assert_eq!(back[1], a2);
    }

    #[test]
    fn recover_known_coefficients_by_ols() {
        // End-to-end: simulate, build, solve vectorised OLS per column,
        // partition, compare with the generator's A.
        let proc = VarProcess::generate(&VarConfig {
            p: 5,
            order: 1,
            density: 0.3,
            noise_std: 0.3,
            seed: 11,
            ..Default::default()
        });
        let series = proc.simulate(3000, 100, 4);
        let reg = VarRegression::build(&series, 1);
        // Column-wise OLS through the Gram identity.
        let mut vec_b = vec![0.0; 5 * 5];
        for i in 0..5 {
            let yi = reg.y.col(i);
            let beta = uoi_linalg::solve_normal_equations(&reg.x, &yi, 0.0).unwrap();
            vec_b[i * 5..(i + 1) * 5].copy_from_slice(&beta);
        }
        let a_hat = partition_coefficients(&vec_b, 5, 1);
        let mut diff = a_hat[0].clone();
        diff.sub_assign(&proc.coeffs[0]);
        assert!(
            diff.max_abs() < 0.08,
            "OLS recovery error {} too large",
            diff.max_abs()
        );
        let _ = gemv(&reg.x, &vec_b[0..5]); // shape sanity
    }

    #[test]
    fn problem_size_explodes_cubically() {
        // Doubling p roughly multiplies the vectorised dense bytes by 8
        // when samples scale with p (the paper's ≈ p^3 law).
        // Fixed sample count: the vectorised dense design is
        // (N-d)p x dp^2, cubic in p.
        let series_small = Matrix::zeros(201, 50);
        let series_big = Matrix::zeros(201, 100);
        let small = VarRegression::build(&series_small, 1).vectorized_problem_bytes();
        let big = VarRegression::build(&series_big, 1).vectorized_problem_bytes();
        let ratio = big as f64 / small as f64;
        assert!((ratio - 8.0).abs() < 0.5, "p^3 scaling ratio {ratio}");
    }
}
