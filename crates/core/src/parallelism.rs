//! The multi-level parallel decomposition of paper §III: bootstrap-level
//! (`P_B`), regularisation-level (`P_lambda`), and data-parallel ADMM
//! cores, realised as nested communicator splits (Fig 3 / Fig 8 sweeps).

use uoi_mpisim::{Comm, RankCtx};

/// A `P_B x P_lambda x ADMM_cores` decomposition of a world communicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelLayout {
    /// Bootstrap groups (`P_B`).
    pub p_b: usize,
    /// Lambda groups per bootstrap group (`P_lambda`).
    pub p_lambda: usize,
}

impl ParallelLayout {
    /// The no-parallelism layout the paper uses for its multi-node scaling
    /// runs ("no `P_B` and `P_lambda` parallelism and dedicating all the
    /// cores to distributed LASSO-ADMM computation").
    pub fn admm_only() -> Self {
        Self {
            p_b: 1,
            p_lambda: 1,
        }
    }

    /// Number of ADMM cores per (bootstrap, lambda) group for a world of
    /// `world_size` ranks.
    pub fn admm_cores(&self, world_size: usize) -> usize {
        let groups = self.p_b * self.p_lambda;
        assert!(
            world_size.is_multiple_of(groups) && world_size >= groups,
            "world size {world_size} not divisible into {}x{} groups",
            self.p_b,
            self.p_lambda
        );
        world_size / groups
    }

    /// Split `world` into the nested communicators for this rank.
    pub fn split(&self, ctx: &mut RankCtx, world: &Comm) -> LayoutComms {
        let c = self.admm_cores(world.size());
        let rank = world.rank();
        let b_group = rank / (self.p_lambda * c);
        let within_b = rank % (self.p_lambda * c);
        let l_group = within_b / c;
        // The ADMM communicator: ranks sharing (b_group, l_group).
        let admm_color = (b_group * self.p_lambda + l_group) as i64;
        let admm_comm = world.split(ctx, admm_color, rank as i64);
        LayoutComms {
            b_group,
            l_group,
            admm_comm,
            layout: *self,
        }
    }

    /// Which bootstrap indices (of `total`) a bootstrap group owns
    /// (round-robin).
    pub fn bootstraps_for(&self, b_group: usize, total: usize) -> Vec<usize> {
        (0..total).filter(|k| k % self.p_b == b_group).collect()
    }

    /// Which lambda indices (of `q`) a lambda group owns (round-robin).
    pub fn lambdas_for(&self, l_group: usize, q: usize) -> Vec<usize> {
        (0..q).filter(|j| j % self.p_lambda == l_group).collect()
    }
}

/// The communicators of one rank under a [`ParallelLayout`].
pub struct LayoutComms {
    /// This rank's bootstrap-group id.
    pub b_group: usize,
    /// This rank's lambda-group id.
    pub l_group: usize,
    /// The data-parallel ADMM communicator (same `(b, lambda)` group).
    pub admm_comm: Comm,
    /// The layout that produced this.
    pub layout: ParallelLayout,
}

impl LayoutComms {
    /// True when this rank is its ADMM group's leader — the rank that
    /// contributes group results to world-level reductions.
    pub fn is_group_leader(&self) -> bool {
        self.admm_comm.rank() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uoi_mpisim::{Cluster, MachineModel};

    #[test]
    fn admm_cores_division() {
        let layout = ParallelLayout {
            p_b: 4,
            p_lambda: 2,
        };
        assert_eq!(layout.admm_cores(32), 4);
        assert_eq!(ParallelLayout::admm_only().admm_cores(7), 7);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_world_rejected() {
        ParallelLayout {
            p_b: 3,
            p_lambda: 2,
        }
        .admm_cores(8);
    }

    #[test]
    fn round_robin_assignment_covers_everything() {
        let layout = ParallelLayout {
            p_b: 3,
            p_lambda: 2,
        };
        let mut all: Vec<usize> = (0..3).flat_map(|g| layout.bootstraps_for(g, 10)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        let mut lams: Vec<usize> = (0..2).flat_map(|g| layout.lambdas_for(g, 7)).collect();
        lams.sort_unstable();
        assert_eq!(lams, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn split_produces_correct_groups() {
        // 8 ranks, 2x2 layout -> 4 groups of 2 ADMM cores.
        let layout = ParallelLayout {
            p_b: 2,
            p_lambda: 2,
        };
        let report = Cluster::new(8, MachineModel::deterministic()).run(|ctx, world| {
            let comms = layout.split(ctx, world);
            (
                comms.b_group,
                comms.l_group,
                comms.admm_comm.size(),
                comms.admm_comm.rank(),
                comms.is_group_leader(),
            )
        });
        for (wr, &(b, l, size, ar, leader)) in report.results.iter().enumerate() {
            assert_eq!(size, 2);
            assert_eq!(b, wr / 4);
            assert_eq!(l, (wr % 4) / 2);
            assert_eq!(ar, wr % 2);
            assert_eq!(leader, wr % 2 == 0);
        }
    }
}
