//! Granger-causal network extraction from fitted VAR coefficients —
//! the Fig 11 output: a directed graph with an edge `j -> i` wherever the
//! estimate of `a_ij` is nonzero, edge weight proportional to magnitude,
//! and node size proportional to degree.

use uoi_linalg::Matrix;

/// One directed edge of the Granger network.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// Source node (the *cause*: column index `j` of `A`).
    pub from: usize,
    /// Target node (the *effect*: row index `i` of `A`).
    pub to: usize,
    /// Largest-magnitude coefficient across lags.
    pub weight: f64,
    /// Lag (1-based) at which the largest-magnitude coefficient occurs.
    pub lag: usize,
}

/// A directed Granger-causal network over `p` nodes.
#[derive(Debug, Clone)]
pub struct GrangerNetwork {
    /// Node count.
    pub p: usize,
    /// Edges sorted by descending |weight|.
    pub edges: Vec<Edge>,
}

impl GrangerNetwork {
    /// Extract the network from fitted lag matrices, keeping entries with
    /// `|a| > threshold`. Self-loops (diagonal autoregression) are kept —
    /// Fig 11 plots them as node persistence — but can be filtered by the
    /// caller.
    pub fn from_coefficients(a_mats: &[Matrix], threshold: f64) -> Self {
        assert!(!a_mats.is_empty());
        let p = a_mats[0].rows();
        let mut edges = Vec::new();
        for i in 0..p {
            for j in 0..p {
                let mut best = 0.0_f64;
                let mut best_lag = 0usize;
                for (lag, a) in a_mats.iter().enumerate() {
                    let v = a[(i, j)];
                    if v.abs() > best.abs() {
                        best = v;
                        best_lag = lag + 1;
                    }
                }
                if best.abs() > threshold {
                    edges.push(Edge {
                        from: j,
                        to: i,
                        weight: best,
                        lag: best_lag,
                    });
                }
            }
        }
        edges.sort_by(|a, b| b.weight.abs().total_cmp(&a.weight.abs()));
        Self { p, edges }
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edge count excluding self-loops.
    pub fn edge_count_no_loops(&self) -> usize {
        self.edges.iter().filter(|e| e.from != e.to).count()
    }

    /// Network density over the `p^2` possible directed edges.
    pub fn density(&self) -> f64 {
        if self.p == 0 {
            0.0
        } else {
            self.edges.len() as f64 / (self.p * self.p) as f64
        }
    }

    /// In-degree of each node (how many others it depends on).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.p];
        for e in &self.edges {
            if e.from != e.to {
                d[e.to] += 1;
            }
        }
        d
    }

    /// Out-degree of each node (how many others it influences).
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.p];
        for e in &self.edges {
            if e.from != e.to {
                d[e.from] += 1;
            }
        }
        d
    }

    /// Total degree (in + out, no self-loops) — Fig 11's node sizing.
    pub fn degrees(&self) -> Vec<usize> {
        self.in_degrees()
            .into_iter()
            .zip(self.out_degrees())
            .map(|(a, b)| a + b)
            .collect()
    }

    /// 0/1 adjacency matrix (`adj[(i, j)] = 1` iff edge `j -> i`).
    pub fn adjacency(&self) -> Matrix {
        let mut m = Matrix::zeros(self.p, self.p);
        for e in &self.edges {
            m[(e.to, e.from)] = 1.0;
        }
        m
    }

    /// Sorted support of the adjacency in vectorised-coefficient index
    /// space is not provided here; for selection metrics compare
    /// [`GrangerNetwork::adjacency`] matrices elementwise.
    ///
    /// Render as Graphviz DOT with node labels, node size by degree, and
    /// edge pen-width by |weight| — the Fig 11 visualisation.
    pub fn to_dot(&self, labels: &[String]) -> String {
        assert_eq!(labels.len(), self.p, "need one label per node");
        let degrees = self.degrees();
        let max_deg = degrees.iter().copied().max().unwrap_or(0).max(1) as f64;
        let max_w = self
            .edges
            .iter()
            .map(|e| e.weight.abs())
            .fold(0.0_f64, f64::max)
            .max(1e-12);
        let mut s = String::from("digraph granger {\n  rankdir=LR;\n  node [shape=circle];\n");
        for (i, lab) in labels.iter().enumerate() {
            if degrees[i] > 0 {
                let size = 0.3 + 1.2 * degrees[i] as f64 / max_deg;
                s.push_str(&format!(
                    "  n{i} [label=\"{lab}\", width={size:.2}, fixedsize=true];\n"
                ));
            }
        }
        for e in &self.edges {
            if e.from != e.to {
                let pw = 0.5 + 3.0 * e.weight.abs() / max_w;
                s.push_str(&format!("  n{} -> n{} [penwidth={pw:.2}];\n", e.from, e.to));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_lag_net() -> GrangerNetwork {
        let mut a1 = Matrix::zeros(4, 4);
        a1[(0, 1)] = 0.5; // 1 -> 0
        a1[(2, 2)] = 0.3; // self-loop
        let mut a2 = Matrix::zeros(4, 4);
        a2[(0, 1)] = -0.8; // stronger at lag 2
        a2[(3, 0)] = 0.2; // 0 -> 3
        GrangerNetwork::from_coefficients(&[a1, a2], 0.05)
    }

    #[test]
    fn edges_and_lags() {
        let net = two_lag_net();
        assert_eq!(net.edge_count(), 3);
        assert_eq!(net.edge_count_no_loops(), 2);
        // Strongest edge first: 1 -> 0 with weight -0.8 at lag 2.
        assert_eq!(
            net.edges[0],
            Edge {
                from: 1,
                to: 0,
                weight: -0.8,
                lag: 2
            }
        );
        assert_eq!(net.edges[2].lag, 2);
    }

    #[test]
    fn degrees() {
        let net = two_lag_net();
        let ind = net.in_degrees();
        let outd = net.out_degrees();
        assert_eq!(ind[0], 1); // from node 1
        assert_eq!(outd[1], 1);
        assert_eq!(ind[3], 1);
        assert_eq!(outd[0], 1);
        assert_eq!(net.degrees()[0], 2);
    }

    #[test]
    fn threshold_prunes() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 0.04;
        a[(1, 0)] = 0.5;
        let net = GrangerNetwork::from_coefficients(std::slice::from_ref(&a), 0.05);
        assert_eq!(net.edge_count(), 1);
        let all = GrangerNetwork::from_coefficients(&[a], 0.0);
        assert_eq!(all.edge_count(), 2);
    }

    #[test]
    fn adjacency_matches_edges() {
        let net = two_lag_net();
        let adj = net.adjacency();
        assert_eq!(adj[(0, 1)], 1.0);
        assert_eq!(adj[(3, 0)], 1.0);
        assert_eq!(adj[(2, 2)], 1.0);
        assert_eq!(adj.count_nonzero(0.0), 3);
    }

    #[test]
    fn dot_output_well_formed() {
        let net = two_lag_net();
        let labels: Vec<String> = (0..4).map(|i| format!("T{i}")).collect();
        let dot = net.to_dot(&labels);
        assert!(dot.starts_with("digraph granger {"));
        assert!(dot.contains("n1 -> n0"));
        assert!(dot.contains("n0 -> n3"));
        assert!(!dot.contains("n2 -> n2"), "self-loops not drawn");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn density() {
        let net = two_lag_net();
        assert!((net.density() - 3.0 / 16.0).abs() < 1e-12);
    }
}
