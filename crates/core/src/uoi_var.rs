//! `UoI_VAR` (paper Algorithm 2): Union of Intersections for sparse
//! vector-autoregression, shared-memory implementation.
//!
//! The series is rearranged into `Y = X B + E` (eqs. 7–8) and vectorised
//! (`vec Y = (I ⊗ X) vec B`, eq. 9). Because the vectorised design is
//! block diagonal with *identical* blocks, the LASSO path decomposes into
//! `p` per-column problems sharing one cached factorisation — the
//! communication-avoiding structure §V's discussion points at; the
//! distributed implementation in [`crate::uoi_var_dist`] instead follows
//! the paper's explicit distributed-Kronecker construction. Both produce
//! identical estimates (tested).
//!
//! Temporal dependence is respected by a moving-block bootstrap over the
//! regression rows (Algorithm 2 lines 3, 17–18).

use crate::degraded::{data_words, fingerprint, CheckpointStore, DegradationReport};
use crate::error::{all_finite, UoiError};
use crate::granger::GrangerNetwork;
use crate::support::dedup_family;
#[cfg(test)]
use crate::support::intersect_many;
use crate::uoi_lasso::UoiLassoConfig;
use crate::var_matrices::{partition_coefficients, VarRegression};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use uoi_data::bootstrap::{block_bootstrap, default_block_len, resample_weights};
use uoi_data::rng::substream;
use uoi_linalg::{dot, gemv_t_weighted_multi, Matrix};
use uoi_solvers::{geometric_grid, ols_on_support_gram, support_of, LassoAdmm};
use uoi_telemetry::TraceEvent;

/// Hyperparameters of `UoI_VAR`.
#[derive(Debug, Clone)]
pub struct UoiVarConfig {
    /// VAR order `d`.
    pub order: usize,
    /// Moving-block bootstrap block length; `None` → `ceil(n^{1/3})`.
    pub block_len: Option<usize>,
    /// The shared UoI/solver knobs (`B1`, `B2`, `q`, lambda grid, ADMM).
    pub base: UoiLassoConfig,
}

impl Default for UoiVarConfig {
    fn default() -> Self {
        Self {
            order: 1,
            block_len: None,
            base: UoiLassoConfig::default(),
        }
    }
}

impl UoiVarConfig {
    /// Start a validated chainable builder:
    /// `UoiVarConfig::builder().order(2).b1(10).build()?`.
    pub fn builder() -> UoiVarConfigBuilder {
        UoiVarConfigBuilder::default()
    }

    /// Check every field (including the embedded [`UoiLassoConfig`]).
    pub fn validate(&self) -> Result<(), UoiError> {
        if self.order == 0 {
            return Err(UoiError::InvalidConfig("order must be >= 1".into()));
        }
        if let Some(bl) = self.block_len {
            if bl == 0 {
                return Err(UoiError::InvalidConfig("block_len must be >= 1".into()));
            }
        }
        self.base.validate()
    }
}

/// Chainable builder for [`UoiVarConfig`]; `build()` validates. The
/// common `base` knobs (`b1`, `b2`, `q`, `seed`, `admm`, ...) are exposed
/// directly so a full VAR setup reads as one chain.
#[derive(Debug, Clone, Default)]
pub struct UoiVarConfigBuilder {
    cfg: UoiVarConfig,
}

impl UoiVarConfigBuilder {
    pub fn order(mut self, order: usize) -> Self {
        self.cfg.order = order;
        self
    }

    pub fn block_len(mut self, block_len: Option<usize>) -> Self {
        self.cfg.block_len = block_len;
        self
    }

    pub fn base(mut self, base: UoiLassoConfig) -> Self {
        self.cfg.base = base;
        self
    }

    pub fn b1(mut self, b1: usize) -> Self {
        self.cfg.base.b1 = b1;
        self
    }

    pub fn b2(mut self, b2: usize) -> Self {
        self.cfg.base.b2 = b2;
        self
    }

    pub fn q(mut self, q: usize) -> Self {
        self.cfg.base.q = q;
        self
    }

    pub fn lambda_min_ratio(mut self, ratio: f64) -> Self {
        self.cfg.base.lambda_min_ratio = ratio;
        self
    }

    pub fn admm(mut self, admm: uoi_solvers::AdmmConfig) -> Self {
        self.cfg.base.admm = admm;
        self
    }

    pub fn support_tol(mut self, tol: f64) -> Self {
        self.cfg.base.support_tol = tol;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.base.seed = seed;
        self
    }

    pub fn intersection_frac(mut self, frac: f64) -> Self {
        self.cfg.base.intersection_frac = frac;
        self
    }

    pub fn telemetry(mut self, telemetry: uoi_telemetry::Telemetry) -> Self {
        self.cfg.base.telemetry = telemetry;
        self
    }

    pub fn degradation(mut self, degradation: crate::degraded::DegradationConfig) -> Self {
        self.cfg.base.degradation = degradation;
        self
    }

    pub fn checkpoint(mut self, checkpoint: crate::degraded::CheckpointConfig) -> Self {
        self.cfg.base.checkpoint = Some(checkpoint);
        self
    }

    pub fn build(self) -> Result<UoiVarConfig, UoiError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A fitted `UoI_VAR` model.
#[derive(Debug, Clone)]
pub struct UoiVarFit {
    /// Estimated lag matrices `(Â_1, ..., Â_d)`.
    pub a_mats: Vec<Matrix>,
    /// Estimated process mean term `μ̂ = (I - Σ Â_j) x̄`.
    pub mu: Vec<f64>,
    /// The vectorised coefficient estimate (length `d p^2`).
    pub vec_beta: Vec<f64>,
    /// Lambda grid used in selection.
    pub lambdas: Vec<f64>,
    /// Intersected support per lambda, in vectorised index space.
    pub supports_per_lambda: Vec<Vec<usize>>,
    /// Deduplicated candidate family.
    pub support_family: Vec<Vec<usize>>,
    /// Degraded-execution account, present when a fault plan was active.
    pub degradation: Option<DegradationReport>,
    /// Shrink-and-recover account, present when the fit ran through
    /// [`fit_uoi_var_recovering`](crate::uoi_var_recovering::fit_uoi_var_recovering).
    pub recovery: Option<crate::recovery::RecoveryReport>,
    /// Speculative-hedging account, present when the fit ran through the
    /// recovering pipeline with speculation enabled.
    pub speculation: Option<crate::speculation::SpeculationReport>,
    /// Numerical-health account, present when
    /// [`NumericalConfig::active`](crate::numerical::NumericalConfig::active)
    /// on `base.numerical` — jitter escalations, rho restarts,
    /// divergence outcomes, data issues, and dropped tasks.
    pub numerical: Option<uoi_telemetry::NumericalHealthReport>,
}

impl UoiVarFit {
    /// Extract the Granger network at a magnitude threshold.
    pub fn network(&self, threshold: f64) -> GrangerNetwork {
        GrangerNetwork::from_coefficients(&self.a_mats, threshold)
    }

    /// Number of nonzero coefficients across all lags.
    pub fn nnz(&self) -> usize {
        self.vec_beta.iter().filter(|v| v.abs() > 0.0).count()
    }

    /// VAR order `d` of the fitted model.
    pub fn order(&self) -> usize {
        self.a_mats.len()
    }

    /// One-step-ahead prediction from the last `d` rows of `history`
    /// (row `t` = observation at time `t`): `x̂ = μ + Σ_j A_j x_{T-j}`.
    pub fn predict_next(&self, history: &Matrix) -> Vec<f64> {
        let p = self.mu.len();
        let d = self.order();
        assert_eq!(history.cols(), p, "history dimension mismatch");
        assert!(history.rows() >= d, "need at least {d} rows of history");
        let t = history.rows();
        let mut next = self.mu.clone();
        for (lag, a) in self.a_mats.iter().enumerate() {
            let contrib = uoi_linalg::gemv(a, history.row(t - lag - 1));
            for (n, c) in next.iter_mut().zip(&contrib) {
                *n += c;
            }
        }
        next
    }

    /// Iterated multi-step forecast: `steps` rows of predictions, each
    /// feeding the next (the standard VAR point forecast).
    pub fn forecast(&self, history: &Matrix, steps: usize) -> Matrix {
        let p = self.mu.len();
        let d = self.order();
        assert!(history.rows() >= d);
        // Rolling window of the last d observations.
        let mut window = history.rows_range(history.rows() - d, history.rows());
        let mut out = Matrix::zeros(steps, p);
        for s in 0..steps {
            let next = self.predict_next(&window);
            out.row_mut(s).copy_from_slice(&next);
            // Shift the window.
            let mut new_window = Matrix::zeros(d, p);
            for r in 1..d {
                new_window.row_mut(r - 1).copy_from_slice(window.row(r));
            }
            new_window.row_mut(d - 1).copy_from_slice(&next);
            window = new_window;
        }
        out
    }

    /// Mean squared one-step prediction error over a held-out series
    /// segment (rows `d..` are predicted from their own lags).
    pub fn one_step_mse(&self, series: &Matrix) -> f64 {
        let d = self.order();
        assert!(series.rows() > d);
        let mut sse = 0.0;
        let mut n = 0usize;
        for t in d..series.rows() {
            let pred = self.predict_next(&series.rows_range(t - d, t));
            for (p_hat, &truth) in pred.iter().zip(series.row(t)) {
                sse += (p_hat - truth) * (p_hat - truth);
                n += 1;
            }
        }
        sse / n.max(1) as f64
    }
}

/// Select the VAR order by BIC over dense per-column OLS fits for
/// `d = 1 ..= max_order`: `BIC(d) = N p ln(RSS/(N p)) + d p^2 ln(N)`.
/// Returns the minimiser (the standard order-selection pre-step before a
/// UoI fit).
pub fn select_var_order(series: &Matrix, max_order: usize) -> usize {
    let (n_raw, p) = series.shape();
    assert!(max_order >= 1 && n_raw > max_order + 2);
    let means = series.col_means();
    let mut centred = series.clone();
    centred.center_cols(&means);
    let mut best = (f64::INFINITY, 1usize);
    for d in 1..=max_order {
        // Use a common effective sample count so BICs are comparable.
        let reg_full = VarRegression::build(&centred, d);
        let skip = max_order - d;
        let reg = reg_full.slice(skip..reg_full.samples());
        let n = reg.samples() as f64;
        let mut rss = 0.0;
        for i in 0..p {
            let yi = reg.y.col(i);
            let beta = match uoi_linalg::solve_normal_equations(&reg.x, &yi, 0.0) {
                Ok(b) => b,
                Err(_) => uoi_linalg::solve_normal_equations(&reg.x, &yi, 1e-8)
                    .expect("jittered normal equations"),
            };
            rss += uoi_linalg::mse(&reg.x, &beta, &yi) * n;
        }
        let np = n * p as f64;
        let bic = np * (rss / np).max(1e-300).ln() + (d * p * p) as f64 * n.ln();
        if bic < best.0 {
            best = (bic, d);
        }
    }
    best.1
}

/// Fit `UoI_VAR` on an `N x p` series, panicking on invalid input.
///
/// Thin wrapper over [`try_fit_uoi_var`] for callers that prefer the
/// assert-style contract; library code should use the fallible form.
#[deprecated(
    since = "0.6.0",
    note = "use `uoi_core::UoiVarFitter::new(cfg).fit(series)` instead"
)]
#[allow(deprecated)]
pub fn fit_uoi_var(series: &Matrix, cfg: &UoiVarConfig) -> UoiVarFit {
    try_fit_uoi_var(series, cfg).unwrap_or_else(|e| panic!("fit_uoi_var: {e}"))
}

/// Fit `UoI_VAR` on an `N x p` series (row `t` = observation at time `t`).
///
/// Columns are centred internally; `mu` restores the process mean.
///
/// Returns `Err` — and never panics — on an empty series, a series too
/// short for the requested order, non-finite values, or an invalid
/// configuration.
#[deprecated(
    since = "0.6.0",
    note = "use `uoi_core::UoiVarFitter::new(cfg).fit(series)` instead"
)]
pub fn try_fit_uoi_var(series: &Matrix, cfg: &UoiVarConfig) -> Result<UoiVarFit, UoiError> {
    if let Some(scrubbed) = cfg
        .base
        .numerical
        .prevalidate_series(series, &cfg.base.telemetry)?
    {
        validate_var_inputs(&scrubbed, cfg)?;
        return fit_inner(&scrubbed, cfg);
    }
    validate_var_inputs(series, cfg)?;
    fit_inner(series, cfg)
}

/// Input validation shared by the serial and recovering fits.
pub(crate) fn validate_var_inputs(series: &Matrix, cfg: &UoiVarConfig) -> Result<(), UoiError> {
    let (n_raw, p) = series.shape();
    if n_raw == 0 || p == 0 {
        return Err(UoiError::EmptyDesign);
    }
    cfg.validate()?;
    let d = cfg.order;
    if n_raw <= d + 4 {
        return Err(UoiError::SeriesTooShort {
            n: n_raw,
            min: d + 4,
        });
    }
    if !all_finite(series.as_slice()) {
        return Err(UoiError::NonFiniteInput("series"));
    }
    Ok(())
}

/// The shared per-fit precomputation: centred regression block, sampling
/// geometry, and lambda grid. Built identically by the serial fit and by
/// every rank of the recovering pipeline, so all downstream task bodies
/// see bit-identical inputs.
pub(crate) struct VarProblem {
    pub(crate) means: Vec<f64>,
    pub(crate) reg: VarRegression,
    pub(crate) n: usize,
    pub(crate) dp: usize,
    pub(crate) total_coef: usize,
    pub(crate) block_len: usize,
    pub(crate) lambdas: Vec<f64>,
}

pub(crate) fn build_var_problem(series: &Matrix, cfg: &UoiVarConfig) -> VarProblem {
    let (_, p) = series.shape();
    let d = cfg.order;
    let means = series.col_means();
    let mut centred = series.clone();
    centred.center_cols(&means);
    let reg = VarRegression::build(&centred, d);
    let n = reg.samples();
    let dp = d * p;
    let total_coef = dp * p;
    let block_len = cfg.block_len.unwrap_or_else(|| default_block_len(n));
    let base = &cfg.base;

    // Lambda grid: the vectorised lambda_max is max_i ||X^T Y_i||_inf.
    let mut lmax = 0.0_f64;
    for i in 0..p {
        let yi = reg.y.col(i);
        lmax = lmax.max(uoi_solvers::lambda_max(&reg.x, &yi));
    }
    let lmax = lmax.max(1e-12);
    let lambdas = geometric_grid(lmax, base.lambda_min_ratio * lmax, base.q);

    VarProblem {
        means,
        reg,
        n,
        dp,
        total_coef,
        block_len,
        lambdas,
    }
}

/// The block-bootstrap multiplicity weights of VAR selection bootstrap
/// `k` — the resampling half of [`var_selection_task`], split out so the
/// batched fit can draw every resample up front and build all Grams in
/// one pass over the regression block.
pub(crate) fn var_selection_weights(
    prob: &VarProblem,
    base: &UoiLassoConfig,
    k: usize,
) -> Vec<f64> {
    let mut rng = substream(base.seed, k as u64);
    let rows = block_bootstrap(&mut rng, prob.n, prob.n, prob.block_len);
    resample_weights(&rows, prob.n)
}

/// The solve half of [`var_selection_task`]: one shared factorisation of
/// the (upper-stored) weighted Gram, `p` column paths sharing one pass
/// over the regression block for their rhs vectors, vectorised support
/// indices.
pub(crate) fn var_selection_solve(
    prob: &VarProblem,
    base: &UoiLassoConfig,
    p: usize,
    gram: Matrix,
    w: &[f64],
    k: usize,
) -> Vec<Vec<usize>> {
    // A task that falls off the numerical fallback ladder degrades to
    // empty supports on every lambda (callers that require a payload per
    // task still complete); serial `fit_inner` uses the checked variant
    // and drops the task into the quorum accounting instead.
    var_selection_solve_checked(prob, base, p, gram, w, k)
        .unwrap_or_else(|| vec![Vec::new(); prob.lambdas.len()])
}

/// [`var_selection_solve`] with drop semantics: `None` means the task
/// fell off the end of the numerical fallback ladder. With resilience
/// disabled this is the historical unguarded solve and never `None`.
pub(crate) fn var_selection_solve_checked(
    prob: &VarProblem,
    base: &UoiLassoConfig,
    p: usize,
    gram: Matrix,
    w: &[f64],
    k: usize,
) -> Option<Vec<Vec<usize>>> {
    let tracing = base.telemetry.tracing_enabled();
    let mut admm = base.admm.clone();
    admm.capture_curve = tracing;
    let ys: Vec<Vec<f64>> = (0..p).map(|i| prob.reg.y.col(i)).collect();
    let yrefs: Vec<&[f64]> = ys.iter().map(|v| v.as_slice()).collect();
    let xtys = gemv_t_weighted_multi(&prob.reg.x, w, &yrefs);

    // Per-column lambda paths: one shared factorisation, p solves.
    let mut col_sols: Vec<Vec<uoi_solvers::AdmmSolution>> = Vec::with_capacity(p);
    if !base.numerical.enabled {
        let mut solver = LassoAdmm::from_gram(gram, admm);
        if let Some(m) = base.telemetry.metrics() {
            solver = solver.with_metrics(m);
        }
        for xty in &xtys {
            col_sols.push(solver.solve_path_with_rhs(xty, &prob.lambdas));
        }
    } else {
        let ledger = base.numerical.ledger();
        let mut solver =
            match uoi_solvers::ResilientLasso::from_gram(gram, admm, base.numerical.resilience) {
                Ok(s) => s,
                Err(e) => {
                    if let uoi_solvers::SolverError::Factorization(b) = &e {
                        ledger.note_factor(
                            &base.telemetry,
                            "selection",
                            k,
                            &uoi_solvers::FactorHealth {
                                attempts: u32::MAX,
                                jitter: b.last_jitter,
                                condest: None,
                            },
                        );
                    }
                    ledger.note_task_dropped(&base.telemetry, "selection", k, &e.to_string());
                    return None;
                }
            };
        if let Some(m) = base.telemetry.metrics() {
            solver = solver.with_metrics(m);
        }
        // One shared factorisation: record its health once, then fold
        // the p column paths' divergence ledgers together (dedup by
        // lambda — several columns may trip on the same lambda).
        ledger.note_factor(&base.telemetry, "selection", k, &solver.factor_health());
        let mut restarts = 0u32;
        let mut recovered = std::collections::BTreeSet::new();
        let mut diverged = std::collections::BTreeSet::new();
        for xty in &xtys {
            let (sols, health) = solver.solve_path_with_rhs(xty, &prob.lambdas);
            restarts += health.rho_restarts;
            recovered.extend(health.recovered);
            diverged.extend(health.diverged);
            col_sols.push(sols);
        }
        let path = uoi_solvers::PathHealth {
            rho_restarts: restarts,
            recovered: recovered.into_iter().collect(),
            diverged: diverged.into_iter().collect(),
            ..uoi_solvers::PathHealth::default()
        };
        ledger.note_path(&base.telemetry, "selection", k, &path);
        if !path.diverged.is_empty() {
            ledger.note_task_dropped(&base.telemetry, "selection", k, "divergence_unrecovered");
            return None;
        }
    }

    // supports[j] = vectorised support at lambda_j. A VAR selection
    // bootstrap is p column paths; the convergence record for lambda_j
    // aggregates across them: worst-case iteration count and residuals,
    // converged only when every column converged, and the residual curve
    // of the slowest column.
    let mut supports = vec![Vec::new(); prob.lambdas.len()];
    let mut aggs: Vec<(usize, bool, f64, f64, Vec<f64>)> = if tracing {
        vec![(0, true, 0.0, 0.0, Vec::new()); prob.lambdas.len()]
    } else {
        Vec::new()
    };
    for (i, sols) in col_sols.into_iter().enumerate() {
        for (j, sol) in sols.into_iter().enumerate() {
            if tracing {
                let a = &mut aggs[j];
                if i == 0 || sol.iterations > a.0 {
                    a.0 = sol.iterations;
                    a.4 = sol.curve;
                }
                a.1 &= sol.converged;
                a.2 = a.2.max(sol.primal_residual);
                a.3 = a.3.max(sol.dual_residual);
            }
            for idx in support_of(&sol.beta, base.support_tol) {
                supports[j].push(i * prob.dp + idx);
            }
        }
    }
    for s in &mut supports {
        s.sort_unstable();
    }
    if tracing {
        for (j, (iterations, converged, primal, dual, curve)) in aggs.into_iter().enumerate() {
            base.telemetry.record_with(|| TraceEvent::Convergence {
                rank: 0,
                stage: "selection",
                bootstrap: k,
                lambda_idx: j,
                lambda: prob.lambdas[j],
                iterations,
                max_iter: base.admm.max_iter,
                converged,
                primal_residual: primal,
                dual_residual: dual,
                support: supports[j].clone(),
                curve,
                t: 0.0,
            });
        }
    }
    Some(supports)
}

/// The full VAR selection task body for bootstrap `k` (Algorithm 2 lines
/// 1–13). A batch-of-one through the batched Gram engine, so it stays
/// bit-identical to the fit's multi-bootstrap path; shared with the
/// recovering pipeline, which re-executes bootstraps one at a time.
pub(crate) fn var_selection_task(
    prob: &VarProblem,
    base: &UoiLassoConfig,
    p: usize,
    k: usize,
) -> Vec<Vec<usize>> {
    let w = var_selection_weights(prob, base, k);
    let gram = uoi_linalg::gram_batch(&prob.reg.x, &[Some(w.as_slice())])
        .pop()
        .expect("batch of one")
        .into_upper();
    var_selection_solve(prob, base, p, gram, &w, k)
}

/// Union-projected estimation inputs (Algorithm 2 lines 14–30 setup):
/// the regression design gathered onto the family's union of lag columns
/// plus the family re-indexed per response column.
pub(crate) struct VarEstimationCtx {
    pub(crate) union_cols: Vec<usize>,
    pub(crate) u: usize,
    pub(crate) xu: Matrix,
    pub(crate) ys: Vec<Vec<f64>>,
    pub(crate) family_cols: Vec<Vec<Vec<usize>>>,
}

pub(crate) fn var_estimation_setup(
    support_family: &[Vec<usize>],
    prob: &VarProblem,
    p: usize,
) -> VarEstimationCtx {
    let dp = prob.dp;
    let mut union_cols: Vec<usize> = support_family.iter().flatten().map(|&s| s % dp).collect();
    union_cols.sort_unstable();
    union_cols.dedup();
    let u = union_cols.len();
    let mut col_pos = vec![usize::MAX; dp];
    for (a, &c) in union_cols.iter().enumerate() {
        col_pos[c] = a;
    }
    let xu = prob.reg.x.gather_cols(&union_cols);
    let ys: Vec<Vec<f64>> = (0..p).map(|i| prob.reg.y.col(i)).collect();
    // family_cols[f][i] = union-space support of response column i.
    let family_cols: Vec<Vec<Vec<usize>>> = support_family
        .iter()
        .map(|support| {
            let mut per_col = vec![Vec::new(); p];
            for &s in support {
                per_col[s / dp].push(col_pos[s % dp]);
            }
            per_col
        })
        .collect();
    VarEstimationCtx {
        union_cols,
        u,
        xu,
        ys,
        family_cols,
    }
}

/// The resampling half of [`var_estimation_task`]: block-bootstrap
/// multiplicity weights, out-of-bag evaluation rows, and the training row
/// count of estimation resample `k`.
pub(crate) fn var_estimation_resample(
    prob: &VarProblem,
    base: &UoiLassoConfig,
    k: usize,
) -> (Vec<f64>, Vec<usize>, usize) {
    let mut rng = substream(base.seed, 20_000 + k as u64);
    let (train_rows, eval_rows) = block_bootstrap_with_oob(&mut rng, prob.n, prob.block_len);
    let n_train = train_rows.len();
    let w = resample_weights(&train_rows, prob.n);
    (w, eval_rows, n_train)
}

/// The scoring half of [`var_estimation_task`] (Algorithm 2 lines 20–28):
/// given the (upper-stored) weighted union-Gram and per-column rhs
/// vectors, solve every candidate per-column support by sub-Gram
/// extraction, score on the out-of-bag rows, and return the winner in
/// vectorised coordinates.
pub(crate) fn var_estimation_score(
    ctx: &VarEstimationCtx,
    prob: &VarProblem,
    base: &UoiLassoConfig,
    p: usize,
    gram_u: &Matrix,
    xty_u: &[Vec<f64>],
    eval_rows: &[usize],
    n_train: usize,
    k: usize,
) -> Vec<f64> {
    let u = ctx.u;
    let mut best: Option<(f64, Vec<f64>)> = None;
    for (c, per_col) in ctx.family_cols.iter().enumerate() {
        // Column i's union-space coefficients at i*u..(i+1)*u.
        let mut beta_u = vec![0.0; p * u];
        for (i, cols) in per_col.iter().enumerate() {
            if cols.is_empty() {
                continue;
            }
            // Guarded OLS on demand: singular per-column sub-Grams climb
            // the jitter ladder and report per candidate, mirroring the
            // LASSO estimation step.
            let bi = if base.numerical.enabled {
                let (bi, health) =
                    uoi_solvers::ols_on_support_gram_health(gram_u, &xty_u[i], cols, n_train);
                if health != uoi_solvers::FactorHealth::clean() {
                    base.numerical.ledger().note_candidate_factor(
                        &base.telemetry,
                        "estimation",
                        k,
                        c,
                        &health,
                    );
                }
                bi
            } else {
                ols_on_support_gram(gram_u, &xty_u[i], cols, n_train)
            };
            beta_u[i * u..(i + 1) * u].copy_from_slice(&bi);
        }
        let mut total = 0.0;
        for i in 0..p {
            let bi = &beta_u[i * u..(i + 1) * u];
            let mut sse = 0.0;
            for &e in eval_rows {
                let d = dot(ctx.xu.row(e), bi) - ctx.ys[i][e];
                sse += d * d;
            }
            total += sse / eval_rows.len() as f64;
        }
        let loss = total / p as f64;
        if best.as_ref().is_none_or(|(l, _)| loss < *l) {
            best = Some((loss, beta_u));
        }
    }
    // Embed the winner back into vectorised coordinates.
    let mut full = vec![0.0; prob.total_coef];
    if let Some((_, bu)) = best {
        for i in 0..p {
            for (a, &c) in ctx.union_cols.iter().enumerate() {
                full[i * prob.dp + c] = bu[i * u + a];
            }
        }
    }
    full
}

/// The full VAR estimation task body for resample `k` (Algorithm 2 lines
/// 17–28). A batch-of-one through the batched Gram engine, bit-identical
/// to the fit's multi-resample path; shared with the recovering pipeline.
pub(crate) fn var_estimation_task(
    ctx: &VarEstimationCtx,
    prob: &VarProblem,
    base: &UoiLassoConfig,
    p: usize,
    k: usize,
) -> Vec<f64> {
    let (w, eval_rows, n_train) = var_estimation_resample(prob, base, k);
    let gram_u = uoi_linalg::gram_batch(&ctx.xu, &[Some(w.as_slice())])
        .pop()
        .expect("batch of one")
        .into_upper();
    let yrefs: Vec<&[f64]> = ctx.ys.iter().map(|v| v.as_slice()).collect();
    let xty_u = gemv_t_weighted_multi(&ctx.xu, &w, &yrefs);
    let full = var_estimation_score(ctx, prob, base, p, &gram_u, &xty_u, &eval_rows, n_train, k);
    crate::uoi_lasso::record_estimation_convergence(&base.telemetry, k);
    full
}

/// Average the winning vectorised estimates and derive the lag matrices
/// and process-mean term `μ = (I - Σ A_j) x̄`.
pub(crate) fn var_average(
    best_estimates: &[&Vec<f64>],
    total_coef: usize,
    p: usize,
    d: usize,
    means: &[f64],
) -> (Vec<f64>, Vec<Matrix>, Vec<f64>) {
    let effective_b2 = best_estimates.len();
    let mut vec_beta = vec![0.0; total_coef];
    for est in best_estimates {
        for (b, e) in vec_beta.iter_mut().zip(est.iter()) {
            *b += e;
        }
    }
    for b in &mut vec_beta {
        *b /= effective_b2 as f64;
    }
    let a_mats = partition_coefficients(&vec_beta, p, d);
    // mu = (I - sum A_j) * mean.
    let mut mu = means.to_vec();
    for a in &a_mats {
        let shift = uoi_linalg::gemv(a, means);
        for (m, s) in mu.iter_mut().zip(&shift) {
            *m -= s;
        }
    }
    (vec_beta, a_mats, mu)
}

/// The validated fit body (inputs already checked).
pub(crate) fn fit_inner(series: &Matrix, cfg: &UoiVarConfig) -> Result<UoiVarFit, UoiError> {
    let (_, p) = series.shape();
    let d = cfg.order;
    let base = &cfg.base;

    let prob = build_var_problem(series, cfg);
    let means = prob.means.clone();
    let total_coef = prob.total_coef;
    let block_len = prob.block_len;
    let lambdas = prob.lambdas.clone();

    // Degraded-mode / checkpoint machinery (mirrors `uoi_lasso`; the
    // "var_" stage prefix keeps the two algorithms' checkpoints apart).
    let plan = base.degradation.plan.as_ref();
    let store = match &base.checkpoint {
        Some(ck) => {
            let words = [
                base.seed,
                base.q as u64,
                base.lambda_min_ratio.to_bits(),
                base.support_tol.to_bits(),
                base.admm.rho.to_bits(),
                base.admm.max_iter as u64,
                base.admm.abstol.to_bits(),
                base.admm.reltol.to_bits(),
                d as u64,
                block_len as u64,
                series.rows() as u64,
                series.cols() as u64,
            ];
            let fp = fingerprint(words.into_iter().chain(data_words(series.as_slice())));
            Some(CheckpointStore::open(&ck.dir, fp)?.with_telemetry(&base.telemetry))
        }
        None => None,
    };
    let budget = base
        .checkpoint
        .as_ref()
        .and_then(|ck| ck.abort_after)
        .map(|k| AtomicI64::new(k as i64));
    let interrupted = AtomicBool::new(false);
    let computed = AtomicUsize::new(0);
    let reserve = || match &budget {
        None => true,
        Some(b) => {
            if b.fetch_sub(1, Ordering::SeqCst) > 0 {
                true
            } else {
                interrupted.store(true, Ordering::SeqCst);
                false
            }
        }
    };

    // --- Model selection (Algorithm 2 lines 1-13). ---
    // Per bootstrap: one shared factorisation, p column paths. The block
    // bootstrap also yields integer row multiplicities, so the resampled
    // regression block is never materialised — one weighted dp x dp Gram
    // and p weighted rhs vectors replace the gather. Bootstraps are first
    // triaged (fault plan, checkpoint, budget), then every surviving Gram
    // is built in ONE pass over the regression block by the batched
    // engine, and only the solves fan out.
    let selection_results: Vec<Option<Vec<Vec<usize>>>> =
        crate::uoi_lasso::traced(&base.telemetry, "uoi_var.selection", || {
            let mut slots: Vec<Option<Vec<Vec<usize>>>> = (0..base.b1).map(|_| None).collect();
            let mut to_compute: Vec<usize> = Vec::new();
            for k in 0..base.b1 {
                if plan.is_some_and(|pl| pl.selection_failed(k)) {
                    base.telemetry
                        .incr("uoi_var.degraded.selection_failures", 1);
                    continue;
                }
                if let Some(st) = &store {
                    if let Some(loaded) = st.load_supports("var_sel", k, lambdas.len()) {
                        base.telemetry.incr("uoi_var.ckpt.selection_hits", 1);
                        slots[k] = Some(loaded);
                        continue;
                    }
                }
                if reserve() {
                    to_compute.push(k);
                }
            }
            let weights: Vec<Vec<f64>> = to_compute
                .iter()
                .map(|&k| var_selection_weights(&prob, base, k))
                .collect();
            let wopts: Vec<Option<&[f64]>> = weights.iter().map(|w| Some(w.as_slice())).collect();
            let grams = uoi_linalg::gram_batch(&prob.reg.x, &wopts);
            let work: Vec<_> = to_compute
                .into_iter()
                .zip(weights.into_iter().zip(grams))
                .collect();
            let solved = work
                .into_par_iter()
                .map(|(k, (w, gram))| {
                    let supports =
                        var_selection_solve_checked(&prob, base, p, gram.into_upper(), &w, k);
                    if let (Some(st), Some(sup)) = (&store, &supports) {
                        st.save_supports("var_sel", k, sup)?;
                    }
                    computed.fetch_add(1, Ordering::SeqCst);
                    Ok((k, supports))
                })
                .collect::<Result<Vec<_>, UoiError>>()?;
            for (k, supports) in solved {
                slots[k] = supports;
            }
            Ok::<_, UoiError>(slots)
        })?;
    if interrupted.load(Ordering::SeqCst) {
        return Err(UoiError::Interrupted {
            completed: computed.load(Ordering::SeqCst),
        });
    }
    let supports_by_bootstrap: Vec<&Vec<Vec<usize>>> = selection_results.iter().flatten().collect();
    let effective_b1 = supports_by_bootstrap.len();
    base.degradation
        .check_quorum("selection", effective_b1, base.b1)?;

    let needed = crate::uoi_lasso::required_votes(base.intersection_frac, effective_b1);
    let supports_per_lambda = crate::uoi_lasso::intersect_per_lambda(
        &supports_by_bootstrap,
        lambdas.len(),
        total_coef,
        needed,
    );
    let support_family = dedup_family(supports_per_lambda.clone());

    base.telemetry
        .incr("uoi_var.selection.bootstraps", effective_b1 as u64);
    for s in &supports_per_lambda {
        base.telemetry
            .observe("uoi_var.selection.support_size", s.len() as f64);
    }
    base.telemetry
        .gauge("uoi_var.selection.family_size", support_family.len() as f64);

    // --- Model estimation (lines 14-30). ---
    // Gram-space scoring: the family only touches the union of its lag
    // columns, so the regression design is projected onto that union once;
    // each resample builds one weighted union-Gram plus p rhs vectors and
    // every candidate is solved/scored by sub-Gram extraction, with no
    // train/eval row gathering.
    let est_ctx = var_estimation_setup(&support_family, &prob, p);

    // Fold the candidate family into the estimation stage name so a
    // family change (different B1 or fault plan) invalidates the cache.
    let est_stage = store.as_ref().map(|_| {
        let fam_words = support_family
            .iter()
            .flat_map(|s| std::iter::once(s.len() as u64).chain(s.iter().map(|&f| f as u64)));
        format!("var_est_{:016x}", fingerprint(fam_words))
    });

    let est_results: Vec<Option<Vec<f64>>> =
        crate::uoi_lasso::traced(&base.telemetry, "uoi_var.estimation", || {
            let mut slots: Vec<Option<Vec<f64>>> = (0..base.b2).map(|_| None).collect();
            let mut to_compute: Vec<usize> = Vec::new();
            for k in 0..base.b2 {
                if plan.is_some_and(|pl| pl.estimation_failed(k)) {
                    base.telemetry
                        .incr("uoi_var.degraded.estimation_failures", 1);
                    continue;
                }
                if let (Some(st), Some(stage)) = (&store, &est_stage) {
                    if let Some(loaded) = st.load_coeffs(stage, k, total_coef) {
                        base.telemetry.incr("uoi_var.ckpt.estimation_hits", 1);
                        slots[k] = Some(loaded);
                        continue;
                    }
                }
                if reserve() {
                    to_compute.push(k);
                }
            }
            let resamples: Vec<_> = to_compute
                .iter()
                .map(|&k| var_estimation_resample(&prob, base, k))
                .collect();
            let wopts: Vec<Option<&[f64]>> = resamples
                .iter()
                .map(|(w, _, _)| Some(w.as_slice()))
                .collect();
            let grams = uoi_linalg::gram_batch(&est_ctx.xu, &wopts);
            let work: Vec<_> = to_compute
                .into_iter()
                .zip(resamples.into_iter().zip(grams))
                .collect();
            let solved = work
                .into_par_iter()
                .map(|(k, ((w, eval_rows, n_train), gram))| {
                    let gram_u = gram.into_upper();
                    let yrefs: Vec<&[f64]> = est_ctx.ys.iter().map(|v| v.as_slice()).collect();
                    let xty_u = gemv_t_weighted_multi(&est_ctx.xu, &w, &yrefs);
                    let full = var_estimation_score(
                        &est_ctx, &prob, base, p, &gram_u, &xty_u, &eval_rows, n_train, k,
                    );
                    crate::uoi_lasso::record_estimation_convergence(&base.telemetry, k);
                    if let (Some(st), Some(stage)) = (&store, &est_stage) {
                        st.save_coeffs(stage, k, &full)?;
                    }
                    computed.fetch_add(1, Ordering::SeqCst);
                    Ok((k, full))
                })
                .collect::<Result<Vec<_>, UoiError>>()?;
            for (k, full) in solved {
                slots[k] = Some(full);
            }
            Ok::<_, UoiError>(slots)
        })?;
    if interrupted.load(Ordering::SeqCst) {
        return Err(UoiError::Interrupted {
            completed: computed.load(Ordering::SeqCst),
        });
    }
    let best_estimates: Vec<&Vec<f64>> = est_results.iter().flatten().collect();
    let effective_b2 = best_estimates.len();
    base.degradation
        .check_quorum("estimation", effective_b2, base.b2)?;

    let (vec_beta, a_mats, mu) = var_average(&best_estimates, total_coef, p, d, &means);

    base.telemetry
        .incr("uoi_var.estimation.bootstraps", effective_b2 as u64);
    base.telemetry.gauge(
        "uoi_var.nnz",
        vec_beta.iter().filter(|v| v.abs() > 0.0).count() as f64,
    );

    let degradation = plan.map(|pl| DegradationReport {
        b1_planned: base.b1,
        b1_effective: effective_b1,
        b2_planned: base.b2,
        b2_effective: effective_b2,
        failed_selection: (0..base.b1).filter(|&k| pl.selection_failed(k)).collect(),
        failed_estimation: (0..base.b2).filter(|&k| pl.estimation_failed(k)).collect(),
        quorum_votes: needed,
        min_quorum_frac: base.degradation.min_quorum_frac,
    });

    Ok(UoiVarFit {
        a_mats,
        mu,
        vec_beta,
        lambdas,
        supports_per_lambda,
        support_family,
        degradation,
        recovery: None,
        speculation: None,
        numerical: base
            .numerical
            .active()
            .then(|| base.numerical.ledger().drain_report()),
    })
}

/// Support-restricted OLS on the vectorised VAR problem, exploiting the
/// per-column decomposition: support indices `i*dp + j` select columns
/// `j` of `X` for response column `i`. Retained as the design-space
/// reference for the Gram-space estimation loop.
#[cfg(test)]
pub(crate) fn var_ols_on_support(
    reg: &VarRegression,
    support: &[usize],
    p: usize,
    dp: usize,
) -> Vec<f64> {
    let mut beta = vec![0.0; dp * p];
    // Split support by response column.
    let mut per_col: Vec<Vec<usize>> = vec![Vec::new(); p];
    for &s in support {
        per_col[s / dp].push(s % dp);
    }
    for (i, cols) in per_col.iter().enumerate() {
        if cols.is_empty() {
            continue;
        }
        let yi = reg.y.col(i);
        let bi = uoi_solvers::ols_on_support(&reg.x, &yi, cols);
        beta[i * dp..(i + 1) * dp].copy_from_slice(&bi);
    }
    beta
}

/// Total mean-squared prediction error of a vectorised estimate on a
/// regression block (the `L(beta, E^k)` of Algorithm 2 line 25).
#[cfg(test)]
pub(crate) fn var_loss(reg: &VarRegression, vec_beta: &[f64], p: usize, dp: usize) -> f64 {
    let mut total = 0.0;
    for i in 0..p {
        let yi = reg.y.col(i);
        let bi = &vec_beta[i * dp..(i + 1) * dp];
        total += uoi_linalg::mse(&reg.x, bi, &yi);
    }
    total / p as f64
}

/// Block bootstrap with out-of-bag evaluation rows (falling back to a
/// temporal split when the resample covers everything).
pub(crate) fn block_bootstrap_with_oob(
    rng: &mut rand::rngs::StdRng,
    n: usize,
    block_len: usize,
) -> (Vec<usize>, Vec<usize>) {
    let train = block_bootstrap(rng, n, n, block_len);
    let mut in_train = vec![false; n];
    for &i in &train {
        in_train[i] = true;
    }
    let eval: Vec<usize> = (0..n).filter(|&i| !in_train[i]).collect();
    if eval.len() < 2 {
        let cut = (2 * n / 3).max(1);
        ((0..cut).collect(), (cut..n).collect())
    } else {
        (train, eval)
    }
}

/// The pre-zero-copy reference fit: materialises every block-bootstrap
/// regression with `gather` and scores in design space. Kept as the
/// equivalence oracle for the weighted-Gram fast path.
#[cfg(test)]
pub(crate) fn fit_inner_materialized(series: &Matrix, cfg: &UoiVarConfig) -> UoiVarFit {
    let (_, p) = series.shape();
    let d = cfg.order;

    let means = series.col_means();
    let mut centred = series.clone();
    centred.center_cols(&means);

    let reg = VarRegression::build(&centred, d);
    let n = reg.samples();
    let dp = d * p;
    let total_coef = dp * p;
    let block_len = cfg.block_len.unwrap_or_else(|| default_block_len(n));
    let base = &cfg.base;

    let mut lmax = 0.0_f64;
    for i in 0..p {
        let yi = reg.y.col(i);
        lmax = lmax.max(uoi_solvers::lambda_max(&reg.x, &yi));
    }
    let lmax = lmax.max(1e-12);
    let lambdas = geometric_grid(lmax, base.lambda_min_ratio * lmax, base.q);

    let supports_by_bootstrap: Vec<Vec<Vec<usize>>> = (0..base.b1)
        .map(|k| {
            let mut rng = substream(base.seed, k as u64);
            let rows = block_bootstrap(&mut rng, n, n, block_len);
            let boot = reg.gather(&rows);
            let solver = LassoAdmm::new(boot.x.clone(), base.admm.clone());
            let mut supports = vec![Vec::new(); lambdas.len()];
            for i in 0..p {
                let yi = boot.y.col(i);
                for (j, sol) in solver.solve_path(&yi, &lambdas).into_iter().enumerate() {
                    for idx in support_of(&sol.beta, base.support_tol) {
                        supports[j].push(i * dp + idx);
                    }
                }
            }
            for s in &mut supports {
                s.sort_unstable();
            }
            supports
        })
        .collect();

    let needed = crate::uoi_lasso::required_votes(base.intersection_frac, base.b1);
    let supports_per_lambda: Vec<Vec<usize>> = (0..lambdas.len())
        .map(|j| {
            if needed == base.b1 {
                let per_k: Vec<Vec<usize>> = supports_by_bootstrap
                    .iter()
                    .map(|sk| sk[j].clone())
                    .collect();
                intersect_many(&per_k)
            } else {
                let mut votes = vec![0usize; total_coef];
                for sk in &supports_by_bootstrap {
                    for &f in &sk[j] {
                        votes[f] += 1;
                    }
                }
                (0..total_coef).filter(|&f| votes[f] >= needed).collect()
            }
        })
        .collect();
    let support_family = dedup_family(supports_per_lambda.clone());

    let best_estimates: Vec<Vec<f64>> = (0..base.b2)
        .map(|k| {
            let mut rng = substream(base.seed, 20_000 + k as u64);
            let (train_rows, eval_rows) = block_bootstrap_with_oob(&mut rng, n, block_len);
            let train = reg.gather(&train_rows);
            let eval = reg.gather(&eval_rows);

            let mut best: Option<(f64, Vec<f64>)> = None;
            for support in &support_family {
                let beta = var_ols_on_support(&train, support, p, dp);
                let loss = var_loss(&eval, &beta, p, dp);
                if best.as_ref().is_none_or(|(l, _)| loss < *l) {
                    best = Some((loss, beta));
                }
            }
            best.map(|(_, b)| b)
                .unwrap_or_else(|| vec![0.0; total_coef])
        })
        .collect();

    let mut vec_beta = vec![0.0; total_coef];
    for est in &best_estimates {
        for (b, e) in vec_beta.iter_mut().zip(est) {
            *b += e;
        }
    }
    for b in &mut vec_beta {
        *b /= base.b2 as f64;
    }

    let a_mats = partition_coefficients(&vec_beta, p, d);
    let mut mu = means.clone();
    for a in &a_mats {
        let shift = uoi_linalg::gemv(a, &means);
        for (m, s) in mu.iter_mut().zip(&shift) {
            *m -= s;
        }
    }

    UoiVarFit {
        a_mats,
        mu,
        vec_beta,
        lambdas,
        supports_per_lambda,
        support_family,
        degradation: None,
        recovery: None,
        speculation: None,
        // The materialised reference path never arms the guards.
        numerical: None,
    }
}

#[cfg(test)]
// Exercises the deprecated free-function fit surface on purpose: these
// tests pin its behaviour for as long as the wrappers exist.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::metrics::SelectionCounts;
    use uoi_data::{VarConfig, VarProcess};
    use uoi_solvers::AdmmConfig;

    fn quick_cfg() -> UoiVarConfig {
        UoiVarConfig {
            order: 1,
            block_len: None,
            base: UoiLassoConfig {
                b1: 6,
                b2: 6,
                q: 10,
                // With the data-scaled ADMM penalty the small-lambda
                // solves truly converge (dense supports), so the grid
                // stops before the near-saturated tail that would flood
                // the candidate family with false positives.
                lambda_min_ratio: 5e-2,
                admm: AdmmConfig {
                    max_iter: 600,
                    ..Default::default()
                },
                support_tol: 1e-7,
                seed: 11,
                ..Default::default()
            },
        }
    }

    fn truth_support(proc: &VarProcess) -> Vec<usize> {
        // Vectorised support of the true coefficients.
        let v = crate::var_matrices::flatten_coefficients(&proc.coeffs);
        v.iter()
            .enumerate()
            .filter(|(_, x)| x.abs() > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn recovers_sparse_var_network() {
        let proc = VarProcess::generate(&VarConfig {
            p: 10,
            order: 1,
            density: 0.12,
            target_radius: 0.65,
            noise_std: 1.0,
            seed: 5,
        });
        let series = proc.simulate(800, 100, 9);
        let fit = fit_uoi_var(&series, &quick_cfg());
        let truth = truth_support(&proc);
        let recovered: Vec<usize> = fit
            .vec_beta
            .iter()
            .enumerate()
            .filter(|(_, v)| v.abs() > 1e-7)
            .map(|(i, _)| i)
            .collect();
        let counts = SelectionCounts::compare(&recovered, &truth, 100);
        assert!(
            counts.recall() > 0.6,
            "recall {} (tp {} fn {})",
            counts.recall(),
            counts.true_positives,
            counts.false_negatives
        );
        assert!(
            counts.false_positive_rate() < 0.12,
            "FPR {}",
            counts.false_positive_rate()
        );
    }

    #[test]
    fn estimates_close_to_truth_on_recovered_edges() {
        let proc = VarProcess::generate(&VarConfig {
            p: 8,
            order: 1,
            density: 0.15,
            target_radius: 0.6,
            noise_std: 0.8,
            seed: 21,
        });
        let series = proc.simulate(1200, 100, 2);
        let fit = fit_uoi_var(&series, &quick_cfg());
        let a_true = &proc.coeffs[0];
        let a_hat = &fit.a_mats[0];
        for i in 0..8 {
            for j in 0..8 {
                if a_true[(i, j)] != 0.0 && a_hat[(i, j)] != 0.0 {
                    assert!(
                        (a_true[(i, j)] - a_hat[(i, j)]).abs() < 0.2,
                        "A[{i},{j}]: {} vs {}",
                        a_hat[(i, j)],
                        a_true[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn var2_fit_shapes() {
        let proc = VarProcess::generate(&VarConfig {
            p: 6,
            order: 2,
            density: 0.1,
            target_radius: 0.6,
            noise_std: 1.0,
            seed: 8,
        });
        let series = proc.simulate(600, 100, 3);
        let cfg = UoiVarConfig {
            order: 2,
            ..quick_cfg()
        };
        let fit = fit_uoi_var(&series, &cfg);
        assert_eq!(fit.a_mats.len(), 2);
        assert_eq!(fit.a_mats[0].shape(), (6, 6));
        assert_eq!(fit.vec_beta.len(), 2 * 36);
        assert_eq!(fit.mu.len(), 6);
    }

    #[test]
    fn zero_copy_var_fit_matches_materialized_reference() {
        let proc = VarProcess::generate(&VarConfig {
            p: 8,
            order: 1,
            density: 0.1,
            seed: 13,
            ..Default::default()
        });
        let series = proc.simulate(500, 50, 5);
        let fast = fit_uoi_var(&series, &quick_cfg());
        let reference = fit_inner_materialized(&series, &quick_cfg());
        assert_eq!(fast.supports_per_lambda, reference.supports_per_lambda);
        assert_eq!(fast.support_family, reference.support_family);
        for (a, b) in fast.vec_beta.iter().zip(&reference.vec_beta) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        for (a, b) in fast.mu.iter().zip(&reference.mu) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn deterministic_and_network_extraction() {
        let proc = VarProcess::generate(&VarConfig {
            p: 8,
            order: 1,
            density: 0.1,
            seed: 13,
            ..Default::default()
        });
        let series = proc.simulate(500, 50, 5);
        let a = fit_uoi_var(&series, &quick_cfg());
        let b = fit_uoi_var(&series, &quick_cfg());
        assert_eq!(a.vec_beta, b.vec_beta);
        let net = a.network(0.0);
        assert_eq!(net.p, 8);
        assert_eq!(net.edge_count(), a.nnz());
    }

    #[test]
    fn forecast_shapes_and_stability() {
        let proc = VarProcess::generate(&VarConfig {
            p: 6,
            order: 1,
            density: 0.2,
            target_radius: 0.6,
            seed: 41,
            ..Default::default()
        });
        let series = proc.simulate(600, 50, 42);
        let fit = fit_uoi_var(&series, &quick_cfg());
        let fc = fit.forecast(&series, 20);
        assert_eq!(fc.shape(), (20, 6));
        assert!(fc.max_abs() < 100.0, "forecast must not explode");
        // One-step MSE on held-out data beats the naive zero predictor
        // (variance of the series).
        let holdout = proc.simulate(300, 650, 43);
        let mse_fit = fit.one_step_mse(&holdout);
        let var: f64 = holdout.as_slice().iter().map(|v| v * v).sum::<f64>() / holdout.len() as f64;
        assert!(
            mse_fit < var,
            "one-step MSE {mse_fit} vs series variance {var}"
        );
    }

    #[test]
    fn order_selection_finds_true_order() {
        // VAR(2) data: BIC should pick d = 2 over 1 and 3.
        let proc = VarProcess::generate(&VarConfig {
            p: 5,
            order: 2,
            density: 0.25,
            target_radius: 0.7,
            noise_std: 1.0,
            seed: 47,
        });
        let series = proc.simulate(1500, 100, 48);
        assert_eq!(select_var_order(&series, 4), 2);
        // VAR(1) data: picks 1.
        let proc1 = VarProcess::generate(&VarConfig {
            p: 5,
            order: 1,
            density: 0.3,
            target_radius: 0.7,
            noise_std: 1.0,
            seed: 49,
        });
        let series1 = proc1.simulate(1500, 100, 50);
        assert_eq!(select_var_order(&series1, 4), 1);
    }

    #[test]
    fn sparser_than_dense_ols() {
        // The UoI fit must be much sparser than unregularised OLS (which
        // is fully dense) while keeping predictive loss comparable.
        let proc = VarProcess::generate(&VarConfig {
            p: 10,
            order: 1,
            density: 0.1,
            seed: 4,
            ..Default::default()
        });
        let series = proc.simulate(700, 50, 6);
        let fit = fit_uoi_var(&series, &quick_cfg());
        assert!(
            fit.nnz() < 40,
            "UoI should select a sparse network, got {} nonzeros",
            fit.nnz()
        );
    }
}
