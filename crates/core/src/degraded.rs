//! Degraded-mode execution and bootstrap-granular checkpoint/resume.
//!
//! UoI is uniquely suited to graceful degradation: losing a bootstrap
//! resample just shrinks `B1`/`B2`, and the Bolasso-style intersection
//! remains support-consistent with fewer bootstraps. This module provides
//! the three pieces the pipelines use to exploit that:
//!
//! * [`BootstrapFaultPlan`] — a seeded, deterministic plan of which
//!   (bootstrap, stage) tasks fail, replayed identically on every run;
//! * [`DegradationReport`] — what actually happened: failed tasks,
//!   effective `B1`/`B2`, and the quorum rule applied over *surviving*
//!   bootstraps (a feature is kept when it appears in at least
//!   `ceil(intersection_frac * B1_effective)` surviving supports, subject
//!   to a configurable minimum surviving fraction);
//! * [`CheckpointStore`] — per-bootstrap result files keyed by a config
//!   fingerprint, with bit-exact `f64` encoding, so a killed run resumes
//!   from completed bootstraps and finishes bit-identical to an
//!   uninterrupted run (each bootstrap derives its RNG from
//!   `substream(seed, k)`, so results are order-independent).

use crate::error::UoiError;
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use uoi_mpisim::SplitMix64;
use uoi_telemetry::{Json, Telemetry};

/// Which (bootstrap, stage) tasks fail. Deterministic: the same plan
/// yields the same failures on every run, which is what makes degraded
/// results reproducible and the `DegradationReport` byte-identical
/// across reruns.
#[derive(Debug, Clone, Default)]
pub struct BootstrapFaultPlan {
    seed: u64,
    failed_selection: BTreeSet<usize>,
    failed_estimation: BTreeSet<usize>,
}

impl BootstrapFaultPlan {
    /// An empty plan carrying a seed for the random derivations.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fail selection bootstrap `k`.
    pub fn fail_selection(mut self, k: usize) -> Self {
        self.failed_selection.insert(k);
        self
    }

    /// Fail estimation bootstrap `k`.
    pub fn fail_estimation(mut self, k: usize) -> Self {
        self.failed_estimation.insert(k);
        self
    }

    /// Derive `count` random selection failures among `b1` bootstraps
    /// from the plan seed.
    pub fn with_random_selection_failures(mut self, b1: usize, count: usize) -> Self {
        let mut rng = SplitMix64::new(self.seed ^ 0xDE6A_DED0_0B00_7001);
        while self.failed_selection.len() < count.min(b1) {
            self.failed_selection
                .insert((rng.next_u64() % b1.max(1) as u64) as usize);
        }
        self
    }

    /// Derive `count` random estimation failures among `b2` bootstraps
    /// from the plan seed.
    pub fn with_random_estimation_failures(mut self, b2: usize, count: usize) -> Self {
        let mut rng = SplitMix64::new(self.seed ^ 0xDE6A_DED0_0B00_7002);
        while self.failed_estimation.len() < count.min(b2) {
            self.failed_estimation
                .insert((rng.next_u64() % b2.max(1) as u64) as usize);
        }
        self
    }

    /// Does selection bootstrap `k` fail?
    pub fn selection_failed(&self, k: usize) -> bool {
        self.failed_selection.contains(&k)
    }

    /// Does estimation bootstrap `k` fail?
    pub fn estimation_failed(&self, k: usize) -> bool {
        self.failed_estimation.contains(&k)
    }

    /// No failures at all?
    pub fn is_empty(&self) -> bool {
        self.failed_selection.is_empty() && self.failed_estimation.is_empty()
    }
}

/// Degraded-execution knobs carried by the pipeline configs.
#[derive(Debug, Clone)]
pub struct DegradationConfig {
    /// Deterministic task-failure plan (`None` → nothing fails).
    pub plan: Option<BootstrapFaultPlan>,
    /// Minimum fraction of `B1` selection bootstraps (and of `B2`
    /// estimation bootstraps) that must survive for the fit to proceed;
    /// fewer survivors abort with [`UoiError::QuorumLost`].
    pub min_quorum_frac: f64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self {
            plan: None,
            min_quorum_frac: 0.5,
        }
    }
}

impl DegradationConfig {
    /// Validate the quorum fraction.
    pub fn validate(&self) -> Result<(), UoiError> {
        if !(self.min_quorum_frac.is_finite()
            && self.min_quorum_frac > 0.0
            && self.min_quorum_frac <= 1.0)
        {
            return Err(UoiError::InvalidConfig(format!(
                "min_quorum_frac must be in (0, 1], got {}",
                self.min_quorum_frac
            )));
        }
        Ok(())
    }

    /// Minimum surviving count out of `planned` under the quorum rule
    /// (at least 1).
    ///
    /// "Exactly at quorum" passes by `>=`, never by float luck: when
    /// `frac * planned` is an intended integer that lands a few ulps off
    /// (`0.7 * 10 = 7.000000000000001` would otherwise ceil to 8), the
    /// product is snapped to the nearest integer before ceiling, so a
    /// survivor count meeting the configured fraction exactly is always
    /// sufficient.
    pub fn min_survivors(&self, planned: usize) -> usize {
        let target = self.min_quorum_frac * planned as f64;
        let nearest = target.round();
        let required = if (target - nearest).abs() <= 1e-9 * (planned as f64).max(1.0) {
            nearest as usize
        } else {
            target.ceil() as usize
        };
        required.clamp(1, planned.max(1))
    }

    /// Check the quorum for a stage; `Err(QuorumLost)` when too few
    /// bootstraps survived.
    pub fn check_quorum(
        &self,
        stage: &'static str,
        surviving: usize,
        planned: usize,
    ) -> Result<(), UoiError> {
        let required = self.min_survivors(planned);
        if surviving < required {
            return Err(UoiError::QuorumLost {
                stage,
                surviving,
                required,
            });
        }
        Ok(())
    }
}

/// What a degraded fit actually did: which tasks failed, the effective
/// bootstrap counts, and the quorum applied over survivors. Serialises
/// deterministically — two runs with the same plan produce byte-identical
/// JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Configured selection bootstraps.
    pub b1_planned: usize,
    /// Selection bootstraps that survived.
    pub b1_effective: usize,
    /// Configured estimation bootstraps.
    pub b2_planned: usize,
    /// Estimation bootstraps that survived.
    pub b2_effective: usize,
    /// Failed selection bootstrap ids, ascending.
    pub failed_selection: Vec<usize>,
    /// Failed estimation bootstrap ids, ascending.
    pub failed_estimation: Vec<usize>,
    /// Votes a feature needed among surviving selection bootstraps.
    pub quorum_votes: usize,
    /// The configured minimum surviving fraction.
    pub min_quorum_frac: f64,
}

impl DegradationReport {
    /// Did anything actually degrade?
    pub fn is_degraded(&self) -> bool {
        self.b1_effective < self.b1_planned || self.b2_effective < self.b2_planned
    }

    /// Deterministic JSON for the `RunReport` `degradation` section.
    pub fn to_json(&self) -> Json {
        let ids = |v: &[usize]| Json::Arr(v.iter().map(|&k| Json::num(k as f64)).collect());
        Json::obj(vec![
            ("b1_planned", Json::num(self.b1_planned as f64)),
            ("b1_effective", Json::num(self.b1_effective as f64)),
            ("b2_planned", Json::num(self.b2_planned as f64)),
            ("b2_effective", Json::num(self.b2_effective as f64)),
            ("failed_selection", ids(&self.failed_selection)),
            ("failed_estimation", ids(&self.failed_estimation)),
            ("quorum_votes", Json::num(self.quorum_votes as f64)),
            ("min_quorum_frac", Json::num(self.min_quorum_frac)),
        ])
    }
}

/// Checkpointing knobs carried by the pipeline configs.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding per-bootstrap checkpoint files (created on
    /// demand).
    pub dir: PathBuf,
    /// Preemption hook: after this many *newly computed* bootstrap tasks
    /// the fit stops with [`UoiError::Interrupted`], leaving their
    /// checkpoints behind. Models a job killed mid-run; `None` → run to
    /// completion.
    pub abort_after: Option<usize>,
}

impl CheckpointConfig {
    /// Checkpoint into `dir`, never self-interrupting.
    pub fn in_dir(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            abort_after: None,
        }
    }
}

/// Combine config words into a checkpoint fingerprint (splitmix-based;
/// not cryptographic — it guards against accidental reuse across
/// configs/datasets, not adversaries).
pub fn fingerprint(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xA076_1D64_78BD_642Fu64;
    for w in words {
        let mut mix = SplitMix64::new(h ^ w);
        h = mix.next_u64();
    }
    h
}

/// Fingerprint-worthy words of a float slice (bit-exact).
pub fn data_words(data: &[f64]) -> impl Iterator<Item = u64> + '_ {
    data.iter().map(|v| v.to_bits())
}

/// Bootstrap-granular checkpoint files: one small text file per
/// (stage, bootstrap), atomically written (tmp + rename), keyed by a
/// config/data fingerprint so stale checkpoints from another run are
/// ignored rather than corrupting results. `f64` values round-trip
/// through `to_bits` hex, so resumed runs are *bit*-identical.
///
/// Every file carries a whole-body checksum in its header; a truncated
/// or bit-flipped checkpoint fails the scrub on open and is treated as
/// a cache miss (the caller recomputes and rewrites), counted under the
/// `checkpoint.scrubbed` telemetry metric.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    fp: u64,
    telemetry: Telemetry,
}

const CKPT_MAGIC: &str = "uoi-ckpt-v2";

/// Whole-body checksum: the [`fingerprint`] chain over the body bytes in
/// 8-byte little-endian words (zero-padded tail), plus the length so a
/// truncation at a word boundary cannot cancel out.
fn body_sum(body: &str) -> u64 {
    let bytes = body.as_bytes();
    let words = bytes.chunks(8).map(|c| {
        let mut w = [0u8; 8];
        w[..c.len()].copy_from_slice(c);
        u64::from_le_bytes(w)
    });
    fingerprint(std::iter::once(bytes.len() as u64).chain(words))
}

impl CheckpointStore {
    /// Open (creating the directory if needed) a store keyed by `fp`.
    pub fn open(dir: &Path, fp: u64) -> Result<Self, UoiError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| UoiError::Checkpoint(format!("cannot create {}: {e}", dir.display())))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            fp,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Count scrub events (`checkpoint.scrubbed`) against `tel`.
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.telemetry = tel.clone();
        self
    }

    fn path(&self, stage: &str, k: usize) -> PathBuf {
        self.dir.join(format!("{stage}_{k:06}.ckpt"))
    }

    /// Write `body` (payload lines, no header) under a header line
    /// carrying the store fingerprint and the whole-body checksum.
    fn write_atomic(&self, stage: &str, k: usize, body: &str) -> Result<(), UoiError> {
        let final_path = self.path(stage, k);
        let tmp = self.dir.join(format!(".{stage}_{k:06}.tmp"));
        let io_err = |e: std::io::Error| UoiError::Checkpoint(format!("write {stage}/{k}: {e}"));
        let text = format!(
            "{CKPT_MAGIC} fp={:016x} sum={:016x}\n{body}",
            self.fp,
            body_sum(body)
        );
        {
            let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(text.as_bytes()).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, &final_path).map_err(io_err)
    }

    /// Read + scrub a checkpoint. A foreign magic or fingerprint is an
    /// ordinary miss (stale file from another config); a checksum
    /// mismatch under *our* fingerprint is corruption — counted as
    /// `checkpoint.scrubbed` — and is likewise treated as a miss, so the
    /// caller recomputes and rewrites.
    fn read_validated(&self, stage: &str, k: usize) -> Option<Vec<String>> {
        let text = std::fs::read_to_string(self.path(stage, k)).ok()?;
        let (header, body) = text.split_once('\n')?;
        let prefix = format!("{CKPT_MAGIC} fp={:016x} sum=", self.fp);
        let sum_hex = header.strip_prefix(&prefix)?;
        let stored = u64::from_str_radix(sum_hex, 16).ok()?;
        if stored != body_sum(body) {
            self.telemetry.incr("checkpoint.scrubbed", 1);
            return None; // corrupt: recompute and rewrite.
        }
        Some(body.lines().map(str::to_string).collect())
    }

    /// Persist a selection result: the per-lambda supports of bootstrap
    /// `k`.
    pub fn save_supports(
        &self,
        stage: &str,
        k: usize,
        supports: &[Vec<usize>],
    ) -> Result<(), UoiError> {
        let mut body = String::new();
        for s in supports {
            let line: Vec<String> = s.iter().map(|f| f.to_string()).collect();
            body.push_str(&line.join(" "));
            body.push('\n');
        }
        self.write_atomic(stage, k, &body)
    }

    /// Load a selection result saved by [`CheckpointStore::save_supports`];
    /// `None` when missing, stale, or unparseable (recompute instead).
    pub fn load_supports(&self, stage: &str, k: usize, q: usize) -> Option<Vec<Vec<usize>>> {
        let lines = self.read_validated(stage, k)?;
        if lines.len() != q {
            return None;
        }
        let mut out = Vec::with_capacity(q);
        for line in &lines {
            let mut s = Vec::new();
            for tok in line.split_whitespace() {
                s.push(tok.parse::<usize>().ok()?);
            }
            out.push(s);
        }
        Some(out)
    }

    /// Persist an estimation result: the winning coefficient vector of
    /// bootstrap `k`, bit-exact.
    pub fn save_coeffs(&self, stage: &str, k: usize, beta: &[f64]) -> Result<(), UoiError> {
        let mut body = String::new();
        for v in beta {
            body.push_str(&format!("{:016x}\n", v.to_bits()));
        }
        self.write_atomic(stage, k, &body)
    }

    /// Load an estimation result saved by [`CheckpointStore::save_coeffs`].
    pub fn load_coeffs(&self, stage: &str, k: usize, len: usize) -> Option<Vec<f64>> {
        let lines = self.read_validated(stage, k)?;
        if lines.len() != len {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for line in &lines {
            out.push(f64::from_bits(u64::from_str_radix(line.trim(), 16).ok()?));
        }
        Some(out)
    }

    /// Persist bootstrap `k`'s weighted Gram matrix and right-hand side,
    /// bit-exact. Recovery re-solves from these instead of re-running the
    /// `O(n p^2)` Gram accumulation when a task is re-executed after a
    /// rank failure.
    pub fn save_gram(
        &self,
        stage: &str,
        k: usize,
        gram: &[f64],
        rhs: &[f64],
    ) -> Result<(), UoiError> {
        let mut body = format!("gram={} rhs={}\n", gram.len(), rhs.len());
        for v in gram.iter().chain(rhs) {
            body.push_str(&format!("{:016x}\n", v.to_bits()));
        }
        self.write_atomic(stage, k, &body)
    }

    /// Load a Gram checkpoint saved by [`CheckpointStore::save_gram`];
    /// `None` when missing, stale, or shaped differently (recompute).
    pub fn load_gram(
        &self,
        stage: &str,
        k: usize,
        gram_len: usize,
        rhs_len: usize,
    ) -> Option<(Vec<f64>, Vec<f64>)> {
        let lines = self.read_validated(stage, k)?;
        let (dims, words) = lines.split_first()?;
        if dims != &format!("gram={gram_len} rhs={rhs_len}") || words.len() != gram_len + rhs_len {
            return None;
        }
        let mut all = Vec::with_capacity(words.len());
        for line in words {
            all.push(f64::from_bits(u64::from_str_radix(line.trim(), 16).ok()?));
        }
        let rhs = all.split_off(gram_len);
        Some((all, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("uoi_ckpt_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn fault_plan_is_deterministic_and_sorted() {
        let a = BootstrapFaultPlan::new(99)
            .with_random_selection_failures(20, 5)
            .with_random_estimation_failures(10, 3);
        let b = BootstrapFaultPlan::new(99)
            .with_random_selection_failures(20, 5)
            .with_random_estimation_failures(10, 3);
        assert_eq!(a.failed_selection, b.failed_selection);
        assert_eq!(a.failed_estimation, b.failed_estimation);
        assert_eq!(a.failed_selection.len(), 5);
        assert!(a.failed_selection.iter().all(|&k| k < 20));
    }

    #[test]
    fn quorum_rule() {
        let cfg = DegradationConfig {
            plan: None,
            min_quorum_frac: 0.5,
        };
        assert_eq!(cfg.min_survivors(10), 5);
        assert!(cfg.check_quorum("selection", 5, 10).is_ok());
        assert!(matches!(
            cfg.check_quorum("selection", 4, 10),
            Err(UoiError::QuorumLost {
                stage: "selection",
                surviving: 4,
                required: 5
            })
        ));
    }

    /// Satellite check: "exactly at quorum" must pass by `>=` semantics
    /// for every planned count, even when `frac * planned` lands a few
    /// ulps above the intended integer (`0.7 * 10 = 7.000000000000001`).
    #[test]
    fn quorum_boundary_is_exact_not_float_fuzzy() {
        for planned in [3usize, 10, 33] {
            for num in 1..=planned {
                // A fraction whose product *should* be exactly `num`.
                let cfg = DegradationConfig {
                    plan: None,
                    min_quorum_frac: num as f64 / planned as f64,
                };
                assert_eq!(
                    cfg.min_survivors(planned),
                    num,
                    "frac {num}/{planned} must require exactly {num} survivors"
                );
                assert!(
                    cfg.check_quorum("selection", num, planned).is_ok(),
                    "exactly-at-quorum ({num}/{planned}) must pass"
                );
                if num > 1 {
                    assert!(
                        cfg.check_quorum("selection", num - 1, planned).is_err(),
                        "one under quorum ({}/{planned}) must fail",
                        num - 1
                    );
                }
            }
        }
        // The decimal fractions users actually write.
        let at = |frac: f64, planned: usize| {
            DegradationConfig {
                plan: None,
                min_quorum_frac: frac,
            }
            .min_survivors(planned)
        };
        assert_eq!(at(0.7, 10), 7, "0.7 * 10 must not ceil to 8");
        assert_eq!(at(0.3, 10), 3);
        assert_eq!(at(0.9, 33), 30, "29.7 genuinely rounds up");
        assert_eq!(at(1.0, 33), 33);
        assert_eq!(at(0.5, 3), 2, "1.5 genuinely rounds up");
    }

    #[test]
    fn gram_checkpoints_roundtrip_bit_exact() {
        let dir = temp_dir("gram");
        let store = CheckpointStore::open(&dir, 0x5EED).unwrap();
        let gram = vec![1.5, -0.0, 2.0f64.sqrt(), 4e-300];
        let rhs = vec![-7.25, f64::MIN_POSITIVE];
        store.save_gram("selgram", 2, &gram, &rhs).unwrap();
        let (g, r) = store.load_gram("selgram", 2, 4, 2).unwrap();
        for (a, b) in gram.iter().zip(&g).chain(rhs.iter().zip(&r)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Shape mismatch → miss, not corruption.
        assert!(store.load_gram("selgram", 2, 2, 4).is_none());
        assert!(store.load_gram("selgram", 0, 4, 2).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degradation_report_json_is_deterministic() {
        let r = DegradationReport {
            b1_planned: 10,
            b1_effective: 8,
            b2_planned: 6,
            b2_effective: 6,
            failed_selection: vec![2, 7],
            failed_estimation: vec![],
            quorum_votes: 8,
            min_quorum_frac: 0.5,
        };
        let s1 = r.to_json().to_string_compact();
        let s2 = r.to_json().to_string_compact();
        assert_eq!(s1, s2);
        assert!(s1.contains("\"failed_selection\":[2,7]"), "{s1}");
        assert!(r.is_degraded());
    }

    #[test]
    fn coeff_checkpoints_roundtrip_bit_exact() {
        let dir = temp_dir("coeffs");
        let store = CheckpointStore::open(&dir, 0xABCD).unwrap();
        let beta = vec![0.1, -2.5e-300, f64::MIN_POSITIVE, 3.0f64.sqrt(), -0.0];
        store.save_coeffs("est", 3, &beta).unwrap();
        let back = store.load_coeffs("est", 3, beta.len()).unwrap();
        for (a, b) in beta.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Wrong length or stage → miss.
        assert!(store.load_coeffs("est", 3, 4).is_none());
        assert!(store.load_coeffs("sel", 3, 5).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn support_checkpoints_roundtrip() {
        let dir = temp_dir("supports");
        let store = CheckpointStore::open(&dir, 1).unwrap();
        let sup = vec![vec![0, 3, 9], vec![], vec![1]];
        store.save_supports("sel", 0, &sup).unwrap();
        assert_eq!(store.load_supports("sel", 0, 3).unwrap(), sup);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_invalidates() {
        let dir = temp_dir("fp");
        let a = CheckpointStore::open(&dir, 1).unwrap();
        a.save_coeffs("est", 0, &[1.0]).unwrap();
        let b = CheckpointStore::open(&dir, 2).unwrap();
        assert!(
            b.load_coeffs("est", 0, 1).is_none(),
            "foreign fp must be ignored"
        );
        assert!(a.load_coeffs("est", 0, 1).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_is_scrubbed_as_a_cache_miss() {
        use std::sync::Arc;
        use uoi_telemetry::{MemorySink, MetricsRegistry};

        let dir = temp_dir("scrub");
        let metrics = Arc::new(MetricsRegistry::new());
        let store = CheckpointStore::open(&dir, 0xC0FFEE)
            .unwrap()
            .with_telemetry(&Telemetry::new(
                Arc::new(MemorySink::new()),
                metrics.clone(),
            ));
        let beta = vec![1.5, -0.25, 3.0f64.sqrt()];
        store.save_coeffs("est", 1, &beta).unwrap();
        assert!(store.load_coeffs("est", 1, beta.len()).is_some());
        assert_eq!(metrics.counter("checkpoint.scrubbed"), 0);

        // Flip one bit of a payload byte (past the header line).
        let path = dir.join("est_000001.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[header_end + 3] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();

        assert!(
            store.load_coeffs("est", 1, beta.len()).is_none(),
            "a bit-flipped checkpoint must read as a miss"
        );
        assert_eq!(metrics.counter("checkpoint.scrubbed"), 1);

        // Truncation is scrubbed too.
        store.save_coeffs("est", 2, &beta).unwrap();
        let path = dir.join("est_000002.ckpt");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(store.load_coeffs("est", 2, beta.len()).is_none());
        assert_eq!(metrics.counter("checkpoint.scrubbed"), 2);

        // The miss is recoverable: recompute + rewrite, then hit again.
        store.save_coeffs("est", 1, &beta).unwrap();
        let back = store.load_coeffs("est", 1, beta.len()).unwrap();
        for (a, b) in beta.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(metrics.counter("checkpoint.scrubbed"), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_sensitive_to_every_word() {
        let base = fingerprint([1, 2, 3]);
        assert_ne!(base, fingerprint([1, 2, 4]));
        assert_ne!(base, fingerprint([0, 2, 3]));
        assert_ne!(base, fingerprint([1, 2]));
        assert_eq!(base, fingerprint([1, 2, 3]));
    }
}
