//! Distributed `UoI_VAR` (paper Algorithm 2 + §III-B2): block bootstrap,
//! **distributed Kronecker product and vectorisation** through one-sided
//! reader windows, lockstep distributed LASSO-ADMM over the vectorised
//! problem, and the intersection/union reduces.
//!
//! The defining scaling feature (paper §III-B2): the input series is tiny
//! (MBs) but the vectorised problem `vec Y = (I ⊗ X) vec B` explodes
//! ≈ p^3. A small set of `n_reader` ranks holds the lag-matrix rows and
//! exposes them through MPI-style windows; every compute rank *pulls* the
//! rows it needs to assemble its local share of `(I ⊗ X)` — the full
//! matrix is never materialised in one place, and the reader windows
//! serialise, which is exactly the distribution bottleneck of Figs 9–10.
//!
//! Each ADMM rank owns a contiguous band of response columns (a set of
//! diagonal blocks of `I ⊗ X`). Because blocks are disjoint, the global
//! LASSO decomposes exactly; the ranks nevertheless run their per-column
//! ADMM iterations in lockstep and allreduce the full `d p^2` estimate
//! every round — reproducing the paper's "converge to a common value of
//! estimates via `MPI_Allreduce`" communication pattern while staying
//! numerically identical to the serial path (tested).

use crate::parallelism::ParallelLayout;
use crate::support::dedup_family;
use crate::uoi_var::{block_bootstrap_with_oob, UoiVarConfig, UoiVarFit};
use crate::var_matrices::{partition_coefficients, VarRegression};
use uoi_data::bootstrap::{block_bootstrap, default_block_len, resample_weights};
use uoi_data::rng::substream;
use uoi_linalg::{gemv_t_weighted_multi, syrk_t_upper, syrk_t_weighted_upper, Matrix};
use uoi_mpisim::{Comm, Phase, RankCtx, Window};
use uoi_solvers::{admm_iter_flops, geometric_grid, ols_on_support_gram, support_of, LassoAdmm};
use uoi_telemetry::TraceEvent;
use uoi_tieredio::distribution::{block_owner, block_range};

/// Configuration of the distributed fit.
#[derive(Debug, Clone)]
pub struct UoiVarDistConfig {
    /// The statistical configuration (shared with the serial fit).
    pub var: UoiVarConfig,
    /// Number of reader ranks exposing the lag-matrix windows (the
    /// paper's `n_reader`, "usually equal to the number of samples based
    /// on the availability of resources"). Clamped to the world size.
    pub n_readers: usize,
    /// `P_B x P_lambda x ADMM` decomposition (Fig 8 sweeps); the default
    /// dedicates every core to the distributed solver.
    pub layout: ParallelLayout,
}

impl Default for UoiVarDistConfig {
    fn default() -> Self {
        Self {
            var: UoiVarConfig::default(),
            n_readers: 4,
            layout: ParallelLayout::admm_only(),
        }
    }
}

/// Timing summary of the distributed-Kronecker stages (for the Fig 7–10
/// harnesses).
#[derive(Debug, Clone, Copy, Default)]
pub struct KronStats {
    /// Virtual seconds in distributed Kronecker/vectorisation pulls.
    pub kron_seconds: f64,
    /// Number of one-sided row pulls issued by this rank.
    pub rows_pulled: usize,
}

/// Fit `UoI_VAR` distributed over `world`; every rank returns the
/// identical fit plus its local Kronecker-stage stats.
#[deprecated(
    since = "0.6.0",
    note = "use `uoi_core::UoiVarFitter` with `ExecMode::Dist` (or `fit_on` inside a cluster) instead"
)]
pub fn fit_uoi_var_dist(
    ctx: &mut RankCtx,
    world: &Comm,
    series: &Matrix,
    cfg: &UoiVarDistConfig,
) -> (UoiVarFit, KronStats) {
    let (n_raw, p) = series.shape();
    let d = cfg.var.order;
    assert!(n_raw > d + 4, "series too short");
    let base = &cfg.var.base;

    // Input validation (deterministic scrub, identical on every rank; a
    // rank-local ledger keeps concurrent rank closures from racing on
    // the shared config ledger, and only world rank 0 forwards events so
    // run traces carry each issue once). Solver-level numerical guards
    // for the lockstep VAR path are documented in DESIGN.md §7 — the
    // serial VAR and both LASSO paths carry the full ladder.
    let num_ledger = crate::numerical::NumericalLedger::default();
    let num_tel = if world.rank() == 0 {
        ctx.telemetry().clone()
    } else {
        uoi_telemetry::Telemetry::disabled()
    };
    let scrubbed = base.numerical.validation.map(|policy| {
        let mut xs = series.clone();
        let mut dummy = vec![0.0; xs.rows()];
        let outcome = uoi_data::validate_xy(&mut xs, &mut dummy, policy)
            .unwrap_or_else(|e| panic!("fit_uoi_var_dist: {e}"));
        num_ledger.note_validation(&num_tel, &outcome);
        xs
    });
    let series: &Matrix = scrubbed.as_ref().unwrap_or(series);

    // Centre (identical everywhere; one membound sweep).
    let means = series.col_means();
    let mut centred = series.clone();
    centred.center_cols(&means);
    ctx.compute_membound((n_raw * p * 8) as f64);

    // Readers build their row block of the (Y | X) lag regression and
    // expose it; other ranks expose nothing.
    let reg_full = VarRegression::build(&centred, d);
    let n = reg_full.samples();
    let dp = d * p;
    let total_coef = dp * p;
    let width = p + dp; // (Y | X) row width in the window
    let readers = cfg.n_readers.clamp(1, world.size());
    let my_reader_block = if world.rank() < readers {
        let r = block_range(n, readers, world.rank());
        let mut block = Matrix::zeros(r.len(), width);
        for (dst, src) in r.clone().enumerate() {
            block.row_mut(dst)[..p].copy_from_slice(reg_full.y.row(src));
            block.row_mut(dst)[p..].copy_from_slice(reg_full.x.row(src));
        }
        ctx.compute_membound((r.len() * width * 8) as f64);
        block.into_vec()
    } else {
        Vec::new()
    };
    let win = Window::create(ctx, world, my_reader_block);
    win.fence(ctx, world);

    let mut kron = KronStats::default();
    // Stagger offset: spreads concurrent pulls across reader windows.
    let stagger = world.rank() * n.div_ceil(world.size());

    // P_B x P_lambda x ADMM decomposition; column ownership is a
    // contiguous band of response columns per ADMM rank *within a group*.
    let comms = cfg.layout.split(ctx, world);
    let c = comms.admm_comm.size();
    let my_cols = block_range(p, c, comms.admm_comm.rank());

    // Lambda grid (identical everywhere, from the full regression).
    let mut lmax = 0.0_f64;
    for i in 0..p {
        let yi = reg_full.y.col(i);
        lmax = lmax.max(uoi_solvers::lambda_max(&reg_full.x, &yi));
    }
    ctx.compute_flops(2.0 * (n * dp * p) as f64, (n * dp * 8) as f64);
    let lmax = lmax.max(1e-12);
    let lambdas = geometric_grid(lmax, base.lambda_min_ratio * lmax, base.q);
    let block_len = cfg.var.block_len.unwrap_or_else(|| default_block_len(n));

    // --- Model selection ---
    // Each (bootstrap-group, lambda-group) pair handles its share of the
    // (k, lambda_j) grid; group leaders vote, one world allreduce
    // realises the eq. 3 intersection for every lambda at once.
    // Degraded mode: the deterministic plan is identical on every rank,
    // so all ranks skip the same tasks and collectives stay aligned.
    let plan = base.degradation.plan.as_ref();
    let effective_b1 = base.b1
        - (0..base.b1)
            .filter(|&k| plan.is_some_and(|pl| pl.selection_failed(k)))
            .count();
    let effective_b2 = base.b2
        - (0..base.b2)
            .filter(|&k| plan.is_some_and(|pl| pl.estimation_failed(k)))
            .count();
    base.degradation
        .check_quorum("selection", effective_b1, base.b1)
        .unwrap_or_else(|e| panic!("fit_uoi_var_dist: {e}"));
    base.degradation
        .check_quorum("estimation", effective_b2, base.b2)
        .unwrap_or_else(|e| panic!("fit_uoi_var_dist: {e}"));

    let sel_span = ctx.span_enter("uoi_var.selection");
    let my_lambda_ids = cfg.layout.lambdas_for(comms.l_group, base.q);
    let my_lambdas: Vec<f64> = my_lambda_ids.iter().map(|&j| lambdas[j]).collect();
    let mut votes = vec![0.0; base.q * total_coef];
    for &k in &cfg.layout.bootstraps_for(comms.b_group, base.b1) {
        if plan.is_some_and(|pl| pl.selection_failed(k)) {
            continue;
        }
        let mut rng = substream(base.seed, k as u64);
        let rows = block_bootstrap(&mut rng, n, n, block_len);
        // Distributed Kronecker + vectorisation: pull the resampled rows
        // through the reader windows (Algorithm 2 line 5). The pulled
        // block is the physical resample copy; the solve itself uses the
        // equivalent weighted-Gram form (row multiplicities over the
        // shared regression), keeping the arithmetic bit-identical to the
        // serial zero-copy path.
        let boot = pull_regression(ctx, &win, &rows, n, readers, p, dp, stagger, &mut kron);
        let w = resample_weights(&rows, n);
        let (full_vec, path_stats) = dist_lasso_path(
            ctx,
            &comms.admm_comm,
            &reg_full,
            &w,
            boot.samples(),
            &my_cols,
            &my_lambdas,
            base,
        );
        // full_vec[jj] = full vectorised estimate at my lambda jj. The
        // lockstep round counts come from the allreduced convergence
        // counter, so they are globally consistent and one leader per
        // group can emit the convergence record.
        if comms.is_group_leader() {
            for ((&j, vec_z), &(rounds, conv)) in
                my_lambda_ids.iter().zip(&full_vec).zip(&path_stats)
            {
                let support = support_of(vec_z, base.support_tol);
                let (rank, t) = (ctx.world_rank(), ctx.clock());
                ctx.telemetry().record_with(|| TraceEvent::Convergence {
                    rank,
                    stage: "selection",
                    bootstrap: k,
                    lambda_idx: j,
                    lambda: lambdas[j],
                    iterations: rounds,
                    max_iter: base.admm.max_iter,
                    converged: conv,
                    primal_residual: 0.0,
                    dual_residual: 0.0,
                    support: support.clone(),
                    curve: Vec::new(),
                    t,
                });
                for f in support {
                    votes[j * total_coef + f] += 1.0;
                }
            }
        }
    }
    world.allreduce_sum(ctx, &mut votes);
    let needed = crate::uoi_lasso::required_votes(base.intersection_frac, effective_b1) as f64;
    let supports_per_lambda: Vec<Vec<usize>> = (0..base.q)
        .map(|j| {
            (0..total_coef)
                .filter(|&f| votes[j * total_coef + f] >= needed - 0.5)
                .collect()
        })
        .collect();
    let support_family = dedup_family(supports_per_lambda.clone());
    ctx.span_exit(sel_span);

    // --- Model estimation ---
    // Estimation bootstraps are spread over all (b, lambda) groups. The
    // family only references the union of its lag columns, so each
    // bootstrap builds one union-Gram from its pulled training block and
    // every candidate's per-column OLS is a sub-Gram extraction.
    let est_span = ctx.span_enter("uoi_var.estimation");
    let mut union_cols: Vec<usize> = support_family.iter().flatten().map(|&s| s % dp).collect();
    union_cols.sort_unstable();
    union_cols.dedup();
    let u_len = union_cols.len();
    let mut col_pos = vec![usize::MAX; dp];
    for (a, &cq) in union_cols.iter().enumerate() {
        col_pos[cq] = a;
    }
    let groups = cfg.layout.p_b * cfg.layout.p_lambda;
    let my_group = comms.b_group * cfg.layout.p_lambda + comms.l_group;
    let mut est_sum = vec![0.0; total_coef];
    let mut pred: Vec<f64> = Vec::new();
    for k in 0..base.b2 {
        if k % groups != my_group {
            continue;
        }
        if plan.is_some_and(|pl| pl.estimation_failed(k)) {
            continue;
        }
        let mut rng = substream(base.seed, 20_000 + k as u64);
        let (train_rows, eval_rows) = block_bootstrap_with_oob(&mut rng, n, block_len);
        let train = pull_regression(
            ctx,
            &win,
            &train_rows,
            n,
            readers,
            p,
            dp,
            stagger,
            &mut kron,
        );
        let eval = pull_regression(ctx, &win, &eval_rows, n, readers, p, dp, stagger, &mut kron);
        let n_train = train.samples();
        // Upper-stored union-Gram (the sub-Gram OLS below reads canonical
        // coordinates) plus all owned rhs vectors in one pass over the
        // projected training block.
        let sp_gram = ctx.span_enter("gram_build.union");
        let xu_t = train.x.gather_cols(&union_cols);
        let gram_u = syrk_t_upper(&xu_t).into_upper();
        ctx.compute_membound((n_train * u_len * 8) as f64);
        ctx.compute_flops(
            (n_train * u_len * u_len) as f64,
            uoi_linalg::gram::gram_kernel_ws(u_len),
        );
        let ones = vec![1.0; n_train];
        let yts: Vec<Vec<f64>> = my_cols.clone().map(|i| train.y.col(i)).collect();
        let ytrefs: Vec<&[f64]> = yts.iter().map(|v| v.as_slice()).collect();
        let xty_u = gemv_t_weighted_multi(&xu_t, &ones, &ytrefs);
        ctx.compute_membound((n_train * u_len * 8) as f64);
        ctx.compute_flops(
            (2 * n_train * u_len * ytrefs.len()) as f64,
            (ytrefs.len() * u_len * 8) as f64,
        );
        ctx.span_exit(sp_gram);
        let xe_u = eval.x.gather_cols(&union_cols);

        let mut best: Option<(f64, Vec<f64>)> = None;
        for support in &support_family {
            // Per-owned-column restricted OLS in Gram space.
            let mut beta_local = vec![0.0; total_coef];
            let mut local_sse = 0.0;
            let mut local_cnt = 0.0;
            for (slot, i) in my_cols.clone().enumerate() {
                let cols: Vec<usize> = support
                    .iter()
                    .filter(|&&s| s / dp == i)
                    .map(|&s| col_pos[s % dp])
                    .collect();
                let mut bu = vec![0.0; u_len];
                if !cols.is_empty() {
                    let sp_ols = ctx.span_enter("ols_estimation.col");
                    bu = ols_on_support_gram(&gram_u, &xty_u[slot], &cols, n_train);
                    ctx.compute_flops(
                        (cols.len() * cols.len()) as f64
                            + (cols.len() * cols.len() * cols.len()) as f64 / 3.0,
                        (cols.len() * cols.len() * 8) as f64,
                    );
                    ctx.span_exit(sp_ols);
                    for (a, &cq) in union_cols.iter().enumerate() {
                        beta_local[i * dp + cq] = bu[a];
                    }
                }
                let sp_score = ctx.span_enter("scoring.eval");
                let ye = eval.y.col(i);
                uoi_linalg::gemv_into(&xe_u, &bu, &mut pred);
                ctx.compute_flops(2.0 * (xe_u.rows() * u_len) as f64, 0.0);
                local_sse += pred
                    .iter()
                    .zip(&ye)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>();
                local_cnt += ye.len() as f64;
                ctx.span_exit(sp_score);
            }
            // Assemble the full estimate and the global loss in one
            // allreduce (disjoint ownership sums correctly).
            let sp_red = ctx.span_enter("scoring.reduce");
            let mut payload = beta_local;
            payload.push(local_sse);
            payload.push(local_cnt);
            comms.admm_comm.allreduce_sum(ctx, &mut payload);
            ctx.span_exit(sp_red);
            let cnt = payload.pop().unwrap();
            let sse = payload.pop().unwrap();
            let loss = sse / cnt.max(1.0);
            if best.as_ref().is_none_or(|(l, _)| loss < *l) {
                best = Some((loss, payload));
            }
        }
        if comms.is_group_leader() {
            // The estimation step is direct per-column OLS — no iterative
            // solver — so the record reports zero iterations, converged.
            let (rank, t) = (ctx.world_rank(), ctx.clock());
            ctx.telemetry().record_with(|| TraceEvent::Convergence {
                rank,
                stage: "estimation",
                bootstrap: k,
                lambda_idx: 0,
                lambda: 0.0,
                iterations: 0,
                max_iter: 0,
                converged: true,
                primal_residual: 0.0,
                dual_residual: 0.0,
                support: Vec::new(),
                curve: Vec::new(),
                t,
            });
            if let Some((_, beta)) = best {
                for (s, b) in est_sum.iter_mut().zip(&beta) {
                    *s += b;
                }
            }
        }
    }
    // Union reduce (eq. 4): average the winners across groups.
    world.allreduce_sum(ctx, &mut est_sum);
    ctx.span_exit(est_span);
    let vec_beta: Vec<f64> = est_sum.iter().map(|v| v / effective_b2 as f64).collect();

    let a_mats = partition_coefficients(&vec_beta, p, d);
    let mut mu = means.clone();
    for a in &a_mats {
        let shift = uoi_linalg::gemv(a, &means);
        for (m, s) in mu.iter_mut().zip(&shift) {
            *m -= s;
        }
    }

    let degradation = plan.map(|pl| crate::degraded::DegradationReport {
        b1_planned: base.b1,
        b1_effective: effective_b1,
        b2_planned: base.b2,
        b2_effective: effective_b2,
        failed_selection: (0..base.b1).filter(|&k| pl.selection_failed(k)).collect(),
        failed_estimation: (0..base.b2).filter(|&k| pl.estimation_failed(k)).collect(),
        quorum_votes: needed as usize,
        min_quorum_frac: base.degradation.min_quorum_frac,
    });
    (
        UoiVarFit {
            a_mats,
            mu,
            vec_beta,
            lambdas,
            supports_per_lambda,
            support_family,
            degradation,
            recovery: None,
            speculation: None,
            numerical: base
                .numerical
                .active()
                .then(|| num_ledger.drain_report()),
        },
        kron,
    )
}

/// Pull the listed regression rows from the reader windows, assembling
/// the local copy of `(Y_boot | X_boot)` — the distributed Kronecker
/// product / vectorisation data movement. Every pulled row is one
/// one-sided `get` against its owning reader.
#[allow(clippy::too_many_arguments)]
fn pull_regression(
    ctx: &mut RankCtx,
    win: &Window,
    rows: &[usize],
    n: usize,
    readers: usize,
    p: usize,
    dp: usize,
    stagger: usize,
    kron: &mut KronStats,
) -> VarRegression {
    let width = p + dp;
    let sp = ctx.span_enter("shuffle_t2.pull");
    let t0 = ctx.ledger().get(Phase::Distribution);
    let mut y = Matrix::zeros(rows.len(), p);
    let mut x = Matrix::zeros(rows.len(), dp);
    let mut buf: Vec<f64> = Vec::new();
    // Non-blocking epoch (MPI_Get + fence): all pulls are in flight
    // together; staggered start positions spread the first requests over
    // the reader windows. Successive destinations (no wrap) requesting
    // consecutive global rows from the same reader coalesce into one
    // block-granular get — block-bootstrap resamples are contiguous runs,
    // so the per-get latency drops from O(rows) to O(blocks).
    let m = rows.len();
    let mut epoch = win.epoch(ctx);
    let mut j = 0;
    while j < m {
        let dst = (j + stagger) % m;
        let row = rows[dst];
        let (owner, offset) = block_owner(n, readers, row);
        let mut len = 1;
        while j + len < m && (j + len + stagger) % m == dst + len {
            let r2 = rows[dst + len];
            if r2 != row + len {
                break;
            }
            let (o2, _) = block_owner(n, readers, r2);
            if o2 != owner {
                break;
            }
            len += 1;
        }
        buf.resize(len * width, 0.0);
        epoch.get_into(ctx, owner, offset * width..(offset + len) * width, &mut buf);
        for t in 0..len {
            let b = &buf[t * width..(t + 1) * width];
            y.row_mut(dst + t).copy_from_slice(&b[..p]);
            x.row_mut(dst + t).copy_from_slice(&b[p..]);
        }
        j += len;
    }
    epoch.finish(ctx);
    ctx.span_exit(sp);
    kron.rows_pulled += m;
    kron.kron_seconds += ctx.ledger().get(Phase::Distribution) - t0;
    VarRegression {
        y,
        x,
        order: dp / p,
    }
}

/// Lockstep distributed LASSO path over the vectorised problem: each rank
/// iterates per-column ADMM on its owned diagonal blocks; every round the
/// full `d p^2` estimate (owned blocks, zeros elsewhere) plus a
/// convergence counter is allreduced. Returns, per lambda, the full
/// vectorised estimate (identical on all ranks) and the `(rounds,
/// converged)` outcome of the lockstep loop — also identical on all
/// ranks, because both derive from the allreduced convergence counter.
#[allow(clippy::too_many_arguments)]
fn dist_lasso_path(
    ctx: &mut RankCtx,
    admm_comm: &Comm,
    reg: &VarRegression,
    w: &[f64],
    n_boot: usize,
    my_cols: &std::ops::Range<usize>,
    lambdas: &[f64],
    base: &crate::uoi_lasso::UoiLassoConfig,
) -> (Vec<Vec<f64>>, Vec<(usize, bool)>) {
    let p = reg.dim();
    let dp = reg.x.cols();
    let total = dp * p;
    let n = n_boot;

    // Zero-copy resample: the weighted Gram / rhs over the shared
    // regression equal X_b^T X_b and X_b^T y_b of the pulled block
    // exactly, without cloning the design into the solver. Upper-stored:
    // the solver factors from the upper triangle, skipping the mirror.
    // Charged as one streaming read of the regression block plus
    // cache-resident tiled Gram flops and a blocked Cholesky — the
    // batched kernel's cost model.
    let sp_gram = ctx.span_enter("gram_build.weighted");
    let gram = syrk_t_weighted_upper(&reg.x, w).into_upper();
    let mut solver = LassoAdmm::from_gram(gram, base.admm.clone());
    // Per-column convergence lands in the shared registry via `step`;
    // columns are disjointly owned, so counts are not duplicated.
    if let Some(m) = ctx.telemetry().metrics() {
        solver = solver.with_metrics(m);
    }
    let dim = n.min(dp);
    ctx.compute_membound((n * dp * 8) as f64);
    ctx.compute_flops((n * dp * dim) as f64, uoi_linalg::gram::gram_kernel_ws(dp));
    ctx.compute_flops(
        (dim * dim * dim) as f64 / 3.0,
        uoi_linalg::gram::gram_kernel_ws(dim),
    );
    // All owned rhs vectors in ONE pass over the shared regression block.
    let ys: Vec<Vec<f64>> = my_cols.clone().map(|i| reg.y.col(i)).collect();
    let yrefs: Vec<&[f64]> = ys.iter().map(|v| v.as_slice()).collect();
    let rhs = gemv_t_weighted_multi(&reg.x, w, &yrefs);
    ctx.compute_membound((n * dp * 8) as f64);
    ctx.compute_flops(
        (2 * n * dp * yrefs.len()) as f64,
        (yrefs.len() * dp * 8) as f64,
    );
    ctx.span_exit(sp_gram);

    let mut out = Vec::with_capacity(lambdas.len());
    let mut path_stats = Vec::with_capacity(lambdas.len());
    // Warm-start z across the path, fresh duals per lambda.
    let mut states: Vec<uoi_solvers::AdmmState> =
        my_cols.clone().map(|_| solver.init_state()).collect();
    // `admm`-tagged span: the profiler splits its charges into
    // admm_local (compute) vs admm_consensus (allreduce) by ledger.
    let sp_admm = ctx.span_enter("admm.path");
    for &lam in lambdas {
        for st in &mut states {
            st.converged = false;
            st.u.iter_mut().for_each(|v| *v = 0.0);
            st.iterations = 0;
        }
        let mut full = vec![0.0; total];
        let mut rounds = 0usize;
        let mut lam_converged = false;
        // Round payload reused across iterations: non-owned sections are
        // re-zeroed each round (they carry the previous allreduce sums).
        let mut payload = vec![0.0; total + 1];
        for _round in 0..base.admm.max_iter {
            rounds += 1;
            // One lockstep round over the owned columns: the per-column
            // triangular solves fuse into a single multi-RHS substitution
            // (`step_many`), and the modeled charge is `ceil(active /
            // threads)` per-column iterations — with one thread that is
            // exactly the historical one-charge-per-active-column
            // accounting, so single-thread timelines are unchanged.
            let active = states.iter().filter(|st| !st.converged).count();
            let mut unconverged = 0usize;
            if active > 0 {
                let mut tasks: Vec<uoi_solvers::StepTask<'_>> = states
                    .iter_mut()
                    .zip(rhs.iter())
                    .map(|(state, xty)| uoi_solvers::StepTask {
                        xty,
                        lambda: lam,
                        state,
                    })
                    .collect();
                solver.step_many(&mut tasks);
                for _ in 0..uoi_solvers::lockstep_round_charges(active, base.admm.threads) {
                    ctx.compute_flops(
                        admm_iter_flops(n, dp),
                        ((dp.min(n) * dp.min(n) + n * dp) * 8) as f64,
                    );
                }
                unconverged = states.iter().filter(|st| !st.converged).count();
            }
            // Allreduce the full estimate + convergence counter — the
            // paper's per-iteration "communicate the estimates" call.
            payload.fill(0.0);
            for (slot, i) in my_cols.clone().enumerate() {
                payload[i * dp..(i + 1) * dp].copy_from_slice(&states[slot].z);
            }
            payload[total] = unconverged as f64;
            admm_comm.allreduce_sum(ctx, &mut payload);
            let all_unconverged = payload[total];
            full.copy_from_slice(&payload[..total]);
            if all_unconverged == 0.0 {
                lam_converged = true;
                break;
            }
        }
        out.push(full);
        path_stats.push((rounds, lam_converged));
    }
    ctx.span_exit(sp_admm);
    (out, path_stats)
}

#[cfg(test)]
// Exercises the deprecated free-function fit surface on purpose: these
// tests pin its behaviour for as long as the wrappers exist.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::uoi_lasso::UoiLassoConfig;
    use crate::uoi_var::fit_uoi_var;
    use uoi_data::{VarConfig, VarProcess};
    use uoi_mpisim::{Cluster, MachineModel};
    use uoi_solvers::AdmmConfig;

    fn cfg() -> UoiVarDistConfig {
        UoiVarDistConfig {
            var: UoiVarConfig {
                order: 1,
                block_len: None,
                base: UoiLassoConfig {
                    b1: 4,
                    b2: 4,
                    q: 8,
                    lambda_min_ratio: 2e-2,
                    admm: AdmmConfig {
                        max_iter: 2000,
                        abstol: 1e-9,
                        reltol: 1e-8,
                        ..Default::default()
                    },
                    support_tol: 1e-6,
                    seed: 17,
                    ..Default::default()
                },
            },
            n_readers: 2,
            layout: ParallelLayout::admm_only(),
        }
    }

    fn series() -> Matrix {
        let proc = VarProcess::generate(&VarConfig {
            p: 8,
            order: 1,
            density: 0.12,
            target_radius: 0.6,
            noise_std: 1.0,
            seed: 23,
        });
        proc.simulate(400, 50, 4)
    }

    #[test]
    fn distributed_matches_serial() {
        let s = series();
        let serial_cfg = cfg().var;
        let serial = fit_uoi_var(&s, &serial_cfg);
        let s2 = s;
        let report = Cluster::new(4, MachineModel::deterministic())
            .run(move |ctx, world| fit_uoi_var_dist(ctx, world, &s2, &cfg()).0);
        let dist = &report.results[0];
        assert_eq!(
            dist.supports_per_lambda, serial.supports_per_lambda,
            "selection must agree with the serial column-decomposed path"
        );
        for (a, b) in dist.vec_beta.iter().zip(&serial.vec_beta) {
            assert!((a - b).abs() < 5e-3, "dist {a} vs serial {b}");
        }
    }

    #[test]
    fn all_ranks_identical_and_kron_time_recorded() {
        let s = series();
        let report = Cluster::new(4, MachineModel::deterministic()).run(move |ctx, world| {
            let (fit, kron) = fit_uoi_var_dist(ctx, world, &s, &cfg());
            (fit.vec_beta, kron.kron_seconds, kron.rows_pulled)
        });
        for r in 1..4 {
            assert_eq!(report.results[0].0, report.results[r].0);
        }
        for (_, ks, rp) in &report.results {
            assert!(*ks > 0.0, "Kronecker distribution time must be recorded");
            assert!(*rp > 0);
        }
    }

    #[test]
    fn pb_plambda_layout_matches_flat() {
        let s = series();
        let run = |layout: ParallelLayout| {
            let s = s.clone();
            Cluster::new(8, MachineModel::deterministic())
                .run(move |ctx, world| {
                    let mut c = cfg();
                    c.layout = layout;
                    fit_uoi_var_dist(ctx, world, &s, &c).0
                })
                .results
                .remove(0)
        };
        let flat = run(ParallelLayout::admm_only());
        let nested = run(ParallelLayout {
            p_b: 2,
            p_lambda: 2,
        });
        assert_eq!(flat.supports_per_lambda, nested.supports_per_lambda);
        for (a, b) in flat.vec_beta.iter().zip(&nested.vec_beta) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn fewer_readers_increase_distribution_time() {
        let s = series();
        let run = |readers: usize| {
            let s = s.clone();
            Cluster::new(8, MachineModel::deterministic())
                .modeled_ranks(8 * 256)
                .run(move |ctx, world| {
                    let mut c = cfg();
                    c.n_readers = readers;
                    let (_, kron) = fit_uoi_var_dist(ctx, world, &s, &c);
                    kron.kron_seconds
                })
                .results
                .iter()
                .copied()
                .fold(0.0, f64::max)
        };
        let few = run(1);
        let many = run(8);
        assert!(
            few > 2.0 * many,
            "1 reader ({few:.3}s) must be slower than 8 readers ({many:.3}s)"
        );
    }
}
