//! Distributed `UoI_LASSO` (paper Algorithm 1 + §III): the full
//! Map-Solve-Reduce pipeline over the simulated cluster.
//!
//! * **Map** — each ADMM rank keeps a resident Tier-1 row block; every
//!   bootstrap resample is materialised by a Tier-2 one-sided shuffle
//!   ([`uoi_tieredio::tier2_shuffle`], Fig 1a/1c).
//! * **Solve** — consensus LASSO-ADMM across the ADMM communicator
//!   ([`uoi_solvers::DistLassoAdmm`]); OLS is the same solver at
//!   `lambda = 0`.
//! * **Reduce** — support intersection (eq. 3) through a single world
//!   `Allreduce` of per-lambda selection-count indicators; estimate
//!   averaging (eq. 4) through a world `Allreduce` of the winning OLS
//!   estimates.
//!
//! Work is decomposed over `P_B` bootstrap groups x `P_lambda` lambda
//! groups x ADMM cores ([`crate::parallelism::ParallelLayout`]); with the
//! [`ParallelLayout::admm_only`] layout all cores serve one distributed
//! solver, the configuration of the paper's multi-node scaling runs.

use crate::numerical::NumericalLedger;
use crate::parallelism::ParallelLayout;
use crate::support::dedup_family;
use crate::uoi_lasso::{bootstrap_with_oob, UoiFit, UoiLassoConfig};
use uoi_data::bootstrap::row_bootstrap;
use uoi_data::rng::substream;
use uoi_linalg::Matrix;
use uoi_mpisim::{Comm, RankCtx};
use uoi_solvers::{support_of, DistLassoAdmm, FactorHealth};
use uoi_telemetry::{Telemetry, TraceEvent};
use uoi_tieredio::distribution::{block_range, tier2_shuffle};

/// Fit `UoI_LASSO` distributed over `world`.
///
/// `x`/`y` stand for the dataset as resident after the Tier-1 parallel
/// read (every rank *uses* only its block; bootstrap rows move through
/// simulated one-sided windows). All ranks return the identical fit.
#[deprecated(
    since = "0.6.0",
    note = "use `uoi_core::UoiFitter` with `ExecMode::Dist` (or `fit_on` inside a cluster) instead"
)]
pub fn fit_uoi_lasso_dist(
    ctx: &mut RankCtx,
    world: &Comm,
    x: &Matrix,
    y: &[f64],
    cfg: &UoiLassoConfig,
    layout: ParallelLayout,
) -> UoiFit {
    let (n, p) = x.shape();
    assert_eq!(y.len(), n);

    let comms = layout.split(ctx, world);
    let c = comms.admm_comm.size();
    let admm_rank = comms.admm_comm.rank();

    // Numerical resilience: a rank-local ledger (never the shared config
    // ledger — rank closures run concurrently and draining would race).
    // Every guarded decision below is taken from collective-agreed state,
    // so all ranks record the same events and return identical health
    // reports (per lambda group; identical everywhere under `admm_only`).
    // Only group leaders forward events to the trace sink and counters,
    // matching the convergence-record convention.
    let guarded = cfg.numerical.enabled;
    let ledger = NumericalLedger::default();
    let num_tel = if comms.is_group_leader() {
        ctx.telemetry().clone()
    } else {
        Telemetry::disabled()
    };

    // Input validation: every rank validates the same full dataset under
    // the same policy, so findings (and any scrubbing) agree everywhere
    // without a collective.
    let scrubbed = cfg.numerical.validation.map(|policy| {
        let mut xs = x.clone();
        let mut ys = y.to_vec();
        let outcome = uoi_data::validate_xy(&mut xs, &mut ys, policy)
            .unwrap_or_else(|e| panic!("fit_uoi_lasso_dist: {e}"));
        ledger.note_validation(&num_tel, &outcome);
        (xs, ys)
    });
    let (x, y): (&Matrix, &[f64]) = match &scrubbed {
        Some((xs, ys)) => (xs, ys),
        None => (x, y),
    };

    // Degraded mode: the deterministic task-failure plan is identical on
    // every rank, so all ranks skip the same (bootstrap, stage) tasks and
    // the collectives stay aligned. Checkpointing is a serial-fit
    // feature; the distributed pipeline ignores it.
    let plan = cfg.degradation.plan.as_ref();
    let effective_b1 = cfg.b1
        - (0..cfg.b1)
            .filter(|&k| plan.is_some_and(|pl| pl.selection_failed(k)))
            .count();
    let effective_b2 = cfg.b2
        - (0..cfg.b2)
            .filter(|&k| plan.is_some_and(|pl| pl.estimation_failed(k)))
            .count();
    cfg.degradation
        .check_quorum("selection", effective_b1, cfg.b1)
        .unwrap_or_else(|e| panic!("fit_uoi_lasso_dist: {e}"));
    cfg.degradation
        .check_quorum("estimation", effective_b2, cfg.b2)
        .unwrap_or_else(|e| panic!("fit_uoi_lasso_dist: {e}"));

    // Resident Tier-1 block (rows + response column, `p + 1` wide) —
    // each rank materialises only its stripe of the dataset, never the
    // whole matrix.
    let my_range = block_range(n, c, admm_rank);
    let mut resident = {
        let mut block = Matrix::zeros(my_range.len(), p + 1);
        for (dst, src) in my_range.clone().enumerate() {
            block.row_mut(dst)[..p].copy_from_slice(x.row(src));
            block.row_mut(dst)[p] = y[src];
        }
        block
    };
    ctx.compute_membound((my_range.len() * (p + 1) * 8) as f64);

    // Global column means via one allreduce of the local partial sums
    // (the centring step that replaces the paper's intercept column).
    let mut sums = resident.col_means();
    for v in &mut sums {
        *v *= resident.rows() as f64;
    }
    sums.push(resident.rows() as f64);
    comms.admm_comm.allreduce_sum(ctx, &mut sums);
    let count = sums.pop().unwrap_or(1.0).max(1.0);
    let means: Vec<f64> = sums.iter().map(|s| s / count).collect();
    let x_means = means[..p].to_vec();
    let y_mean = means[p];
    resident.center_cols(&means);
    ctx.compute_membound((resident.len() * 8) as f64);

    // Shared lambda grid from the distributed `||X^T y||_inf`.
    let lambdas = {
        let cols: Vec<usize> = (0..p).collect();
        let xr = resident.gather_cols(&cols);
        let yr = resident.col(p);
        let mut xty = uoi_linalg::gemv_t(&xr, &yr);
        ctx.compute_flops(2.0 * (xr.rows() * p) as f64, (xr.len() * 8) as f64);
        comms.admm_comm.allreduce_sum(ctx, &mut xty);
        let lmax = uoi_linalg::norm_inf(&xty).max(1e-12);
        uoi_solvers::geometric_grid(lmax, cfg.lambda_min_ratio * lmax, cfg.q)
    };

    // --- Model selection ---
    // votes[j*p + f] = number of bootstraps whose lambda_j support
    // contains f (group leaders contribute; one vote per (k, j)).
    let sel_span = ctx.span_enter("uoi.selection");
    let mut votes = vec![0.0; cfg.q * p];
    for &k in &layout.bootstraps_for(comms.b_group, cfg.b1) {
        if plan.is_some_and(|pl| pl.selection_failed(k)) {
            continue;
        }
        let mut rng = substream(cfg.seed, k as u64);
        let idx = row_bootstrap(&mut rng, n, n);
        let my_slice = &idx[block_range(n, c, admm_rank)];
        let (data, _t) = tier2_shuffle(ctx, &comms.admm_comm, resident.clone(), n, my_slice);
        let (xb, yb) = split_block(&data, p);
        // Residual-curve capture is symmetric across ranks (it never
        // touches a collective), and only group leaders emit the record.
        let mut admm = cfg.admm.clone();
        admm.capture_curve = ctx.telemetry().tracing_enabled();
        let my_lambda_ids = layout.lambdas_for(comms.l_group, cfg.q);
        let my_lambdas: Vec<f64> = my_lambda_ids.iter().map(|&j| lambdas[j]).collect();
        let sols = if !guarded {
            let solver = DistLassoAdmm::new(ctx, &comms.admm_comm, xb, admm);
            solver.solve_path(ctx, &comms.admm_comm, &yb, &my_lambdas)
        } else {
            // Guarded construction. `try_new`'s only collective (the
            // penalty allreduce) runs before any rank can fail, so all
            // ranks reach the agreement allreduce below regardless of
            // who broke: [breakdowns, jitter attempts, jitter] summed
            // across the ADMM communicator gives every rank the same
            // verdict and the same (deterministic) health numbers.
            let attempt = DistLassoAdmm::try_new(ctx, &comms.admm_comm, xb.clone(), admm.clone());
            let mut stats = match &attempt {
                Ok(s) => {
                    let fh = s.factor_health();
                    vec![0.0, fh.attempts as f64, fh.jitter]
                }
                Err(_) => vec![1.0, 0.0, 0.0],
            };
            comms.admm_comm.allreduce_sum(ctx, &mut stats);
            if stats[0] > 0.0 {
                ledger.note_factor(
                    &num_tel,
                    "selection",
                    k,
                    &FactorHealth {
                        attempts: u32::MAX,
                        jitter: 0.0,
                        condest: None,
                    },
                );
                ledger.note_task_dropped(&num_tel, "selection", k, "factorization_exhausted");
                continue;
            }
            if stats[1] > 0.0 {
                ledger.note_factor(
                    &num_tel,
                    "selection",
                    k,
                    &FactorHealth {
                        attempts: stats[1] as u32,
                        jitter: stats[2],
                        condest: None,
                    },
                );
            }
            let solver = attempt.expect("no rank reported a factor breakdown");
            let mut sols = solver.solve_path(ctx, &comms.admm_comm, &yb, &my_lambdas);
            recover_diverged_dist(
                ctx,
                &comms.admm_comm,
                &xb,
                &yb,
                &admm,
                cfg,
                &lambdas,
                &my_lambda_ids,
                &mut sols,
                &ledger,
                &num_tel,
                k,
            );
            sols
        };
        if comms.is_group_leader() {
            for (&j, sol) in my_lambda_ids.iter().zip(&sols) {
                let support = support_of(&sol.beta, cfg.support_tol);
                let (rank, t) = (ctx.world_rank(), ctx.clock());
                ctx.telemetry().record_with(|| TraceEvent::Convergence {
                    rank,
                    stage: "selection",
                    bootstrap: k,
                    lambda_idx: j,
                    lambda: lambdas[j],
                    iterations: sol.iterations,
                    max_iter: cfg.admm.max_iter,
                    converged: sol.converged,
                    primal_residual: sol.primal_residual,
                    dual_residual: sol.dual_residual,
                    support: support.clone(),
                    curve: sol.curve.clone(),
                    t,
                });
                for f in support {
                    votes[j * p + f] += 1.0;
                }
            }
        }
    }
    // Reduce: one world allreduce realises eq. 3 for every lambda at once
    // (soft threshold: >= ceil(frac * B1) votes).
    world.allreduce_sum(ctx, &mut votes);
    let needed = crate::uoi_lasso::required_votes(cfg.intersection_frac, effective_b1) as f64;
    let supports_per_lambda: Vec<Vec<usize>> = (0..cfg.q)
        .map(|j| {
            (0..p)
                .filter(|&f| votes[j * p + f] >= needed - 0.5)
                .collect()
        })
        .collect();
    let support_family = dedup_family(supports_per_lambda.clone());
    ctx.span_exit(sel_span);

    // --- Model estimation ---
    // Estimation bootstraps are spread over all (b, lambda) groups. Each
    // bootstrap builds one local Gram over the family's column union;
    // every support's distributed OLS then factors an |S|x|S| sub-Gram
    // instead of re-gathering and re-factoring the shuffled design.
    let est_span = ctx.span_enter("uoi.estimation");
    let mut union: Vec<usize> = support_family.iter().flatten().copied().collect();
    union.sort_unstable();
    union.dedup();
    let mut union_pos = vec![usize::MAX; p];
    for (a, &f) in union.iter().enumerate() {
        union_pos[f] = a;
    }
    let groups = layout.p_b * layout.p_lambda;
    let my_group = comms.b_group * layout.p_lambda + comms.l_group;
    let mut est_sum = vec![0.0; p];
    let mut pred: Vec<f64> = Vec::new();
    for k in 0..cfg.b2 {
        if k % groups != my_group {
            continue;
        }
        if plan.is_some_and(|pl| pl.estimation_failed(k)) {
            continue;
        }
        let mut rng = substream(cfg.seed, 10_000 + k as u64);
        let (train_idx, eval_idx) = bootstrap_with_oob(&mut rng, n);
        // Shuffle this rank's share of both resamples.
        let my_train = my_share(&train_idx, c, admm_rank);
        let (train, _) = tier2_shuffle(ctx, &comms.admm_comm, resident.clone(), n, &my_train);
        let my_eval = my_share(&eval_idx, c, admm_rank);
        let (eval, _) = tier2_shuffle(ctx, &comms.admm_comm, resident.clone(), n, &my_eval);
        let (xt, yt) = split_block(&train, p);
        let (xe, ye) = split_block(&eval, p);

        // Per-bootstrap local union-Gram cache. Upper-stored: every
        // consumer below reads canonical (min, max) coordinates, so the
        // O(u^2) mirror pass is skipped. Charged as one streaming read of
        // the projected design plus cache-resident tiled flops (the
        // batched kernel's panel working set).
        let sp_gram = ctx.span_enter("gram_build.union");
        let xt_u = xt.gather_cols(&union);
        let gram_u = uoi_linalg::syrk_t_upper(&xt_u).into_upper();
        let xty_u = uoi_linalg::gemv_t(&xt_u, &yt);
        ctx.compute_membound((xt_u.len() * 8) as f64);
        ctx.compute_flops(
            (xt_u.rows() * union.len() * (union.len() + 2)) as f64,
            uoi_linalg::gram::gram_kernel_ws(union.len()),
        );
        ctx.span_exit(sp_gram);
        let xe_u = xe.gather_cols(&union);

        let mut best: Option<(f64, Vec<f64>)> = None;
        // Worst-case OLS solver outcome across the candidate family —
        // the estimation task's convergence record.
        let (mut est_iters, mut est_conv) = (0usize, true);
        for support in &support_family {
            // Distributed OLS (ADMM at lambda = 0) on the |S|x|S|
            // sub-Gram, as the paper's estimation step does.
            let s = support.len();
            let sub = Matrix::from_fn(s, s, |a, b| {
                let (i, j) = (union_pos[support[a]], union_pos[support[b]]);
                if i <= j {
                    gram_u[(i, j)]
                } else {
                    gram_u[(j, i)]
                }
            });
            let rhs: Vec<f64> = support.iter().map(|&f| xty_u[union_pos[f]]).collect();
            let solver =
                DistLassoAdmm::from_gram(ctx, &comms.admm_comm, sub, xt.rows(), cfg.admm.clone());
            let sol = solver.solve_ols_with_rhs(ctx, &comms.admm_comm, &rhs);
            est_iters = est_iters.max(sol.iterations);
            est_conv &= sol.converged;
            // Embed into full coordinates, plus union coordinates for the
            // evaluation pass.
            let mut beta = vec![0.0; p];
            let mut beta_u = vec![0.0; union.len()];
            for (&f, &b) in support.iter().zip(&sol.beta) {
                beta[f] = b;
                beta_u[union_pos[f]] = b;
            }
            // Distributed evaluation loss: local SSE, allreduce 2 scalars.
            let sp_score = ctx.span_enter("scoring.eval");
            uoi_linalg::gemv_into(&xe_u, &beta_u, &mut pred);
            ctx.compute_flops(
                2.0 * (xe_u.rows() * union.len()) as f64,
                (xe_u.len() * 8) as f64,
            );
            let mut stats = vec![
                pred.iter()
                    .zip(&ye)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>(),
                ye.len() as f64,
            ];
            comms.admm_comm.allreduce_sum(ctx, &mut stats);
            ctx.span_exit(sp_score);
            let loss = stats[0] / stats[1].max(1.0);
            if best.as_ref().is_none_or(|(l, _)| loss < *l) {
                best = Some((loss, beta));
            }
        }
        if comms.is_group_leader() {
            let (rank, t) = (ctx.world_rank(), ctx.clock());
            ctx.telemetry().record_with(|| TraceEvent::Convergence {
                rank,
                stage: "estimation",
                bootstrap: k,
                lambda_idx: 0,
                lambda: 0.0,
                iterations: est_iters,
                max_iter: cfg.admm.max_iter,
                converged: est_conv,
                primal_residual: 0.0,
                dual_residual: 0.0,
                support: Vec::new(),
                curve: Vec::new(),
                t,
            });
            if let Some((_, beta)) = best {
                for (s, b) in est_sum.iter_mut().zip(&beta) {
                    *s += b;
                }
            }
        }
    }
    // Reduce: average the winners across groups (eq. 4).
    world.allreduce_sum(ctx, &mut est_sum);
    ctx.span_exit(est_span);
    let beta: Vec<f64> = est_sum.iter().map(|v| v / effective_b2 as f64).collect();

    let intercept = y_mean - uoi_linalg::dot(&x_means, &beta);
    let support = support_of(&beta, cfg.support_tol);
    let degradation = plan.map(|pl| crate::degraded::DegradationReport {
        b1_planned: cfg.b1,
        b1_effective: effective_b1,
        b2_planned: cfg.b2,
        b2_effective: effective_b2,
        failed_selection: (0..cfg.b1).filter(|&k| pl.selection_failed(k)).collect(),
        failed_estimation: (0..cfg.b2).filter(|&k| pl.estimation_failed(k)).collect(),
        quorum_votes: needed as usize,
        min_quorum_frac: cfg.degradation.min_quorum_frac,
    });
    UoiFit {
        beta,
        intercept,
        support,
        lambdas,
        supports_per_lambda,
        support_family,
        degradation,
        recovery: None,
        speculation: None,
        numerical: cfg.numerical.active().then(|| ledger.drain_report()),
    }
}

/// Post-hoc divergence detection and bounded-rho recovery for a solved
/// distributed selection path.
///
/// The residuals in `sols` are consensus (allreduced) quantities, so
/// every rank detects the same divergences and walks the same restart
/// rungs — control flow stays collectively aligned. Each rung rebuilds
/// the consensus solver at a Boyd-balanced escalated (or relaxed)
/// penalty and cold-solves just the diverged lambda, mirroring the
/// serial [`uoi_solvers::ResilientLasso`] recovery. A lambda that
/// exhausts the budget degrades to the zero iterate — it then
/// contributes no selection votes — and is recorded as a dropped
/// divergence.
#[allow(clippy::too_many_arguments)]
fn recover_diverged_dist(
    ctx: &mut RankCtx,
    comm: &Comm,
    xb: &Matrix,
    yb: &[f64],
    admm: &uoi_solvers::AdmmConfig,
    cfg: &UoiLassoConfig,
    lambdas: &[f64],
    my_lambda_ids: &[usize],
    sols: &mut [uoi_solvers::AdmmSolution],
    ledger: &NumericalLedger,
    num_tel: &Telemetry,
    k: usize,
) {
    let res = cfg.numerical.resilience;
    let cap = res.divergence_cap;
    let tripped = |s: &uoi_solvers::AdmmSolution| {
        !s.converged
            && (!s.primal_residual.is_finite()
                || !s.dual_residual.is_finite()
                || s.primal_residual.abs() > cap
                || s.dual_residual.abs() > cap)
    };
    let diverged: Vec<usize> = (0..sols.len()).filter(|&i| tripped(&sols[i])).collect();
    if diverged.is_empty() {
        return;
    }
    let mut health = uoi_solvers::PathHealth::default();
    for &i in &diverged {
        let j = my_lambda_ids[i];
        // Boyd residual balancing: same direction rule as the serial
        // resilient solver (non-finite defaults to increase).
        let (r, s) = (sols[i].primal_residual, sols[i].dual_residual);
        let increase = !s.is_finite() || !r.is_finite() || r >= s;
        let mut recovered = false;
        for rung in 1..=res.max_rho_restarts {
            health.rho_restarts += 1;
            let scale = 10f64.powi(rung as i32);
            let mut admm_r = admm.clone();
            admm_r.rho = if increase {
                admm.rho * scale
            } else {
                admm.rho / scale
            };
            // Same agreement protocol as construction: the restarted
            // factorisation may itself break on some rank.
            let attempt = DistLassoAdmm::try_new(ctx, comm, xb.clone(), admm_r);
            let mut broke = vec![if attempt.is_err() { 1.0 } else { 0.0 }];
            comm.allreduce_sum(ctx, &mut broke);
            if broke[0] > 0.0 {
                continue;
            }
            let solver = attempt.expect("no rank reported a factor breakdown");
            let redo = solver.solve_path(ctx, comm, yb, &[lambdas[j]]);
            let sol = redo.into_iter().next().expect("one lambda was solved");
            if !tripped(&sol) {
                sols[i] = sol;
                recovered = true;
                break;
            }
        }
        if recovered {
            health.recovered.push(j);
        } else {
            sols[i].beta = vec![0.0; sols[i].beta.len()];
            sols[i].converged = false;
            health.diverged.push(j);
        }
    }
    ledger.note_path(num_tel, "selection", k, &health);
}

/// Split a `(rows x (p+1))` shuffled block into design and response.
fn split_block(block: &Matrix, p: usize) -> (Matrix, Vec<f64>) {
    let cols: Vec<usize> = (0..p).collect();
    let x = block.gather_cols(&cols);
    let y = block.col(p);
    (x, y)
}

/// This rank's block-striped share of a resample index list (the global
/// row ids the rank must fetch).
fn my_share(idx: &[usize], c: usize, rank: usize) -> Vec<usize> {
    block_range(idx.len(), c, rank).map(|i| idx[i]).collect()
}

pub use crate::parallelism::ParallelLayout as Layout;

#[cfg(test)]
// Exercises the deprecated free-function fit surface on purpose: these
// tests pin its behaviour for as long as the wrappers exist.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::metrics::SelectionCounts;
    use crate::uoi_lasso::fit_uoi_lasso;
    use uoi_data::LinearConfig;
    use uoi_mpisim::{Cluster, MachineModel, Phase};
    use uoi_solvers::AdmmConfig;

    fn cfg() -> UoiLassoConfig {
        UoiLassoConfig {
            b1: 6,
            b2: 6,
            q: 10,
            lambda_min_ratio: 2e-2,
            admm: AdmmConfig {
                max_iter: 3000,
                abstol: 1e-9,
                reltol: 1e-8,
                ..Default::default()
            },
            support_tol: 1e-6,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn distributed_matches_serial_statistically() {
        let ds = LinearConfig {
            n_samples: 96,
            n_features: 20,
            n_nonzero: 4,
            snr: 10.0,
            seed: 3,
            ..Default::default()
        }
        .generate();
        let serial = fit_uoi_lasso(&ds.x, &ds.y, &cfg());
        let (x, y) = (ds.x.clone(), ds.y.clone());
        let report = Cluster::new(4, MachineModel::deterministic()).run(move |ctx, world| {
            fit_uoi_lasso_dist(ctx, world, &x, &y, &cfg(), ParallelLayout::admm_only())
        });
        let dist = &report.results[0];
        // Selection is driven by the same bootstrap streams; supports per
        // lambda should agree.
        assert_eq!(dist.supports_per_lambda, serial.supports_per_lambda);
        // Recovery quality matches.
        let cs = SelectionCounts::compare(&serial.support, &ds.support_true, 20);
        let cd = SelectionCounts::compare(&dist.support, &ds.support_true, 20);
        assert!(
            cd.f1() >= cs.f1() - 0.15,
            "dist f1 {} vs serial {}",
            cd.f1(),
            cs.f1()
        );
        // Coefficients close.
        for (a, b) in dist.beta.iter().zip(&serial.beta) {
            assert!((a - b).abs() < 0.05, "dist {a} vs serial {b}");
        }
    }

    #[test]
    fn all_ranks_return_identical_fits() {
        let ds = LinearConfig {
            n_samples: 64,
            n_features: 12,
            n_nonzero: 3,
            seed: 9,
            ..Default::default()
        }
        .generate();
        let (x, y) = (ds.x.clone(), ds.y);
        let report = Cluster::new(4, MachineModel::deterministic()).run(move |ctx, world| {
            let fit = fit_uoi_lasso_dist(ctx, world, &x, &y, &cfg(), ParallelLayout::admm_only());
            (fit.beta, fit.support)
        });
        for r in 1..4 {
            assert_eq!(report.results[0], report.results[r]);
        }
    }

    #[test]
    fn pb_plambda_layout_equivalent_to_admm_only() {
        let ds = LinearConfig {
            n_samples: 64,
            n_features: 12,
            n_nonzero: 3,
            seed: 5,
            ..Default::default()
        }
        .generate();
        let run = |layout: ParallelLayout| {
            let (x, y) = (ds.x.clone(), ds.y.clone());
            Cluster::new(8, MachineModel::deterministic())
                .run(move |ctx, world| fit_uoi_lasso_dist(ctx, world, &x, &y, &cfg(), layout))
                .results
                .remove(0)
        };
        let flat = run(ParallelLayout::admm_only());
        let nested = run(ParallelLayout {
            p_b: 2,
            p_lambda: 2,
        });
        assert_eq!(flat.supports_per_lambda, nested.supports_per_lambda);
        for (a, b) in flat.beta.iter().zip(&nested.beta) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn phases_all_recorded() {
        let ds = LinearConfig {
            n_samples: 48,
            n_features: 10,
            n_nonzero: 2,
            seed: 1,
            ..Default::default()
        }
        .generate();
        let (x, y) = (ds.x.clone(), ds.y);
        let report = Cluster::new(4, MachineModel::deterministic()).run(move |ctx, world| {
            let _ = fit_uoi_lasso_dist(ctx, world, &x, &y, &cfg(), ParallelLayout::admm_only());
            ctx.ledger()
        });
        let l = report.phase_max();
        assert!(l.get(Phase::Compute) > 0.0, "compute time must be recorded");
        assert!(l.get(Phase::Comm) > 0.0, "allreduce time must be recorded");
        assert!(
            l.get(Phase::Distribution) > 0.0,
            "tier-2 shuffles must be recorded"
        );
    }
}
