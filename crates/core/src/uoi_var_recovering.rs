//! Shrink-and-recover `UoI_VAR`: the [`crate::uoi_lasso_recovering`]
//! execution pattern applied to Algorithm 2.
//!
//! Every rank builds the same [`VarProblem`] (centred regression block,
//! block-bootstrap geometry, lambda grid) from the shared series, owns a
//! deterministic slice of the selection/estimation bootstraps through
//! [`TaskOwnership`], and exchanges results through checksummed window
//! blobs. Replay (stash) and sticky reassignment make the recovered fit
//! bit-identical to the fault-free serial fit; an exhausted round budget
//! falls back to the degraded-mode serial fit over the survivors' tasks.

use crate::error::UoiError;
use crate::recovery::{decode_index_lists, encode_index_lists};
use crate::recovery::{
    degraded_fallback_plan, exchange_blobs, RecoveryConfig, RecoveryReport, TaskOwnership,
};
use crate::speculation::{
    run_speculative_stage, var_estimation_flops, var_selection_flops, SpeculationReport,
};
use crate::support::dedup_family;
use crate::uoi_lasso::{intersect_per_lambda, required_votes};
use crate::uoi_lasso_recovering::{collect_results, lookup_stash};
use crate::uoi_var::{
    build_var_problem, fit_inner, validate_var_inputs, var_average, var_estimation_setup,
    var_estimation_task, var_selection_task, UoiVarConfig, UoiVarFit,
};
use uoi_linalg::Matrix;
use uoi_mpisim::{Cluster, Comm, MachineModel, RankCtx, RecoveryContext, RecoveryError};

/// Fit `UoI_VAR` with shrink-and-recover execution over a simulated
/// `rcfg.world`-rank cluster; see
/// [`fit_uoi_lasso_recovering`](crate::uoi_lasso_recovering::fit_uoi_lasso_recovering)
/// for the execution model.
#[deprecated(
    since = "0.6.0",
    note = "use `uoi_core::UoiVarFitter` with `ExecMode::Recovering` instead"
)]
pub fn fit_uoi_var_recovering(
    series: &Matrix,
    cfg: &UoiVarConfig,
    rcfg: &RecoveryConfig,
) -> Result<UoiVarFit, UoiError> {
    // Adversarial-input scrub before the cluster spins up, so every rank
    // (and the degraded fallback) sees the identical sanitised series.
    let scrubbed = cfg
        .base
        .numerical
        .prevalidate_series(series, &cfg.base.telemetry)?;
    let series: &Matrix = scrubbed.as_ref().unwrap_or(series);
    validate_var_inputs(series, cfg)?;
    rcfg.speculation.validate()?;
    if rcfg.world == 0 {
        return Err(UoiError::InvalidConfig(
            "recovery world must be >= 1".into(),
        ));
    }
    if !rcfg.enabled {
        return fit_inner(series, cfg);
    }

    let base = &cfg.base;
    let ownership = TaskOwnership::new(rcfg.world, base.seed);
    let mut cluster = Cluster::new(rcfg.world, MachineModel::deterministic())
        .with_watchdog(rcfg.watchdog)
        .with_telemetry(base.telemetry.clone());
    if let Some(plan) = &rcfg.plan {
        cluster = cluster.with_fault_plan(plan.clone());
    }

    let outcome = cluster.try_run_recovering(rcfg.max_rounds, |ctx, comm, rctx| {
        var_round(ctx, comm, rctx, series, cfg, rcfg, &ownership)
    });

    match outcome {
        Ok((report, log)) => {
            let mut fits = report.results;
            let mut fit = fits.swap_remove(0);
            fit.recovery = Some(build_report(
                &log.failed_ranks(),
                log.rounds.len(),
                cfg,
                rcfg,
                &ownership,
                false,
            ));
            // Rounds record into the shared config ledger; drained once the
            // cluster is done, so the per-fit report covers every round
            // (including replayed work and the entry-scrub issues above).
            fit.numerical = base
                .numerical
                .active()
                .then(|| base.numerical.ledger().drain_report());
            Ok(fit)
        }
        Err(RecoveryError::Exhausted { rounds, failed, .. }) => {
            let plan = degraded_fallback_plan(&failed, &ownership, base.b1, base.b2, base.seed);
            let mut degraded_cfg = cfg.clone();
            degraded_cfg.base.degradation.plan = Some(plan);
            let mut fit = fit_inner(series, &degraded_cfg)?;
            fit.recovery = Some(build_report(&failed, rounds, cfg, rcfg, &ownership, true));
            Ok(fit)
        }
        Err(RecoveryError::Fatal(sim)) => Err(crate::speculation::fatal_to_uoi(&sim)),
    }
}

fn build_report(
    failed: &[usize],
    rounds_attempted: usize,
    cfg: &UoiVarConfig,
    rcfg: &RecoveryConfig,
    ownership: &TaskOwnership,
    degraded_fallback: bool,
) -> RecoveryReport {
    let reassigned = |total: usize| -> Vec<usize> {
        (0..total)
            .filter(|&k| failed.contains(&ownership.owner(k, &[])))
            .collect()
    };
    RecoveryReport {
        world: rcfg.world,
        max_rounds: rcfg.max_rounds,
        rounds_attempted,
        failed_ranks: failed.to_vec(),
        reassigned_selection: reassigned(cfg.base.b1),
        reassigned_estimation: reassigned(cfg.base.b2),
        degraded_fallback,
    }
}

/// One SPMD round of the recovering VAR fit.
fn var_round(
    ctx: &mut RankCtx,
    comm: &Comm,
    rctx: &RecoveryContext,
    series: &Matrix,
    cfg: &UoiVarConfig,
    rcfg: &RecoveryConfig,
    ownership: &TaskOwnership,
) -> UoiVarFit {
    let span = if rctx.is_recovery_round() {
        Some(ctx.span_enter("recovery.reexec"))
    } else {
        None
    };

    let (_, p) = series.shape();
    let d = cfg.order;
    let base = &cfg.base;
    let my_orig = rctx.original_rank(comm.rank());
    let stash = rctx.stash();

    // Replicated glue: identical problem construction on every rank.
    let prob = build_var_problem(series, cfg);

    // --- Selection ---
    let sel_nominal = ctx.model().compute_time(
        var_selection_flops(prob.n, prob.dp, p, base.q),
        ((prob.n * prob.dp + prob.dp * prob.dp) * 8) as f64,
    );
    let (sel_blob, sel_stats) = run_speculative_stage(
        ctx,
        rctx,
        ownership,
        &rcfg.speculation,
        "var.sel",
        base.b1,
        my_orig,
        sel_nominal,
        |k| {
            let key = format!("var.sel.{k}");
            match lookup_stash(rctx, &key) {
                Some(pl) => pl,
                None => {
                    let supports = var_selection_task(&prob, base, p, k);
                    let payload = encode_index_lists(&supports);
                    stash.put(my_orig, &key, payload.clone());
                    payload
                }
            }
        },
        |k| encode_index_lists(&var_selection_task(&prob, base, p, k)),
    );
    let blobs = ctx.span("recovery.exchange_sel", |ctx| {
        exchange_blobs(ctx, comm, sel_blob, &rctx.rank_map, rcfg.get_attempts)
    });
    let selection: Vec<Vec<Vec<usize>>> = collect_results(&blobs, base.b1, "var selection")
        .into_iter()
        .map(|payload| decode_index_lists(&payload))
        .collect();

    let supports_by_bootstrap: Vec<&Vec<Vec<usize>>> = selection.iter().collect();
    let needed = required_votes(base.intersection_frac, base.b1);
    let supports_per_lambda = intersect_per_lambda(
        &supports_by_bootstrap,
        prob.lambdas.len(),
        prob.total_coef,
        needed,
    );
    let support_family = dedup_family(supports_per_lambda.clone());

    // --- Estimation ---
    let est_ctx = var_estimation_setup(&support_family, &prob, p);
    let est_nominal = ctx.model().compute_time(
        var_estimation_flops(prob.n, est_ctx.u, p, est_ctx.family_cols.len()),
        ((prob.n * est_ctx.u + est_ctx.u * est_ctx.u) * 8) as f64,
    );
    let (est_blob, est_stats) = run_speculative_stage(
        ctx,
        rctx,
        ownership,
        &rcfg.speculation,
        "var.est",
        base.b2,
        my_orig,
        est_nominal,
        |k| {
            let key = format!("var.est.{k}");
            match lookup_stash(rctx, &key) {
                Some(pl) => pl,
                None => {
                    let full = var_estimation_task(&est_ctx, &prob, base, p, k);
                    stash.put(my_orig, &key, full.clone());
                    full
                }
            }
        },
        |k| var_estimation_task(&est_ctx, &prob, base, p, k),
    );
    let blobs = ctx.span("recovery.exchange_est", |ctx| {
        exchange_blobs(ctx, comm, est_blob, &rctx.rank_map, rcfg.get_attempts)
    });
    let estimates = collect_results(&blobs, base.b2, "var estimation");

    let best_estimates: Vec<&Vec<f64>> = estimates.iter().collect();
    let (vec_beta, a_mats, mu) = var_average(&best_estimates, prob.total_coef, p, d, &prob.means);

    if let Some(id) = span {
        ctx.span_exit(id);
    }

    // Both stages hedge together; every rank builds the identical report.
    let speculation = match (sel_stats, est_stats) {
        (Some(sel), Some(est)) => Some(SpeculationReport {
            enabled: true,
            stages: vec![sel, est],
        }),
        _ => None,
    };

    UoiVarFit {
        a_mats,
        mu,
        vec_beta,
        lambdas: prob.lambdas,
        supports_per_lambda,
        support_family,
        degradation: None,
        recovery: None,
        speculation,
        // Per-round events stay in the shared config ledger; the entry
        // function drains them into the final fit's report.
        numerical: None,
    }
}
