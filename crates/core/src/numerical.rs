//! Pipeline-level numerical resilience: the configuration that arms the
//! guarded solver stack, and the per-fit ledger that folds solver- and
//! data-layer health signals into one deterministic
//! [`NumericalHealthReport`].
//!
//! The fallback ladder a task walks under [`NumericalConfig::enabled`]:
//!
//! 1. **Jitter retry** — singular factorisations escalate trace-scaled
//!    diagonal jitter (`uoi_linalg::JitterLadder`), recorded per task;
//! 2. **Rho restart** — diverged ADMM lambdas re-solve cold under a
//!    Boyd-balanced escalated/relaxed penalty
//!    ([`uoi_solvers::ResilientLasso`]), bounded by
//!    [`ResilienceConfig::max_rho_restarts`];
//! 3. **Task drop** — a task that exhausts both rungs is dropped into
//!    the existing degraded-mode quorum accounting (serial pipeline) or
//!    degrades to the empty model (pipelines whose exchange protocol
//!    requires a payload per task), and is counted in
//!    `dropped_tasks`.
//!
//! Everything here is inert by default: with `enabled = false` and no
//! validation policy the fit takes the historical unguarded path and is
//! bit-identical to it.

use std::sync::{Arc, Mutex};
use uoi_data::{DataIssue, ValidationOutcome, ValidationPolicy};
use uoi_solvers::{FactorHealth, PathHealth, ResilienceConfig};
use uoi_telemetry::{NumericalHealthReport, Telemetry, TraceEvent};

/// Numerical-resilience knobs for a UoI fit. `Default` is fully inert:
/// no guarded solves, no validation pass, no report.
#[derive(Clone)]
pub struct NumericalConfig {
    /// Route selection/estimation solves through the guarded resilient
    /// path (jitter ladder + divergence tripwire + rho restarts) and
    /// emit a [`NumericalHealthReport`] on the fit.
    pub enabled: bool,
    /// Solver-level policy: divergence cap, restart budget, optional
    /// condition estimation.
    pub resilience: ResilienceConfig,
    /// Input-validation pass over the raw `(x, y)` before fitting.
    /// `None` skips the pass (the historical behaviour: non-finite
    /// inputs are rejected without coordinates by the fit's own
    /// checks).
    pub validation: Option<ValidationPolicy>,
    /// The shared per-config event ledger. Fits drain it on completion,
    /// so reusing one config across sequential fits is fine; sharing it
    /// across *concurrent* fits interleaves their reports.
    ledger: Arc<NumericalLedger>,
}

impl Default for NumericalConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            resilience: ResilienceConfig::default(),
            validation: None,
            ledger: Arc::new(NumericalLedger::default()),
        }
    }
}

impl std::fmt::Debug for NumericalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NumericalConfig")
            .field("enabled", &self.enabled)
            .field("resilience", &self.resilience)
            .field("validation", &self.validation)
            .finish()
    }
}

impl NumericalConfig {
    /// A fully armed configuration: guarded solves plus sanitizing
    /// validation — the "complete the fit no matter what" posture the
    /// adversarial acceptance matrix runs under.
    pub fn guarded() -> Self {
        Self {
            enabled: true,
            validation: Some(ValidationPolicy::Sanitize),
            ..Self::default()
        }
    }

    /// Arm or disarm the guarded solver path (chainable).
    pub fn enabled(mut self, on: bool) -> Self {
        self.enabled = on;
        self
    }

    /// Set the solver-level resilience policy (chainable).
    pub fn resilience(mut self, res: ResilienceConfig) -> Self {
        self.resilience = res;
        self
    }

    /// Set the input-validation policy (chainable).
    pub fn validation(mut self, policy: Option<ValidationPolicy>) -> Self {
        self.validation = policy;
        self
    }

    /// Whether this fit should carry a numerical-health report.
    pub fn active(&self) -> bool {
        self.enabled || self.validation.is_some()
    }

    /// The event ledger fits record into.
    pub(crate) fn ledger(&self) -> &NumericalLedger {
        &self.ledger
    }

    /// Run the configured validation pass over `(x, y)`.
    ///
    /// - `Ok(None)`: no policy set, or the pass changed nothing — fit on
    ///   the caller's original data (zero copies on that path).
    /// - `Ok(Some((x, y)))`: `Sanitize` scrubbed cells — fit on the
    ///   returned copies.
    /// - `Err`: `Reject` found corrupt values; the error names the first
    ///   offending coordinate.
    ///
    /// All findings (including flag-only ones like constant columns) are
    /// recorded on the ledger for the fit's report.
    pub(crate) fn prevalidate(
        &self,
        x: &uoi_linalg::Matrix,
        y: &[f64],
        tel: &Telemetry,
    ) -> Result<Option<(uoi_linalg::Matrix, Vec<f64>)>, crate::error::UoiError> {
        let Some(policy) = self.validation else {
            return Ok(None);
        };
        let mut xs = x.clone();
        let mut ys = y.to_vec();
        let outcome = uoi_data::validate_xy(&mut xs, &mut ys, policy)?;
        self.ledger().note_validation(tel, &outcome);
        if outcome.sanitized_cells > 0 {
            Ok(Some((xs, ys)))
        } else {
            Ok(None)
        }
    }

    /// Series (design-only) variant of [`prevalidate`](Self::prevalidate)
    /// for the VAR pipelines, which validate the raw time series before
    /// the lagged regression block is built. Returns `Ok(Some(scrubbed))`
    /// only when sanitisation changed at least one cell.
    pub(crate) fn prevalidate_series(
        &self,
        series: &uoi_linalg::Matrix,
        tel: &Telemetry,
    ) -> Result<Option<uoi_linalg::Matrix>, crate::error::UoiError> {
        let Some(policy) = self.validation else {
            return Ok(None);
        };
        let mut xs = series.clone();
        // validate_xy insists on a matching response; a zero vector is
        // finite and contributes no issues, so it is a pure placeholder.
        let mut dummy = vec![0.0; xs.rows()];
        let outcome = uoi_data::validate_xy(&mut xs, &mut dummy, policy)?;
        self.ledger().note_validation(tel, &outcome);
        if outcome.sanitized_cells > 0 {
            Ok(Some(xs))
        } else {
            Ok(None)
        }
    }
}

/// Thread-safe accumulator of [`TraceEvent::Numerical`] records for one
/// fit. Events are pushed from rayon workers in nondeterministic order;
/// the report aggregation sorts, so the drained report is a pure
/// function of the event *set* and stays byte-identical across reruns.
#[derive(Default)]
pub struct NumericalLedger {
    events: Mutex<Vec<TraceEvent>>,
}

impl NumericalLedger {
    /// Record one numerical event: stored for the fit's report, forwarded
    /// to the trace sink, and counted under the `numerical.*` metrics.
    pub(crate) fn record(&self, tel: &Telemetry, ev: TraceEvent) {
        if let TraceEvent::Numerical {
            action,
            attempts,
            detail,
            ..
        } = &ev
        {
            match action.as_str() {
                "jitter" => {
                    tel.incr("numerical.jitter_events", 1);
                    tel.incr("numerical.jitter_attempts", *attempts as u64);
                }
                "rho_restart" => tel.incr("numerical.rho_restarts", *attempts as u64),
                "divergence" => {
                    tel.incr("numerical.divergences", 1);
                    if detail == "recovered" {
                        tel.incr("numerical.recovered", 1);
                    }
                }
                "task_dropped" => tel.incr("numerical.dropped_tasks", 1),
                "condest" => tel.incr("numerical.condest_samples", 1),
                "data_issue" => tel.incr("numerical.data_issues", *attempts as u64),
                "sanitize" => tel.incr("numerical.sanitized_cells", *attempts as u64),
                _ => {}
            }
        }
        tel.record_with(|| ev.clone());
        self.events.lock().expect("ledger poisoned").push(ev);
    }

    /// Record a constructor's factorisation health: a `jitter` event
    /// when the ladder had to escalate (exhaustion is marked by
    /// `attempts == u32::MAX` and recorded with `detail = "exhausted"`),
    /// plus a `condest` event when an estimate was computed.
    pub(crate) fn note_factor(
        &self,
        tel: &Telemetry,
        stage: &'static str,
        bootstrap: usize,
        health: &FactorHealth,
    ) {
        self.note_candidate_factor(tel, stage, bootstrap, 0, health);
    }

    /// [`Self::note_factor`] with a candidate index (estimation scores
    /// one factorisation per candidate support; the index lands in the
    /// event's `lambda_idx` slot so per-candidate events stay distinct).
    pub(crate) fn note_candidate_factor(
        &self,
        tel: &Telemetry,
        stage: &'static str,
        bootstrap: usize,
        candidate: usize,
        health: &FactorHealth,
    ) {
        if health.attempts == u32::MAX {
            self.record(
                tel,
                numerical_event(
                    stage,
                    "jitter",
                    bootstrap,
                    candidate,
                    uoi_linalg::JITTER_MAX_ATTEMPTS as usize,
                    health.jitter,
                    "exhausted",
                ),
            );
        } else if health.attempts > 0 {
            self.record(
                tel,
                numerical_event(
                    stage,
                    "jitter",
                    bootstrap,
                    candidate,
                    health.attempts as usize,
                    health.jitter,
                    "",
                ),
            );
        }
        if let Some(c) = health.condest {
            self.record(
                tel,
                numerical_event(stage, "condest", bootstrap, candidate, 0, c, ""),
            );
        }
    }

    /// Record a guarded path's full health ledger: factorisation, rho
    /// restarts, and per-lambda divergence outcomes.
    pub(crate) fn note_path(
        &self,
        tel: &Telemetry,
        stage: &'static str,
        bootstrap: usize,
        health: &PathHealth,
    ) {
        self.note_factor(
            tel,
            stage,
            bootstrap,
            &FactorHealth {
                attempts: health.factor_attempts,
                jitter: health.factor_jitter,
                condest: health.condest,
            },
        );
        if health.rho_restarts > 0 {
            self.record(
                tel,
                numerical_event(
                    stage,
                    "rho_restart",
                    bootstrap,
                    0,
                    health.rho_restarts as usize,
                    0.0,
                    "",
                ),
            );
        }
        for &idx in &health.recovered {
            self.record(
                tel,
                numerical_event(stage, "divergence", bootstrap, idx, 0, 0.0, "recovered"),
            );
        }
        for &idx in &health.diverged {
            self.record(
                tel,
                numerical_event(stage, "divergence", bootstrap, idx, 0, 0.0, "dropped"),
            );
        }
    }

    /// Record a task falling off the end of the fallback ladder.
    pub(crate) fn note_task_dropped(
        &self,
        tel: &Telemetry,
        stage: &'static str,
        bootstrap: usize,
        why: &str,
    ) {
        self.record(
            tel,
            numerical_event(stage, "task_dropped", bootstrap, 0, 0, 0.0, why),
        );
    }

    /// Record a validation pass: one `data_issue` event per issue kind
    /// (carrying the occurrence count) and a `sanitize` event when cells
    /// were scrubbed.
    pub(crate) fn note_validation(&self, tel: &Telemetry, outcome: &ValidationOutcome) {
        let mut by_kind: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for issue in &outcome.issues {
            *by_kind.entry(issue.kind()).or_insert(0) += 1;
        }
        for (kind, count) in by_kind {
            self.record(
                tel,
                numerical_event("validation", "data_issue", 0, 0, count, 0.0, kind),
            );
        }
        if outcome.sanitized_cells > 0 {
            self.record(
                tel,
                numerical_event(
                    "validation",
                    "sanitize",
                    0,
                    0,
                    outcome.sanitized_cells,
                    0.0,
                    "",
                ),
            );
        }
    }

    /// Record one degenerate-resample diagnostic.
    pub(crate) fn note_resample_issue(
        &self,
        tel: &Telemetry,
        stage: &'static str,
        bootstrap: usize,
        issue: &DataIssue,
    ) {
        self.record(
            tel,
            numerical_event(stage, "data_issue", bootstrap, 0, 1, 0.0, issue.kind()),
        );
    }

    /// Drain every accumulated event into a deterministic report.
    pub(crate) fn drain_report(&self) -> NumericalHealthReport {
        let events = std::mem::take(&mut *self.events.lock().expect("ledger poisoned"));
        NumericalHealthReport::from_events(&events)
    }
}

#[allow(clippy::too_many_arguments)]
fn numerical_event(
    stage: &'static str,
    action: &str,
    bootstrap: usize,
    lambda_idx: usize,
    attempts: usize,
    value: f64,
    detail: &str,
) -> TraceEvent {
    TraceEvent::Numerical {
        rank: 0,
        stage,
        action: action.to_string(),
        bootstrap,
        lambda_idx,
        attempts,
        value,
        detail: detail.to_string(),
        t: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let cfg = NumericalConfig::default();
        assert!(!cfg.enabled && cfg.validation.is_none() && !cfg.active());
    }

    #[test]
    fn guarded_arms_everything() {
        let cfg = NumericalConfig::guarded();
        assert!(cfg.enabled && cfg.active());
        assert_eq!(cfg.validation, Some(ValidationPolicy::Sanitize));
    }

    #[test]
    fn ledger_folds_path_health_into_report() {
        let cfg = NumericalConfig::guarded();
        let tel = Telemetry::disabled();
        cfg.ledger().note_path(
            &tel,
            "selection",
            3,
            &PathHealth {
                factor_attempts: 2,
                factor_jitter: 1e-11,
                condest: Some(1e9),
                rho_restarts: 1,
                recovered: vec![4],
                diverged: vec![],
            },
        );
        let report = cfg.ledger().drain_report();
        assert_eq!(report.jitter_events, 1);
        assert_eq!(report.jitter_attempts_total, 2);
        assert_eq!(report.rho_restarts, 1);
        assert_eq!(report.divergences, 1);
        assert_eq!(report.recovered, 1);
        assert!(!report.is_clean());
        // Drained: a second report is empty.
        assert_eq!(cfg.ledger().drain_report().events, 0);
    }

    #[test]
    fn exhausted_factor_marks_jitter_exhausted() {
        let cfg = NumericalConfig::guarded();
        let tel = Telemetry::disabled();
        cfg.ledger().note_factor(
            &tel,
            "estimation",
            1,
            &FactorHealth {
                attempts: u32::MAX,
                jitter: 1e-2,
                condest: None,
            },
        );
        let report = cfg.ledger().drain_report();
        assert_eq!(report.jitter_events, 1);
        assert_eq!(
            report.jitter_attempts_total,
            uoi_linalg::JITTER_MAX_ATTEMPTS as usize
        );
    }

    #[test]
    fn validation_outcome_recorded_by_kind() {
        let cfg = NumericalConfig::guarded();
        let tel = Telemetry::disabled();
        let outcome = ValidationOutcome {
            issues: vec![
                DataIssue::ConstantColumn { col: 1, value: 0.0 },
                DataIssue::DuplicateColumns { a: 0, b: 2 },
                DataIssue::DuplicateColumns { a: 3, b: 4 },
            ],
            sanitized_cells: 5,
        };
        cfg.ledger().note_validation(&tel, &outcome);
        let report = cfg.ledger().drain_report();
        assert_eq!(report.data_issues.get("constant_column"), Some(&1));
        assert_eq!(report.data_issues.get("duplicate_columns"), Some(&2));
        assert_eq!(report.sanitized_cells, 5);
        // Data findings alone leave the run numerically clean.
        assert!(report.is_clean());
    }

    #[test]
    fn counters_reach_the_registry() {
        let metrics = std::sync::Arc::new(uoi_telemetry::MetricsRegistry::new());
        let tel = Telemetry::with_metrics(metrics.clone());
        let cfg = NumericalConfig::guarded();
        cfg.ledger().note_path(
            &tel,
            "selection",
            0,
            &PathHealth {
                factor_attempts: 1,
                factor_jitter: 1e-12,
                condest: None,
                rho_restarts: 2,
                recovered: vec![0],
                diverged: vec![1],
            },
        );
        assert_eq!(metrics.counter("numerical.jitter_events"), 1);
        assert_eq!(metrics.counter("numerical.jitter_attempts"), 1);
        assert_eq!(metrics.counter("numerical.rho_restarts"), 2);
        assert_eq!(metrics.counter("numerical.divergences"), 2);
        assert_eq!(metrics.counter("numerical.recovered"), 1);
    }
}
