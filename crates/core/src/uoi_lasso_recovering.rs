//! Shrink-and-recover `UoI_LASSO`: rank-failure agreement, communicator
//! rebuild, and lossless task re-execution on the simulated cluster.
//!
//! Every rank holds the full `(x, y)` by shared reference and replicates
//! the cheap glue (centring, lambda grid, intersection, union
//! projection, averaging) through the *same* `pub(crate)` helpers the
//! serial fit uses; the expensive selection/estimation tasks are
//! partitioned by the deterministic [`TaskOwnership`] map and their
//! results exchanged through checksummed one-sided window blobs. When a
//! rank dies the cluster agrees on the culprits, shrinks, and re-runs
//! the closure: survivors replay their finished tasks from the recovery
//! stash (or re-solve from per-bootstrap Gram checkpoints when a
//! [`CheckpointStore`](crate::degraded::CheckpointStore) is configured)
//! while the dead rank's tasks probe forward to their new sticky owners.
//! Because every task body is a pure function of `(data, config, k)`,
//! the recovered fit is bit-identical to the fault-free serial fit.
//!
//! When the recovery round budget is exhausted the fit falls back to
//! degraded-mode execution: the failed ranks' round-0 tasks become a
//! [`BootstrapFaultPlan`](crate::degraded::BootstrapFaultPlan) and the
//! plain serial degraded fit runs, so `max_rounds = 0` reproduces the
//! degradation-tolerant pipeline exactly.

use crate::degraded::CheckpointStore;
use crate::error::UoiError;
use crate::recovery::{decode_index_lists, encode_index_lists};
use crate::recovery::{
    degraded_fallback_plan, exchange_blobs, parse_task_records, RecoveryConfig, RecoveryReport,
    TaskOwnership,
};
use crate::speculation::{
    lasso_estimation_flops, lasso_selection_flops, run_speculative_stage, SpeculationReport,
};
use crate::uoi_lasso::{
    average_and_intercept, centre_data, estimation_setup, estimation_task, fit_inner,
    intersect_per_lambda, required_votes, selection_gram, selection_solve, selection_task,
    validate_lasso_inputs, UoiFit, UoiLassoConfig,
};
use uoi_linalg::Matrix;
use uoi_mpisim::{Cluster, Comm, MachineModel, MpiError, RankCtx, RecoveryContext, RecoveryError};
use uoi_solvers::{lambda_path, support_of};

/// Fit `UoI_LASSO` with shrink-and-recover execution over a simulated
/// `rcfg.world`-rank cluster. Returns a fit whose `recovery` field
/// accounts for the rounds, failures, and reassignments; coefficients
/// and supports are bit-identical to the serial [`fit_inner`] whenever
/// recovery succeeds (and to the degraded fit on fallback).
#[deprecated(
    since = "0.6.0",
    note = "use `uoi_core::UoiFitter` with `ExecMode::Recovering` instead"
)]
pub fn fit_uoi_lasso_recovering(
    x: &Matrix,
    y: &[f64],
    cfg: &UoiLassoConfig,
    rcfg: &RecoveryConfig,
) -> Result<UoiFit, UoiError> {
    // Validation pass first (it may scrub cells the structural check
    // would reject); the scrubbed data then feeds every round, so
    // re-executed tasks see the same bits as first executions.
    let scrubbed = cfg.numerical.prevalidate(x, y, &cfg.telemetry)?;
    let (x, y): (&Matrix, &[f64]) = match &scrubbed {
        Some((xs, ys)) => (xs, ys),
        None => (x, y),
    };
    validate_lasso_inputs(x, y, cfg)?;
    rcfg.speculation.validate()?;
    if rcfg.world == 0 {
        return Err(UoiError::InvalidConfig(
            "recovery world must be >= 1".into(),
        ));
    }
    if !rcfg.enabled {
        return fit_inner(x, y, cfg);
    }

    let ownership = TaskOwnership::new(rcfg.world, cfg.seed);
    let mut cluster = Cluster::new(rcfg.world, MachineModel::deterministic())
        .with_watchdog(rcfg.watchdog)
        .with_telemetry(cfg.telemetry.clone());
    if let Some(plan) = &rcfg.plan {
        cluster = cluster.with_fault_plan(plan.clone());
    }

    let outcome = cluster.try_run_recovering(rcfg.max_rounds, |ctx, comm, rctx| {
        lasso_round(ctx, comm, rctx, x, y, cfg, rcfg, &ownership)
    });

    match outcome {
        Ok((report, log)) => {
            let mut fits = report.results;
            let mut fit = fits.swap_remove(0);
            fit.recovery = Some(build_report(
                &log.failed_ranks(),
                log.rounds.len(),
                cfg,
                rcfg,
                &ownership,
                false,
            ));
            // The round closures record into the shared config ledger
            // (each task runs on exactly one owner rank); drained here,
            // after the cluster is done, so the report covers every
            // round including re-executions.
            fit.numerical = cfg
                .numerical
                .active()
                .then(|| cfg.numerical.ledger().drain_report());
            Ok(fit)
        }
        Err(RecoveryError::Exhausted { rounds, failed, .. }) => {
            let plan = degraded_fallback_plan(&failed, &ownership, cfg.b1, cfg.b2, cfg.seed);
            let mut degraded_cfg = cfg.clone();
            degraded_cfg.degradation.plan = Some(plan);
            let mut fit = fit_inner(x, y, &degraded_cfg)?;
            fit.recovery = Some(build_report(&failed, rounds, cfg, rcfg, &ownership, true));
            Ok(fit)
        }
        Err(RecoveryError::Fatal(sim)) => Err(crate::speculation::fatal_to_uoi(&sim)),
    }
}

fn build_report(
    failed: &[usize],
    rounds_attempted: usize,
    cfg: &UoiLassoConfig,
    rcfg: &RecoveryConfig,
    ownership: &TaskOwnership,
    degraded_fallback: bool,
) -> RecoveryReport {
    let reassigned = |total: usize| -> Vec<usize> {
        (0..total)
            .filter(|&k| failed.contains(&ownership.owner(k, &[])))
            .collect()
    };
    RecoveryReport {
        world: rcfg.world,
        max_rounds: rcfg.max_rounds,
        rounds_attempted,
        failed_ranks: failed.to_vec(),
        reassigned_selection: reassigned(cfg.b1),
        reassigned_estimation: reassigned(cfg.b2),
        degraded_fallback,
    }
}

/// One SPMD round of the recovering fit. Pure with respect to the
/// recovery state: given the same `(x, y, cfg)` any surviving subset of
/// ranks produces the same [`UoiFit`] bits.
#[allow(clippy::too_many_arguments)]
fn lasso_round(
    ctx: &mut RankCtx,
    comm: &Comm,
    rctx: &RecoveryContext,
    x: &Matrix,
    y: &[f64],
    cfg: &UoiLassoConfig,
    rcfg: &RecoveryConfig,
    ownership: &TaskOwnership,
) -> UoiFit {
    let span = if rctx.is_recovery_round() {
        Some(ctx.span_enter("recovery.reexec"))
    } else {
        None
    };

    let p = x.cols();
    let my_orig = rctx.original_rank(comm.rank());
    let stash = rctx.stash();

    // Replicated glue: every rank centres and grids identically.
    let (xc, yc, x_means, y_mean) = centre_data(x, y);
    let lambdas = lambda_path(&xc, &yc, cfg.q, cfg.lambda_min_ratio);

    // Optional Gram checkpointing: recovery re-solves skip the O(n p^2)
    // accumulation. Store failures are runtime invariant violations in
    // this simulated setting — escalate as fatal rather than degrade.
    let store = cfg.checkpoint.as_ref().map(|ck| {
        match CheckpointStore::open(&ck.dir, cfg.ckpt_fingerprint(x, y)) {
            Ok(st) => st.with_telemetry(&cfg.telemetry),
            Err(e) => std::panic::panic_any(MpiError::Internal {
                what: format!("checkpoint store: {e}"),
            }),
        }
    });

    // --- Selection: execute owned tasks, exchange, replicate glue. ---
    let n = x.rows();
    let tel = ctx.telemetry().clone();
    let sel_nominal = ctx.model().compute_time(
        lasso_selection_flops(n, p, cfg.q),
        ((n * p + p * p) * 8) as f64,
    );
    let (sel_blob, sel_stats) = run_speculative_stage(
        ctx,
        rctx,
        ownership,
        &rcfg.speculation,
        "lasso.sel",
        cfg.b1,
        my_orig,
        sel_nominal,
        |k| {
            let key = format!("lasso.sel.{k}");
            match lookup_stash(rctx, &key) {
                Some(p) => p,
                None => {
                    let supports = match &store {
                        Some(st) => match st.load_gram("selgram", k, p * p, p) {
                            Some((gram, xty)) => {
                                tel.incr("uoi.recovery.gram_hits", 1);
                                selection_solve(
                                    Matrix::from_vec(p, p, gram),
                                    &xty,
                                    &lambdas,
                                    cfg,
                                    k,
                                )
                            }
                            None => {
                                let (gram, xty) = selection_gram(&xc, &yc, cfg.seed, k);
                                if let Err(e) = st.save_gram("selgram", k, gram.as_slice(), &xty) {
                                    std::panic::panic_any(MpiError::Internal {
                                        what: format!("gram checkpoint: {e}"),
                                    });
                                }
                                selection_solve(gram, &xty, &lambdas, cfg, k)
                            }
                        },
                        None => selection_task(&xc, &yc, &lambdas, cfg, k),
                    };
                    let payload = encode_index_lists(&supports);
                    stash.put(my_orig, &key, payload.clone());
                    payload
                }
            }
        },
        |k| encode_index_lists(&selection_task(&xc, &yc, &lambdas, cfg, k)),
    );
    let blobs = ctx.span("recovery.exchange_sel", |ctx| {
        exchange_blobs(ctx, comm, sel_blob, &rctx.rank_map, rcfg.get_attempts)
    });
    let selection = collect_results(&blobs, cfg.b1, "selection");
    let selection: Vec<Vec<Vec<usize>>> = selection
        .into_iter()
        .map(|payload| decode_index_lists(&payload))
        .collect();

    let supports_by_bootstrap: Vec<&Vec<Vec<usize>>> = selection.iter().collect();
    let needed = required_votes(cfg.intersection_frac, cfg.b1);
    let supports_per_lambda = intersect_per_lambda(&supports_by_bootstrap, cfg.q, p, needed);
    let support_family = crate::support::dedup_family(supports_per_lambda.clone());

    // --- Estimation: same owner/exchange/replicate pattern. ---
    let (union, xu, family_u) = estimation_setup(&support_family, p, &xc);
    let u = union.len();
    let est_nominal = ctx.model().compute_time(
        lasso_estimation_flops(n, u, family_u.len()),
        ((n * u + u * u) * 8) as f64,
    );
    let (est_blob, est_stats) = run_speculative_stage(
        ctx,
        rctx,
        ownership,
        &rcfg.speculation,
        "lasso.est",
        cfg.b2,
        my_orig,
        est_nominal,
        |k| {
            let key = format!("lasso.est.{k}");
            match lookup_stash(rctx, &key) {
                Some(p) => p,
                None => {
                    let full = estimation_task(&xu, &yc, &family_u, &union, p, cfg, k);
                    stash.put(my_orig, &key, full.clone());
                    full
                }
            }
        },
        |k| estimation_task(&xu, &yc, &family_u, &union, p, cfg, k),
    );
    let blobs = ctx.span("recovery.exchange_est", |ctx| {
        exchange_blobs(ctx, comm, est_blob, &rctx.rank_map, rcfg.get_attempts)
    });
    let estimates = collect_results(&blobs, cfg.b2, "estimation");

    let best_estimates: Vec<&Vec<f64>> = estimates.iter().collect();
    let (beta, intercept) = average_and_intercept(&best_estimates, p, &x_means, y_mean);
    let support = support_of(&beta, cfg.support_tol);

    if let Some(id) = span {
        ctx.span_exit(id);
    }

    // Both stages hedge together; every rank builds the identical report
    // (the schedule is a pure function of the shared timing record).
    let speculation = match (sel_stats, est_stats) {
        (Some(sel), Some(est)) => Some(SpeculationReport {
            enabled: true,
            stages: vec![sel, est],
        }),
        _ => None,
    };

    UoiFit {
        beta,
        intercept,
        support,
        lambdas,
        supports_per_lambda,
        support_family,
        degradation: None,
        recovery: None,
        speculation,
        // Filled by the entry point after the cluster run completes
        // (rounds record into the shared config ledger; draining inside
        // a round would tear the report across ranks).
        numerical: None,
    }
}

/// Probe the cross-round stash for `key` under every original rank: the
/// task's owner may have changed between rounds, but a surviving
/// producer's entry is always reusable (entries of failed ranks are
/// dropped by the driver).
pub(crate) fn lookup_stash(rctx: &RecoveryContext, key: &str) -> Option<Vec<f64>> {
    (0..rctx.original_world).find_map(|r| rctx.stash().get(r, key))
}

/// Merge exchanged blobs into dense task order; a hole means the
/// ownership map and the blobs disagree — a runtime invariant violation.
pub(crate) fn collect_results(blobs: &[Vec<f64>], total: usize, stage: &str) -> Vec<Vec<f64>> {
    let mut slots: Vec<Option<Vec<f64>>> = vec![None; total];
    for blob in blobs {
        for (k, payload) in parse_task_records(blob) {
            slots[k] = Some(payload);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(k, s)| match s {
            Some(p) => p,
            None => std::panic::panic_any(MpiError::Internal {
                what: format!("{stage} task {k} has no owner result"),
            }),
        })
        .collect()
}
