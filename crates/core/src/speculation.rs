//! Speculative task execution for the recovering pipelines: the policy
//! layer over [`uoi_mpisim::SpeculationBoard`].
//!
//! A straggling rank drags every stage rendezvous without ever dying, so
//! shrink-and-recover never triggers. Speculation hedges instead: owners
//! heartbeat per-task modeled durations into the shared board, every rank
//! replays the identical [`uoi_mpisim::plan_hedges`] schedule over the
//! collected record, and laggard tasks get a replica on the
//! earliest-available peer. First result wins; the loser is cancelled at
//! its next heartbeat tick.
//!
//! Because every UoI task is a pure function of `(data, config, task
//! index)`, a replica's payload must be bitwise equal to the owner's —
//! the board bit-compares duplicate publications and a mismatch
//! escalates as [`UoiError::SpeculationDivergence`], doubling as a
//! silent-corruption tripwire. The owner's payload is always the one the
//! pipeline consumes, so hedged fits stay bit-identical to the
//! fault-free serial fit; hedging only shortens the *modeled* critical
//! path, accounted in the [`SpeculationReport`] makespans.

use crate::error::UoiError;
use crate::recovery::{push_task_record, TaskOwnership};
use uoi_mpisim::{
    makespan_healthy, makespan_unhedged, plan_hedges, DeadlinePolicy, MpiError, Phase,
    PublishOutcome, RankCtx, RecoveryContext, TaskHeartbeat,
};
use uoi_telemetry::{Json, TraceEvent};

/// Environment variable that switches speculative hedging on (`1`/`true`,
/// case-insensitive); anything else leaves it off.
pub const UOI_SPECULATE_ENV: &str = "UOI_SPECULATE";

/// Knobs of speculative task execution, carried by
/// [`RecoveryConfig`](crate::recovery::RecoveryConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationConfig {
    /// Master switch; off → the recovering pipelines run unhedged.
    pub enabled: bool,
    /// Quantile of observed task durations the deadline derives from.
    pub quantile: f64,
    /// Deadline = quantile duration × this multiplier.
    pub multiplier: f64,
    /// Absolute floor on the deadline (modeled seconds).
    pub floor: f64,
    /// Heartbeat ticks per deadline interval (detection/cancellation
    /// granularity); `0` disables hedging outright.
    pub heartbeats_per_deadline: u32,
    /// Minimum observed task durations before a deadline is derived.
    pub min_samples: usize,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        let p = DeadlinePolicy::default();
        Self {
            enabled: false,
            quantile: p.quantile,
            multiplier: p.multiplier,
            floor: p.floor,
            heartbeats_per_deadline: p.heartbeats_per_deadline,
            min_samples: p.min_samples,
        }
    }
}

impl SpeculationConfig {
    /// Default config with `enabled` taken from the `UOI_SPECULATE`
    /// environment variable (`1` or `true`, case-insensitive).
    pub fn from_env() -> Self {
        let enabled = std::env::var(UOI_SPECULATE_ENV)
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "1" || v == "true"
            })
            .unwrap_or(false);
        Self {
            enabled,
            ..Self::default()
        }
    }

    /// Check every field; `Err` names the first offending one.
    pub fn validate(&self) -> Result<(), UoiError> {
        if !(self.quantile.is_finite() && self.quantile > 0.0 && self.quantile <= 1.0) {
            return Err(UoiError::InvalidConfig(format!(
                "speculation quantile must be in (0, 1], got {}",
                self.quantile
            )));
        }
        if !(self.multiplier.is_finite() && self.multiplier >= 1.0) {
            return Err(UoiError::InvalidConfig(format!(
                "speculation multiplier must be >= 1, got {}",
                self.multiplier
            )));
        }
        if !(self.floor.is_finite() && self.floor >= 0.0) {
            return Err(UoiError::InvalidConfig(format!(
                "speculation floor must be finite and >= 0, got {}",
                self.floor
            )));
        }
        Ok(())
    }

    /// The runtime deadline policy this config describes.
    pub fn policy(&self) -> DeadlinePolicy {
        DeadlinePolicy {
            quantile: self.quantile,
            multiplier: self.multiplier,
            floor: self.floor,
            heartbeats_per_deadline: self.heartbeats_per_deadline,
            min_samples: self.min_samples,
        }
    }
}

/// One stage's hedging account: the derived deadline, the hedge ledger,
/// and the three modeled makespans the acceptance gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct StageHedging {
    /// Stage label (`"lasso.sel"`, `"var.est"`, ...).
    pub stage: String,
    /// The derived deadline (0.0 when hedging was not possible).
    pub deadline: f64,
    /// Replicas launched.
    pub hedges_spawned: usize,
    /// Replicas whose result arrived first.
    pub hedges_won: usize,
    /// Replicas cancelled because the owner finished first.
    pub hedges_cancelled: usize,
    /// Owner heartbeats observed for the stage.
    pub heartbeats: u64,
    /// Slowest rank under nominal (fault-free) durations.
    pub makespan_healthy: f64,
    /// Slowest rank with stragglers and no hedging.
    pub makespan_unhedged: f64,
    /// Slowest rank under the hedged schedule.
    pub makespan_hedged: f64,
}

impl StageHedging {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stage", Json::str(self.stage.clone())),
            ("deadline", Json::num(self.deadline)),
            ("hedges_spawned", Json::num(self.hedges_spawned as f64)),
            ("hedges_won", Json::num(self.hedges_won as f64)),
            ("hedges_cancelled", Json::num(self.hedges_cancelled as f64)),
            ("heartbeats", Json::num(self.heartbeats as f64)),
            ("makespan_healthy", Json::num(self.makespan_healthy)),
            ("makespan_unhedged", Json::num(self.makespan_unhedged)),
            ("makespan_hedged", Json::num(self.makespan_hedged)),
        ])
    }
}

/// What a speculating fit did, stage by stage. Fully determined by
/// `(data, config, fault plan)`, so [`SpeculationReport::to_json`] is
/// byte-identical across same-seed reruns.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeculationReport {
    /// Whether hedging was switched on.
    pub enabled: bool,
    /// Per-stage hedging accounts, in pipeline order.
    pub stages: Vec<StageHedging>,
}

impl SpeculationReport {
    /// Total replicas launched across stages.
    pub fn hedges_spawned(&self) -> usize {
        self.stages.iter().map(|s| s.hedges_spawned).sum()
    }

    /// Total replica wins across stages.
    pub fn hedges_won(&self) -> usize {
        self.stages.iter().map(|s| s.hedges_won).sum()
    }

    /// Total replica cancellations across stages.
    pub fn hedges_cancelled(&self) -> usize {
        self.stages.iter().map(|s| s.hedges_cancelled).sum()
    }

    /// Total owner heartbeats across stages.
    pub fn heartbeats(&self) -> u64 {
        self.stages.iter().map(|s| s.heartbeats).sum()
    }

    /// Summed fault-free makespan across stages.
    pub fn makespan_healthy(&self) -> f64 {
        self.stages.iter().map(|s| s.makespan_healthy).sum()
    }

    /// Summed unhedged (straggler-afflicted) makespan across stages.
    pub fn makespan_unhedged(&self) -> f64 {
        self.stages.iter().map(|s| s.makespan_unhedged).sum()
    }

    /// Summed hedged makespan across stages.
    pub fn makespan_hedged(&self) -> f64 {
        self.stages.iter().map(|s| s.makespan_hedged).sum()
    }

    /// Fraction of the straggler-induced slowdown hedging recovered:
    /// `(unhedged - hedged) / (unhedged - healthy)`. `None` when there
    /// was no slowdown to recover.
    pub fn recovered_fraction(&self) -> Option<f64> {
        let slowdown = self.makespan_unhedged() - self.makespan_healthy();
        if slowdown > 0.0 {
            Some((self.makespan_unhedged() - self.makespan_hedged()) / slowdown)
        } else {
            None
        }
    }

    /// Deterministic JSON rendering (stable key order) — byte-identical
    /// across reruns of the same configuration.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("enabled", Json::Bool(self.enabled)),
            (
                "stages",
                Json::Arr(self.stages.iter().map(StageHedging::to_json).collect()),
            ),
            ("hedges_spawned", Json::num(self.hedges_spawned() as f64)),
            ("hedges_won", Json::num(self.hedges_won() as f64)),
            (
                "hedges_cancelled",
                Json::num(self.hedges_cancelled() as f64),
            ),
            ("heartbeats", Json::num(self.heartbeats() as f64)),
            ("makespan_healthy", Json::num(self.makespan_healthy())),
            ("makespan_unhedged", Json::num(self.makespan_unhedged())),
            ("makespan_hedged", Json::num(self.makespan_hedged())),
        ])
    }
}

/// Rough flop count of one LASSO selection task: the `O(n p^2)` weighted
/// Gram accumulation plus the lambda path's iterate updates. Speculation
/// needs a *consistent* nominal, not a precise one — every rank derives
/// the same number from config and shape alone.
pub(crate) fn lasso_selection_flops(n: usize, p: usize, q: usize) -> f64 {
    const PATH_ITERS: f64 = 50.0;
    2.0 * n as f64 * (p * p) as f64 + q as f64 * PATH_ITERS * (p * p) as f64
}

/// Rough flop count of one LASSO estimation task: the union Gram plus a
/// sub-Gram OLS per candidate support.
pub(crate) fn lasso_estimation_flops(n: usize, u: usize, family: usize) -> f64 {
    let u3 = (u * u * u) as f64;
    2.0 * n as f64 * (u * u) as f64 + family as f64 * u3 / 3.0
}

/// Rough flop count of one VAR selection task: the `(d p)^2` Gram plus
/// `p` column paths.
pub(crate) fn var_selection_flops(n: usize, dp: usize, p: usize, q: usize) -> f64 {
    const PATH_ITERS: f64 = 50.0;
    2.0 * n as f64 * (dp * dp) as f64 + (p * q) as f64 * PATH_ITERS * (dp * dp) as f64
}

/// Rough flop count of one VAR estimation task: the union Gram plus `p`
/// response columns of sub-Gram OLS per candidate support.
pub(crate) fn var_estimation_flops(n: usize, u: usize, p: usize, family: usize) -> f64 {
    let u3 = (u * u * u) as f64;
    2.0 * n as f64 * (u * u) as f64 + (family * p) as f64 * u3 / 3.0
}

/// Execute one owned-task stage of a recovering pipeline with optional
/// speculative hedging, returning the stage's result blob (exactly what
/// the unhedged loop would have built) plus the hedging account.
///
/// With speculation off this is the plain owned-task loop. With it on:
///
/// 1. every owned task runs via `payload_for` (stash/checkpoint logic
///    included), publishes its payload to the board, and heartbeats its
///    modeled duration (`nominal_seconds` × the rank's straggle factor);
/// 2. ranks rendezvous on the board — no collective, so fault-matrix
///    step numbering is untouched — and each replays the identical
///    [`plan_hedges`] schedule over the full record;
/// 3. ranks picked as winning replicas re-execute those tasks through
///    `recompute` (the raw task body, never a stash replay, so the
///    bit-compare is a real cross-check) and publish; a non-identical
///    duplicate escalates as [`MpiError::SpeculationDivergence`]. Losing
///    replicas cancel on the board and never publish;
/// 4. each rank lump-charges its hedged finish time to the virtual clock
///    under a `speculation.<stage>` span.
///
/// The blob always carries the *owner's* payloads, so the downstream
/// exchange and every consumer see bits identical to the unhedged run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_speculative_stage(
    ctx: &mut RankCtx,
    rctx: &RecoveryContext,
    ownership: &TaskOwnership,
    scfg: &SpeculationConfig,
    stage: &str,
    total: usize,
    my_orig: usize,
    nominal_seconds: f64,
    mut payload_for: impl FnMut(usize) -> Vec<f64>,
    recompute: impl Fn(usize) -> Vec<f64>,
) -> (Vec<f64>, Option<StageHedging>) {
    let owned = ownership.owned_tasks(my_orig, total, &rctx.failed);
    let mut blob = Vec::new();
    if !scfg.enabled {
        for k in owned {
            let payload = payload_for(k);
            push_task_record(&mut blob, k, &payload);
        }
        return (blob, None);
    }

    let board = rctx.speculation();
    let round = rctx.round;
    let straggle = ctx.straggle_factor();

    // Owner pass: execute, publish, heartbeat. Task charges are deferred
    // — the hedged finish is lump-charged once the schedule is known, so
    // the virtual clock stays monotonic.
    for k in owned {
        let payload = payload_for(k);
        board.heartbeat(
            round,
            stage,
            my_orig,
            TaskHeartbeat {
                task: k,
                nominal: nominal_seconds,
                actual: nominal_seconds * straggle,
            },
        );
        ctx.telemetry().incr("speculation.heartbeats", 1);
        board.publish(round, stage, k, my_orig, &payload);
        push_task_record(&mut blob, k, &payload);
    }
    board.finish(round, stage, my_orig, straggle);

    // Failure-aware rendezvous on the board; every rank then replays the
    // same deterministic schedule, so no agreement collective is needed.
    let timings = match ctx.span("speculation.exchange", |ctx| {
        board.wait_timings(ctx, round, stage, &rctx.rank_map)
    }) {
        Ok(t) => t,
        Err(e) => std::panic::panic_any(e),
    };
    let schedule = plan_hedges(&timings, &scfg.policy());

    // The schedule is identical on every rank; the lowest surviving rank
    // alone emits the cluster-wide hedge counters and trace marks.
    if my_orig == rctx.rank_map[0] {
        let tel = ctx.telemetry();
        tel.incr("speculation.spawned", schedule.events.len() as u64);
        tel.incr("speculation.won", schedule.replica_wins() as u64);
        tel.incr(
            "speculation.cancelled",
            schedule.replica_cancellations() as u64,
        );
        for ev in &schedule.events {
            tel.record_with(|| TraceEvent::Hedge {
                rank: ev.replica,
                action: "spawn",
                task: ev.task,
                owner: ev.owner,
                replica: ev.replica,
                t: ev.replica_start,
            });
            tel.record_with(|| TraceEvent::Hedge {
                rank: if ev.replica_wins {
                    ev.replica
                } else {
                    ev.owner
                },
                action: if ev.replica_wins { "win" } else { "cancel" },
                task: ev.task,
                owner: ev.owner,
                replica: ev.replica,
                t: if ev.replica_wins {
                    ev.replica_end
                } else {
                    ev.cancel_t
                },
            });
        }
    }

    // Replica pass: winning replicas re-execute for real and publish
    // (the bitwise cross-check); losing replicas cancel and never
    // publish.
    for ev in &schedule.events {
        if ev.replica != my_orig {
            continue;
        }
        if !ev.replica_wins {
            board.cancel(round, stage, ev.task, my_orig);
            continue;
        }
        let payload = ctx.span("speculation.hedge", |_| recompute(ev.task));
        match board.publish(round, stage, ev.task, my_orig, &payload) {
            PublishOutcome::Stored | PublishOutcome::Duplicate { identical: true } => {}
            PublishOutcome::Rejected => {}
            PublishOutcome::Duplicate { identical: false } => {
                ctx.record_fault(
                    "speculation_divergence",
                    format!(
                        "replica of task {} (owner {}) diverged from the owner's bits in {stage}",
                        ev.task, ev.owner
                    ),
                );
                ctx.telemetry().record_with(|| TraceEvent::Hedge {
                    rank: my_orig,
                    action: "diverge",
                    task: ev.task,
                    owner: ev.owner,
                    replica: my_orig,
                    t: ev.replica_end,
                });
                std::panic::panic_any(MpiError::SpeculationDivergence {
                    stage: stage.to_string(),
                    task: ev.task,
                });
            }
        }
    }

    // Lump-charge this rank's hedged stage finish.
    let finish = schedule.rank_finish.get(&my_orig).copied().unwrap_or(0.0);
    ctx.span(&format!("speculation.{stage}"), |ctx| {
        ctx.charge(Phase::Compute, finish)
    });

    let stats = StageHedging {
        stage: stage.to_string(),
        deadline: schedule.deadline,
        hedges_spawned: schedule.events.len(),
        hedges_won: schedule.replica_wins(),
        hedges_cancelled: schedule.replica_cancellations(),
        heartbeats: board.heartbeats(round, stage),
        makespan_healthy: makespan_healthy(&timings),
        makespan_unhedged: makespan_unhedged(&timings),
        makespan_hedged: schedule.makespan,
    };
    (blob, Some(stats))
}

/// Map a fatal simulated failure onto the typed fit error: a speculation
/// divergence keeps its identity (it is the silent-corruption tripwire);
/// everything else stays [`UoiError::Unrecoverable`].
pub(crate) fn fatal_to_uoi(sim: &uoi_mpisim::SimError) -> UoiError {
    for f in &sim.failures {
        if let Some(MpiError::SpeculationDivergence { stage, task }) = &f.error {
            return UoiError::SpeculationDivergence {
                stage: stage.clone(),
                task: *task,
            };
        }
    }
    UoiError::Unrecoverable(sim.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_off_and_valid() {
        let cfg = SpeculationConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.policy(), DeadlinePolicy::default());
    }

    #[test]
    fn config_validation_names_the_field() {
        let bad = SpeculationConfig {
            quantile: 1.5,
            ..SpeculationConfig::default()
        };
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("quantile"), "{msg}");
        let bad = SpeculationConfig {
            multiplier: 0.5,
            ..SpeculationConfig::default()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("multiplier"));
        let bad = SpeculationConfig {
            floor: f64::NAN,
            ..SpeculationConfig::default()
        };
        assert!(bad.validate().unwrap_err().to_string().contains("floor"));
    }

    #[test]
    fn report_json_is_deterministic_and_complete() {
        let rep = SpeculationReport {
            enabled: true,
            stages: vec![
                StageHedging {
                    stage: "lasso.sel".into(),
                    deadline: 1.75,
                    hedges_spawned: 3,
                    hedges_won: 2,
                    hedges_cancelled: 1,
                    heartbeats: 8,
                    makespan_healthy: 4.0,
                    makespan_unhedged: 16.0,
                    makespan_hedged: 7.0,
                },
                StageHedging {
                    stage: "lasso.est".into(),
                    deadline: 1.75,
                    hedges_spawned: 1,
                    hedges_won: 1,
                    hedges_cancelled: 0,
                    heartbeats: 8,
                    makespan_healthy: 4.0,
                    makespan_unhedged: 16.0,
                    makespan_hedged: 6.0,
                },
            ],
        };
        let a = rep.to_json().to_string_compact();
        let b = rep.to_json().to_string_compact();
        assert_eq!(a, b);
        for key in [
            "enabled",
            "stages",
            "hedges_spawned",
            "hedges_won",
            "hedges_cancelled",
            "heartbeats",
            "makespan_healthy",
            "makespan_unhedged",
            "makespan_hedged",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
        assert_eq!(rep.hedges_spawned(), 4);
        assert_eq!(rep.hedges_won(), 3);
        assert_eq!(rep.hedges_cancelled(), 1);
        assert_eq!(rep.heartbeats(), 16);
        // Summed makespans: 32 unhedged, 8 healthy, 13 hedged → 19/24.
        let rec = rep.recovered_fraction().unwrap();
        assert!((rec - 19.0 / 24.0).abs() < 1e-12, "{rec}");
    }

    #[test]
    fn recovered_fraction_is_none_without_slowdown() {
        let rep = SpeculationReport {
            enabled: true,
            stages: vec![StageHedging {
                stage: "lasso.sel".into(),
                deadline: 0.0,
                hedges_spawned: 0,
                hedges_won: 0,
                hedges_cancelled: 0,
                heartbeats: 4,
                makespan_healthy: 4.0,
                makespan_unhedged: 4.0,
                makespan_hedged: 4.0,
            }],
        };
        assert_eq!(rep.recovered_fraction(), None);
    }

    #[test]
    fn env_gate_reads_uoi_speculate() {
        // Serialised against other env tests via the distinct var name.
        std::env::remove_var(UOI_SPECULATE_ENV);
        assert!(!SpeculationConfig::from_env().enabled);
        std::env::set_var(UOI_SPECULATE_ENV, "1");
        assert!(SpeculationConfig::from_env().enabled);
        std::env::set_var(UOI_SPECULATE_ENV, "TRUE");
        assert!(SpeculationConfig::from_env().enabled);
        std::env::set_var(UOI_SPECULATE_ENV, "0");
        assert!(!SpeculationConfig::from_env().enabled);
        std::env::remove_var(UOI_SPECULATE_ENV);
    }

    #[test]
    fn flop_models_scale_with_problem_size() {
        assert!(lasso_selection_flops(200, 40, 20) > lasso_selection_flops(100, 40, 20));
        assert!(lasso_estimation_flops(100, 20, 6) > lasso_estimation_flops(100, 10, 6));
        assert!(var_selection_flops(100, 60, 20, 20) > var_selection_flops(100, 30, 20, 20));
        assert!(var_estimation_flops(100, 20, 10, 6) > var_estimation_flops(100, 20, 5, 6));
    }
}
