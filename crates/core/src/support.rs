//! Support algebra: the Intersection and Union "Reduce" operations of the
//! UoI Map-Solve-Reduce structure (paper eqs. 3–4, Fig 1b/1d).
//!
//! A support is a sorted, deduplicated list of feature indices. The model
//! selection step intersects supports across bootstrap resamples per
//! lambda (feature *compression*, eq. 3); the estimation step unions the
//! prediction-optimal supports through estimate averaging (feature
//! *expansion*, eq. 4).

/// Sorted intersection of two supports.
pub fn intersect(a: &[usize], b: &[usize]) -> Vec<usize> {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Sorted union of two supports.
pub fn union(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        out.push(next);
    }
    out
}

/// Intersection across many supports (eq. 3: `S_j = ∩_k S_j^k`). An empty
/// family yields an empty support.
pub fn intersect_many(supports: &[Vec<usize>]) -> Vec<usize> {
    match supports.split_first() {
        None => Vec::new(),
        Some((first, rest)) => {
            let mut acc = first.clone();
            for s in rest {
                acc = intersect(&acc, s);
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
    }
}

/// Union across many supports (eq. 4 aggregate).
pub fn union_many(supports: &[Vec<usize>]) -> Vec<usize> {
    let mut acc = Vec::new();
    for s in supports {
        acc = union(&acc, s);
    }
    acc
}

/// Deduplicate a family of candidate supports, preserving first-seen
/// order and dropping empties — the "family of potential model supports
/// S = [S_1 ... S_q]" with redundant members removed.
pub fn dedup_family(family: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    let mut seen: Vec<Vec<usize>> = Vec::new();
    for s in family {
        if !s.is_empty() && !seen.contains(&s) {
            seen.push(s);
        }
    }
    seen
}

/// Encode a support as f64 values for transport through collectives.
pub fn encode_support(s: &[usize]) -> Vec<f64> {
    s.iter().map(|&i| i as f64).collect()
}

/// Inverse of [`encode_support`].
pub fn decode_support(v: &[f64]) -> Vec<usize> {
    v.iter().map(|&x| x as usize).collect()
}

/// Intersection via a shared-length indicator allreduce: supports are
/// encoded as 0/1 indicator vectors of length `p`, summed across ranks,
/// and indices hitting `count` survive. This is how the distributed
/// implementation realises eq. 3 with a single `MPI_Allreduce`.
pub fn indicator(s: &[usize], p: usize) -> Vec<f64> {
    let mut v = vec![0.0; p];
    for &i in s {
        v[i] = 1.0;
    }
    v
}

/// Recover the intersection from a summed indicator (`sum[i] == count`).
pub fn from_summed_indicator(sum: &[f64], count: usize) -> Vec<usize> {
    sum.iter()
        .enumerate()
        .filter(|(_, &v)| (v - count as f64).abs() < 0.5)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[3, 4, 5]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<usize>::new());
        assert_eq!(intersect(&[2, 4], &[1, 3]), Vec::<usize>::new());
    }

    #[test]
    fn union_basic() {
        assert_eq!(union(&[1, 3], &[2, 3, 9]), vec![1, 2, 3, 9]);
        assert_eq!(union(&[], &[]), Vec::<usize>::new());
        assert_eq!(union(&[5], &[]), vec![5]);
    }

    #[test]
    fn intersect_many_shrinks_monotonically() {
        // Adding more bootstrap supports can only shrink the intersection
        // — the false-positive-control property of eq. 3.
        let fam = vec![vec![1, 2, 3, 4, 5], vec![2, 3, 4, 5], vec![3, 4, 5, 9]];
        let s2 = intersect_many(&fam[..2]);
        let s3 = intersect_many(&fam);
        assert!(s3.iter().all(|i| s2.contains(i)), "S(B+1) ⊆ S(B)");
        assert_eq!(s3, vec![3, 4, 5]);
    }

    #[test]
    fn union_many_grows_monotonically() {
        let fam = vec![vec![1], vec![4], vec![1, 7]];
        let u2 = union_many(&fam[..2]);
        let u3 = union_many(&fam);
        assert!(u2.iter().all(|i| u3.contains(i)), "U(B) ⊆ U(B+1)");
        assert_eq!(u3, vec![1, 4, 7]);
    }

    #[test]
    fn empty_family_conventions() {
        assert_eq!(intersect_many(&[]), Vec::<usize>::new());
        assert_eq!(union_many(&[]), Vec::<usize>::new());
    }

    #[test]
    fn dedup_family_drops_repeats_and_empties() {
        let fam = vec![vec![1, 2], vec![], vec![1, 2], vec![3]];
        assert_eq!(dedup_family(fam), vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn indicator_roundtrip() {
        let s = vec![0, 3, 4];
        let ind = indicator(&s, 6);
        assert_eq!(ind, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        // Simulated 3-rank allreduce where all agree.
        let sum: Vec<f64> = ind.iter().map(|v| v * 3.0).collect();
        assert_eq!(from_summed_indicator(&sum, 3), s);
    }

    #[test]
    fn summed_indicator_is_intersection() {
        let a = indicator(&[1, 2, 5], 6);
        let b = indicator(&[2, 3, 5], 6);
        let c = indicator(&[2, 5], 6);
        let sum: Vec<f64> = (0..6).map(|i| a[i] + b[i] + c[i]).collect();
        assert_eq!(from_summed_indicator(&sum, 3), vec![2, 5]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = vec![0, 17, 100_000];
        assert_eq!(decode_support(&encode_support(&s)), s);
    }
}
