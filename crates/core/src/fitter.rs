//! Unified fit entry point: one builder, three execution modes.
//!
//! The crate grew eight free fit functions — serial, distributed, and
//! recovering variants for both `UoI_LASSO` and `UoI_VAR`, each with a
//! panicking and/or `Result` flavour. [`UoiFitter`] and [`UoiVarFitter`]
//! collapse that surface into a single chainable entry point:
//!
//! ```
//! use uoi_core::fitter::{ExecMode, UoiFitter};
//! use uoi_core::uoi_lasso::UoiLassoConfig;
//! use uoi_data::LinearConfig;
//!
//! let ds = LinearConfig { n_samples: 24, n_features: 6, n_nonzero: 2, seed: 7, ..Default::default() }
//!     .generate();
//! let cfg = UoiLassoConfig { b1: 3, b2: 3, q: 4, ..Default::default() };
//! let fit = UoiFitter::new(cfg)
//!     .mode(ExecMode::Serial)
//!     .threads(1)
//!     .fit(&ds.x, &ds.y)
//!     .unwrap();
//! assert_eq!(fit.beta.len(), 6);
//! ```
//!
//! Mode dispatch:
//!
//! * [`ExecMode::Serial`] — the in-process fit (optionally multi-threaded
//!   inside the rank via [`UoiFitter::threads`]);
//! * [`ExecMode::Dist`] — spins up a simulated [`Cluster`] internally and
//!   returns rank 0's fit. Callers that drive their own cluster (custom
//!   machine models, `modeled_ranks` extrapolation) use
//!   [`UoiFitter::fit_on`] from inside their rank closure instead;
//! * [`ExecMode::Recovering`] — the shrink-and-recover pipeline with a
//!   fault plan and re-execution round budget.
//!
//! Numerical contract: the mode and thread count never change the fitted
//! numbers — `Serial`, `Dist`, and a successful `Recovering` run produce
//! bit-identical supports and coefficients for the same configuration,
//! and `threads` only affects the modeled wall-clock.

use crate::error::UoiError;
use crate::parallelism::ParallelLayout;
use crate::recovery::RecoveryConfig;
use crate::uoi_lasso::{validate_lasso_inputs, UoiFit, UoiLassoConfig};
#[allow(deprecated)]
use crate::uoi_lasso_dist::fit_uoi_lasso_dist;
#[allow(deprecated)]
use crate::uoi_lasso_recovering::fit_uoi_lasso_recovering;
use crate::uoi_var::{validate_var_inputs, UoiVarConfig, UoiVarFit};
#[allow(deprecated)]
use crate::uoi_var_dist::fit_uoi_var_dist;
use crate::uoi_var_dist::{KronStats, UoiVarDistConfig};
#[allow(deprecated)]
use crate::uoi_var_recovering::fit_uoi_var_recovering;
use uoi_linalg::Matrix;
use uoi_mpisim::{Cluster, Comm, MachineModel, RankCtx};
use uoi_solvers::{AdmmConfig, PathSchedule};

/// Where and how a fit executes.
#[derive(Debug, Clone, Default)]
pub enum ExecMode {
    /// In-process fit on the calling thread (plus in-rank worker threads
    /// when `threads > 1`).
    #[default]
    Serial,
    /// Distributed fit over an internally managed simulated cluster;
    /// `fit` returns rank 0's (replicated) result.
    Dist(DistOptions),
    /// Shrink-and-recover execution: rank-failure agreement, communicator
    /// rebuild, and lossless task re-execution under the given fault
    /// plan and round budget.
    Recovering(RecoveryConfig),
}

/// Cluster shape for [`ExecMode::Dist`].
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Ranks actually executed.
    pub exec_ranks: usize,
    /// Ranks the cost model is evaluated at (`>= exec_ranks`); lets a
    /// small execution stand in for a large modeled machine.
    pub modeled_ranks: usize,
    /// Latency/bandwidth/compute model of the simulated machine.
    pub machine: MachineModel,
    /// `P_B x P_lambda x ADMM` core decomposition (LASSO pipelines).
    pub layout: ParallelLayout,
    /// Tier-1 reader ranks for the VAR lag-matrix windows.
    pub n_readers: usize,
}

impl Default for DistOptions {
    fn default() -> Self {
        Self {
            exec_ranks: 4,
            modeled_ranks: 4,
            machine: MachineModel::deterministic(),
            layout: ParallelLayout::admm_only(),
            n_readers: 4,
        }
    }
}

impl DistOptions {
    /// Set both the executed and modeled world size.
    pub fn ranks(mut self, n: usize) -> Self {
        self.exec_ranks = n;
        self.modeled_ranks = n;
        self
    }

    /// Evaluate the cost model at `n` ranks while executing fewer.
    pub fn modeled_ranks(mut self, n: usize) -> Self {
        self.modeled_ranks = n;
        self
    }

    /// Use a specific machine model instead of the deterministic default.
    pub fn machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Set the `P_B x P_lambda x ADMM` decomposition.
    pub fn layout(mut self, layout: ParallelLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Set the number of Tier-1 reader ranks (VAR only).
    pub fn n_readers(mut self, n: usize) -> Self {
        self.n_readers = n;
        self
    }

    fn validate(&self) -> Result<(), UoiError> {
        if self.exec_ranks == 0 {
            return Err(UoiError::InvalidConfig(
                "dist exec_ranks must be >= 1".into(),
            ));
        }
        if self.modeled_ranks < self.exec_ranks {
            return Err(UoiError::InvalidConfig(
                "dist modeled_ranks must be >= exec_ranks".into(),
            ));
        }
        Ok(())
    }

    fn cluster(&self) -> Cluster {
        Cluster::new(self.exec_ranks, self.machine.clone()).modeled_ranks(self.modeled_ranks)
    }
}

/// One entry point for every `UoI_LASSO` execution mode.
///
/// See the [module docs](self) for the dispatch table and the numerical
/// contract. Construction never fails; configuration errors surface from
/// [`fit`](Self::fit) as [`UoiError::InvalidConfig`].
#[derive(Debug, Clone, Default)]
pub struct UoiFitter {
    cfg: UoiLassoConfig,
    mode: ExecMode,
}

impl UoiFitter {
    /// Fitter over the given statistical configuration, in
    /// [`ExecMode::Serial`].
    pub fn new(cfg: UoiLassoConfig) -> Self {
        Self {
            cfg,
            mode: ExecMode::Serial,
        }
    }

    /// Select the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// In-rank worker threads for the ADMM `(bootstrap, lambda)` loop.
    /// Affects only the modeled wall-clock, never the numbers.
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.admm.threads = n;
        self
    }

    /// Override the thread count from `UOI_THREADS` when set (and `>= 1`);
    /// keeps the current value otherwise.
    pub fn env_threads(mut self) -> Self {
        self.cfg.admm.threads = AdmmConfig::env_threads(self.cfg.admm.threads);
        self
    }

    /// Lambda-path schedule: warm-started [`PathSchedule::Sequential`]
    /// or lockstep multi-RHS [`PathSchedule::Fused`].
    pub fn schedule(mut self, schedule: PathSchedule) -> Self {
        self.cfg.admm.schedule = schedule;
        self
    }

    /// The current statistical configuration.
    pub fn config(&self) -> &UoiLassoConfig {
        &self.cfg
    }

    /// Mutable access for knobs without a dedicated builder method.
    pub fn config_mut(&mut self) -> &mut UoiLassoConfig {
        &mut self.cfg
    }

    /// Run the fit in the selected mode.
    ///
    /// In [`ExecMode::Dist`] this spins up the configured cluster, runs
    /// the consensus fit on every rank, and returns rank 0's result
    /// (all ranks agree bit-for-bit).
    #[allow(deprecated)] // the facade is the one sanctioned caller of the legacy fns
    pub fn fit(&self, x: &Matrix, y: &[f64]) -> Result<UoiFit, UoiError> {
        match &self.mode {
            ExecMode::Serial => crate::uoi_lasso::try_fit_uoi_lasso(x, y, &self.cfg),
            ExecMode::Recovering(rcfg) => fit_uoi_lasso_recovering(x, y, &self.cfg, rcfg),
            ExecMode::Dist(opts) => {
                opts.validate()?;
                validate_lasso_inputs(x, y, &self.cfg)?;
                let cluster = opts.cluster().with_telemetry(self.cfg.telemetry.clone());
                let report = cluster
                    .run(|ctx, world| fit_uoi_lasso_dist(ctx, world, x, y, &self.cfg, opts.layout));
                Ok(report
                    .results
                    .into_iter()
                    .next()
                    .expect("cluster with >= 1 rank returns a rank-0 result"))
            }
        }
    }

    /// Run the distributed fit body on an existing cluster rank.
    ///
    /// For harnesses that drive their own [`Cluster`] (fault plans,
    /// `modeled_ranks` extrapolation, custom telemetry): call this from
    /// inside the rank closure. Uses the [`ExecMode::Dist`] layout when
    /// that mode is selected, [`ParallelLayout::admm_only`] otherwise.
    #[allow(deprecated)]
    pub fn fit_on(&self, ctx: &mut RankCtx, world: &Comm, x: &Matrix, y: &[f64]) -> UoiFit {
        let layout = match &self.mode {
            ExecMode::Dist(opts) => opts.layout,
            _ => ParallelLayout::admm_only(),
        };
        fit_uoi_lasso_dist(ctx, world, x, y, &self.cfg, layout)
    }
}

/// One entry point for every `UoI_VAR` execution mode; the VAR twin of
/// [`UoiFitter`].
#[derive(Debug, Clone, Default)]
pub struct UoiVarFitter {
    cfg: UoiVarConfig,
    mode: ExecMode,
}

impl UoiVarFitter {
    /// Fitter over the given VAR configuration, in [`ExecMode::Serial`].
    pub fn new(cfg: UoiVarConfig) -> Self {
        Self {
            cfg,
            mode: ExecMode::Serial,
        }
    }

    /// Select the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// In-rank worker threads for the ADMM `(bootstrap, lambda)` loop.
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.base.admm.threads = n;
        self
    }

    /// Override the thread count from `UOI_THREADS` when set (and `>= 1`).
    pub fn env_threads(mut self) -> Self {
        self.cfg.base.admm.threads = AdmmConfig::env_threads(self.cfg.base.admm.threads);
        self
    }

    /// Lambda-path schedule for the inner ADMM solves.
    pub fn schedule(mut self, schedule: PathSchedule) -> Self {
        self.cfg.base.admm.schedule = schedule;
        self
    }

    /// The current VAR configuration.
    pub fn config(&self) -> &UoiVarConfig {
        &self.cfg
    }

    /// Mutable access for knobs without a dedicated builder method.
    pub fn config_mut(&mut self) -> &mut UoiVarConfig {
        &mut self.cfg
    }

    /// Run the fit in the selected mode; returns rank 0's result in
    /// [`ExecMode::Dist`].
    #[allow(deprecated)]
    pub fn fit(&self, series: &Matrix) -> Result<UoiVarFit, UoiError> {
        match &self.mode {
            ExecMode::Serial => crate::uoi_var::try_fit_uoi_var(series, &self.cfg),
            ExecMode::Recovering(rcfg) => fit_uoi_var_recovering(series, &self.cfg, rcfg),
            ExecMode::Dist(opts) => {
                opts.validate()?;
                validate_var_inputs(series, &self.cfg)?;
                let dist_cfg = self.dist_config(opts);
                let cluster = opts
                    .cluster()
                    .with_telemetry(self.cfg.base.telemetry.clone());
                let report =
                    cluster.run(|ctx, world| fit_uoi_var_dist(ctx, world, series, &dist_cfg).0);
                Ok(report
                    .results
                    .into_iter()
                    .next()
                    .expect("cluster with >= 1 rank returns a rank-0 result"))
            }
        }
    }

    /// Run the distributed fit body (with its Kron-read statistics) on an
    /// existing cluster rank; the VAR twin of [`UoiFitter::fit_on`].
    #[allow(deprecated)]
    pub fn fit_on(
        &self,
        ctx: &mut RankCtx,
        world: &Comm,
        series: &Matrix,
    ) -> (UoiVarFit, KronStats) {
        let opts = match &self.mode {
            ExecMode::Dist(opts) => opts.clone(),
            _ => DistOptions::default(),
        };
        fit_uoi_var_dist(ctx, world, series, &self.dist_config(&opts))
    }

    fn dist_config(&self, opts: &DistOptions) -> UoiVarDistConfig {
        UoiVarDistConfig {
            var: self.cfg.clone(),
            n_readers: opts.n_readers,
            layout: opts.layout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uoi_data::{LinearConfig, LinearDataset, VarConfig, VarProcess};

    fn lasso_cfg() -> UoiLassoConfig {
        UoiLassoConfig {
            b1: 3,
            b2: 3,
            q: 4,
            seed: 11,
            ..Default::default()
        }
    }

    fn dataset() -> LinearDataset {
        LinearConfig {
            n_samples: 40,
            n_features: 8,
            n_nonzero: 3,
            seed: 5,
            ..Default::default()
        }
        .generate()
    }

    fn var_series() -> Matrix {
        let proc = VarProcess::generate(&VarConfig {
            p: 4,
            seed: 3,
            ..Default::default()
        });
        proc.simulate(60, 50, 3)
    }

    #[test]
    #[allow(deprecated)]
    fn serial_mode_matches_legacy_entry_point() {
        let ds = dataset();
        let legacy = crate::uoi_lasso::fit_uoi_lasso(&ds.x, &ds.y, &lasso_cfg());
        let fit = UoiFitter::new(lasso_cfg()).fit(&ds.x, &ds.y).unwrap();
        assert_eq!(fit.support, legacy.support);
        for (a, b) in fit.beta.iter().zip(&legacy.beta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dist_mode_matches_serial_statistics() {
        // The consensus solver is statistically (not bitwise) equivalent
        // to the serial path — same invariant the end-to-end suites pin.
        let ds = dataset();
        let serial = UoiFitter::new(lasso_cfg()).fit(&ds.x, &ds.y).unwrap();
        let dist = UoiFitter::new(lasso_cfg())
            .mode(ExecMode::Dist(DistOptions::default().ranks(3)))
            .fit(&ds.x, &ds.y)
            .unwrap();
        assert_eq!(dist.supports_per_lambda, serial.supports_per_lambda);
        for (a, b) in dist.beta.iter().zip(&serial.beta) {
            assert!((a - b).abs() < 5e-3, "serial {b} vs dist {a}");
        }
    }

    #[test]
    fn recovering_mode_fault_free_matches_serial() {
        let ds = dataset();
        let serial = UoiFitter::new(lasso_cfg()).fit(&ds.x, &ds.y).unwrap();
        let rec = UoiFitter::new(lasso_cfg())
            .mode(ExecMode::Recovering(RecoveryConfig {
                world: 3,
                ..Default::default()
            }))
            .fit(&ds.x, &ds.y)
            .unwrap();
        assert_eq!(rec.support, serial.support);
        for (a, b) in rec.beta.iter().zip(&serial.beta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn threads_and_schedule_flow_into_admm_config() {
        let f = UoiFitter::new(lasso_cfg())
            .threads(4)
            .schedule(PathSchedule::Fused);
        assert_eq!(f.config().admm.threads, 4);
        assert_eq!(f.config().admm.schedule, PathSchedule::Fused);
        let v = UoiVarFitter::new(UoiVarConfig::default())
            .threads(3)
            .schedule(PathSchedule::Fused);
        assert_eq!(v.config().base.admm.threads, 3);
        assert_eq!(v.config().base.admm.schedule, PathSchedule::Fused);
    }

    #[test]
    fn dist_options_validate() {
        let ds = dataset();
        let err = UoiFitter::new(lasso_cfg())
            .mode(ExecMode::Dist(DistOptions::default().ranks(0)))
            .fit(&ds.x, &ds.y)
            .unwrap_err();
        assert!(matches!(err, UoiError::InvalidConfig(_)));
        let bad = DistOptions::default().ranks(4).modeled_ranks(2);
        let err = UoiFitter::new(lasso_cfg())
            .mode(ExecMode::Dist(bad))
            .fit(&ds.x, &ds.y)
            .unwrap_err();
        assert!(matches!(err, UoiError::InvalidConfig(_)));
    }

    #[test]
    #[allow(deprecated)]
    fn var_serial_and_dist_modes_match_legacy() {
        let series = var_series();
        let cfg = UoiVarConfig {
            base: lasso_cfg(),
            ..Default::default()
        };
        let legacy = crate::uoi_var::fit_uoi_var(&series, &cfg);
        let fit = UoiVarFitter::new(cfg.clone()).fit(&series).unwrap();
        assert_eq!(fit.support_family, legacy.support_family);
        for (a, b) in fit.vec_beta.iter().zip(&legacy.vec_beta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let dist = UoiVarFitter::new(cfg)
            .mode(ExecMode::Dist(DistOptions::default().ranks(3).n_readers(2)))
            .fit(&series)
            .unwrap();
        assert_eq!(dist.supports_per_lambda, legacy.supports_per_lambda);
        for (a, b) in dist.vec_beta.iter().zip(&legacy.vec_beta) {
            assert!((a - b).abs() < 5e-3, "serial {b} vs dist {a}");
        }
    }
}
