//! # uoi-core
//!
//! The paper's primary contribution: **Union of Intersections** for sparse
//! linear regression (`UoI_LASSO`, Algorithm 1) and Granger-causal VAR
//! inference (`UoI_VAR`, Algorithm 2), in shared-memory (rayon) and
//! distributed (simulated-MPI) forms.

#![allow(clippy::needless_range_loop)]

pub mod degraded;
pub mod error;
pub mod fitter;
pub mod granger;
pub mod metrics;
pub mod numerical;
pub mod parallelism;
pub mod recovery;
pub mod speculation;
pub mod support;
pub mod uoi_lasso;
pub mod uoi_lasso_dist;
pub mod uoi_lasso_recovering;
pub mod uoi_var;
pub mod uoi_var_dist;
pub mod uoi_var_recovering;
pub mod var_matrices;

pub use degraded::{
    BootstrapFaultPlan, CheckpointConfig, CheckpointStore, DegradationConfig, DegradationReport,
};
pub use error::UoiError;
pub use fitter::{DistOptions, ExecMode, UoiFitter, UoiVarFitter};
pub use granger::{Edge, GrangerNetwork};
pub use metrics::{estimation_error, EstimationError, SelectionCounts};
pub use numerical::{NumericalConfig, NumericalLedger};
pub use parallelism::{LayoutComms, ParallelLayout};
pub use recovery::{
    degraded_fallback_plan, RecoveryConfig, RecoveryReport, TaskOwnership, UOI_RECOVERY_ENV,
};
pub use speculation::{SpeculationConfig, SpeculationReport, StageHedging, UOI_SPECULATE_ENV};
pub use uoi_lasso::{bic, EstimationScore, UoiFit, UoiLassoConfig, UoiLassoConfigBuilder};
pub use uoi_var::{select_var_order, UoiVarConfig, UoiVarConfigBuilder, UoiVarFit};
pub use uoi_var_dist::{KronStats, UoiVarDistConfig};
// The legacy 8-way fit surface stays re-exported for source compatibility;
// new code goes through `UoiFitter` / `UoiVarFitter`.
#[allow(deprecated)]
pub use uoi_lasso::{fit_uoi_lasso, try_fit_uoi_lasso};
#[allow(deprecated)]
pub use uoi_lasso_dist::fit_uoi_lasso_dist;
#[allow(deprecated)]
pub use uoi_lasso_recovering::fit_uoi_lasso_recovering;
#[allow(deprecated)]
pub use uoi_var::{fit_uoi_var, try_fit_uoi_var};
#[allow(deprecated)]
pub use uoi_var_dist::fit_uoi_var_dist;
#[allow(deprecated)]
pub use uoi_var_recovering::fit_uoi_var_recovering;
pub use var_matrices::{flatten_coefficients, partition_coefficients, VarRegression};
