//! # uoi-core
//!
//! The paper's primary contribution: **Union of Intersections** for sparse
//! linear regression (`UoI_LASSO`, Algorithm 1) and Granger-causal VAR
//! inference (`UoI_VAR`, Algorithm 2), in shared-memory (rayon) and
//! distributed (simulated-MPI) forms.

#![allow(clippy::needless_range_loop)]

pub mod degraded;
pub mod error;
pub mod granger;
pub mod metrics;
pub mod parallelism;
pub mod recovery;
pub mod support;
pub mod uoi_lasso;
pub mod uoi_lasso_dist;
pub mod uoi_lasso_recovering;
pub mod uoi_var;
pub mod uoi_var_dist;
pub mod uoi_var_recovering;
pub mod var_matrices;

pub use degraded::{
    BootstrapFaultPlan, CheckpointConfig, CheckpointStore, DegradationConfig, DegradationReport,
};
pub use error::UoiError;
pub use granger::{Edge, GrangerNetwork};
pub use metrics::{estimation_error, EstimationError, SelectionCounts};
pub use parallelism::{LayoutComms, ParallelLayout};
pub use recovery::{
    degraded_fallback_plan, RecoveryConfig, RecoveryReport, TaskOwnership, UOI_RECOVERY_ENV,
};
pub use uoi_lasso::{
    bic, fit_uoi_lasso, try_fit_uoi_lasso, EstimationScore, UoiFit, UoiLassoConfig,
    UoiLassoConfigBuilder,
};
pub use uoi_lasso_dist::fit_uoi_lasso_dist;
pub use uoi_lasso_recovering::fit_uoi_lasso_recovering;
pub use uoi_var::{
    fit_uoi_var, select_var_order, try_fit_uoi_var, UoiVarConfig, UoiVarConfigBuilder, UoiVarFit,
};
pub use uoi_var_dist::{fit_uoi_var_dist, KronStats, UoiVarDistConfig};
pub use uoi_var_recovering::fit_uoi_var_recovering;
pub use var_matrices::{flatten_coefficients, partition_coefficients, VarRegression};
