//! Selection and estimation quality metrics — the quantities behind the
//! paper's statistical claims (low false positives *and* low false
//! negatives from the intersection; low bias / low variance from the
//! union-averaged OLS estimates).

/// Confusion counts of a recovered support against the ground truth over
/// `p` features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionCounts {
    /// Correctly selected features.
    pub true_positives: usize,
    /// Selected but not in the truth (the LASSO failure mode eq. 3 fights).
    pub false_positives: usize,
    /// Missed true features.
    pub false_negatives: usize,
    /// Correctly excluded features.
    pub true_negatives: usize,
}

impl SelectionCounts {
    /// Compare a recovered support with the ground truth (both sorted
    /// index lists) over `p` features.
    pub fn compare(recovered: &[usize], truth: &[usize], p: usize) -> Self {
        let in_r = to_mask(recovered, p);
        let in_t = to_mask(truth, p);
        let mut c = SelectionCounts {
            true_positives: 0,
            false_positives: 0,
            false_negatives: 0,
            true_negatives: 0,
        };
        for j in 0..p {
            match (in_r[j], in_t[j]) {
                (true, true) => c.true_positives += 1,
                (true, false) => c.false_positives += 1,
                (false, true) => c.false_negatives += 1,
                (false, false) => c.true_negatives += 1,
            }
        }
        c
    }

    /// Precision = TP / (TP + FP); 1.0 when nothing was selected.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when the truth is empty.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate FP / (FP + TN).
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.false_positives + self.true_negatives;
        if denom == 0 {
            0.0
        } else {
            self.false_positives as f64 / denom as f64
        }
    }

    /// Matthews correlation coefficient (0 when any margin is empty).
    pub fn matthews(&self) -> f64 {
        let (tp, fp, fn_, tn) = (
            self.true_positives as f64,
            self.false_positives as f64,
            self.false_negatives as f64,
            self.true_negatives as f64,
        );
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fn_) / denom
        }
    }
}

fn to_mask(idx: &[usize], p: usize) -> Vec<bool> {
    let mut m = vec![false; p];
    for &i in idx {
        assert!(i < p, "index {i} out of bounds ({p})");
        m[i] = true;
    }
    m
}

/// Estimation-error summary of a coefficient estimate against the truth.
#[derive(Debug, Clone, Copy)]
pub struct EstimationError {
    /// `||b - b*||_2`.
    pub l2: f64,
    /// `||b - b*||_2 / ||b*||_2` (0 denominator → absolute error).
    pub relative_l2: f64,
    /// Mean signed bias over the true support.
    pub support_bias: f64,
    /// Max absolute error.
    pub max_abs: f64,
}

/// Compare estimate `b` with truth `b_star`.
pub fn estimation_error(b: &[f64], b_star: &[f64]) -> EstimationError {
    assert_eq!(b.len(), b_star.len());
    let mut sq = 0.0;
    let mut tnorm = 0.0;
    let mut max_abs = 0.0_f64;
    let mut bias_sum = 0.0;
    let mut bias_n = 0usize;
    for (&bi, &ti) in b.iter().zip(b_star) {
        let d = bi - ti;
        sq += d * d;
        tnorm += ti * ti;
        max_abs = max_abs.max(d.abs());
        if ti != 0.0 {
            // Signed shrinkage along the truth's direction.
            bias_sum += (bi - ti) * ti.signum();
            bias_n += 1;
        }
    }
    let l2 = sq.sqrt();
    EstimationError {
        l2,
        relative_l2: if tnorm > 0.0 { l2 / tnorm.sqrt() } else { l2 },
        support_bias: if bias_n > 0 {
            bias_sum / bias_n as f64
        } else {
            0.0
        },
        max_abs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery() {
        let c = SelectionCounts::compare(&[1, 3], &[1, 3], 5);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 0);
        assert_eq!(c.false_negatives, 0);
        assert_eq!(c.true_negatives, 3);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert!((c.matthews() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_recovery() {
        // truth {0,1}, recovered {1,2}: TP=1 FP=1 FN=1 TN=1.
        let c = SelectionCounts::compare(&[1, 2], &[0, 1], 4);
        assert_eq!(
            (
                c.true_positives,
                c.false_positives,
                c.false_negatives,
                c.true_negatives
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert!((c.false_positive_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.matthews(), 0.0);
    }

    #[test]
    fn empty_selection_conventions() {
        let c = SelectionCounts::compare(&[], &[], 3);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.false_positive_rate(), 0.0);
    }

    #[test]
    fn estimation_error_shrinkage_bias() {
        // Uniform shrinkage toward zero shows as negative support bias —
        // the LASSO bias UoI is designed to remove.
        let truth = [2.0, -3.0, 0.0];
        let shrunk = [1.5, -2.5, 0.0];
        let e = estimation_error(&shrunk, &truth);
        assert!(e.support_bias < 0.0);
        assert!((e.l2 - (0.25_f64 + 0.25).sqrt()).abs() < 1e-12);
        assert!((e.max_abs - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_relative_error() {
        let e = estimation_error(&[1.0], &[0.0]);
        assert_eq!(e.relative_l2, 1.0);
        assert_eq!(e.support_bias, 0.0);
    }
}
