//! Deterministic fault injection and the fault-tolerance primitives the
//! runtime is built on.
//!
//! The paper's target regime (278,528 cores on Cori) makes rank crashes,
//! stragglers, and transient I/O errors routine events, not exceptions.
//! This module provides:
//!
//! * [`FaultPlan`] — a seeded, fully deterministic description of the
//!   faults to inject into a run: rank crashes at a given collective
//!   step, per-rank straggler slowdown factors, dropped/corrupted
//!   one-sided window operations, and transient I/O error budgets.
//!   The same seed always produces the same fault schedule, so every
//!   fault-injection test is reproducible bit-for-bit.
//! * [`MpiError`] — the structured error surviving ranks observe when a
//!   peer dies or a collective times out, instead of a condvar deadlock.
//! * [`AbortState`] — the cluster-wide failure flag a dying rank raises
//!   (via the `catch_unwind` wrapper in [`crate::cluster::Cluster`])
//!   so peers blocked in collectives wake promptly.
//! * [`FtBarrier`] — a generation-counting barrier whose waits poll the
//!   abort flag in short slices under a configurable watchdog timeout.
//!   A dead or absent peer surfaces as [`MpiError::RankFailed`] or
//!   [`MpiError::WatchdogTimeout`]; the runtime never hangs.

use crate::model::SplitMix64;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How often a blocked rank re-checks the abort flag while waiting in a
/// barrier or receive. Bounds failure-detection latency.
pub(crate) const WAIT_SLICE: Duration = Duration::from_millis(2);

/// Structured failure surfaced by the fault-tolerant collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A peer rank died (panicked or was fault-injected) while this
    /// rank was inside the collective identified by `phase`.
    RankFailed {
        /// The rank that failed (not the observer).
        rank: usize,
        /// The operation the *observer* was blocked in ("allreduce",
        /// "barrier", "recv", ...).
        phase: &'static str,
    },
    /// No failure was reported but peers did not arrive within the
    /// watchdog timeout — an SPMD protocol mismatch or a hung rank.
    WatchdogTimeout {
        /// The operation the observer was blocked in.
        phase: &'static str,
        /// How long it waited, in milliseconds.
        waited_ms: u64,
    },
    /// The communicator was revoked (ULFM `MPI_Comm_revoke` analogue):
    /// a survivor invalidated it so every pending and future collective
    /// on it fails fast. Recovery code agrees on the failed set and
    /// shrinks to a fresh communicator instead of retrying on this one.
    Revoked {
        /// The operation the observer was blocked in when the
        /// revocation surfaced.
        phase: &'static str,
    },
    /// An internal runtime invariant was violated (lost rank result,
    /// missing window registration, poisoned channel). Carried as a
    /// typed error instead of a bare `unwrap()` panic so recovery
    /// logic can distinguish runtime bugs from injected rank faults.
    Internal {
        /// What went wrong.
        what: String,
    },
    /// A speculative replica of a deterministic task completed with a
    /// payload that was not bitwise equal to the owner's. UoI tasks are
    /// pure functions of (data, config, task index), so a divergence is
    /// never a scheduling artifact — it is silent corruption, and
    /// re-executing cannot be trusted to fix it.
    SpeculationDivergence {
        /// The pipeline stage label ("lasso.sel", "var.est", ...).
        stage: String,
        /// The diverging task index.
        task: usize,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::RankFailed { rank, phase } => {
                write!(f, "rank {rank} failed while peers were in {phase}")
            }
            MpiError::WatchdogTimeout { phase, waited_ms } => {
                write!(f, "watchdog timeout after {waited_ms}ms in {phase}")
            }
            MpiError::Revoked { phase } => {
                write!(f, "communicator revoked while in {phase}")
            }
            MpiError::Internal { what } => {
                write!(f, "internal runtime error: {what}")
            }
            MpiError::SpeculationDivergence { stage, task } => {
                write!(
                    f,
                    "speculative replica diverged from owner result for task {task} in {stage}"
                )
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// The faults one rank experiences in a run, derived from a
/// [`FaultPlan`] by [`FaultPlan::faults_for`].
#[derive(Debug, Clone)]
pub struct RankFaults {
    /// Panic at entry of the N-th fault-eligible collective op
    /// (0-based, counted per rank).
    pub crash_at_step: Option<u64>,
    /// Hang (stop participating) at entry of the N-th fault-eligible
    /// collective op: the rank marks itself suspect, waits for the
    /// cluster abort/watchdog, then dies. Peers observe a
    /// [`MpiError::WatchdogTimeout`]; the recovery driver identifies
    /// the hung rank through the suspect set.
    pub hang_at_step: Option<u64>,
    /// Multiplier applied to this rank's local compute and I/O charges
    /// (1.0 = healthy, 3.0 = three times slower).
    pub straggle_factor: f64,
    /// One-sided window op indices (0-based, per rank) whose payload is
    /// silently dropped (reads return zeros, writes do not land).
    pub window_drop_ops: BTreeSet<u64>,
    /// Window op indices whose payload is corrupted by a deterministic
    /// single bit flip in the first element.
    pub window_corrupt_ops: BTreeSet<u64>,
    /// Number of injected transient I/O failures this rank's tiered
    /// reads will observe before succeeding.
    pub transient_io_failures: u64,
}

impl Default for RankFaults {
    fn default() -> Self {
        Self {
            crash_at_step: None,
            hang_at_step: None,
            straggle_factor: 1.0,
            window_drop_ops: BTreeSet::new(),
            window_corrupt_ops: BTreeSet::new(),
            transient_io_failures: 0,
        }
    }
}

impl RankFaults {
    /// A healthy rank (no injected faults).
    pub fn healthy() -> Self {
        Self::default()
    }
}

/// A seeded, deterministic fault schedule for a cluster run.
///
/// Build explicitly (`crash_rank`, `straggler`, ...) or derive
/// pseudo-randomly from the seed (`with_random_crash`); either way the
/// schedule is a pure function of the plan, so reruns inject identical
/// faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<(usize, u64)>,
    hangs: Vec<(usize, u64)>,
    stragglers: Vec<(usize, f64)>,
    window_drops: Vec<(usize, u64)>,
    window_corrupts: Vec<(usize, u64)>,
    transient_io: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// An empty plan carrying `seed` for the `with_random_*` derivations.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Crash `rank` at its `step`-th collective operation (0-based).
    pub fn crash_rank(mut self, rank: usize, step: u64) -> Self {
        self.crashes.push((rank, step));
        self
    }

    /// Hang `rank` at its `step`-th collective operation (0-based): the
    /// rank stops participating without dying, the straggler-timeout
    /// failure mode. Peers see the epoch watchdog expire; the hung rank
    /// marks itself suspect so recovery can exclude it deterministically.
    pub fn hang_rank(mut self, rank: usize, step: u64) -> Self {
        self.hangs.push((rank, step));
        self
    }

    /// Slow `rank`'s local compute/I/O down by `factor` (> 1.0).
    pub fn straggler(mut self, rank: usize, factor: f64) -> Self {
        assert!(factor > 0.0, "straggler factor must be positive");
        self.stragglers.push((rank, factor));
        self
    }

    /// Drop `rank`'s `op`-th one-sided window operation (0-based).
    pub fn drop_window_op(mut self, rank: usize, op: u64) -> Self {
        self.window_drops.push((rank, op));
        self
    }

    /// Corrupt `rank`'s `op`-th one-sided window operation.
    pub fn corrupt_window_op(mut self, rank: usize, op: u64) -> Self {
        self.window_corrupts.push((rank, op));
        self
    }

    /// Give `rank` a budget of `count` injected transient I/O failures.
    pub fn transient_io(mut self, rank: usize, count: u64) -> Self {
        self.transient_io.push((rank, count));
        self
    }

    /// Derive one crash (rank, step) pseudo-randomly from the seed:
    /// a uniformly chosen rank in `0..world` crashes at a step in
    /// `0..max_step`.
    pub fn with_random_crash(self, world: usize, max_step: u64) -> Self {
        assert!(world > 0 && max_step > 0);
        let mut rng = SplitMix64::new(self.seed ^ 0xC5A5_1D4E_F00D_0001);
        let rank = (rng.next_u64() % world as u64) as usize;
        let step = rng.next_u64() % max_step;
        self.crash_rank(rank, step)
    }

    /// Derive one straggler pseudo-randomly from the seed, with a
    /// slowdown factor in `[1.5, 1.5 + spread)`.
    pub fn with_random_straggler(self, world: usize, spread: f64) -> Self {
        assert!(world > 0);
        let mut rng = SplitMix64::new(self.seed ^ 0xC5A5_1D4E_F00D_0002);
        let rank = (rng.next_u64() % world as u64) as usize;
        let factor = 1.5 + rng.next_f64() * spread.max(0.0);
        self.straggler(rank, factor)
    }

    /// Derive `count` dropped window ops pseudo-randomly from the seed,
    /// spread over ranks `0..world` and op indices `0..max_op`.
    pub fn with_random_window_drops(mut self, world: usize, max_op: u64, count: usize) -> Self {
        assert!(world > 0 && max_op > 0);
        let mut rng = SplitMix64::new(self.seed ^ 0xC5A5_1D4E_F00D_0003);
        for _ in 0..count {
            let rank = (rng.next_u64() % world as u64) as usize;
            let op = rng.next_u64() % max_op;
            self.window_drops.push((rank, op));
        }
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.hangs.is_empty()
            && self.stragglers.is_empty()
            && self.window_drops.is_empty()
            && self.window_corrupts.is_empty()
            && self.transient_io.is_empty()
    }

    /// The faults `rank` experiences under this plan.
    pub fn faults_for(&self, rank: usize) -> RankFaults {
        let mut out = RankFaults::default();
        for &(r, step) in &self.crashes {
            if r == rank {
                // Earliest crash wins if several were scheduled.
                out.crash_at_step = Some(out.crash_at_step.map_or(step, |s: u64| s.min(step)));
            }
        }
        for &(r, step) in &self.hangs {
            if r == rank {
                out.hang_at_step = Some(out.hang_at_step.map_or(step, |s: u64| s.min(step)));
            }
        }
        for &(r, f) in &self.stragglers {
            if r == rank {
                out.straggle_factor *= f;
            }
        }
        for &(r, op) in &self.window_drops {
            if r == rank {
                out.window_drop_ops.insert(op);
            }
        }
        for &(r, op) in &self.window_corrupts {
            if r == rank {
                out.window_corrupt_ops.insert(op);
            }
        }
        for &(r, n) in &self.transient_io {
            if r == rank {
                out.transient_io_failures += n;
            }
        }
        out
    }
}

/// Cluster-wide failure flag. A dying rank (or the cluster's panic
/// handler on its behalf) marks itself failed; every blocked wait polls
/// the flag and converts it into [`MpiError::RankFailed`].
#[derive(Debug, Default)]
pub(crate) struct AbortState {
    aborted: AtomicBool,
    revoked: AtomicBool,
    failed: Mutex<Vec<(usize, String)>>,
    /// Ranks that declared themselves unable to make progress (injected
    /// hangs) without dying outright. The recovery driver treats them
    /// as the culprits behind otherwise-anonymous watchdog timeouts.
    suspects: Mutex<BTreeSet<usize>>,
}

impl AbortState {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Record that `rank` died with `reason` and raise the abort flag.
    pub(crate) fn mark_failed(&self, rank: usize, reason: String) {
        self.failed.lock().push((rank, reason));
        self.aborted.store(true, Ordering::SeqCst);
    }

    #[inline]
    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// The first recorded failure, if any.
    pub(crate) fn first_failure(&self) -> Option<usize> {
        self.failed.lock().first().map(|&(r, _)| r)
    }

    /// All ranks recorded as failed, in report order.
    pub(crate) fn failed_ranks(&self) -> Vec<usize> {
        self.failed.lock().iter().map(|&(r, _)| r).collect()
    }

    /// Declare `rank` suspect: unable to progress but not (yet) dead.
    pub(crate) fn mark_suspect(&self, rank: usize) {
        self.suspects.lock().insert(rank);
    }

    /// The current suspect set, sorted.
    pub(crate) fn suspects(&self) -> Vec<usize> {
        self.suspects.lock().iter().copied().collect()
    }

    /// Revoke the communicator tree sharing this state: every pending
    /// and future wait fails fast with [`MpiError::Revoked`].
    pub(crate) fn revoke(&self) {
        self.revoked.store(true, Ordering::SeqCst);
    }

    #[inline]
    pub(crate) fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::SeqCst)
    }
}

struct BarrierState {
    count: usize,
    generation: u64,
}

/// A reusable barrier whose waits are failure-aware: instead of parking
/// unconditionally, each waiter sleeps in [`WAIT_SLICE`] increments,
/// checking the cluster [`AbortState`] and its watchdog deadline at
/// every wakeup. The last arriver of a generation is the leader.
pub(crate) struct FtBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

impl FtBarrier {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            n,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Wait for all `n` participants. Returns `Ok(true)` on the leader
    /// (last arriver), `Ok(false)` elsewhere; `Err` if a peer failed or
    /// the watchdog expired first. After an `Err` the communicator is
    /// poisoned: in-flight collective state is undefined and the caller
    /// must unwind out of the SPMD program.
    pub(crate) fn wait(
        &self,
        abort: &AbortState,
        watchdog: Duration,
        phase: &'static str,
    ) -> Result<bool, MpiError> {
        let mut st = self.state.lock();
        let gen = st.generation;
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(true);
        }
        let start = Instant::now();
        loop {
            if st.generation != gen {
                return Ok(false);
            }
            if abort.is_revoked() {
                st.count = st.count.saturating_sub(1);
                return Err(MpiError::Revoked { phase });
            }
            if abort.is_aborted() {
                // Undo our arrival so the generation count is not left
                // skewed for waiters that raced in after the abort.
                st.count = st.count.saturating_sub(1);
                let rank = abort.first_failure().unwrap_or(usize::MAX);
                return Err(MpiError::RankFailed { rank, phase });
            }
            if start.elapsed() >= watchdog {
                st.count = st.count.saturating_sub(1);
                return Err(MpiError::WatchdogTimeout {
                    phase,
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            self.cvar.wait_for(&mut st, WAIT_SLICE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_deterministic() {
        let a = FaultPlan::new(42)
            .with_random_crash(8, 10)
            .with_random_straggler(8, 2.0);
        let b = FaultPlan::new(42)
            .with_random_crash(8, 10)
            .with_random_straggler(8, 2.0);
        for r in 0..8 {
            let (fa, fb) = (a.faults_for(r), b.faults_for(r));
            assert_eq!(fa.crash_at_step, fb.crash_at_step);
            assert_eq!(fa.straggle_factor, fb.straggle_factor);
        }
        // Different seeds shuffle the schedule.
        let c = FaultPlan::new(43).with_random_crash(8, 10);
        let crashed_a = (0..8)
            .filter(|&r| a.faults_for(r).crash_at_step.is_some())
            .count();
        let crashed_c = (0..8)
            .filter(|&r| c.faults_for(r).crash_at_step.is_some())
            .count();
        assert_eq!(crashed_a, 1);
        assert_eq!(crashed_c, 1);
    }

    #[test]
    fn explicit_plan_builders_accumulate() {
        let p = FaultPlan::new(0)
            .crash_rank(3, 7)
            .straggler(1, 2.5)
            .drop_window_op(2, 0)
            .corrupt_window_op(2, 4)
            .transient_io(0, 3);
        assert_eq!(p.faults_for(3).crash_at_step, Some(7));
        assert_eq!(p.faults_for(1).straggle_factor, 2.5);
        assert!(p.faults_for(2).window_drop_ops.contains(&0));
        assert!(p.faults_for(2).window_corrupt_ops.contains(&4));
        assert_eq!(p.faults_for(0).transient_io_failures, 3);
        assert_eq!(p.faults_for(5).crash_at_step, None);
        assert!(!p.is_empty());
        assert!(FaultPlan::new(9).is_empty());
    }

    #[test]
    fn barrier_surfaces_peer_failure_not_deadlock() {
        let barrier = std::sync::Arc::new(FtBarrier::new(2));
        let abort = std::sync::Arc::new(AbortState::new());
        let (b2, a2) = (barrier, abort.clone());
        let h = std::thread::spawn(move || b2.wait(&a2, Duration::from_secs(5), "barrier"));
        std::thread::sleep(Duration::from_millis(10));
        abort.mark_failed(1, "injected".into());
        let got = h.join().unwrap();
        assert_eq!(
            got,
            Err(MpiError::RankFailed {
                rank: 1,
                phase: "barrier"
            })
        );
    }

    #[test]
    fn barrier_watchdog_fires_without_abort() {
        let barrier = FtBarrier::new(2);
        let abort = AbortState::new();
        let got = barrier.wait(&abort, Duration::from_millis(30), "barrier");
        match got {
            Err(MpiError::WatchdogTimeout {
                phase: "barrier",
                waited_ms,
            }) => {
                assert!(waited_ms >= 30);
            }
            other => panic!("expected watchdog timeout, got {other:?}"),
        }
    }

    #[test]
    fn mpi_error_displays_structured_fields() {
        let e = MpiError::RankFailed {
            rank: 5,
            phase: "allreduce",
        };
        assert_eq!(e.to_string(), "rank 5 failed while peers were in allreduce");
        let t = MpiError::WatchdogTimeout {
            phase: "recv",
            waited_ms: 250,
        };
        assert!(t.to_string().contains("250ms"));
    }
}
