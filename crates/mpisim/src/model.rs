//! The machine model: analytic cost functions for computation,
//! communication, one-sided transfers, and parallel file I/O.
//!
//! The reproduction runs its ranks as threads on one machine, so *measured*
//! wall-clock time cannot exhibit the paper's 100k-core behaviour. Instead,
//! every operation a rank performs is charged to a **virtual clock** using
//! the cost functions below, evaluated at the *modeled* rank count (which
//! may far exceed the executed rank count — see `cluster::Cluster`). The
//! constants are KNL/Cori-flavoured defaults; the scaling *shapes*
//! (log-P collective growth, reader-window serialisation, striped-I/O
//! throughput) are what the experiments reproduce, not absolute seconds.

/// Lustre-like parallel file-system model.
#[derive(Debug, Clone)]
pub struct IoModel {
    /// Sustained per-OST stream bandwidth (bytes/s). Cori's Lustre OSTs
    /// delivered on the order of 1 GB/s each.
    pub ost_bandwidth: f64,
    /// Number of object storage targets the file is striped over. The paper
    /// stripes its HDF5 inputs over 160 OSTs (§IV-A4).
    pub stripe_count: usize,
    /// Latency of a file-open / metadata operation (seconds). The
    /// conventional reader pays this on every chunk loop.
    pub open_latency: f64,
    /// Bandwidth of a *single* serial reader (bytes/s) — the conventional
    /// strategy's one-core HDF5 read path.
    pub serial_read_bandwidth: f64,
}

impl Default for IoModel {
    fn default() -> Self {
        Self {
            ost_bandwidth: 1.0e9,
            stripe_count: 160,
            open_latency: 2.0e-3,
            serial_read_bandwidth: 0.35e9,
        }
    }
}

impl IoModel {
    /// Time for `readers` ranks to read `bytes` in contiguous parallel
    /// hyperslabs from a file striped over `stripe_count` OSTs.
    ///
    /// Aggregate bandwidth saturates at `min(readers, stripes) * per-OST`.
    pub fn parallel_read_time(&self, readers: usize, bytes: f64) -> f64 {
        let streams = readers.min(self.stripe_count).max(1) as f64;
        self.open_latency + bytes / (streams * self.ost_bandwidth)
    }

    /// Time for the conventional strategy: a single core repeatedly opens
    /// the file and reads `bytes` total in `chunks` chunk-loops.
    pub fn serial_chunked_read_time(&self, bytes: f64, chunks: usize) -> f64 {
        chunks.max(1) as f64 * self.open_latency + bytes / self.serial_read_bandwidth
    }
}

/// Multiplicative noise applied to collective costs, producing the
/// `T_min`/`T_max` spread of Fig 5. Log-normal: `exp(sigma * z)`.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Log-normal sigma. 0 disables noise.
    pub sigma: f64,
    /// Base seed; each rank derives an independent stream.
    pub seed: u64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            sigma: 0.18,
            seed: 0xC0FFEE,
        }
    }
}

/// Cost model for a distributed-memory machine.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Point-to-point message latency (seconds) — the `alpha` of the
    /// alpha-beta model.
    pub alpha: f64,
    /// Per-byte transfer time (seconds/byte) — `beta = 1 / bandwidth`.
    pub beta: f64,
    /// Per-participating-rank software/progression overhead of collectives
    /// (seconds/rank). The textbook alpha-beta model predicts log-P
    /// collectives, but the paper *measures* communication time growing
    /// proportionally to core count (§IV-A4); this term reproduces that
    /// at the ~30 ns/rank level observed on Cori-class machines.
    pub gamma_collective: f64,
    /// Seconds per double-precision flop for dense, DRAM-resident kernels.
    /// KNL per-core sustained dgemm was ~30 GFLOP/s with MKL across a node;
    /// per-core share used here reflects the paper's measured 30.83 GFLOPS
    /// node-level matrix-multiply rate spread over the ranks of a node.
    pub flop_time: f64,
    /// Seconds per byte for memory-bandwidth-bound kernels (gemv,
    /// triangular solve — the paper's roofline analysis shows these are
    /// DRAM-bound at < 0.35 arithmetic intensity).
    pub mem_byte_time: f64,
    /// Working-set threshold (bytes/rank) below which compute runs from
    /// cache; reproduces the superlinear strong-scaling dip of Fig 6.
    pub cache_bytes: f64,
    /// Speedup factor applied to `flop_time` when the working set fits in
    /// `cache_bytes` (MCDRAM/L2 + AVX-512 effect the paper describes).
    pub cache_speedup: f64,
    /// File-system model.
    pub io: IoModel,
    /// Collective-noise model.
    pub noise: NoiseModel,
    /// Cores per node (68 on Cori KNL) — used only for reporting.
    pub cores_per_node: usize,
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::knl()
    }
}

impl MachineModel {
    /// Cori-KNL-flavoured constants.
    pub fn knl() -> Self {
        Self {
            alpha: 2.5e-6,
            beta: 1.0 / 8.0e9,
            gamma_collective: 3.0e-8,
            // ~0.45 GFLOP/s effective per-rank share of node-level dgemm.
            flop_time: 1.0 / 0.45e9,
            mem_byte_time: 1.0 / 2.0e9,
            cache_bytes: 512.0 * 1024.0,
            cache_speedup: 2.2,
            io: IoModel::default(),
            noise: NoiseModel::default(),
            cores_per_node: 68,
        }
    }

    /// A noiseless variant for deterministic tests.
    pub fn deterministic() -> Self {
        let mut m = Self::knl();
        m.noise.sigma = 0.0;
        m
    }

    /// Time for a dense-flop computation with a given working set.
    pub fn compute_time(&self, flops: f64, working_set_bytes: f64) -> f64 {
        let ft = if working_set_bytes > 0.0 && working_set_bytes < self.cache_bytes {
            self.flop_time / self.cache_speedup
        } else {
            self.flop_time
        };
        flops * ft
    }

    /// Time for a memory-bandwidth-bound sweep over `bytes`.
    pub fn membound_time(&self, bytes: f64) -> f64 {
        bytes * self.mem_byte_time
    }

    /// Recursive-doubling / ring-hybrid allreduce on `p` ranks moving
    /// `bytes` per rank: `2 ceil(log2 p) alpha + 2 bytes beta`.
    pub fn allreduce_time(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let lg = (p as f64).log2().ceil();
        2.0 * lg * self.alpha + 2.0 * bytes as f64 * self.beta + p as f64 * self.gamma_collective
    }

    /// Binomial-tree broadcast.
    pub fn bcast_time(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let lg = (p as f64).log2().ceil();
        lg * (self.alpha + bytes as f64 * self.beta)
    }

    /// Dissemination barrier.
    pub fn barrier_time(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.alpha
    }

    /// Root-bottlenecked gather/scatter of `bytes` per non-root rank.
    pub fn gather_time(&self, p: usize, bytes_per_rank: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.alpha + (p - 1) as f64 * bytes_per_rank as f64 * self.beta
    }

    /// One one-sided `get`/`put` of `bytes` against a window (excluding
    /// queueing, which the window's serialisation accounting adds).
    pub fn onesided_time(&self, bytes: usize) -> f64 {
        self.alpha + bytes as f64 * self.beta
    }
}

/// SplitMix64 — the deterministic per-rank noise stream generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed a stream; combine with a rank id for per-rank independence.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box-Muller.
    pub fn next_normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A log-normal multiplicative noise factor with the given sigma.
    pub fn lognormal_factor(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            1.0
        } else {
            (sigma * self.next_normal()).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_grows_logarithmically() {
        let m = MachineModel::deterministic();
        let t2 = m.allreduce_time(2, 8192);
        let t1024 = m.allreduce_time(1024, 8192);
        let t1m = m.allreduce_time(1 << 20, 8192);
        assert!(t2 < t1024 && t1024 < t1m);
        // Going 1024 -> 1M adds 10 alpha-doublings plus the linear
        // software-overhead term the paper's measurements motivate.
        let expected_delta = 2.0 * 10.0 * m.alpha + ((1 << 20) - 1024) as f64 * m.gamma_collective;
        assert!((t1m - t1024 - expected_delta).abs() < 1e-12);
    }

    #[test]
    fn single_rank_collectives_free() {
        let m = MachineModel::deterministic();
        assert_eq!(m.allreduce_time(1, 1 << 20), 0.0);
        assert_eq!(m.bcast_time(1, 1 << 20), 0.0);
        assert_eq!(m.barrier_time(1), 0.0);
    }

    #[test]
    fn cache_speedup_applies_below_threshold() {
        let m = MachineModel::knl();
        let slow = m.compute_time(1e6, 10.0 * m.cache_bytes);
        let fast = m.compute_time(1e6, 0.5 * m.cache_bytes);
        assert!((slow / fast - m.cache_speedup).abs() < 1e-9);
    }

    #[test]
    fn io_parallel_saturates_at_stripes() {
        let io = IoModel::default();
        let t160 = io.parallel_read_time(160, 1e12);
        let t10000 = io.parallel_read_time(10_000, 1e12);
        assert!((t160 - t10000).abs() < 1e-12, "beyond stripes no speedup");
        assert!(io.parallel_read_time(10, 1e12) > t160);
    }

    #[test]
    fn serial_chunked_read_dominates() {
        let io = IoModel::default();
        // 1 TB conventional read far exceeds parallel read — the Table II
        // phenomenon.
        let conv = io.serial_chunked_read_time(1e12, 1000);
        let par = io.parallel_read_time(4096, 1e12);
        assert!(conv > 100.0 * par);
    }

    #[test]
    fn splitmix_deterministic_and_normalish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut rng = SplitMix64::new(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_normal()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "normal mean off: {mean}");
        let mut rng2 = SplitMix64::new(9);
        for _ in 0..100 {
            let f = rng2.lognormal_factor(0.2);
            assert!(f > 0.0);
        }
        assert_eq!(SplitMix64::new(1).lognormal_factor(0.0), 1.0);
    }
}
