//! Communicators, rank contexts, and collective operations.
//!
//! A [`Comm`] is the analogue of an `MPI_Comm`: a group of ranks with
//! collective operations (`barrier`, `bcast`, `allreduce_sum`, `gather`,
//! `allgather`, `scatter`) and [`Comm::split`] for building the nested
//! `P_B x P_lambda x ADMM_cores` decomposition of paper §III.
//!
//! Real data genuinely moves between the rank threads (so statistical
//! results are exact); *time* is virtual: each operation synchronises the
//! participants' virtual clocks and charges the machine-model cost evaluated
//! at the **modeled** communicator size, which may exceed the executed one
//! (see [`crate::cluster::Cluster`]).
//!
//! All collectives follow a three-barrier protocol: (1) contribute under the
//! state mutex, barrier; (2) consume the combined result, barrier; (3) the
//! barrier leader resets shared state, barrier. SPMD discipline applies: all
//! ranks of a communicator must call the same collectives in the same order.

use crate::ledger::{CollectiveEvent, Phase, PhaseLedger};
use crate::model::{MachineModel, SplitMix64};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use uoi_telemetry::{Telemetry, TraceEvent};

/// Per-rank execution context: identity, virtual clock, phase ledger, and
/// noise stream. Exactly one exists per executed rank; it is threaded
/// through every simulated operation.
pub struct RankCtx {
    world_rank: usize,
    world_size: usize,
    clock: f64,
    ledger: PhaseLedger,
    model: Arc<MachineModel>,
    /// modeled ranks / executed ranks (>= 1).
    oversub: f64,
    noise: SplitMix64,
    telemetry: Telemetry,
    /// Open span ids, innermost last.
    span_stack: Vec<u64>,
    /// Suppress trace emission (used while re-running a collective whose
    /// charge is rolled back, e.g. `iallreduce_sum`).
    trace_mute: bool,
}

impl RankCtx {
    pub(crate) fn new(
        world_rank: usize,
        world_size: usize,
        model: Arc<MachineModel>,
        oversub: f64,
        telemetry: Telemetry,
    ) -> Self {
        let seed = model
            .noise
            .seed
            .wrapping_add((world_rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self {
            world_rank,
            world_size,
            clock: 0.0,
            ledger: PhaseLedger::default(),
            model,
            oversub,
            noise: SplitMix64::new(seed),
            telemetry,
            span_stack: Vec::new(),
            trace_mute: false,
        }
    }

    /// This rank's id in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Number of executed ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Current virtual time (seconds).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Phase accounting so far.
    pub fn ledger(&self) -> PhaseLedger {
        self.ledger
    }

    /// The machine model in force.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Oversubscription factor (modeled ranks / executed ranks).
    pub fn oversub(&self) -> f64 {
        self.oversub
    }

    /// The telemetry handle this rank records through (disabled unless
    /// the cluster was built with
    /// [`crate::cluster::Cluster::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Advance the clock by `seconds`, attributing them to `phase`.
    pub fn charge(&mut self, phase: Phase, seconds: f64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        self.clock += seconds;
        self.ledger.charge(phase, seconds);
        if !self.trace_mute {
            let (rank, clock) = (self.world_rank, self.clock);
            self.telemetry.record_with(|| TraceEvent::PhaseCharge {
                rank,
                phase: phase.label(),
                seconds,
                t: clock,
            });
        }
    }

    /// Open a named span (e.g. `"selection"`). Nested calls nest; close
    /// with [`RankCtx::span_exit`] in LIFO order. Returns 0 (no-op) when
    /// tracing is disabled.
    pub fn span_enter(&mut self, name: &str) -> u64 {
        let id = self.telemetry.next_span_id();
        if id != 0 {
            let parent = self.span_stack.last().copied();
            self.telemetry.record(TraceEvent::SpanStart {
                id,
                parent,
                name: name.to_string(),
                rank: self.world_rank,
                t: self.clock,
            });
            self.span_stack.push(id);
        }
        id
    }

    /// Close the span returned by [`RankCtx::span_enter`].
    pub fn span_exit(&mut self, id: u64) {
        if id == 0 {
            return;
        }
        debug_assert_eq!(self.span_stack.last(), Some(&id), "spans must close LIFO");
        self.span_stack.retain(|&s| s != id);
        self.telemetry.record(TraceEvent::SpanEnd { id, rank: self.world_rank, t: self.clock });
    }

    /// Run `f` inside a named span.
    pub fn span<R>(&mut self, name: &str, f: impl FnOnce(&mut RankCtx) -> R) -> R {
        let id = self.span_enter(name);
        let out = f(self);
        self.span_exit(id);
        out
    }

    /// Charge a dense computation of `flops` with the given working set.
    pub fn compute_flops(&mut self, flops: f64, working_set_bytes: f64) {
        let t = self.model.compute_time(flops, working_set_bytes);
        self.charge(Phase::Compute, t);
    }

    /// Charge a memory-bandwidth-bound sweep of `bytes`.
    pub fn compute_membound(&mut self, bytes: f64) {
        let t = self.model.membound_time(bytes);
        self.charge(Phase::Compute, t);
    }

    /// Charge file-I/O seconds.
    pub fn charge_io(&mut self, seconds: f64) {
        self.charge(Phase::DataIo, seconds);
        if !self.trace_mute {
            let (rank, clock) = (self.world_rank, self.clock);
            self.telemetry.record_with(|| TraceEvent::Io { rank, seconds, t: clock });
        }
    }

    /// Jump the clock forward to absolute time `t` (no-op if already past),
    /// attributing the wait to `phase`.
    pub(crate) fn advance_to(&mut self, t: f64, phase: Phase) {
        if t > self.clock {
            let dt = t - self.clock;
            self.charge(phase, dt);
        }
    }

    pub(crate) fn set_trace_mute(&mut self, mute: bool) -> bool {
        std::mem::replace(&mut self.trace_mute, mute)
    }

    pub(crate) fn trace_muted(&self) -> bool {
        self.trace_mute
    }

    /// Draw a multiplicative noise factor for a collective cost.
    pub(crate) fn noise_factor(&mut self) -> f64 {
        let sigma = self.model.noise.sigma;
        self.noise.lognormal_factor(sigma)
    }

    pub(crate) fn into_parts(self) -> (PhaseLedger, f64) {
        (self.ledger, self.clock)
    }
}

/// Shared collective scratch state of one communicator.
struct CollState {
    /// Elementwise-summed reduction buffer.
    buf: Vec<f64>,
    /// Per-rank deposit slots (bcast/gather/scatter/split payloads).
    slots: Vec<Option<Vec<f64>>>,
    /// Ranks that have contributed to the current collective.
    count: usize,
    /// Max entry clock over contributors (collective start time).
    max_clock: f64,
    /// Per-rank modeled costs, for min/max event stats.
    costs: Vec<f64>,
    /// Collective-scoped tag (window ids, split generation).
    tag: u64,
}

impl CollState {
    fn new(size: usize) -> Self {
        Self {
            buf: Vec::new(),
            slots: vec![None; size],
            count: 0,
            max_clock: f64::NEG_INFINITY,
            costs: Vec::new(),
            tag: 0,
        }
    }

    fn reset(&mut self, size: usize) {
        self.buf.clear();
        self.slots.clear();
        self.slots.resize(size, None);
        self.count = 0;
        self.max_clock = f64::NEG_INFINITY;
        self.costs.clear();
        self.tag = 0;
    }
}

/// Handle for a non-blocking allreduce started with
/// [`Comm::iallreduce_sum`]. The result data is already in the caller's
/// buffer; `wait` charges the communication time that was not yet paid,
/// overlapping whatever the rank computed in between.
#[must_use = "call wait() to complete the non-blocking allreduce"]
pub struct PendingReduce {
    complete_at: f64,
}

impl PendingReduce {
    /// Complete the operation: the clock advances to the collective's
    /// completion instant if it has not naturally passed it (i.e. the
    /// overlap hid some or all of the communication).
    pub fn wait(self, ctx: &mut RankCtx) {
        ctx.advance_to(self.complete_at, Phase::Comm);
    }

    /// The virtual completion instant (diagnostics).
    pub fn complete_at(&self) -> f64 {
        self.complete_at
    }
}

/// A point-to-point message in flight.
struct P2pMessage {
    src: usize,
    tag: i64,
    payload: Vec<f64>,
    /// Sender's virtual clock at send time.
    sent_at: f64,
}

pub(crate) struct CommInner {
    size: usize,
    barrier: Barrier,
    coll: Mutex<CollState>,
    /// Per-destination mailboxes for point-to-point messages.
    mailboxes: Vec<Mutex<Vec<P2pMessage>>>,
    mailbox_signal: parking_lot::Condvar,
    mailbox_gate: Mutex<()>,
    /// Registry of subcommunicators created by `split`, keyed by
    /// (generation, color).
    splits: Mutex<HashMap<(u64, i64), Arc<CommInner>>>,
    split_gen: AtomicU64,
    /// Registry of one-sided windows created on this communicator.
    pub(crate) windows: Mutex<HashMap<u64, Arc<crate::window::WindowInner>>>,
    pub(crate) window_seq: AtomicU64,
    /// Shared event sink (owned by the cluster, drained into the report).
    events: Arc<Mutex<Vec<CollectiveEvent>>>,
}

impl CommInner {
    pub(crate) fn new(size: usize, events: Arc<Mutex<Vec<CollectiveEvent>>>) -> Self {
        Self {
            size,
            barrier: Barrier::new(size),
            coll: Mutex::new(CollState::new(size)),
            mailboxes: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            mailbox_signal: parking_lot::Condvar::new(),
            mailbox_gate: Mutex::new(()),
            splits: Mutex::new(HashMap::new()),
            split_gen: AtomicU64::new(0),
            windows: Mutex::new(HashMap::new()),
            window_seq: AtomicU64::new(0),
            events,
        }
    }
}

/// A communicator handle held by one rank. Cloneable only through `split`
/// or the cluster entry point — each handle is bound to its rank.
pub struct Comm {
    pub(crate) inner: Arc<CommInner>,
    rank: usize,
    size: usize,
}

impl Comm {
    pub(crate) fn from_inner(inner: Arc<CommInner>, rank: usize) -> Self {
        let size = inner.size;
        Self { inner, rank, size }
    }

    /// This rank's id within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of executed ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The rank count collective costs are modeled at.
    pub fn modeled_size(&self, ctx: &RankCtx) -> usize {
        ((self.size as f64) * ctx.oversub).round().max(1.0) as usize
    }

    /// Record a collective event (leader only).
    fn push_event(&self, ev: CollectiveEvent) {
        self.inner.events.lock().push(ev);
    }

    /// Emit a [`TraceEvent::Collective`] through `ctx`'s telemetry handle
    /// (leader only; no-op when tracing is disabled or muted).
    #[allow(clippy::too_many_arguments)]
    fn trace_collective(
        &self,
        ctx: &RankCtx,
        op: &str,
        comm_size: usize,
        bytes: usize,
        t_start: f64,
        (t_min, t_max, t_mean): (f64, f64, f64),
    ) {
        if ctx.trace_muted() {
            return;
        }
        let modeled_size = self.modeled_size(ctx);
        ctx.telemetry().record_with(|| TraceEvent::Collective {
            op: op.to_string(),
            comm_size,
            modeled_size,
            bytes,
            t_start,
            t_end: t_start + t_max,
            t_min,
            t_max,
            t_mean,
        });
    }

    /// Core synchronisation: contribute `my_clock`, return the max entry
    /// clock over the communicator, and run `contribute` under the mutex on
    /// first arrival / every arrival as requested by the op.
    ///
    /// Implemented inline in each collective for clarity; this helper only
    /// handles the trivial single-rank case.
    fn single_rank(&self) -> bool {
        self.size == 1
    }

    /// Barrier, charged to `phase` (default communication).
    pub fn barrier(&self, ctx: &mut RankCtx) {
        self.barrier_phase(ctx, Phase::Comm);
    }

    /// Barrier with an explicit phase attribution (window fences charge
    /// distribution).
    pub fn barrier_phase(&self, ctx: &mut RankCtx, phase: Phase) {
        let base = ctx.model.barrier_time(self.modeled_size(ctx));
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            ctx.charge(phase, cost);
            return;
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.inner.barrier.wait();
        let sync_start = self.inner.coll.lock().max_clock;
        let leader = self.inner.barrier.wait().is_leader();
        if leader {
            self.inner.coll.lock().count = 0;
        }
        self.inner.barrier.wait();
        ctx.advance_to(sync_start + cost, phase);
    }

    /// Allreduce (elementwise sum) of `data` across the communicator. On
    /// return every rank holds the sum. Cost: recursive-doubling model at
    /// the modeled size; records a [`CollectiveEvent`] for Fig 5.
    pub fn allreduce_sum(&self, ctx: &mut RankCtx, data: &mut [f64]) {
        let bytes = data.len() * 8;
        let base = ctx.model.allreduce_time(self.modeled_size(ctx), bytes);
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            self.push_event(CollectiveEvent {
                op: "allreduce",
                comm_size: 1,
                modeled_size: self.modeled_size(ctx),
                bytes,
                t_min: cost,
                t_max: cost,
                t_mean: cost,
            });
            let t_start = ctx.clock;
            ctx.charge(Phase::Comm, cost);
            self.trace_collective(ctx, "allreduce", 1, bytes, t_start, (cost, cost, cost));
            return;
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
                st.costs.clear();
            }
            // Deposit per rank; the reduction is evaluated in rank order
            // at read-out so the floating-point sum is deterministic
            // regardless of thread arrival order.
            st.slots[self.rank] = Some(data.to_vec());
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.inner.barrier.wait();
        let sync_start;
        {
            let mut st = self.inner.coll.lock();
            for v in data.iter_mut() {
                *v = 0.0;
            }
            for slot in &st.slots {
                let payload = slot
                    .as_ref()
                    .expect("allreduce: missing rank contribution");
                assert_eq!(
                    payload.len(),
                    data.len(),
                    "allreduce: payload length differs across ranks"
                );
                for (d, x) in data.iter_mut().zip(payload) {
                    *d += x;
                }
            }
            sync_start = st.max_clock;
            st.costs.push(cost);
        }
        let leader = self.inner.barrier.wait().is_leader();
        if leader {
            let mut st = self.inner.coll.lock();
            let (mut t_min, mut t_max, mut t_sum) = (f64::INFINITY, 0.0_f64, 0.0);
            for &c in &st.costs {
                t_min = t_min.min(c);
                t_max = t_max.max(c);
                t_sum += c;
            }
            let n = st.costs.len().max(1) as f64;
            self.push_event(CollectiveEvent {
                op: "allreduce",
                comm_size: self.size,
                modeled_size: self.modeled_size(ctx),
                bytes,
                t_min,
                t_max,
                t_mean: t_sum / n,
            });
            self.trace_collective(
                ctx,
                "allreduce",
                self.size,
                bytes,
                sync_start,
                (t_min, t_max, t_sum / n),
            );
            let size = self.size;
            st.reset(size);
        }
        self.inner.barrier.wait();
        ctx.advance_to(sync_start + cost, Phase::Comm);
    }

    /// Broadcast `data` from `root` to all ranks.
    pub fn bcast(&self, ctx: &mut RankCtx, root: usize, data: &mut Vec<f64>) {
        assert!(root < self.size, "bcast: invalid root");
        let bytes = data.len() * 8;
        let base = ctx.model.bcast_time(self.modeled_size(ctx), bytes);
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            ctx.charge(Phase::Comm, cost);
            return;
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            if self.rank == root {
                st.slots[root] = Some(data.clone());
            }
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.inner.barrier.wait();
        let sync_start;
        {
            let st = self.inner.coll.lock();
            let payload = st.slots[root]
                .as_ref()
                .expect("bcast: root deposited no payload");
            data.clear();
            data.extend_from_slice(payload);
            sync_start = st.max_clock;
        }
        let leader = self.inner.barrier.wait().is_leader();
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            self.trace_collective(ctx, "bcast", self.size, bytes, sync_start, (cost, cost, cost));
        }
        self.inner.barrier.wait();
        ctx.advance_to(sync_start + cost, Phase::Comm);
    }

    /// Gather each rank's `data` to `root`; returns `Some(per-rank
    /// payloads)` on the root, `None` elsewhere.
    pub fn gather(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        data: &[f64],
    ) -> Option<Vec<Vec<f64>>> {
        assert!(root < self.size, "gather: invalid root");
        let bytes = data.len() * 8;
        let base = ctx.model.gather_time(self.modeled_size(ctx), bytes);
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            ctx.charge(Phase::Comm, cost);
            return Some(vec![data.to_vec()]);
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            st.slots[self.rank] = Some(data.to_vec());
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.inner.barrier.wait();
        let (result, sync_start) = {
            let st = self.inner.coll.lock();
            let res = if self.rank == root {
                Some(
                    st.slots
                        .iter()
                        .map(|s| s.clone().expect("gather: missing slot"))
                        .collect::<Vec<_>>(),
                )
            } else {
                None
            };
            (res, st.max_clock)
        };
        let leader = self.inner.barrier.wait().is_leader();
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            self.trace_collective(ctx, "gather", self.size, bytes, sync_start, (cost, cost, cost));
        }
        self.inner.barrier.wait();
        ctx.advance_to(sync_start + cost, Phase::Comm);
        result
    }

    /// Allgather: every rank receives every rank's payload.
    pub fn allgather(&self, ctx: &mut RankCtx, data: &[f64]) -> Vec<Vec<f64>> {
        let bytes = data.len() * 8;
        let p = self.modeled_size(ctx);
        // Ring allgather: (p-1) steps moving `bytes` each.
        let base = if p <= 1 {
            0.0
        } else {
            (p - 1) as f64 * (ctx.model.alpha + bytes as f64 * ctx.model.beta)
        };
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            ctx.charge(Phase::Comm, cost);
            return vec![data.to_vec()];
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            st.slots[self.rank] = Some(data.to_vec());
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.inner.barrier.wait();
        let (result, sync_start) = {
            let st = self.inner.coll.lock();
            let res: Vec<Vec<f64>> = st
                .slots
                .iter()
                .map(|s| s.clone().expect("allgather: missing slot"))
                .collect();
            (res, st.max_clock)
        };
        let leader = self.inner.barrier.wait().is_leader();
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            self.trace_collective(
                ctx,
                "allgather",
                self.size,
                bytes,
                sync_start,
                (cost, cost, cost),
            );
        }
        self.inner.barrier.wait();
        ctx.advance_to(sync_start + cost, Phase::Comm);
        result
    }

    /// Scatter: `root` provides one payload per rank; each rank receives
    /// its own.
    pub fn scatter(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        chunks: Option<Vec<Vec<f64>>>,
    ) -> Vec<f64> {
        assert!(root < self.size, "scatter: invalid root");
        if self.single_rank() {
            let mut chunks = chunks.expect("scatter: root must supply chunks");
            assert_eq!(chunks.len(), 1);
            let bytes = chunks[0].len() * 8;
            let cost =
                ctx.model.gather_time(self.modeled_size(ctx), bytes) * ctx.noise_factor();
            ctx.charge(Phase::Comm, cost);
            return chunks.swap_remove(0);
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            if self.rank == root {
                let chunks = chunks.expect("scatter: root must supply chunks");
                assert_eq!(chunks.len(), self.size, "scatter: need one chunk per rank");
                for (slot, chunk) in st.slots.iter_mut().zip(chunks) {
                    *slot = Some(chunk);
                }
            }
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.inner.barrier.wait();
        let (mine, sync_start, bytes) = {
            let st = self.inner.coll.lock();
            let mine = st.slots[self.rank]
                .clone()
                .expect("scatter: root deposited no chunk for this rank");
            (mine.clone(), st.max_clock, mine.len() * 8)
        };
        let cost = ctx.model.gather_time(self.modeled_size(ctx), bytes) * ctx.noise_factor();
        let leader = self.inner.barrier.wait().is_leader();
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            self.trace_collective(ctx, "scatter", self.size, bytes, sync_start, (cost, cost, cost));
        }
        self.inner.barrier.wait();
        ctx.advance_to(sync_start + cost, Phase::Comm);
        mine
    }

    /// Point-to-point send (`MPI_Send` analogue, eager/buffered): never
    /// blocks. The sender is charged the injection cost; delivery latency
    /// lands on the receiver.
    pub fn send(&self, ctx: &mut RankCtx, dest: usize, tag: i64, payload: &[f64]) {
        assert!(dest < self.size, "send: invalid destination");
        let bytes = payload.len() * 8;
        {
            let _gate = self.inner.mailbox_gate.lock();
            self.inner.mailboxes[dest].lock().push(P2pMessage {
                src: self.rank,
                tag,
                payload: payload.to_vec(),
                sent_at: ctx.clock,
            });
            self.inner.mailbox_signal.notify_all();
        }
        // Sender-side injection cost.
        ctx.charge(Phase::Comm, ctx.model.alpha + bytes as f64 * ctx.model.beta);
    }

    /// Point-to-point receive matching `(src, tag)`; `None` matches any
    /// source / any tag. Blocks (in real time) until a matching message
    /// arrives; the receiver's virtual clock advances to the message's
    /// arrival time (`sent_at + alpha + bytes*beta`). Returns
    /// `(source, payload)`.
    pub fn recv(
        &self,
        ctx: &mut RankCtx,
        src: Option<usize>,
        tag: Option<i64>,
    ) -> (usize, Vec<f64>) {
        let mut gate = self.inner.mailbox_gate.lock();
        loop {
            {
                let mut mb = self.inner.mailboxes[self.rank].lock();
                let pos = mb.iter().position(|m| {
                    src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag)
                });
                if let Some(i) = pos {
                    let msg = mb.remove(i);
                    drop(mb);
                    drop(gate);
                    let bytes = msg.payload.len() * 8;
                    let arrival =
                        msg.sent_at + ctx.model.alpha + bytes as f64 * ctx.model.beta;
                    ctx.advance_to(arrival, Phase::Comm);
                    return (msg.src, msg.payload);
                }
            }
            self.inner.mailbox_signal.wait(&mut gate);
        }
    }

    /// Begin a non-blocking allreduce (`MPI_Iallreduce` analogue) — the
    /// asynchronous-execution direction the paper names as future work
    /// (§IV-A4). The data exchange happens now (all ranks must call this
    /// collectively, like any collective), but the *cost* is deferred:
    /// the rank's clock does not advance until [`PendingReduce::wait`],
    /// so computation issued in between overlaps the transfer.
    pub fn iallreduce_sum(&self, ctx: &mut RankCtx, data: &mut [f64]) -> PendingReduce {
        // Reuse the blocking protocol, then roll the charge back into a
        // completion timestamp: capture the clock before, run the
        // exchange, and convert the elapsed virtual time into the pending
        // completion instant.
        let before_clock = ctx.clock;
        let before_comm = ctx.ledger.comm;
        // Mute tracing for the rolled-back inner run: its charges never
        // land on the ledger, so emitting them would break the
        // "sum(PhaseCharge) == ledger total" invariant. The deferred wait
        // charges (and traces) the cost that actually materialises.
        let was_muted = ctx.set_trace_mute(true);
        self.allreduce_sum(ctx, data);
        ctx.set_trace_mute(was_muted);
        let complete_at = ctx.clock;
        // Roll back: the caller keeps computing from `before_clock`.
        ctx.clock = before_clock;
        ctx.ledger.comm = before_comm;
        if self.rank == 0 {
            let bytes = data.len() * 8;
            self.trace_collective(
                ctx,
                "iallreduce",
                self.size,
                bytes,
                before_clock,
                (0.0, complete_at - before_clock, complete_at - before_clock),
            );
        }
        PendingReduce { complete_at }
    }

    /// Deposit a payload *by move* into this rank's collective slot and
    /// synchronise. Zero-copy registration used by window creation; the
    /// slots survive until [`Comm::take_slots`] drains them.
    pub(crate) fn deposit_slot(&self, ctx: &mut RankCtx, payload: Vec<f64>) {
        if self.single_rank() {
            self.inner.coll.lock().slots[0] = Some(payload);
            return;
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            st.slots[self.rank] = Some(payload);
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.inner.barrier.wait();
        let sync_start = self.inner.coll.lock().max_clock;
        let leader = self.inner.barrier.wait().is_leader();
        if leader {
            self.inner.coll.lock().count = 0;
        }
        self.inner.barrier.wait();
        ctx.advance_to(sync_start, Phase::Distribution);
    }

    /// Drain the deposited slots (window-creation leader only). Missing
    /// deposits yield empty buffers.
    pub(crate) fn take_slots(&self) -> Vec<Vec<f64>> {
        let mut st = self.inner.coll.lock();
        st.slots.iter_mut().map(|s| s.take().unwrap_or_default()).collect()
    }

    /// Split the communicator into disjoint subcommunicators by `color`;
    /// ranks sharing a color form a new communicator ordered by `key`
    /// (ties broken by parent rank). Mirrors `MPI_Comm_split`.
    pub fn split(&self, ctx: &mut RankCtx, color: i64, key: i64) -> Comm {
        if self.single_rank() {
            // Trivial: a fresh single-rank communicator.
            let inner = Arc::new(CommInner::new(1, self.inner.events.clone()));
            ctx.charge(Phase::Comm, ctx.model.barrier_time(self.modeled_size(ctx)));
            return Comm::from_inner(inner, 0);
        }
        // Phase 1: deposit (color, key) and agree on a generation tag.
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
                st.tag = self.inner.split_gen.fetch_add(1, Ordering::SeqCst);
            }
            st.slots[self.rank] = Some(vec![color as f64, key as f64]);
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.inner.barrier.wait();
        // Phase 2: everyone computes its group deterministically.
        let (generation, members, sync_start) = {
            let st = self.inner.coll.lock();
            let mut members: Vec<(i64, usize)> = Vec::new(); // (key, parent_rank)
            for (r, slot) in st.slots.iter().enumerate() {
                let payload = slot.as_ref().expect("split: missing deposit");
                let (c, k) = (payload[0] as i64, payload[1] as i64);
                if c == color {
                    members.push((k, r));
                }
            }
            members.sort();
            (st.tag, members, st.max_clock)
        };
        let my_pos = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split: self not in own group");
        // Group leader (first member) creates the inner.
        if my_pos == 0 {
            let inner = Arc::new(CommInner::new(members.len(), self.inner.events.clone()));
            self.inner
                .splits
                .lock()
                .insert((generation, color), inner);
        }
        self.inner.barrier.wait();
        let sub_inner = self
            .inner
            .splits
            .lock()
            .get(&(generation, color))
            .expect("split: group inner missing")
            .clone();
        let leader = self.inner.barrier.wait().is_leader();
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            // Old split registrations for this generation can be dropped
            // once all ranks fetched them; keep the map tidy.
            self.inner
                .splits
                .lock()
                .retain(|&(g, _), _| g == generation);
        }
        self.inner.barrier.wait();
        // Cost: an allgather of 16 bytes + subgroup setup barrier.
        let cost = ctx.model.gather_time(self.modeled_size(ctx), 16) * ctx.noise_factor();
        ctx.advance_to(sync_start + cost, Phase::Comm);
        Comm::from_inner(sub_inner, my_pos)
    }
}

#[cfg(test)]
mod tests {
    // Collective behaviour is exercised end-to-end via `cluster::tests`,
    // which owns thread spawning.
}
