//! Communicators, rank contexts, and collective operations.
//!
//! A [`Comm`] is the analogue of an `MPI_Comm`: a group of ranks with
//! collective operations (`barrier`, `bcast`, `allreduce_sum`, `gather`,
//! `allgather`, `scatter`) and [`Comm::split`] for building the nested
//! `P_B x P_lambda x ADMM_cores` decomposition of paper §III.
//!
//! Real data genuinely moves between the rank threads (so statistical
//! results are exact); *time* is virtual: each operation synchronises the
//! participants' virtual clocks and charges the machine-model cost evaluated
//! at the **modeled** communicator size, which may exceed the executed one
//! (see [`crate::cluster::Cluster`]).
//!
//! All collectives follow a three-barrier protocol: (1) contribute under the
//! state mutex, barrier; (2) consume the combined result, barrier; (3) the
//! barrier leader resets shared state, barrier. SPMD discipline applies: all
//! ranks of a communicator must call the same collectives in the same order.

use crate::fault::{AbortState, FtBarrier, MpiError, RankFaults, WAIT_SLICE};
use crate::ledger::{CollectiveEvent, Phase, PhaseLedger};
use crate::model::{MachineModel, SplitMix64};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uoi_telemetry::{Telemetry, TraceEvent};

/// Outcome of consulting the fault plan for one window operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WindowFault {
    None,
    /// The transfer silently does not happen.
    Drop,
    /// The transfer lands with a deterministic bit flip.
    Corrupt,
}

/// Per-rank execution context: identity, virtual clock, phase ledger, and
/// noise stream. Exactly one exists per executed rank; it is threaded
/// through every simulated operation.
pub struct RankCtx {
    world_rank: usize,
    world_size: usize,
    clock: f64,
    ledger: PhaseLedger,
    model: Arc<MachineModel>,
    /// modeled ranks / executed ranks (>= 1).
    oversub: f64,
    noise: SplitMix64,
    telemetry: Telemetry,
    /// Open span ids, innermost last.
    span_stack: Vec<u64>,
    /// Open span *names*, innermost last — tracked even with tracing
    /// disabled so a rank failure can report where it died.
    span_names: Vec<String>,
    /// Suppress trace emission (used while re-running a collective whose
    /// charge is rolled back, e.g. `iallreduce_sum`).
    trace_mute: bool,
    /// Injected faults for this rank (healthy by default).
    faults: RankFaults,
    /// Watchdog timeout applied to blocking waits.
    watchdog: Duration,
    /// Fault-eligible collective ops executed so far (crash schedule).
    coll_step: u64,
    /// One-sided window ops executed so far (drop/corrupt schedule).
    window_op: u64,
    /// Remaining injected transient I/O failures.
    io_faults_left: u64,
    /// Cluster-wide abort state, installed by the cluster runner so
    /// injected hangs can mark themselves suspect and wait for the
    /// watchdog verdict instead of dying immediately.
    abort: Option<Arc<AbortState>>,
}

impl RankCtx {
    pub(crate) fn new(
        world_rank: usize,
        world_size: usize,
        model: Arc<MachineModel>,
        oversub: f64,
        telemetry: Telemetry,
        faults: RankFaults,
        watchdog: Duration,
    ) -> Self {
        let seed = model
            .noise
            .seed
            .wrapping_add((world_rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let io_faults_left = faults.transient_io_failures;
        Self {
            world_rank,
            world_size,
            clock: 0.0,
            ledger: PhaseLedger::default(),
            model,
            oversub,
            noise: SplitMix64::new(seed),
            telemetry,
            span_stack: Vec::new(),
            span_names: Vec::new(),
            trace_mute: false,
            faults,
            watchdog,
            coll_step: 0,
            window_op: 0,
            io_faults_left,
            abort: None,
        }
    }

    /// Install the cluster-wide abort handle (cluster runner only).
    pub(crate) fn set_abort(&mut self, abort: Arc<AbortState>) {
        self.abort = Some(abort);
    }

    /// This rank's id in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Number of executed ranks in the world.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Current virtual time (seconds).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Phase accounting so far.
    pub fn ledger(&self) -> PhaseLedger {
        self.ledger
    }

    /// The machine model in force.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Oversubscription factor (modeled ranks / executed ranks).
    pub fn oversub(&self) -> f64 {
        self.oversub
    }

    /// The telemetry handle this rank records through (disabled unless
    /// the cluster was built with
    /// [`crate::cluster::Cluster::with_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Advance the clock by `seconds`, attributing them to `phase`.
    pub fn charge(&mut self, phase: Phase, seconds: f64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        self.clock += seconds;
        self.ledger.charge(phase, seconds);
        if !self.trace_mute {
            let (rank, clock) = (self.world_rank, self.clock);
            self.telemetry.record_with(|| TraceEvent::PhaseCharge {
                rank,
                phase: phase.label(),
                seconds,
                t: clock,
            });
        }
    }

    /// Open a named span (e.g. `"selection"`). Nested calls nest; close
    /// with [`RankCtx::span_exit`] in LIFO order. Returns 0 (no-op) when
    /// tracing is disabled.
    pub fn span_enter(&mut self, name: &str) -> u64 {
        self.span_names.push(name.to_string());
        let id = self.telemetry.next_span_id();
        if id != 0 {
            let parent = self.span_stack.last().copied();
            self.telemetry.record(TraceEvent::SpanStart {
                id,
                parent,
                name: name.to_string(),
                rank: self.world_rank,
                t: self.clock,
            });
            self.span_stack.push(id);
        }
        id
    }

    /// Close the span returned by [`RankCtx::span_enter`].
    pub fn span_exit(&mut self, id: u64) {
        self.span_names.pop();
        if id == 0 {
            return;
        }
        debug_assert_eq!(self.span_stack.last(), Some(&id), "spans must close LIFO");
        self.span_stack.retain(|&s| s != id);
        self.telemetry.record(TraceEvent::SpanEnd {
            id,
            rank: self.world_rank,
            t: self.clock,
        });
    }

    /// Run `f` inside a named span.
    pub fn span<R>(&mut self, name: &str, f: impl FnOnce(&mut RankCtx) -> R) -> R {
        let id = self.span_enter(name);
        let out = f(self);
        self.span_exit(id);
        out
    }

    /// Charge a dense computation of `flops` with the given working set.
    /// An injected straggler factor scales local work.
    pub fn compute_flops(&mut self, flops: f64, working_set_bytes: f64) {
        let t = self.model.compute_time(flops, working_set_bytes) * self.faults.straggle_factor;
        self.charge(Phase::Compute, t);
    }

    /// Charge a memory-bandwidth-bound sweep of `bytes`.
    pub fn compute_membound(&mut self, bytes: f64) {
        let t = self.model.membound_time(bytes) * self.faults.straggle_factor;
        self.charge(Phase::Compute, t);
    }

    /// Charge file-I/O seconds (straggler-scaled).
    pub fn charge_io(&mut self, seconds: f64) {
        let seconds = seconds * self.faults.straggle_factor;
        self.charge(Phase::DataIo, seconds);
        if !self.trace_mute {
            let (rank, clock) = (self.world_rank, self.clock);
            self.telemetry.record_with(|| TraceEvent::Io {
                rank,
                seconds,
                t: clock,
            });
        }
    }

    /// The watchdog timeout blocking waits honour.
    pub fn watchdog(&self) -> Duration {
        self.watchdog
    }

    /// This rank's injected straggle factor (1.0 = healthy). Speculation
    /// uses it to convert a nominal task cost into the duration the rank
    /// actually experiences without charging the clock.
    pub fn straggle_factor(&self) -> f64 {
        self.faults.straggle_factor
    }

    /// The cluster-wide abort state, when running under a cluster
    /// (failure-aware waits outside the collectives poll it).
    pub(crate) fn abort_state(&self) -> Option<&Arc<AbortState>> {
        self.abort.as_ref()
    }

    /// Open span names at this instant, outermost first (failure
    /// reporting; empty unless the rank is inside `span`/`span_enter`).
    pub fn span_names(&self) -> &[String] {
        &self.span_names
    }

    /// Record a fault event through telemetry: a `TraceEvent::Fault`
    /// plus a `fault.<kind>` counter.
    pub fn record_fault(&mut self, kind: &str, detail: String) {
        self.telemetry.incr(&format!("fault.{kind}"), 1);
        if !self.trace_mute {
            let (rank, t) = (self.world_rank, self.clock);
            let kind = kind.to_string();
            self.telemetry.record_with(|| TraceEvent::Fault {
                rank,
                kind,
                detail,
                t,
            });
        }
    }

    /// Record this rank's view of a collective it is completing:
    /// `wait` is the idle time spent blocked until the last participant
    /// arrived (`sync_start - clock`, clamped at zero — the straggler
    /// itself waits 0), `cost` the modeled transfer paid after the sync.
    /// Emitted immediately before the clock jumps to
    /// `sync_start + cost`, so the Comm charge at the collective equals
    /// `wait + cost` exactly and profilers can split communication into
    /// load-imbalance idle vs. genuine transfer.
    pub(crate) fn trace_collective_wait(&mut self, op: &'static str, sync_start: f64, cost: f64) {
        if self.trace_mute {
            return;
        }
        let wait = (sync_start - self.clock).max(0.0);
        let (rank, t) = (self.world_rank, self.clock);
        self.telemetry.record_with(|| TraceEvent::CollectiveWait {
            rank,
            op: op.to_string(),
            wait,
            cost,
            t,
        });
    }

    /// Count one fault-eligible collective op; panics with an injected
    /// crash if the fault plan scheduled one at this step. Called at the
    /// entry of every collective so a crashed rank never contributes,
    /// exactly like a process that died before `MPI_Allreduce`.
    pub(crate) fn collective_step(&mut self, phase: &'static str) {
        let step = self.coll_step;
        self.coll_step += 1;
        if self.faults.crash_at_step == Some(step) {
            self.record_fault("rank_crash", format!("phase={phase} step={step}"));
            std::panic::panic_any(format!(
                "fault injection: rank {} crash at collective step {step} ({phase})",
                self.world_rank
            ));
        }
        if self.faults.hang_at_step == Some(step) {
            self.record_fault("rank_hang", format!("phase={phase} step={step}"));
            // A hung rank stops participating without dying: it declares
            // itself suspect, waits for the cluster to notice (peers'
            // watchdogs expire and raise the abort flag), then unwinds as
            // a victim — RankFailed naming itself — so the recovery
            // driver can exclude it without it ever being a root cause.
            if let Some(abort) = self.abort.clone() {
                abort.mark_suspect(self.world_rank);
                let start = Instant::now();
                let limit = self.watchdog.saturating_mul(2);
                while !abort.is_aborted() && !abort.is_revoked() && start.elapsed() < limit {
                    std::thread::sleep(WAIT_SLICE);
                }
            }
            std::panic::panic_any(MpiError::RankFailed {
                rank: self.world_rank,
                phase,
            });
        }
    }

    /// Count one one-sided window op and report the injected outcome.
    pub(crate) fn window_fault(&mut self) -> WindowFault {
        let op = self.window_op;
        self.window_op += 1;
        if self.faults.window_drop_ops.contains(&op) {
            self.record_fault("window_drop", format!("op={op}"));
            WindowFault::Drop
        } else if self.faults.window_corrupt_ops.contains(&op) {
            self.record_fault("window_corrupt", format!("op={op}"));
            WindowFault::Corrupt
        } else {
            WindowFault::None
        }
    }

    /// Consume one injected transient I/O failure if any remain.
    /// Tiered-I/O readers call this before each physical read attempt.
    pub fn take_io_fault(&mut self) -> bool {
        if self.io_faults_left > 0 {
            self.io_faults_left -= 1;
            self.record_fault("io_transient", format!("remaining={}", self.io_faults_left));
            true
        } else {
            false
        }
    }

    /// Jump the clock forward to absolute time `t` (no-op if already past),
    /// attributing the wait to `phase`.
    pub(crate) fn advance_to(&mut self, t: f64, phase: Phase) {
        if t > self.clock {
            let dt = t - self.clock;
            self.charge(phase, dt);
        }
    }

    pub(crate) fn set_trace_mute(&mut self, mute: bool) -> bool {
        std::mem::replace(&mut self.trace_mute, mute)
    }

    pub(crate) fn trace_muted(&self) -> bool {
        self.trace_mute
    }

    /// Draw a multiplicative noise factor for a collective cost.
    pub(crate) fn noise_factor(&mut self) -> f64 {
        let sigma = self.model.noise.sigma;
        self.noise.lognormal_factor(sigma)
    }

    pub(crate) fn into_parts(self) -> (PhaseLedger, f64) {
        (self.ledger, self.clock)
    }
}

/// Shared collective scratch state of one communicator.
struct CollState {
    /// Elementwise-summed reduction buffer.
    buf: Vec<f64>,
    /// Per-rank deposit slots (bcast/gather/scatter/split payloads).
    slots: Vec<Option<Vec<f64>>>,
    /// Ranks that have contributed to the current collective.
    count: usize,
    /// Max entry clock over contributors (collective start time).
    max_clock: f64,
    /// Per-rank modeled costs, for min/max event stats.
    costs: Vec<f64>,
    /// Collective-scoped tag (window ids, split generation).
    tag: u64,
}

impl CollState {
    fn new(size: usize) -> Self {
        Self {
            buf: Vec::new(),
            slots: vec![None; size],
            count: 0,
            max_clock: f64::NEG_INFINITY,
            costs: Vec::new(),
            tag: 0,
        }
    }

    fn reset(&mut self, size: usize) {
        self.buf.clear();
        self.slots.clear();
        self.slots.resize(size, None);
        self.count = 0;
        self.max_clock = f64::NEG_INFINITY;
        self.costs.clear();
        self.tag = 0;
    }
}

/// Handle for a non-blocking allreduce started with
/// [`Comm::iallreduce_sum`]. The result data is already in the caller's
/// buffer; `wait` charges the communication time that was not yet paid,
/// overlapping whatever the rank computed in between.
#[must_use = "call wait() to complete the non-blocking allreduce"]
pub struct PendingReduce {
    complete_at: f64,
}

impl PendingReduce {
    /// Complete the operation: the clock advances to the collective's
    /// completion instant if it has not naturally passed it (i.e. the
    /// overlap hid some or all of the communication).
    pub fn wait(self, ctx: &mut RankCtx) {
        ctx.advance_to(self.complete_at, Phase::Comm);
    }

    /// The virtual completion instant (diagnostics).
    pub fn complete_at(&self) -> f64 {
        self.complete_at
    }
}

/// A point-to-point message in flight.
struct P2pMessage {
    src: usize,
    tag: i64,
    payload: Vec<f64>,
    /// Sender's virtual clock at send time.
    sent_at: f64,
}

/// Scratch state for the failure-agreement collective
/// (`MPI_Comm_agree` analogue). Deliberately separate from [`CollState`]:
/// agreement must make progress on a communicator whose ordinary
/// collective state is poisoned by an abort.
#[derive(Default)]
struct AgreeState {
    /// Per-depositor local views of the failed-rank set.
    views: HashMap<usize, Vec<usize>>,
    /// The frozen agreed set, once some survivor observed every rank
    /// accounted for (deposited, failed, or suspect).
    result: Option<Vec<usize>>,
    /// Survivors that have read the result (last one resets the state).
    fetched: BTreeSet<usize>,
}

/// Scratch state for the shrink collective (`MPI_Comm_shrink` analogue).
#[derive(Default)]
struct ShrinkState {
    /// The replacement communicator plus the survivor list it was built
    /// for, created by the survivor leader.
    ready: Option<(Arc<CommInner>, Vec<usize>)>,
    /// Survivors that have fetched it (last one resets the state).
    fetched: BTreeSet<usize>,
}

pub(crate) struct CommInner {
    size: usize,
    barrier: FtBarrier,
    /// Cluster-wide failure flag, shared by the world communicator and
    /// every split derived from it.
    pub(crate) abort: Arc<AbortState>,
    coll: Mutex<CollState>,
    /// Failure-agreement scratch (usable after an abort).
    agree: Mutex<AgreeState>,
    /// Shrink scratch (usable after an abort).
    shrink: Mutex<ShrinkState>,
    /// Per-destination mailboxes for point-to-point messages.
    mailboxes: Vec<Mutex<Vec<P2pMessage>>>,
    mailbox_signal: parking_lot::Condvar,
    mailbox_gate: Mutex<()>,
    /// Registry of subcommunicators created by `split`, keyed by
    /// (generation, color).
    splits: Mutex<HashMap<(u64, i64), Arc<CommInner>>>,
    split_gen: AtomicU64,
    /// Registry of one-sided windows created on this communicator.
    pub(crate) windows: Mutex<HashMap<u64, Arc<crate::window::WindowInner>>>,
    pub(crate) window_seq: AtomicU64,
    /// Shared event sink (owned by the cluster, drained into the report).
    events: Arc<Mutex<Vec<CollectiveEvent>>>,
}

impl CommInner {
    pub(crate) fn new(
        size: usize,
        events: Arc<Mutex<Vec<CollectiveEvent>>>,
        abort: Arc<AbortState>,
    ) -> Self {
        Self {
            size,
            barrier: FtBarrier::new(size),
            abort,
            coll: Mutex::new(CollState::new(size)),
            agree: Mutex::new(AgreeState::default()),
            shrink: Mutex::new(ShrinkState::default()),
            mailboxes: (0..size).map(|_| Mutex::new(Vec::new())).collect(),
            mailbox_signal: parking_lot::Condvar::new(),
            mailbox_gate: Mutex::new(()),
            splits: Mutex::new(HashMap::new()),
            split_gen: AtomicU64::new(0),
            windows: Mutex::new(HashMap::new()),
            window_seq: AtomicU64::new(0),
            events,
        }
    }

    /// Discard all undelivered point-to-point messages (abort cleanup:
    /// a failed run must not leak payloads into a later inspection).
    pub(crate) fn drain_mailboxes(&self) -> usize {
        let mut drained = 0;
        for mb in &self.mailboxes {
            drained += std::mem::take(&mut *mb.lock()).len();
        }
        drained
    }
}

/// A communicator handle held by one rank. Cloneable only through `split`
/// or the cluster entry point — each handle is bound to its rank.
pub struct Comm {
    pub(crate) inner: Arc<CommInner>,
    rank: usize,
    size: usize,
}

impl Comm {
    pub(crate) fn from_inner(inner: Arc<CommInner>, rank: usize) -> Self {
        let size = inner.size;
        Self { inner, rank, size }
    }

    /// This rank's id within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of executed ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The rank count collective costs are modeled at.
    pub fn modeled_size(&self, ctx: &RankCtx) -> usize {
        ((self.size as f64) * ctx.oversub).round().max(1.0) as usize
    }

    /// Record a collective event (leader only).
    fn push_event(&self, ev: CollectiveEvent) {
        self.inner.events.lock().push(ev);
    }

    /// Emit a [`TraceEvent::Collective`] through `ctx`'s telemetry handle
    /// (leader only; no-op when tracing is disabled or muted).
    #[allow(clippy::too_many_arguments)]
    fn trace_collective(
        &self,
        ctx: &RankCtx,
        op: &str,
        comm_size: usize,
        bytes: usize,
        t_start: f64,
        (t_min, t_max, t_mean): (f64, f64, f64),
    ) {
        if ctx.trace_muted() {
            return;
        }
        let modeled_size = self.modeled_size(ctx);
        ctx.telemetry().record_with(|| TraceEvent::Collective {
            op: op.to_string(),
            comm_size,
            modeled_size,
            bytes,
            t_start,
            t_end: t_start + t_max,
            t_min,
            t_max,
            t_mean,
        });
    }

    /// Core synchronisation: contribute `my_clock`, return the max entry
    /// clock over the communicator, and run `contribute` under the mutex on
    /// first arrival / every arrival as requested by the op.
    ///
    /// Implemented inline in each collective for clarity; this helper only
    /// handles the trivial single-rank case.
    fn single_rank(&self) -> bool {
        self.size == 1
    }

    /// Failure-aware barrier wait: `Ok(is_leader)`, or `Err` when a peer
    /// died or the watchdog expired.
    fn bwait(&self, ctx: &RankCtx, op: &'static str) -> Result<bool, MpiError> {
        self.inner
            .barrier
            .wait(&self.inner.abort, ctx.watchdog(), op)
    }

    /// Escalate an [`MpiError`] on the infallible legacy API: unwind
    /// this rank with the error as payload. The cluster's panic capture
    /// downcasts it back into the failure report; the process is never
    /// aborted.
    fn escalate(err: MpiError) -> ! {
        std::panic::panic_any(err)
    }

    /// Barrier, charged to `phase` (default communication).
    pub fn barrier(&self, ctx: &mut RankCtx) {
        self.barrier_phase(ctx, Phase::Comm);
    }

    /// Fallible barrier ([`Comm::barrier`] semantics).
    pub fn try_barrier(&self, ctx: &mut RankCtx) -> Result<(), MpiError> {
        self.try_barrier_phase(ctx, Phase::Comm)
    }

    /// Barrier with an explicit phase attribution (window fences charge
    /// distribution).
    pub fn barrier_phase(&self, ctx: &mut RankCtx, phase: Phase) {
        if let Err(e) = self.try_barrier_phase(ctx, phase) {
            Self::escalate(e)
        }
    }

    /// Fallible barrier with explicit phase attribution.
    pub fn try_barrier_phase(&self, ctx: &mut RankCtx, phase: Phase) -> Result<(), MpiError> {
        ctx.collective_step("barrier");
        let base = ctx.model.barrier_time(self.modeled_size(ctx));
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            ctx.charge(phase, cost);
            return Ok(());
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.bwait(ctx, "barrier")?;
        let sync_start = self.inner.coll.lock().max_clock;
        let leader = self.bwait(ctx, "barrier")?;
        if leader {
            self.inner.coll.lock().count = 0;
        }
        self.bwait(ctx, "barrier")?;
        ctx.trace_collective_wait("barrier", sync_start, cost);
        ctx.advance_to(sync_start + cost, phase);
        Ok(())
    }

    /// Allreduce (elementwise sum) of `data` across the communicator. On
    /// return every rank holds the sum. Cost: recursive-doubling model at
    /// the modeled size; records a [`CollectiveEvent`] for Fig 5.
    pub fn allreduce_sum(&self, ctx: &mut RankCtx, data: &mut [f64]) {
        if let Err(e) = self.try_allreduce_sum(ctx, data) {
            Self::escalate(e)
        }
    }

    /// Fallible allreduce: a dead peer or watchdog expiry surfaces as an
    /// [`MpiError`] on every surviving rank instead of a deadlock.
    pub fn try_allreduce_sum(&self, ctx: &mut RankCtx, data: &mut [f64]) -> Result<(), MpiError> {
        ctx.collective_step("allreduce");
        let bytes = data.len() * 8;
        let base = ctx.model.allreduce_time(self.modeled_size(ctx), bytes);
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            self.push_event(CollectiveEvent {
                op: "allreduce",
                comm_size: 1,
                modeled_size: self.modeled_size(ctx),
                bytes,
                t_min: cost,
                t_max: cost,
                t_mean: cost,
            });
            let t_start = ctx.clock;
            ctx.charge(Phase::Comm, cost);
            self.trace_collective(ctx, "allreduce", 1, bytes, t_start, (cost, cost, cost));
            return Ok(());
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
                st.costs.clear();
            }
            // Deposit per rank; the reduction is evaluated in rank order
            // at read-out so the floating-point sum is deterministic
            // regardless of thread arrival order.
            st.slots[self.rank] = Some(data.to_vec());
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.bwait(ctx, "allreduce")?;
        let sync_start;
        {
            let mut st = self.inner.coll.lock();
            for v in data.iter_mut() {
                *v = 0.0;
            }
            for slot in &st.slots {
                let payload = slot.as_ref().expect("allreduce: missing rank contribution");
                assert_eq!(
                    payload.len(),
                    data.len(),
                    "allreduce: payload length differs across ranks"
                );
                for (d, x) in data.iter_mut().zip(payload) {
                    *d += x;
                }
            }
            sync_start = st.max_clock;
            st.costs.push(cost);
        }
        let leader = self.bwait(ctx, "allreduce")?;
        if leader {
            let mut st = self.inner.coll.lock();
            let (mut t_min, mut t_max, mut t_sum) = (f64::INFINITY, 0.0_f64, 0.0);
            for &c in &st.costs {
                t_min = t_min.min(c);
                t_max = t_max.max(c);
                t_sum += c;
            }
            let n = st.costs.len().max(1) as f64;
            self.push_event(CollectiveEvent {
                op: "allreduce",
                comm_size: self.size,
                modeled_size: self.modeled_size(ctx),
                bytes,
                t_min,
                t_max,
                t_mean: t_sum / n,
            });
            self.trace_collective(
                ctx,
                "allreduce",
                self.size,
                bytes,
                sync_start,
                (t_min, t_max, t_sum / n),
            );
            let size = self.size;
            st.reset(size);
        }
        self.bwait(ctx, "allreduce")?;
        ctx.trace_collective_wait("allreduce", sync_start, cost);
        ctx.advance_to(sync_start + cost, Phase::Comm);
        Ok(())
    }

    /// Broadcast `data` from `root` to all ranks.
    pub fn bcast(&self, ctx: &mut RankCtx, root: usize, data: &mut Vec<f64>) {
        if let Err(e) = self.try_bcast(ctx, root, data) {
            Self::escalate(e)
        }
    }

    /// Fallible broadcast ([`Comm::bcast`] semantics).
    pub fn try_bcast(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        data: &mut Vec<f64>,
    ) -> Result<(), MpiError> {
        assert!(root < self.size, "bcast: invalid root");
        ctx.collective_step("bcast");
        let bytes = data.len() * 8;
        let base = ctx.model.bcast_time(self.modeled_size(ctx), bytes);
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            ctx.charge(Phase::Comm, cost);
            return Ok(());
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            if self.rank == root {
                st.slots[root] = Some(data.clone());
            }
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.bwait(ctx, "bcast")?;
        let sync_start;
        {
            let st = self.inner.coll.lock();
            let payload = st.slots[root]
                .as_ref()
                .expect("bcast: root deposited no payload");
            data.clear();
            data.extend_from_slice(payload);
            sync_start = st.max_clock;
        }
        let leader = self.bwait(ctx, "bcast")?;
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            self.trace_collective(
                ctx,
                "bcast",
                self.size,
                bytes,
                sync_start,
                (cost, cost, cost),
            );
        }
        self.bwait(ctx, "bcast")?;
        ctx.trace_collective_wait("bcast", sync_start, cost);
        ctx.advance_to(sync_start + cost, Phase::Comm);
        Ok(())
    }

    /// Gather each rank's `data` to `root`; returns `Some(per-rank
    /// payloads)` on the root, `None` elsewhere.
    pub fn gather(&self, ctx: &mut RankCtx, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        match self.try_gather(ctx, root, data) {
            Ok(res) => res,
            Err(e) => Self::escalate(e),
        }
    }

    /// Fallible gather ([`Comm::gather`] semantics).
    pub fn try_gather(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        data: &[f64],
    ) -> Result<Option<Vec<Vec<f64>>>, MpiError> {
        assert!(root < self.size, "gather: invalid root");
        ctx.collective_step("gather");
        let bytes = data.len() * 8;
        let base = ctx.model.gather_time(self.modeled_size(ctx), bytes);
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            ctx.charge(Phase::Comm, cost);
            return Ok(Some(vec![data.to_vec()]));
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            st.slots[self.rank] = Some(data.to_vec());
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.bwait(ctx, "gather")?;
        let (result, sync_start) = {
            let st = self.inner.coll.lock();
            let res = if self.rank == root {
                Some(
                    st.slots
                        .iter()
                        .map(|s| s.clone().expect("gather: missing slot"))
                        .collect::<Vec<_>>(),
                )
            } else {
                None
            };
            (res, st.max_clock)
        };
        let leader = self.bwait(ctx, "gather")?;
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            self.trace_collective(
                ctx,
                "gather",
                self.size,
                bytes,
                sync_start,
                (cost, cost, cost),
            );
        }
        self.bwait(ctx, "gather")?;
        ctx.trace_collective_wait("gather", sync_start, cost);
        ctx.advance_to(sync_start + cost, Phase::Comm);
        Ok(result)
    }

    /// Allgather: every rank receives every rank's payload.
    pub fn allgather(&self, ctx: &mut RankCtx, data: &[f64]) -> Vec<Vec<f64>> {
        match self.try_allgather(ctx, data) {
            Ok(res) => res,
            Err(e) => Self::escalate(e),
        }
    }

    /// Fallible allgather ([`Comm::allgather`] semantics).
    pub fn try_allgather(
        &self,
        ctx: &mut RankCtx,
        data: &[f64],
    ) -> Result<Vec<Vec<f64>>, MpiError> {
        ctx.collective_step("allgather");
        let bytes = data.len() * 8;
        let p = self.modeled_size(ctx);
        // Ring allgather: (p-1) steps moving `bytes` each.
        let base = if p <= 1 {
            0.0
        } else {
            (p - 1) as f64 * (ctx.model.alpha + bytes as f64 * ctx.model.beta)
        };
        let cost = base * ctx.noise_factor();
        if self.single_rank() {
            ctx.charge(Phase::Comm, cost);
            return Ok(vec![data.to_vec()]);
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            st.slots[self.rank] = Some(data.to_vec());
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.bwait(ctx, "allgather")?;
        let (result, sync_start) = {
            let st = self.inner.coll.lock();
            let res: Vec<Vec<f64>> = st
                .slots
                .iter()
                .map(|s| s.clone().expect("allgather: missing slot"))
                .collect();
            (res, st.max_clock)
        };
        let leader = self.bwait(ctx, "allgather")?;
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            self.trace_collective(
                ctx,
                "allgather",
                self.size,
                bytes,
                sync_start,
                (cost, cost, cost),
            );
        }
        self.bwait(ctx, "allgather")?;
        ctx.trace_collective_wait("allgather", sync_start, cost);
        ctx.advance_to(sync_start + cost, Phase::Comm);
        Ok(result)
    }

    /// Scatter: `root` provides one payload per rank; each rank receives
    /// its own.
    pub fn scatter(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        chunks: Option<Vec<Vec<f64>>>,
    ) -> Vec<f64> {
        match self.try_scatter(ctx, root, chunks) {
            Ok(res) => res,
            Err(e) => Self::escalate(e),
        }
    }

    /// Fallible scatter ([`Comm::scatter`] semantics).
    pub fn try_scatter(
        &self,
        ctx: &mut RankCtx,
        root: usize,
        chunks: Option<Vec<Vec<f64>>>,
    ) -> Result<Vec<f64>, MpiError> {
        assert!(root < self.size, "scatter: invalid root");
        ctx.collective_step("scatter");
        if self.single_rank() {
            let mut chunks = chunks.expect("scatter: root must supply chunks");
            assert_eq!(chunks.len(), 1);
            let bytes = chunks[0].len() * 8;
            let cost = ctx.model.gather_time(self.modeled_size(ctx), bytes) * ctx.noise_factor();
            ctx.charge(Phase::Comm, cost);
            return Ok(chunks.swap_remove(0));
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            if self.rank == root {
                let chunks = chunks.expect("scatter: root must supply chunks");
                assert_eq!(chunks.len(), self.size, "scatter: need one chunk per rank");
                for (slot, chunk) in st.slots.iter_mut().zip(chunks) {
                    *slot = Some(chunk);
                }
            }
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.bwait(ctx, "scatter")?;
        let (mine, sync_start, bytes) = {
            let st = self.inner.coll.lock();
            let mine = st.slots[self.rank]
                .clone()
                .expect("scatter: root deposited no chunk for this rank");
            (mine.clone(), st.max_clock, mine.len() * 8)
        };
        let cost = ctx.model.gather_time(self.modeled_size(ctx), bytes) * ctx.noise_factor();
        let leader = self.bwait(ctx, "scatter")?;
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            self.trace_collective(
                ctx,
                "scatter",
                self.size,
                bytes,
                sync_start,
                (cost, cost, cost),
            );
        }
        self.bwait(ctx, "scatter")?;
        ctx.trace_collective_wait("scatter", sync_start, cost);
        ctx.advance_to(sync_start + cost, Phase::Comm);
        Ok(mine)
    }

    /// Point-to-point send (`MPI_Send` analogue, eager/buffered): never
    /// blocks. The sender is charged the injection cost; delivery latency
    /// lands on the receiver.
    pub fn send(&self, ctx: &mut RankCtx, dest: usize, tag: i64, payload: &[f64]) {
        assert!(dest < self.size, "send: invalid destination");
        let bytes = payload.len() * 8;
        {
            let _gate = self.inner.mailbox_gate.lock();
            self.inner.mailboxes[dest].lock().push(P2pMessage {
                src: self.rank,
                tag,
                payload: payload.to_vec(),
                sent_at: ctx.clock,
            });
            self.inner.mailbox_signal.notify_all();
        }
        // Sender-side injection cost.
        ctx.charge(Phase::Comm, ctx.model.alpha + bytes as f64 * ctx.model.beta);
    }

    /// Point-to-point receive matching `(src, tag)`; `None` matches any
    /// source / any tag. Blocks (in real time) until a matching message
    /// arrives; the receiver's virtual clock advances to the message's
    /// arrival time (`sent_at + alpha + bytes*beta`). Returns
    /// `(source, payload)`.
    pub fn recv(
        &self,
        ctx: &mut RankCtx,
        src: Option<usize>,
        tag: Option<i64>,
    ) -> (usize, Vec<f64>) {
        match self.try_recv(ctx, src, tag) {
            Ok(res) => res,
            Err(e) => Self::escalate(e),
        }
    }

    /// Fallible receive: blocks until a matching message arrives, a peer
    /// fails ([`MpiError::RankFailed`]), or the watchdog expires
    /// ([`MpiError::WatchdogTimeout`]) — a dead sender can no longer
    /// park the receiver forever.
    pub fn try_recv(
        &self,
        ctx: &mut RankCtx,
        src: Option<usize>,
        tag: Option<i64>,
    ) -> Result<(usize, Vec<f64>), MpiError> {
        let start = std::time::Instant::now();
        let mut gate = self.inner.mailbox_gate.lock();
        loop {
            {
                let mut mb = self.inner.mailboxes[self.rank].lock();
                let pos = mb
                    .iter()
                    .position(|m| src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag));
                if let Some(i) = pos {
                    let msg = mb.remove(i);
                    drop(mb);
                    drop(gate);
                    let bytes = msg.payload.len() * 8;
                    let arrival = msg.sent_at + ctx.model.alpha + bytes as f64 * ctx.model.beta;
                    ctx.advance_to(arrival, Phase::Comm);
                    return Ok((msg.src, msg.payload));
                }
            }
            if self.inner.abort.is_revoked() {
                return Err(MpiError::Revoked { phase: "recv" });
            }
            if self.inner.abort.is_aborted() {
                let rank = self.inner.abort.first_failure().unwrap_or(usize::MAX);
                return Err(MpiError::RankFailed {
                    rank,
                    phase: "recv",
                });
            }
            if start.elapsed() >= ctx.watchdog() {
                return Err(MpiError::WatchdogTimeout {
                    phase: "recv",
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            self.inner.mailbox_signal.wait_for(&mut gate, WAIT_SLICE);
        }
    }

    /// Begin a non-blocking allreduce (`MPI_Iallreduce` analogue) — the
    /// asynchronous-execution direction the paper names as future work
    /// (§IV-A4). The data exchange happens now (all ranks must call this
    /// collectively, like any collective), but the *cost* is deferred:
    /// the rank's clock does not advance until [`PendingReduce::wait`],
    /// so computation issued in between overlaps the transfer.
    pub fn iallreduce_sum(&self, ctx: &mut RankCtx, data: &mut [f64]) -> PendingReduce {
        // Reuse the blocking protocol, then roll the charge back into a
        // completion timestamp: capture the clock before, run the
        // exchange, and convert the elapsed virtual time into the pending
        // completion instant.
        let before_clock = ctx.clock;
        let before_comm = ctx.ledger.comm;
        // Mute tracing for the rolled-back inner run: its charges never
        // land on the ledger, so emitting them would break the
        // "sum(PhaseCharge) == ledger total" invariant. The deferred wait
        // charges (and traces) the cost that actually materialises.
        let was_muted = ctx.set_trace_mute(true);
        self.allreduce_sum(ctx, data);
        ctx.set_trace_mute(was_muted);
        let complete_at = ctx.clock;
        // Roll back: the caller keeps computing from `before_clock`.
        ctx.clock = before_clock;
        ctx.ledger.comm = before_comm;
        if self.rank == 0 {
            let bytes = data.len() * 8;
            self.trace_collective(
                ctx,
                "iallreduce",
                self.size,
                bytes,
                before_clock,
                (0.0, complete_at - before_clock, complete_at - before_clock),
            );
        }
        PendingReduce { complete_at }
    }

    /// Deposit a payload *by move* into this rank's collective slot and
    /// synchronise. Zero-copy registration used by window creation; the
    /// slots survive until [`Comm::take_slots`] drains them.
    pub(crate) fn deposit_slot(&self, ctx: &mut RankCtx, payload: Vec<f64>) {
        if let Err(e) = self.try_deposit_slot(ctx, payload) {
            Self::escalate(e);
        }
    }

    fn try_deposit_slot(&self, ctx: &mut RankCtx, payload: Vec<f64>) -> Result<(), MpiError> {
        if self.single_rank() {
            self.inner.coll.lock().slots[0] = Some(payload);
            return Ok(());
        }
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
            }
            st.slots[self.rank] = Some(payload);
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.bwait(ctx, "window_create")?;
        let sync_start = self.inner.coll.lock().max_clock;
        let leader = self.bwait(ctx, "window_create")?;
        if leader {
            self.inner.coll.lock().count = 0;
        }
        self.bwait(ctx, "window_create")?;
        ctx.trace_collective_wait("window_create", sync_start, 0.0);
        ctx.advance_to(sync_start, Phase::Distribution);
        Ok(())
    }

    /// Drain the deposited slots (window-creation leader only). Missing
    /// deposits yield empty buffers.
    pub(crate) fn take_slots(&self) -> Vec<Vec<f64>> {
        let mut st = self.inner.coll.lock();
        st.slots
            .iter_mut()
            .map(|s| s.take().unwrap_or_default())
            .collect()
    }

    /// Split the communicator into disjoint subcommunicators by `color`;
    /// ranks sharing a color form a new communicator ordered by `key`
    /// (ties broken by parent rank). Mirrors `MPI_Comm_split`.
    pub fn split(&self, ctx: &mut RankCtx, color: i64, key: i64) -> Comm {
        match self.try_split(ctx, color, key) {
            Ok(c) => c,
            Err(e) => Self::escalate(e),
        }
    }

    /// Fallible variant of [`Comm::split`]; surfaces peer failures and
    /// watchdog expiry instead of deadlocking on the split barriers.
    pub fn try_split(&self, ctx: &mut RankCtx, color: i64, key: i64) -> Result<Comm, MpiError> {
        ctx.collective_step("split");
        if self.single_rank() {
            // Trivial: a fresh single-rank communicator.
            let inner = Arc::new(CommInner::new(
                1,
                self.inner.events.clone(),
                self.inner.abort.clone(),
            ));
            ctx.charge(Phase::Comm, ctx.model.barrier_time(self.modeled_size(ctx)));
            return Ok(Comm::from_inner(inner, 0));
        }
        // Phase 1: deposit (color, key) and agree on a generation tag.
        {
            let mut st = self.inner.coll.lock();
            if st.count == 0 {
                st.max_clock = f64::NEG_INFINITY;
                st.tag = self.inner.split_gen.fetch_add(1, Ordering::SeqCst);
            }
            st.slots[self.rank] = Some(vec![color as f64, key as f64]);
            st.max_clock = st.max_clock.max(ctx.clock);
            st.count += 1;
        }
        self.bwait(ctx, "split")?;
        // Phase 2: everyone computes its group deterministically.
        let (generation, members, sync_start) = {
            let st = self.inner.coll.lock();
            let mut members: Vec<(i64, usize)> = Vec::new(); // (key, parent_rank)
            for (r, slot) in st.slots.iter().enumerate() {
                let payload = slot.as_ref().expect("split: missing deposit");
                let (c, k) = (payload[0] as i64, payload[1] as i64);
                if c == color {
                    members.push((k, r));
                }
            }
            members.sort();
            (st.tag, members, st.max_clock)
        };
        let my_pos = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split: self not in own group");
        // Group leader (first member) creates the inner.
        if my_pos == 0 {
            let inner = Arc::new(CommInner::new(
                members.len(),
                self.inner.events.clone(),
                self.inner.abort.clone(),
            ));
            self.inner.splits.lock().insert((generation, color), inner);
        }
        self.bwait(ctx, "split")?;
        let sub_inner = self
            .inner
            .splits
            .lock()
            .get(&(generation, color))
            .expect("split: group inner missing")
            .clone();
        let leader = self.bwait(ctx, "split")?;
        if leader {
            let mut st = self.inner.coll.lock();
            let size = self.size;
            st.reset(size);
            // Old split registrations for this generation can be dropped
            // once all ranks fetched them; keep the map tidy.
            self.inner
                .splits
                .lock()
                .retain(|&(g, _), _| g == generation);
        }
        self.bwait(ctx, "split")?;
        // Cost: an allgather of 16 bytes + subgroup setup barrier.
        let cost = ctx.model.gather_time(self.modeled_size(ctx), 16) * ctx.noise_factor();
        ctx.trace_collective_wait("split", sync_start, cost);
        ctx.advance_to(sync_start + cost, Phase::Comm);
        Ok(Comm::from_inner(sub_inner, my_pos))
    }

    /// Revoke this communicator (ULFM `MPI_Comm_revoke` analogue): every
    /// pending and future wait on it — and on every communicator sharing
    /// its abort tree (splits inherit the parent's abort state) — fails
    /// fast with [`MpiError::Revoked`]. Survivors then run
    /// [`Comm::try_agree_failed`] and [`Comm::try_shrink`] to resume on
    /// a fresh communicator.
    pub fn revoke(&self) {
        self.inner.abort.revoke();
    }

    /// Whether this communicator has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.inner.abort.is_revoked()
    }

    /// Deterministic agreement on the failed-rank set (`MPI_Comm_agree`
    /// analogue). Each survivor contributes its local view
    /// (`known_failed`, ranks of this communicator); the call returns the
    /// sorted union of all survivor views, the runtime's recorded
    /// failures, and the suspect set, identically on every survivor.
    ///
    /// Unlike the ordinary collectives this works on an *aborted or
    /// revoked* communicator: it uses dedicated scratch state and polls
    /// until every rank is accounted for — deposited, recorded failed,
    /// or suspect. SPMD discipline: every survivor must call it, at most
    /// one agreement in flight per communicator.
    pub fn try_agree_failed(
        &self,
        ctx: &mut RankCtx,
        known_failed: &[usize],
    ) -> Result<Vec<usize>, MpiError> {
        let cost = ctx
            .model
            .allreduce_time(self.modeled_size(ctx), self.size * 8)
            * ctx.noise_factor();
        if self.single_rank() {
            ctx.charge(Phase::Comm, cost);
            let mut v: Vec<usize> = known_failed.iter().copied().filter(|&r| r < 1).collect();
            v.sort_unstable();
            v.dedup();
            return Ok(v);
        }
        {
            let mut st = self.inner.agree.lock();
            st.views.insert(self.rank, known_failed.to_vec());
        }
        let start = Instant::now();
        loop {
            {
                let mut st = self.inner.agree.lock();
                if st.result.is_none() {
                    let failed: BTreeSet<usize> =
                        self.inner.abort.failed_ranks().into_iter().collect();
                    let suspects: BTreeSet<usize> =
                        self.inner.abort.suspects().into_iter().collect();
                    let accounted = (0..self.size).all(|r| {
                        st.views.contains_key(&r) || failed.contains(&r) || suspects.contains(&r)
                    });
                    if accounted {
                        // Freeze the union so every survivor returns the
                        // same set even if more state arrives later.
                        let mut agreed: BTreeSet<usize> = failed;
                        agreed.extend(suspects);
                        for v in st.views.values() {
                            agreed.extend(v.iter().copied());
                        }
                        st.result = Some(agreed.into_iter().filter(|&r| r < self.size).collect());
                    }
                }
                if let Some(res) = st.result.clone() {
                    st.fetched.insert(self.rank);
                    let all_fetched = st.views.keys().all(|r| st.fetched.contains(r));
                    if all_fetched {
                        st.views.clear();
                        st.fetched.clear();
                        st.result = None;
                    }
                    drop(st);
                    ctx.charge(Phase::Comm, cost);
                    return Ok(res);
                }
            }
            if start.elapsed() >= ctx.watchdog() {
                return Err(MpiError::WatchdogTimeout {
                    phase: "agree",
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            std::thread::sleep(WAIT_SLICE);
        }
    }

    /// Rebuild a working communicator over the survivors of `failed`
    /// (`MPI_Comm_shrink` analogue): a fresh inner state — including a
    /// fresh, un-aborted failure flag — with survivors densely re-ranked
    /// in ascending old-rank order. Every survivor must call it with the
    /// same agreed `failed` set (use [`Comm::try_agree_failed`] first);
    /// collectives on the returned communicator work normally even
    /// though this one stays poisoned.
    pub fn try_shrink(&self, ctx: &mut RankCtx, failed: &[usize]) -> Result<Comm, MpiError> {
        let failed: BTreeSet<usize> = failed.iter().copied().collect();
        let survivors: Vec<usize> = (0..self.size).filter(|r| !failed.contains(r)).collect();
        let Some(my_pos) = survivors.iter().position(|&r| r == self.rank) else {
            return Err(MpiError::Internal {
                what: format!("shrink: caller rank {} is in the failed set", self.rank),
            });
        };
        let cost = ctx.model.gather_time(self.modeled_size(ctx), 16) * ctx.noise_factor();
        if survivors.len() == 1 {
            let inner = Arc::new(CommInner::new(
                1,
                self.inner.events.clone(),
                Arc::new(AbortState::new()),
            ));
            ctx.charge(Phase::Comm, cost);
            return Ok(Comm::from_inner(inner, 0));
        }
        if my_pos == 0 {
            let mut st = self.inner.shrink.lock();
            if st.ready.is_none() {
                let inner = Arc::new(CommInner::new(
                    survivors.len(),
                    self.inner.events.clone(),
                    Arc::new(AbortState::new()),
                ));
                st.ready = Some((inner, survivors.clone()));
            }
        }
        let start = Instant::now();
        loop {
            {
                let mut st = self.inner.shrink.lock();
                if let Some((inner, built_for)) = st.ready.clone() {
                    if built_for != survivors {
                        return Err(MpiError::Internal {
                            what: format!(
                                "shrink: survivor sets disagree ({built_for:?} vs {survivors:?})"
                            ),
                        });
                    }
                    st.fetched.insert(self.rank);
                    if survivors.iter().all(|r| st.fetched.contains(r)) {
                        st.ready = None;
                        st.fetched.clear();
                    }
                    drop(st);
                    ctx.charge(Phase::Comm, cost);
                    return Ok(Comm::from_inner(inner, my_pos));
                }
            }
            if start.elapsed() >= ctx.watchdog() {
                return Err(MpiError::WatchdogTimeout {
                    phase: "shrink",
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            std::thread::sleep(WAIT_SLICE);
        }
    }
}

#[cfg(test)]
mod tests {
    // Collective behaviour is exercised end-to-end via `cluster::tests`,
    // which owns thread spawning.
}
