//! Analytic extrapolation of workload profiles to arbitrary rank counts.
//!
//! The scaling harnesses usually run the real (virtually timed) simulation
//! with `Cluster::modeled_ranks`. For points where even a scaled execution
//! is unnecessary (e.g. Table II's conventional reader at 1 TB, where the
//! answer is hours), a [`WorkloadProfile`] evaluates the machine-model cost
//! functions directly.

use crate::ledger::PhaseLedger;
use crate::model::MachineModel;

/// An analytic description of one rank's workload plus the aggregate
/// one-sided/I/O traffic, sufficient to evaluate a modeled phase breakdown
/// at any rank count.
#[derive(Debug, Clone, Default)]
pub struct WorkloadProfile {
    /// Dense flops executed by one rank.
    pub per_rank_flops: f64,
    /// Working-set bytes of the dominant per-rank kernel (cache model).
    pub per_rank_working_set: f64,
    /// Memory-bound bytes swept by one rank.
    pub per_rank_membound_bytes: f64,
    /// `(payload bytes, call count)` pairs of allreduces every rank joins.
    pub allreduces: Vec<(usize, usize)>,
    /// `(payload bytes, call count)` pairs of broadcasts.
    pub bcasts: Vec<(usize, usize)>,
    /// Barrier count.
    pub barriers: usize,
    /// Total bytes served through one-sided windows (aggregate over all
    /// requesters).
    pub onesided_total_bytes: f64,
    /// Total one-sided messages (aggregate).
    pub onesided_messages: f64,
    /// Number of ranks exposing windows (`n_reader` in the paper). The
    /// serving work divides across them.
    pub n_readers: usize,
    /// Bytes read from the file system (aggregate).
    pub io_read_bytes: f64,
    /// Ranks participating in the parallel read.
    pub io_readers: usize,
}

impl WorkloadProfile {
    /// Evaluate the modeled per-rank phase breakdown at `p` ranks.
    ///
    /// Communication uses collective closed forms at `p`; distribution
    /// divides the one-sided serving work over the reader windows (each
    /// serialises); I/O uses the striped parallel-read model.
    pub fn modeled(&self, p: usize, model: &MachineModel) -> PhaseLedger {
        let compute = model.compute_time(self.per_rank_flops, self.per_rank_working_set)
            + model.membound_time(self.per_rank_membound_bytes);

        let mut comm = 0.0;
        for &(bytes, count) in &self.allreduces {
            comm += count as f64 * model.allreduce_time(p, bytes);
        }
        for &(bytes, count) in &self.bcasts {
            comm += count as f64 * model.bcast_time(p, bytes);
        }
        comm += self.barriers as f64 * model.barrier_time(p);

        let distribution = if self.n_readers > 0 && self.onesided_messages > 0.0 {
            let readers = self.n_readers as f64;
            (self.onesided_messages / readers) * model.alpha
                + (self.onesided_total_bytes / readers) * model.beta
        } else {
            0.0
        };

        let io = if self.io_read_bytes > 0.0 {
            model
                .io
                .parallel_read_time(self.io_readers.max(1), self.io_read_bytes)
        } else {
            0.0
        };

        PhaseLedger {
            compute,
            comm,
            distribution,
            io,
        }
    }

    /// Weak-scaling series: per-rank work fixed, aggregate traffic grows
    /// linearly with `p`. `self` describes the base point at `base_p`
    /// ranks; returns `(p, breakdown)` for each requested point.
    pub fn weak_scaling(
        &self,
        base_p: usize,
        points: &[usize],
        model: &MachineModel,
    ) -> Vec<(usize, PhaseLedger)> {
        points
            .iter()
            .map(|&p| {
                let scale = p as f64 / base_p as f64;
                let mut prof = self.clone();
                // Per-rank terms unchanged; aggregate traffic scales with p.
                prof.onesided_total_bytes *= scale;
                prof.onesided_messages *= scale;
                prof.io_read_bytes *= scale;
                prof.io_readers = p;
                (p, prof.modeled(p, model))
            })
            .collect()
    }

    /// Strong-scaling series: aggregate problem fixed, per-rank work
    /// shrinks as `base_p / p`.
    pub fn strong_scaling(
        &self,
        base_p: usize,
        points: &[usize],
        model: &MachineModel,
    ) -> Vec<(usize, PhaseLedger)> {
        points
            .iter()
            .map(|&p| {
                let shrink = base_p as f64 / p as f64;
                let mut prof = self.clone();
                prof.per_rank_flops *= shrink;
                prof.per_rank_working_set *= shrink;
                prof.per_rank_membound_bytes *= shrink;
                prof.io_readers = p;
                (p, prof.modeled(p, model))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_profile() -> WorkloadProfile {
        WorkloadProfile {
            per_rank_flops: 1e9,
            per_rank_working_set: 8e6,
            per_rank_membound_bytes: 1e7,
            allreduces: vec![(20_101 * 8, 100)],
            bcasts: vec![(1024, 4)],
            barriers: 10,
            onesided_total_bytes: 1e9,
            onesided_messages: 1e4,
            n_readers: 32,
            io_read_bytes: 16e9,
            io_readers: 128,
        }
    }

    #[test]
    fn weak_scaling_compute_flat_comm_grows() {
        let m = MachineModel::deterministic();
        let series = base_profile().weak_scaling(128, &[128, 256, 512, 1024, 4096], &m);
        let first = series.first().unwrap().1;
        let last = series.last().unwrap().1;
        assert!(
            (first.compute - last.compute).abs() < 1e-12,
            "ideal weak compute"
        );
        assert!(last.comm > first.comm, "comm grows with log p");
        assert!(last.distribution > first.distribution, "distribution grows");
    }

    #[test]
    fn strong_scaling_compute_shrinks() {
        let m = MachineModel::deterministic();
        let series = base_profile().strong_scaling(128, &[128, 256, 512], &m);
        assert!(series[1].1.compute < series[0].1.compute);
        assert!(series[2].1.compute < series[1].1.compute);
        // Comm does not shrink (same collectives, more ranks).
        assert!(series[2].1.comm >= series[0].1.comm);
    }

    #[test]
    fn distribution_inverse_in_readers() {
        let m = MachineModel::deterministic();
        let mut a = base_profile();
        let few = a.modeled(1024, &m).distribution;
        a.n_readers *= 8;
        let many = a.modeled(1024, &m).distribution;
        assert!((few / many - 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_free() {
        let m = MachineModel::deterministic();
        let l = WorkloadProfile::default().modeled(4096, &m);
        assert_eq!(l.total(), 0.0);
    }
}
