//! The cluster runner: spawns executed ranks as threads and aggregates the
//! simulation report.

use crate::comm::{Comm, CommInner, RankCtx};
use crate::fault::{AbortState, FaultPlan, MpiError};
use crate::ledger::{CollectiveEvent, Phase, PhaseLedger};
use crate::model::MachineModel;
use crate::speculation::SpeculationBoard;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;
use uoi_telemetry::{PhaseTotals, RunSummary, Telemetry};

/// Default epoch-watchdog timeout: generous enough that healthy test runs
/// never trip it, short enough that a wedged collective surfaces quickly.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(10);

/// Environment variable overriding the epoch-watchdog timeout, in whole
/// milliseconds. Unset, unparsable, or zero values fall back to the
/// builder-configured (or default) timeout.
pub const UOI_WATCHDOG_ENV: &str = "UOI_WATCHDOG_MS";

/// Parse a watchdog override in milliseconds. Returns `None` for values
/// that are not a positive integer, so misconfiguration degrades to the
/// default rather than producing a zero-length watchdog that trips on
/// every collective.
pub fn watchdog_from_str(s: &str) -> Option<Duration> {
    match s.trim().parse::<u64>() {
        Ok(ms) if ms > 0 => Some(Duration::from_millis(ms)),
        _ => None,
    }
}

/// The `UOI_WATCHDOG_MS` override currently in the environment, if any.
pub fn watchdog_from_env() -> Option<Duration> {
    std::env::var(UOI_WATCHDOG_ENV)
        .ok()
        .and_then(|s| watchdog_from_str(&s))
}

/// One captured rank failure: which rank died, what it said, and the span
/// stack it was inside when it went down.
#[derive(Debug, Clone)]
pub struct RankFailure {
    /// World rank that failed.
    pub rank: usize,
    /// Stringified panic payload or error message.
    pub message: String,
    /// Open telemetry spans at the moment of failure, outermost first.
    pub span_stack: Vec<String>,
    /// Structured MPI error, when the failure escalated through a
    /// fallible collective (peers observing a crash carry this).
    pub error: Option<MpiError>,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} failed: {}", self.rank, self.message)?;
        if !self.span_stack.is_empty() {
            write!(f, " (in span {})", self.span_stack.join(" > "))?;
        }
        Ok(())
    }
}

/// Error returned by [`Cluster::try_run`] when one or more ranks failed.
/// The caller's process is never aborted; every surviving rank unwound
/// cleanly and all mailboxes were drained.
#[derive(Debug)]
pub struct SimError {
    /// All captured failures, ordered by world rank. The first entry whose
    /// `error` is `None` (or a non-`RankFailed` variant) is the root cause;
    /// peers that observed the crash carry `MpiError::RankFailed`.
    pub failures: Vec<RankFailure>,
    /// Undelivered point-to-point messages drained after the abort.
    pub drained_messages: usize,
    /// Ranks that declared themselves unable to progress (injected
    /// hangs) without dying: the culprits behind otherwise-anonymous
    /// watchdog timeouts. Sorted.
    pub suspected: Vec<usize>,
}

impl SimError {
    /// The root-cause failure: the first rank that died of its own accord
    /// rather than by observing a peer's death.
    pub fn root_cause(&self) -> &RankFailure {
        self.failures
            .iter()
            .find(|f| !matches!(f.error, Some(MpiError::RankFailed { .. })))
            .unwrap_or(&self.failures[0])
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation failed: {} rank(s) down; root cause: {}",
            self.failures.len(),
            self.root_cause()
        )?;
        if self.drained_messages > 0 {
            write!(
                f,
                "; {} undelivered message(s) drained",
                self.drained_messages
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for SimError {}

/// A simulated machine partition.
///
/// `exec_ranks` ranks are actually executed (threads moving real data);
/// collective and one-sided costs are evaluated as if the partition had
/// `modeled_ranks` ranks. With `modeled_ranks == exec_ranks` the simulation
/// is a plain (virtually timed) SPMD run; with `modeled_ranks >
/// exec_ranks` each executed rank stands for `modeled/exec` modeled ranks,
/// valid for SPMD programs whose per-rank work is set per the *modeled*
/// decomposition (exactly how the weak/strong scaling harnesses configure
/// their per-rank block sizes).
pub struct Cluster {
    exec_ranks: usize,
    modeled_ranks: usize,
    model: Arc<MachineModel>,
    telemetry: Telemetry,
    fault_plan: Option<FaultPlan>,
    watchdog: Duration,
}

impl Cluster {
    /// A cluster executing (and modeling) `ranks` ranks.
    pub fn new(ranks: usize, model: MachineModel) -> Self {
        assert!(ranks >= 1, "cluster needs at least one rank");
        Self {
            exec_ranks: ranks,
            modeled_ranks: ranks,
            model: Arc::new(model),
            telemetry: Telemetry::disabled(),
            fault_plan: None,
            watchdog: DEFAULT_WATCHDOG,
        }
    }

    /// Install a seeded fault-injection plan: rank crashes, stragglers,
    /// window-op faults, and transient I/O failures are derived per rank
    /// from the plan and replayed deterministically.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Override the epoch-watchdog timeout applied to every collective and
    /// point-to-point wait (default [`DEFAULT_WATCHDOG`]).
    pub fn with_watchdog(mut self, timeout: Duration) -> Self {
        self.watchdog = timeout;
        self
    }

    /// Apply the `UOI_WATCHDOG_MS` environment override, when present and
    /// valid; otherwise keep the currently configured timeout.
    pub fn with_env_watchdog(mut self) -> Self {
        if let Some(timeout) = watchdog_from_env() {
            self.watchdog = timeout;
        }
        self
    }

    /// Install a telemetry handle: every rank context records phase
    /// charges, spans, collectives, and window transfers through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Evaluate costs as if the partition had `p` ranks (`p >=
    /// exec_ranks`).
    pub fn modeled_ranks(mut self, p: usize) -> Self {
        assert!(
            p >= self.exec_ranks,
            "modeled ranks ({p}) must be >= executed ranks ({})",
            self.exec_ranks
        );
        self.modeled_ranks = p;
        self
    }

    /// Executed rank count.
    pub fn exec(&self) -> usize {
        self.exec_ranks
    }

    /// Modeled rank count.
    pub fn modeled(&self) -> usize {
        self.modeled_ranks
    }

    /// The machine model.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Run an SPMD program: `f` is invoked once per rank with its context
    /// and the world communicator. Returns the per-rank results plus the
    /// timing report.
    ///
    /// Panics (with a [`SimError`] description, never a process abort) if
    /// any rank fails; use [`Cluster::try_run`] to handle failures as
    /// values.
    pub fn run<T, F>(&self, f: F) -> SimReport<T>
    where
        T: Send,
        F: Fn(&mut RankCtx, &Comm) -> T + Sync,
    {
        match self.try_run(f) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fault-tolerant SPMD run. Each rank body executes under
    /// `catch_unwind`; a panicking rank marks the cluster-wide abort flag
    /// (waking every peer parked in a collective or `recv` with
    /// [`MpiError::RankFailed`]), its mailboxes are drained, and the whole
    /// failure set is returned as a [`SimError`] instead of tearing down
    /// the caller.
    pub fn try_run<T, F>(&self, f: F) -> Result<SimReport<T>, SimError>
    where
        T: Send,
        F: Fn(&mut RankCtx, &Comm) -> T + Sync,
    {
        let identity: Vec<usize> = (0..self.exec_ranks).collect();
        self.try_run_mapped(&identity, f)
    }

    /// SPMD run over a subset of the original world: thread `j` executes
    /// as (dense) rank `j` of a `rank_map.len()`-rank world, but draws
    /// its injected faults from the fault plan entry of *original* rank
    /// `rank_map[j]`. `try_run` is the identity-mapped special case;
    /// [`Cluster::try_run_recovering`] shrinks the map between rounds.
    fn try_run_mapped<T, F>(&self, rank_map: &[usize], f: F) -> Result<SimReport<T>, SimError>
    where
        T: Send,
        F: Fn(&mut RankCtx, &Comm) -> T + Sync,
    {
        let exec = rank_map.len();
        assert!(exec >= 1, "cluster run needs at least one rank");
        let events: Arc<Mutex<Vec<CollectiveEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let abort = Arc::new(AbortState::new());
        let world = Arc::new(CommInner::new(exec, events.clone(), abort.clone()));
        let oversub = self.modeled_ranks as f64 / exec as f64;

        type RankOutcome<T> = Result<(T, PhaseLedger, f64), RankFailure>;
        let mut results: Vec<Option<RankOutcome<T>>> = (0..exec).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(exec);
            for rank in 0..exec {
                let world = world.clone();
                let abort = abort.clone();
                let model = self.model.clone();
                let f = &f;
                let telemetry = self.telemetry.clone();
                let faults = self
                    .fault_plan
                    .as_ref()
                    .map(|p| p.faults_for(rank_map[rank]))
                    .unwrap_or_default();
                let watchdog = self.watchdog;
                handles.push(scope.spawn(move || -> RankOutcome<T> {
                    let mut ctx =
                        RankCtx::new(rank, exec, model, oversub, telemetry, faults, watchdog);
                    ctx.set_abort(abort.clone());
                    let comm = Comm::from_inner(world, rank);
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        f(&mut ctx, &comm)
                    }));
                    match out {
                        Ok(out) => {
                            let (ledger, clock) = ctx.into_parts();
                            Ok((out, ledger, clock))
                        }
                        Err(payload) => {
                            let (message, error) = describe_panic(payload);
                            // Peers that merely observed the abort must not
                            // overwrite the root cause; original failures
                            // (crash injections, user panics, watchdogs)
                            // raise the flag.
                            if !matches!(error, Some(MpiError::RankFailed { .. })) {
                                abort.mark_failed(rank, message.clone());
                            }
                            Err(RankFailure {
                                rank,
                                message,
                                span_stack: ctx.span_names().to_vec(),
                                error,
                            })
                        }
                    }
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(match h.join() {
                    Ok(outcome) => outcome,
                    Err(_) => Err(RankFailure {
                        rank,
                        message: "rank thread panicked outside the guarded body".to_string(),
                        span_stack: Vec::new(),
                        error: None,
                    }),
                });
            }
        });

        let suspected = abort.suspects();
        let failures: Vec<RankFailure> = results
            .iter()
            .filter_map(|r| r.as_ref().and_then(|r| r.as_ref().err().cloned()))
            .collect();
        if !failures.is_empty() {
            let drained_messages = world.drain_mailboxes();
            self.telemetry.flush();
            return Err(SimError {
                failures,
                drained_messages,
                suspected,
            });
        }

        let mut report = SimReport {
            results: Vec::with_capacity(exec),
            ledgers: Vec::with_capacity(exec),
            clocks: Vec::with_capacity(exec),
            events: std::mem::take(&mut *events.lock()),
            exec_ranks: exec,
            modeled_ranks: self.modeled_ranks,
        };
        for (rank, r) in results.into_iter().enumerate() {
            // A lost or unreported outcome is a runtime bug, not a rank
            // fault; surface it as a typed internal error rather than an
            // `unwrap` panic so recovery logic can refuse to retry it.
            match r {
                Some(Ok((out, ledger, clock))) => {
                    report.results.push(out);
                    report.ledgers.push(ledger);
                    report.clocks.push(clock);
                }
                Some(Err(_)) | None => {
                    self.telemetry.flush();
                    return Err(SimError {
                        failures: vec![RankFailure {
                            rank,
                            message: format!("internal: outcome for rank {rank} lost after join"),
                            span_stack: Vec::new(),
                            error: Some(MpiError::Internal {
                                what: format!("missing or unreported outcome for rank {rank}"),
                            }),
                        }],
                        drained_messages: world.drain_mailboxes(),
                        suspected,
                    });
                }
            }
        }
        self.telemetry.flush();
        Ok(report)
    }

    /// Shrink-and-recover SPMD execution: run `f`, and when ranks fail,
    /// agree on the culprit set, shrink the world to the survivors
    /// (densely re-ranked), and re-run — up to `max_recovery_rounds`
    /// re-executions. The closure receives a [`RecoveryContext`] telling
    /// it which round it is in, which original ranks are gone, and the
    /// dense-rank → original-rank map, plus a [`RecoveryStash`] that
    /// persists across rounds so survivors can skip redoing work they
    /// already completed (entries stored by newly-failed ranks are
    /// dropped between rounds).
    ///
    /// Failure attribution is deterministic: the culprit set is the
    /// union of self-declared suspects (injected hangs) and ranks that
    /// died of their own accord (crash injections, user panics). A
    /// failure with no attributable culprit — e.g. a pure watchdog
    /// timeout with no suspect, or a typed internal error — is
    /// [`RecoveryError::Fatal`]; exceeding the round budget is
    /// [`RecoveryError::Exhausted`].
    pub fn try_run_recovering<T, F>(
        &self,
        max_recovery_rounds: usize,
        f: F,
    ) -> Result<(SimReport<T>, RecoveryLog), RecoveryError>
    where
        T: Send,
        F: Fn(&mut RankCtx, &Comm, &RecoveryContext) -> T + Sync,
    {
        let stash = RecoveryStash::default();
        let speculation = SpeculationBoard::default();
        let original = self.exec_ranks;
        let mut failed: BTreeSet<usize> = BTreeSet::new();
        let mut rounds: Vec<RecoveryRound> = Vec::new();
        for round in 0..=max_recovery_rounds {
            let rank_map: Vec<usize> = (0..original).filter(|r| !failed.contains(r)).collect();
            let rctx = RecoveryContext {
                round,
                original_world: original,
                rank_map: rank_map.clone(),
                failed: failed.iter().copied().collect(),
                stash: stash.clone(),
                speculation: speculation.clone(),
            };
            match self.try_run_mapped(&rank_map, |ctx, comm| f(ctx, comm, &rctx)) {
                Ok(report) => {
                    rounds.push(RecoveryRound {
                        round,
                        world: rank_map.len(),
                        newly_failed: Vec::new(),
                    });
                    return Ok((report, RecoveryLog { rounds }));
                }
                Err(sim) => {
                    // Internal invariant violations and speculation
                    // divergences (silent corruption) are not rank
                    // faults: re-executing cannot be trusted to help.
                    let fatal = sim.failures.iter().any(|f| {
                        matches!(
                            f.error,
                            Some(MpiError::Internal { .. })
                                | Some(MpiError::SpeculationDivergence { .. })
                        )
                    });
                    let culprits = culprit_ranks(&sim, rank_map.len());
                    if fatal || culprits.is_empty() {
                        return Err(RecoveryError::Fatal(sim));
                    }
                    let newly: Vec<usize> = culprits.iter().map(|&nr| rank_map[nr]).collect();
                    for &orig in &newly {
                        failed.insert(orig);
                        stash.drop_rank(orig);
                    }
                    rounds.push(RecoveryRound {
                        round,
                        world: rank_map.len(),
                        newly_failed: newly,
                    });
                    if failed.len() >= original || round == max_recovery_rounds {
                        return Err(RecoveryError::Exhausted {
                            rounds: round + 1,
                            failed: failed.iter().copied().collect(),
                            last: sim,
                        });
                    }
                }
            }
        }
        unreachable!("recovery loop always returns within its round budget")
    }
}

/// Deterministic failure attribution: self-declared suspects (injected
/// hangs) plus ranks that died of their own accord (no structured error,
/// i.e. crash injections and user panics). Peers' `RankFailed`
/// observations are deliberately *not* trusted: a watchdog-timeout
/// observer marks itself failed to wake the others, so the rank those
/// observations name can be an innocent bystander. Returns dense-rank
/// indices of the world the [`SimError`] came from, sorted.
fn culprit_ranks(sim: &SimError, world: usize) -> Vec<usize> {
    let mut culprits: BTreeSet<usize> = sim
        .suspected
        .iter()
        .copied()
        .filter(|&r| r < world)
        .collect();
    for failure in &sim.failures {
        if failure.error.is_none() {
            culprits.insert(failure.rank);
        }
    }
    culprits.into_iter().collect()
}

/// What one recovering execution saw: passed to the SPMD closure each
/// round by [`Cluster::try_run_recovering`].
#[derive(Debug, Clone)]
pub struct RecoveryContext {
    /// 0 for the initial attempt, `k` for the k-th re-execution.
    pub round: usize,
    /// Rank count of the original (round-0) world.
    pub original_world: usize,
    /// Dense rank → original world rank (identity in round 0).
    pub rank_map: Vec<usize>,
    /// Cumulative failed original ranks, sorted.
    pub failed: Vec<usize>,
    stash: RecoveryStash,
    speculation: SpeculationBoard,
}

impl RecoveryContext {
    /// The original world rank behind dense rank `rank`.
    pub fn original_rank(&self, rank: usize) -> usize {
        self.rank_map[rank]
    }

    /// The cross-round stash surviving ranks persist work into.
    pub fn stash(&self) -> &RecoveryStash {
        &self.stash
    }

    /// The speculation progress board (heartbeats, result publication,
    /// cancellations), shared by every rank of every round and
    /// namespaced internally by `(round, stage)`.
    pub fn speculation(&self) -> &SpeculationBoard {
        &self.speculation
    }

    /// True on re-execution rounds (some rank has already failed).
    pub fn is_recovery_round(&self) -> bool {
        self.round > 0
    }
}

/// Stash entries keyed by (original world rank, label).
type StashMap = HashMap<(usize, String), Vec<f64>>;

/// Cross-round key-value store for [`Cluster::try_run_recovering`]:
/// entries are keyed by (original world rank, label) so the driver can
/// invalidate everything a newly-failed rank stored. Values are flat
/// `f64` buffers — everything the pipelines persist (per-task results,
/// staged data shards) serialises to one.
#[derive(Debug, Clone, Default)]
pub struct RecoveryStash {
    inner: Arc<Mutex<StashMap>>,
}

impl RecoveryStash {
    /// Store `data` under `(original_rank, key)`, replacing any previous
    /// entry.
    pub fn put(&self, original_rank: usize, key: &str, data: Vec<f64>) {
        self.inner
            .lock()
            .insert((original_rank, key.to_string()), data);
    }

    /// Fetch a copy of the entry under `(original_rank, key)`.
    pub fn get(&self, original_rank: usize, key: &str) -> Option<Vec<f64>> {
        self.inner
            .lock()
            .get(&(original_rank, key.to_string()))
            .cloned()
    }

    /// Drop every entry stored by `original_rank` (driver cleanup when
    /// the rank fails: its stashed work cannot be trusted).
    pub fn drop_rank(&self, original_rank: usize) {
        self.inner.lock().retain(|&(r, _), _| r != original_rank);
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the stash is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// One attempted round of a recovering execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRound {
    /// Round index (0 = initial attempt).
    pub round: usize,
    /// World size the round ran with.
    pub world: usize,
    /// Original ranks newly detected failed in this round (empty for
    /// the successful final round).
    pub newly_failed: Vec<usize>,
}

/// The recovery history of a successful [`Cluster::try_run_recovering`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryLog {
    /// All attempted rounds, in order; the last entry is the successful
    /// one.
    pub rounds: Vec<RecoveryRound>,
}

impl RecoveryLog {
    /// Number of re-execution rounds that were needed (0 = fault-free).
    pub fn recovery_rounds(&self) -> usize {
        self.rounds.len().saturating_sub(1)
    }

    /// All original ranks that failed over the whole execution, sorted.
    pub fn failed_ranks(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .rounds
            .iter()
            .flat_map(|r| r.newly_failed.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// Error of [`Cluster::try_run_recovering`].
#[derive(Debug)]
pub enum RecoveryError {
    /// The round budget ran out with ranks still failing. Carries the
    /// cumulative failed set so callers can fall back to degraded-mode
    /// execution over the survivors.
    Exhausted {
        /// Attempts made (1 + re-executions).
        rounds: usize,
        /// Cumulative failed original ranks, sorted.
        failed: Vec<usize>,
        /// The last attempt's failure report.
        last: SimError,
    },
    /// The failure could not be attributed to a specific rank (pure
    /// watchdog timeout with no suspect) or a runtime invariant broke
    /// (typed internal error); re-executing cannot help.
    Fatal(SimError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Exhausted {
                rounds,
                failed,
                last,
            } => write!(
                f,
                "recovery exhausted after {rounds} round(s); failed ranks {failed:?}; last: {last}"
            ),
            RecoveryError::Fatal(e) => write!(f, "unrecoverable failure: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Render a panic payload into a message plus a structured [`MpiError`]
/// when the payload carries one (fallible collectives escalate via
/// `panic_any(MpiError)`).
fn describe_panic(payload: Box<dyn std::any::Any + Send>) -> (String, Option<MpiError>) {
    let payload = match payload.downcast::<MpiError>() {
        Ok(e) => return (e.to_string(), Some(*e)),
        Err(p) => p,
    };
    let payload = match payload.downcast::<String>() {
        Ok(s) => return (*s, None),
        Err(p) => p,
    };
    match payload.downcast::<&'static str>() {
        Ok(s) => ((*s).to_string(), None),
        Err(_) => ("opaque panic payload".to_string(), None),
    }
}

fn phase_totals(l: &PhaseLedger) -> PhaseTotals {
    PhaseTotals {
        compute: l.compute,
        comm: l.comm,
        distribution: l.distribution,
        io: l.io,
    }
}

/// Result of a cluster run: per-rank outputs, phase ledgers, final virtual
/// clocks, and the collective event log.
pub struct SimReport<T> {
    /// Per-rank return values, indexed by world rank.
    pub results: Vec<T>,
    /// Per-rank phase accounting.
    pub ledgers: Vec<PhaseLedger>,
    /// Per-rank final virtual clocks (== `ledgers[r].total()`).
    pub clocks: Vec<f64>,
    /// All recorded collectives (one entry per collective, leader-written).
    pub events: Vec<CollectiveEvent>,
    /// Ranks actually executed.
    pub exec_ranks: usize,
    /// Ranks the cost model was evaluated at.
    pub modeled_ranks: usize,
}

impl<T> SimReport<T> {
    /// Virtual makespan: the slowest rank's clock.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Slowest rank per phase (elementwise max of ledgers) — the quantity
    /// the paper's stacked runtime bars report.
    pub fn phase_max(&self) -> PhaseLedger {
        self.ledgers
            .iter()
            .copied()
            .fold(PhaseLedger::default(), PhaseLedger::max)
    }

    /// Mean ledger across ranks.
    pub fn phase_mean(&self) -> PhaseLedger {
        let n = self.ledgers.len().max(1) as f64;
        let sum = self
            .ledgers
            .iter()
            .copied()
            .fold(PhaseLedger::default(), |a, b| a + b);
        PhaseLedger {
            compute: sum.compute / n,
            comm: sum.comm / n,
            distribution: sum.distribution / n,
            io: sum.io / n,
        }
    }

    /// The allreduce events only (Fig 5 input).
    pub fn allreduce_events(&self) -> impl Iterator<Item = &CollectiveEvent> {
        self.events.iter().filter(|e| e.op == "allreduce")
    }

    /// The serialisable cluster summary for a `RunReport` (schema
    /// `uoi.run_report/v1`): makespan, per-phase max/mean, collective
    /// count, and total collective bytes.
    pub fn run_summary(&self) -> RunSummary {
        RunSummary {
            exec_ranks: self.exec_ranks,
            modeled_ranks: self.modeled_ranks,
            makespan: self.makespan(),
            phase_max: phase_totals(&self.phase_max()),
            phase_mean: phase_totals(&self.phase_mean()),
            collectives: self.events.len(),
            collective_bytes: self.events.iter().map(|e| e.bytes).sum(),
        }
    }

    /// Render a small breakdown table (labels follow the paper's legends).
    pub fn breakdown_table(&self) -> String {
        let m = self.phase_max();
        let mut s = String::new();
        s.push_str(&format!(
            "ranks: executed={} modeled={}  makespan={:.4}s\n",
            self.exec_ranks,
            self.modeled_ranks,
            self.makespan()
        ));
        for ph in Phase::ALL {
            s.push_str(&format!("  {:<14} {:>12.4}s\n", ph.label(), m.get(ph)));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::Phase;
    use crate::window::Window;

    fn det_cluster(n: usize) -> Cluster {
        Cluster::new(n, MachineModel::deterministic())
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let report = det_cluster(8).run(|ctx, world| {
            let mut v = vec![world.rank() as f64 + 1.0, 1.0];
            world.allreduce_sum(ctx, &mut v);
            v
        });
        for v in &report.results {
            assert_eq!(v[0], 36.0); // 1+2+...+8
            assert_eq!(v[1], 8.0);
        }
        assert_eq!(report.allreduce_events().count(), 1);
    }

    #[test]
    fn repeated_collectives_reuse_state() {
        let report = det_cluster(4).run(|ctx, world| {
            let mut total = 0.0;
            for round in 0..10 {
                let mut v = vec![(world.rank() + round) as f64];
                world.allreduce_sum(ctx, &mut v);
                total += v[0];
            }
            total
        });
        // Sum over rounds of (0+1+2+3 + 4*round) = 10*6 + 4*45 = 240.
        for &t in &report.results {
            assert_eq!(t, 240.0);
        }
        assert_eq!(report.allreduce_events().count(), 10);
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let report = det_cluster(5).run(|ctx, world| {
            let mut v = if world.rank() == 3 {
                vec![7.0, 8.0]
            } else {
                vec![0.0, 0.0]
            };
            world.bcast(ctx, 3, &mut v);
            v
        });
        for v in &report.results {
            assert_eq!(v, &vec![7.0, 8.0]);
        }
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        let report = det_cluster(4).run(|ctx, world| {
            let mine = vec![world.rank() as f64; 3];
            let gathered = world.gather(ctx, 0, &mine);
            if world.rank() == 0 {
                let g = gathered.as_ref().unwrap();
                for (r, payload) in g.iter().enumerate() {
                    assert_eq!(payload, &vec![r as f64; 3]);
                }
            } else {
                assert!(gathered.is_none());
            }
            // Scatter back doubled values.
            let chunks = gathered.map(|g| {
                g.into_iter()
                    .map(|p| p.into_iter().map(|x| x * 2.0).collect())
                    .collect()
            });
            world.scatter(ctx, 0, chunks)
        });
        for (r, v) in report.results.iter().enumerate() {
            assert_eq!(v, &vec![2.0 * r as f64; 3]);
        }
    }

    #[test]
    fn allgather_collects_everything() {
        let report =
            det_cluster(3).run(|ctx, world| world.allgather(ctx, &[world.rank() as f64 * 10.0]));
        for all in &report.results {
            assert_eq!(all, &vec![vec![0.0], vec![10.0], vec![20.0]]);
        }
    }

    #[test]
    fn split_forms_correct_groups() {
        let report = det_cluster(6).run(|ctx, world| {
            // Colors: 0,1,0,1,0,1 — two groups of 3.
            let color = (world.rank() % 2) as i64;
            let sub = world.split(ctx, color, world.rank() as i64);
            let mut v = vec![world.rank() as f64];
            sub.allreduce_sum(ctx, &mut v);
            (sub.rank(), sub.size(), v[0])
        });
        for (wr, &(sr, ss, sum)) in report.results.iter().enumerate() {
            assert_eq!(ss, 3);
            assert_eq!(sr, wr / 2);
            let expected = if wr % 2 == 0 {
                0.0 + 2.0 + 4.0
            } else {
                1.0 + 3.0 + 5.0
            };
            assert_eq!(sum, expected);
        }
    }

    #[test]
    fn nested_split_three_levels() {
        // 8 ranks -> 2 groups of 4 -> each into 2 groups of 2: the
        // P_B x P_lambda x ADMM decomposition shape.
        let report = det_cluster(8).run(|ctx, world| {
            let b_color = (world.rank() / 4) as i64;
            let b_comm = world.split(ctx, b_color, world.rank() as i64);
            let l_color = (b_comm.rank() / 2) as i64;
            let l_comm = b_comm.split(ctx, l_color, b_comm.rank() as i64);
            let mut v = vec![1.0];
            l_comm.allreduce_sum(ctx, &mut v);
            (l_comm.size(), v[0])
        });
        for &(s, sum) in &report.results {
            assert_eq!(s, 2);
            assert_eq!(sum, 2.0);
        }
    }

    #[test]
    fn window_get_reads_remote_data() {
        let report = det_cluster(4).run(|ctx, world| {
            // Rank 0 exposes [100, 101, ..., 109]; everyone reads a slice.
            let local = if world.rank() == 0 {
                (100..110).map(|x| x as f64).collect()
            } else {
                Vec::new()
            };
            let win = Window::create(ctx, world, local);
            let got = win.get(ctx, 0, 2..5);
            win.fence(ctx, world);
            got
        });
        for v in &report.results {
            assert_eq!(v, &vec![102.0, 103.0, 104.0]);
        }
        // Window serialisation must show up as distribution time.
        let l = report.phase_max();
        assert!(l.distribution > 0.0);
    }

    #[test]
    fn window_put_then_local_read() {
        let report = det_cluster(3).run(|ctx, world| {
            let local = vec![0.0; 3];
            let win = Window::create(ctx, world, local);
            // Each rank writes its id into slot `rank` of rank 0's buffer.
            win.put(ctx, 0, world.rank(), &[world.rank() as f64 + 1.0]);
            win.fence(ctx, world);
            win.local_copy(0)
        });
        for v in &report.results {
            assert_eq!(v, &vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn clock_equals_ledger_total() {
        let report = det_cluster(4).run(|ctx, world| {
            ctx.compute_flops(1e6, 1e9);
            let mut v = vec![1.0; 64];
            world.allreduce_sum(ctx, &mut v);
            ctx.compute_membound(1e5);
            world.barrier(ctx);
            0
        });
        for (c, l) in report.clocks.iter().zip(&report.ledgers) {
            assert!(
                (c - l.total()).abs() < 1e-12,
                "clock {c} != ledger {}",
                l.total()
            );
        }
    }

    #[test]
    fn clocks_nondecreasing_and_synchronised() {
        let report = det_cluster(6).run(|ctx, world| {
            // Rank-dependent compute then allreduce: all clocks must end
            // >= the slowest rank's pre-collective clock.
            ctx.compute_flops(1e6 * (world.rank() as f64 + 1.0), 1e9);
            let pre = ctx.clock();
            let mut v = vec![0.0];
            world.allreduce_sum(ctx, &mut v);
            (pre, ctx.clock())
        });
        let max_pre = report.results.iter().map(|&(p, _)| p).fold(0.0, f64::max);
        for &(_, post) in &report.results {
            assert!(post >= max_pre, "collective must synchronise clocks");
        }
    }

    #[test]
    fn modeled_ranks_increase_collective_cost() {
        let small = det_cluster(4).run(|ctx, world| {
            let mut v = vec![1.0; 1024];
            world.allreduce_sum(ctx, &mut v);
            ctx.ledger().get(Phase::Comm)
        });
        let big = Cluster::new(4, MachineModel::deterministic())
            .modeled_ranks(1 << 17)
            .run(|ctx, world| {
                let mut v = vec![1.0; 1024];
                world.allreduce_sum(ctx, &mut v);
                ctx.ledger().get(Phase::Comm)
            });
        let s = small.results.iter().copied().fold(0.0, f64::max);
        let b = big.results.iter().copied().fold(0.0, f64::max);
        assert!(
            b > s,
            "modeled 131072 ranks must cost more than 4: {b} vs {s}"
        );
    }

    #[test]
    fn window_contention_scales_with_oversubscription() {
        let run = |modeled: usize| {
            Cluster::new(8, MachineModel::deterministic())
                .modeled_ranks(modeled)
                .run(|ctx, world| {
                    let local = if world.rank() == 0 {
                        vec![1.0; 4096]
                    } else {
                        vec![]
                    };
                    let win = Window::create(ctx, world, local);
                    let _ = win.get(ctx, 0, 0..4096);
                    win.fence(ctx, world);
                    ctx.ledger().get(Phase::Distribution)
                })
                .results
                .iter()
                .copied()
                .fold(0.0, f64::max)
        };
        let base = run(8);
        let over = run(8 * 64);
        assert!(
            over > 10.0 * base,
            "reader-window serialisation must blow up: {over} vs {base}"
        );
    }

    #[test]
    fn noise_produces_min_max_spread() {
        let mut model = MachineModel::knl();
        model.noise.sigma = 0.3;
        let report = Cluster::new(8, model).run(|ctx, world| {
            let mut v = vec![1.0; 2048];
            world.allreduce_sum(ctx, &mut v);
        });
        let ev = report.allreduce_events().next().expect("one event");
        assert!(ev.t_max > ev.t_min, "noise must spread costs");
        assert!(ev.t_min > 0.0);
    }

    #[test]
    fn p2p_send_recv() {
        let report = det_cluster(4).run(|ctx, world| {
            // Ring: rank r sends to (r+1) % size, receives from the left.
            let right = (world.rank() + 1) % world.size();
            world.send(ctx, right, 7, &[world.rank() as f64 * 10.0]);
            let (src, payload) = world.recv(ctx, None, Some(7));
            (src, payload[0])
        });
        for (r, &(src, val)) in report.results.iter().enumerate() {
            let left = (r + 4 - 1) % 4;
            assert_eq!(src, left);
            assert_eq!(val, left as f64 * 10.0);
        }
    }

    #[test]
    fn p2p_tag_and_source_matching() {
        let report = det_cluster(2).run(|ctx, world| {
            if world.rank() == 0 {
                world.send(ctx, 1, 5, &[5.0]);
                world.send(ctx, 1, 9, &[9.0]);
                Vec::new()
            } else {
                // Receive out of order: tag 9 first.
                let (_, a) = world.recv(ctx, Some(0), Some(9));
                let (_, b) = world.recv(ctx, Some(0), Some(5));
                vec![a[0], b[0]]
            }
        });
        assert_eq!(report.results[1], vec![9.0, 5.0]);
    }

    #[test]
    fn iallreduce_overlaps_compute() {
        // Blocking: compute then allreduce sequentially.
        let blocking = det_cluster(4)
            .modeled_ranks(65_536)
            .run(|ctx, world| {
                let mut v = vec![1.0; 1 << 16];
                world.allreduce_sum(ctx, &mut v);
                ctx.compute_flops(1e9, 1e8);
                ctx.clock()
            })
            .makespan();
        // Overlapped: the same compute hides the allreduce.
        let overlapped = det_cluster(4)
            .modeled_ranks(65_536)
            .run(|ctx, world| {
                let mut v = vec![1.0; 1 << 16];
                let pending = world.iallreduce_sum(ctx, &mut v);
                ctx.compute_flops(1e9, 1e8);
                pending.wait(ctx);
                assert_eq!(v[0], 4.0, "data must already be reduced");
                ctx.clock()
            })
            .makespan();
        assert!(
            overlapped < blocking - 1e-6,
            "overlap must hide communication: {overlapped} vs {blocking}"
        );
        // Fully hidden: the overlapped makespan is just the compute time.
        let compute_only = MachineModel::deterministic().compute_time(1e9, 1e8);
        assert!((overlapped - compute_only).abs() / compute_only < 0.5);
    }

    #[test]
    fn single_rank_cluster_works() {
        let report = det_cluster(1).run(|ctx, world| {
            let mut v = vec![5.0];
            world.allreduce_sum(ctx, &mut v);
            world.barrier(ctx);
            let g = world.gather(ctx, 0, &[1.0]).unwrap();
            assert_eq!(g.len(), 1);
            v[0]
        });
        assert_eq!(report.results[0], 5.0);
    }
}
