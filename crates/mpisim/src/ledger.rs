//! Per-rank virtual-time accounting.
//!
//! Every virtual-clock advance is attributed to one of the four phases the
//! paper's runtime-breakdown figures use (Figs 2, 7): **Computation**,
//! **Communication** (collectives), **Distribution** (one-sided data
//! movement, including the distributed Kronecker/vectorisation traffic),
//! and **Data I/O** (parallel file reads/writes).

use std::ops::{Add, AddAssign};

/// The runtime categories of the paper's breakdown figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Local computation (BLAS kernels, soft-thresholding, bookkeeping).
    Compute,
    /// Collective communication (`MPI_Allreduce`, `MPI_Bcast`, barriers).
    Comm,
    /// One-sided data distribution (Tier-2 shuffles, distributed Kronecker
    /// product and vectorisation windows).
    Distribution,
    /// Parallel file I/O (dataset loads, output saves).
    DataIo,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 4] = [
        Phase::Compute,
        Phase::Comm,
        Phase::Distribution,
        Phase::DataIo,
    ];

    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Compute => "Computation",
            Phase::Comm => "Communication",
            Phase::Distribution => "Distribution",
            Phase::DataIo => "Data I/O",
        }
    }
}

/// Per-rank phase times in virtual seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseLedger {
    /// Computation seconds.
    pub compute: f64,
    /// Communication seconds (includes synchronisation waits at
    /// collectives, as an `MPI_Allreduce` timer would).
    pub comm: f64,
    /// Distribution seconds (one-sided transfer and queueing).
    pub distribution: f64,
    /// File I/O seconds.
    pub io: f64,
}

impl PhaseLedger {
    /// Charge `seconds` to `phase`.
    pub fn charge(&mut self, phase: Phase, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative charge {seconds} to {phase:?}");
        match phase {
            Phase::Compute => self.compute += seconds,
            Phase::Comm => self.comm += seconds,
            Phase::Distribution => self.distribution += seconds,
            Phase::DataIo => self.io += seconds,
        }
    }

    /// Read the accumulated seconds of one phase.
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Compute => self.compute,
            Phase::Comm => self.comm,
            Phase::Distribution => self.distribution,
            Phase::DataIo => self.io,
        }
    }

    /// Sum over all phases — equals the rank's final virtual clock when the
    /// rank only advances time through `charge` (invariant tested in
    /// `cluster`).
    pub fn total(&self) -> f64 {
        self.compute + self.comm + self.distribution + self.io
    }

    /// Elementwise maximum (used to aggregate "slowest rank per phase").
    pub fn max(self, other: PhaseLedger) -> PhaseLedger {
        PhaseLedger {
            compute: self.compute.max(other.compute),
            comm: self.comm.max(other.comm),
            distribution: self.distribution.max(other.distribution),
            io: self.io.max(other.io),
        }
    }
}

impl Add for PhaseLedger {
    type Output = PhaseLedger;
    fn add(self, o: PhaseLedger) -> PhaseLedger {
        PhaseLedger {
            compute: self.compute + o.compute,
            comm: self.comm + o.comm,
            distribution: self.distribution + o.distribution,
            io: self.io + o.io,
        }
    }
}

impl AddAssign for PhaseLedger {
    fn add_assign(&mut self, o: PhaseLedger) {
        *self = *self + o;
    }
}

/// One recorded collective, for the `T_min`/`T_max` analysis of Fig 5.
#[derive(Debug, Clone)]
pub struct CollectiveEvent {
    /// Operation name ("allreduce", "bcast", ...).
    pub op: &'static str,
    /// Executed communicator size.
    pub comm_size: usize,
    /// Modeled communicator size the cost was evaluated at.
    pub modeled_size: usize,
    /// Payload bytes per rank.
    pub bytes: usize,
    /// Fastest per-rank completion cost (seconds).
    pub t_min: f64,
    /// Slowest per-rank completion cost (seconds).
    pub t_max: f64,
    /// Mean per-rank cost (seconds).
    pub t_mean: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut l = PhaseLedger::default();
        l.charge(Phase::Compute, 1.0);
        l.charge(Phase::Comm, 0.25);
        l.charge(Phase::Distribution, 0.5);
        l.charge(Phase::DataIo, 0.125);
        assert_eq!(l.total(), 1.875);
        assert_eq!(l.get(Phase::Comm), 0.25);
    }

    #[test]
    fn add_and_max() {
        let mut a = PhaseLedger::default();
        a.charge(Phase::Compute, 2.0);
        let mut b = PhaseLedger::default();
        b.charge(Phase::Comm, 3.0);
        let s = a + b;
        assert_eq!(s.compute, 2.0);
        assert_eq!(s.comm, 3.0);
        let m = a.max(b);
        assert_eq!(m.compute, 2.0);
        assert_eq!(m.comm, 3.0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Phase::Compute.label(), "Computation");
        assert_eq!(Phase::Distribution.label(), "Distribution");
        assert_eq!(Phase::ALL.len(), 4);
    }
}
