//! # uoi-mpisim
//!
//! An in-process SPMD message-passing runtime with a virtual-time machine
//! model — the substitute for the MPI + Cori-KNL substrate of the paper.
//!
//! Ranks run as OS threads and exchange *real* data (collectives move real
//! bytes, one-sided windows expose real buffers), so algorithms produce
//! bit-identical statistical results to a genuine distributed run. Time,
//! however, is **virtual**: every operation advances a per-rank clock using
//! the [`model::MachineModel`] cost functions, evaluated at a *modeled*
//! rank count that may far exceed the executed one. This is what lets a
//! laptop reproduce the shape of 100,000-core weak/strong scaling curves.
//!
//! Key pieces:
//! * [`cluster::Cluster`] — spawn ranks, run an SPMD closure, collect a
//!   [`cluster::SimReport`];
//! * [`comm::Comm`] — `MPI_Comm` analogue: barrier, bcast, allreduce,
//!   gather/allgather/scatter, and `split` for the `P_B x P_lambda x
//!   ADMM_cores` decomposition;
//! * [`window::Window`] — one-sided windows with target-side
//!   serialisation, the mechanism behind the paper's randomized data
//!   distribution (Tier 2) and distributed Kronecker product;
//! * [`ledger`] — per-rank phase accounting matching the paper's runtime
//!   breakdown categories (Computation / Communication / Distribution /
//!   Data I/O);
//! * [`extrapolate::WorkloadProfile`] — closed-form evaluation at
//!   arbitrary rank counts;
//! * [`fault::FaultPlan`] — seeded, deterministic fault injection (rank
//!   crashes, stragglers, window-op drops/corruption, transient I/O);
//!   collectives carry an epoch watchdog so a dead rank surfaces as
//!   [`fault::MpiError::RankFailed`] instead of a condvar deadlock.

#![allow(clippy::needless_range_loop)]

pub mod cluster;
pub mod comm;
pub mod extrapolate;
pub mod fault;
pub mod ledger;
pub mod model;
pub mod speculation;
pub mod window;

pub use cluster::{
    watchdog_from_env, watchdog_from_str, Cluster, RankFailure, RecoveryContext, RecoveryError,
    RecoveryLog, RecoveryRound, RecoveryStash, SimError, SimReport, DEFAULT_WATCHDOG,
    UOI_WATCHDOG_ENV,
};
pub use comm::{Comm, PendingReduce, RankCtx};
pub use extrapolate::WorkloadProfile;
pub use fault::{FaultPlan, MpiError, RankFaults};
pub use ledger::{CollectiveEvent, Phase, PhaseLedger};
pub use model::{IoModel, MachineModel, NoiseModel, SplitMix64};
pub use speculation::{
    makespan_healthy, makespan_unhedged, plan_hedges, DeadlinePolicy, HedgeEvent, HedgeSchedule,
    PublishOutcome, RankTimings, SpeculationBoard, TaskHeartbeat,
};
pub use window::{Window, WindowEpoch};
// Telemetry types commonly needed alongside `Cluster::with_telemetry`.
pub use uoi_telemetry::{
    JsonlSink, MemorySink, MetricsRegistry, RunSummary, Telemetry, TraceEvent, TraceSink,
};
