//! Speculative task execution: deadline-based straggler hedging with
//! first-result-wins, bit-identical to serial.
//!
//! A straggling-yet-alive rank is the one failure mode shrink-and-recover
//! (PR 5) cannot address: the rank never dies, it just drags every
//! rendezvous. This module provides the runtime half of the hedging
//! subsystem:
//!
//! * [`SpeculationBoard`] — a cross-rank progress board. Owners emit one
//!   [`TaskHeartbeat`] per completed (bootstrap, λ) task and publish their
//!   result payloads; replicas publish too, and the board bit-compares
//!   duplicate publications (the replica of a deterministic task must be
//!   bitwise equal — a mismatch is the silent-corruption tripwire
//!   surfaced as [`MpiError::SpeculationDivergence`]). A cancelled
//!   replica's publication is rejected, never stored.
//! * [`DeadlinePolicy`] — quantile-of-observed-task-times × multiplier,
//!   plus an absolute floor; tasks whose modeled duration exceeds the
//!   deadline are laggards.
//! * [`plan_hedges`] — a pure, deterministic scheduler that replays the
//!   heartbeat record into a hedged virtual-time schedule: laggards are
//!   detected at their next heartbeat tick after the deadline expires, a
//!   replica launches on the rank that frees up earliest, the first
//!   result wins, and the loser is cancelled at its next heartbeat tick.
//!   Every rank evaluates the same function on the same board record, so
//!   all ranks agree on the schedule without any extra collective.
//!
//! The scheduler works on *modeled* durations, never wall time, so the
//! hedged schedule — and therefore every derived makespan and telemetry
//! counter — is a pure function of (data, config, fault plan). Results
//! themselves are never affected: the owner's payload is always the one
//! a pipeline consumes, and replicas exist to (a) shorten the modeled
//! critical path and (b) cross-check bits.
//!
//! One deliberate approximation: a replica rank's availability is taken
//! as its own *unhedged* finish time, updated as replica work is
//! assigned. When several stragglers interact, cascaded second-order
//! effects (a hedged owner freeing up early and serving replicas itself)
//! are scheduled conservatively. The canonical one-straggler-per-plan
//! case is exact.

use crate::comm::RankCtx;
use crate::fault::{MpiError, WAIT_SLICE};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// One completed task's progress record, emitted by its owner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskHeartbeat {
    /// Global task index within the stage (bootstrap index).
    pub task: usize,
    /// Modeled duration at straggle factor 1.0 (seconds).
    pub nominal: f64,
    /// Modeled duration as experienced by the owner (`nominal` × the
    /// owner's straggle factor).
    pub actual: f64,
}

/// Everything one rank reported for a stage: its heartbeats in execution
/// order plus its straggle factor (so the scheduler can cost replicas).
#[derive(Debug, Clone, PartialEq)]
pub struct RankTimings {
    /// Original world rank.
    pub rank: usize,
    /// The rank's injected straggle factor (1.0 = healthy).
    pub straggle: f64,
    /// Completed tasks, in execution order.
    pub tasks: Vec<TaskHeartbeat>,
}

impl RankTimings {
    /// The rank's unhedged stage time: the sum of its actual durations.
    pub fn unhedged_finish(&self) -> f64 {
        self.tasks.iter().map(|t| t.actual).sum()
    }

    /// The rank's fault-free stage time: the sum of nominal durations.
    pub fn healthy_finish(&self) -> f64 {
        self.tasks.iter().map(|t| t.nominal).sum()
    }
}

/// When is a task a laggard, and how fine is the heartbeat clock?
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlinePolicy {
    /// Quantile of the observed task durations the deadline is based on
    /// (e.g. 0.75 = upper quartile).
    pub quantile: f64,
    /// Deadline = quantile duration × this multiplier.
    pub multiplier: f64,
    /// Absolute floor on the deadline (seconds): tiny tasks are never
    /// hedged just because their siblings were even tinier.
    pub floor: f64,
    /// Heartbeat ticks per deadline interval: detection and cancellation
    /// both quantise to this clock.
    pub heartbeats_per_deadline: u32,
    /// Minimum number of observed task durations before any deadline is
    /// derived (below this the schedule never hedges).
    pub min_samples: usize,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        Self {
            quantile: 0.75,
            multiplier: 1.75,
            floor: 0.0,
            heartbeats_per_deadline: 4,
            min_samples: 2,
        }
    }
}

/// One planned hedge: a laggard task, its replica, and who won.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeEvent {
    /// The hedged task index.
    pub task: usize,
    /// Original rank that owns the task.
    pub owner: usize,
    /// Original rank the replica launched on.
    pub replica: usize,
    /// Heartbeat tick at which the task was flagged.
    pub detect_t: f64,
    /// When the replica starts (max of detection and replica idle time).
    pub replica_start: f64,
    /// When the replica would finish if it ran to completion.
    pub replica_end: f64,
    /// True when the replica's result arrives first.
    pub replica_wins: bool,
    /// When the losing party observes the winner's result and stops
    /// (its next heartbeat tick, capped at its own finish).
    pub cancel_t: f64,
}

/// The deterministic hedged schedule for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgeSchedule {
    /// The derived deadline (0.0 when hedging was not possible).
    pub deadline: f64,
    /// The heartbeat tick interval (0.0 when hedging was not possible).
    pub tick: f64,
    /// Planned hedges, in the deterministic walk order.
    pub events: Vec<HedgeEvent>,
    /// Per-rank stage finish time under the hedged schedule.
    pub rank_finish: BTreeMap<usize, f64>,
    /// Slowest rank's hedged finish.
    pub makespan: f64,
}

impl HedgeSchedule {
    /// Hedges whose replica produced the winning result.
    pub fn replica_wins(&self) -> usize {
        self.events.iter().filter(|e| e.replica_wins).count()
    }

    /// Hedges whose replica was cancelled (the owner won the race).
    pub fn replica_cancellations(&self) -> usize {
        self.events.len() - self.replica_wins()
    }
}

/// Max over ranks of the unhedged (straggler-afflicted) stage time.
pub fn makespan_unhedged(timings: &[RankTimings]) -> f64 {
    timings
        .iter()
        .map(RankTimings::unhedged_finish)
        .fold(0.0, f64::max)
}

/// Max over ranks of the fault-free (nominal) stage time.
pub fn makespan_healthy(timings: &[RankTimings]) -> f64 {
    timings
        .iter()
        .map(RankTimings::healthy_finish)
        .fold(0.0, f64::max)
}

/// Nearest-rank quantile of a sorted slice (deterministic, no
/// interpolation).
fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(n - 1)]
}

/// A schedule that hedges nothing: every rank just runs its own queue.
fn unhedged_schedule(timings: &[RankTimings]) -> HedgeSchedule {
    let rank_finish: BTreeMap<usize, f64> = timings
        .iter()
        .map(|rt| (rt.rank, rt.unhedged_finish()))
        .collect();
    let makespan = rank_finish.values().copied().fold(0.0, f64::max);
    HedgeSchedule {
        deadline: 0.0,
        tick: 0.0,
        events: Vec::new(),
        rank_finish,
        makespan,
    }
}

/// Replay a stage's heartbeat record into the hedged schedule.
///
/// The walk is deterministic: ranks are processed in ascending original
/// rank order, each rank's tasks in execution order. A task is a laggard
/// when its actual duration exceeds the deadline; the first laggard of a
/// rank is detected one full deadline after it started (quantised to the
/// heartbeat clock), and once a rank is flagged its subsequent laggards
/// are hedged at their start tick — the policy already knows the rank is
/// slow. The replica runs on the rank with the earliest availability
/// (ties broken by lower rank id) at the replica's own straggle factor.
/// First result wins; the loser stops at its next heartbeat tick.
pub fn plan_hedges(timings: &[RankTimings], policy: &DeadlinePolicy) -> HedgeSchedule {
    let mut ranks: Vec<&RankTimings> = timings.iter().collect();
    ranks.sort_by_key(|rt| rt.rank);

    let mut samples: Vec<f64> = ranks
        .iter()
        .flat_map(|rt| rt.tasks.iter().map(|t| t.actual))
        .collect();
    if ranks.len() < 2 || samples.len() < policy.min_samples || policy.heartbeats_per_deadline == 0
    {
        return unhedged_schedule(timings);
    }
    samples.sort_by(f64::total_cmp);
    let deadline = (quantile_of_sorted(&samples, policy.quantile) * policy.multiplier)
        .max(policy.floor.max(0.0));
    if !deadline.is_finite() || deadline <= 0.0 {
        return unhedged_schedule(timings);
    }
    let tick = deadline / f64::from(policy.heartbeats_per_deadline);
    let tick_ceil = |t: f64| (t / tick).ceil() * tick;

    // Availability for replica work: a rank's own unhedged finish,
    // pushed later as replica assignments land on it.
    let mut avail: BTreeMap<usize, f64> = ranks
        .iter()
        .map(|rt| (rt.rank, rt.unhedged_finish()))
        .collect();
    let straggle: BTreeMap<usize, f64> = ranks.iter().map(|rt| (rt.rank, rt.straggle)).collect();
    // End of the last replica assignment each rank served (0 = none).
    let mut replica_busy: BTreeMap<usize, f64> = ranks.iter().map(|rt| (rt.rank, 0.0)).collect();
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    let mut events: Vec<HedgeEvent> = Vec::new();
    let mut cursors: BTreeMap<usize, f64> = BTreeMap::new();

    for rt in &ranks {
        let mut cursor = 0.0_f64;
        for hb in &rt.tasks {
            let start = cursor;
            let own_end = start + hb.actual;
            if hb.actual <= deadline {
                cursor = own_end;
                continue;
            }
            // Laggard. Already-flagged ranks are hedged at the task's
            // start tick; a fresh flag waits out one full deadline.
            let detect = if flagged.contains(&rt.rank) {
                tick_ceil(start)
            } else {
                tick_ceil(start + deadline)
            };
            flagged.insert(rt.rank);
            if detect >= own_end {
                cursor = own_end;
                continue;
            }
            // Earliest-available peer, ties to the lower rank id.
            let chosen = avail
                .iter()
                .filter(|&(&r, _)| r != rt.rank)
                .map(|(&r, &a)| (a.max(detect), r))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let Some((rep_start, replica)) = chosen else {
                cursor = own_end;
                continue;
            };
            let rep_dur = hb.nominal * straggle.get(&replica).copied().unwrap_or(1.0);
            let rep_end = rep_start + rep_dur;
            if rep_end < own_end {
                // Replica wins: the owner observes the result at its
                // next heartbeat tick and abandons the task.
                let cancel_t = tick_ceil(rep_end).min(own_end);
                events.push(HedgeEvent {
                    task: hb.task,
                    owner: rt.rank,
                    replica,
                    detect_t: detect,
                    replica_start: rep_start,
                    replica_end: rep_end,
                    replica_wins: true,
                    cancel_t,
                });
                avail.insert(replica, rep_end);
                replica_busy
                    .entry(replica)
                    .and_modify(|b| *b = b.max(rep_end))
                    .or_insert(rep_end);
                cursor = cancel_t;
            } else {
                // Owner wins: the replica is cancelled at its next
                // heartbeat tick after the owner finishes (never before
                // the replica even started, never after it finished).
                let cancel_t = tick_ceil(own_end).min(rep_end).max(rep_start);
                events.push(HedgeEvent {
                    task: hb.task,
                    owner: rt.rank,
                    replica,
                    detect_t: detect,
                    replica_start: rep_start,
                    replica_end: rep_end,
                    replica_wins: false,
                    cancel_t,
                });
                avail.insert(replica, cancel_t);
                replica_busy
                    .entry(replica)
                    .and_modify(|b| *b = b.max(cancel_t))
                    .or_insert(cancel_t);
                cursor = own_end;
            }
        }
        cursors.insert(rt.rank, cursor);
    }

    let rank_finish: BTreeMap<usize, f64> = cursors
        .iter()
        .map(|(&r, &c)| (r, c.max(replica_busy.get(&r).copied().unwrap_or(0.0))))
        .collect();
    let makespan = rank_finish.values().copied().fold(0.0, f64::max);
    HedgeSchedule {
        deadline,
        tick,
        events,
        rank_finish,
        makespan,
    }
}

/// Outcome of publishing a task result to the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishOutcome {
    /// First result for this task: stored.
    Stored,
    /// A result was already stored; `identical` reports the bitwise
    /// comparison against it (false ⇒ speculation divergence).
    Duplicate { identical: bool },
    /// The publisher had already been cancelled for this task; the
    /// payload was dropped, not stored.
    Rejected,
}

#[derive(Debug, Default)]
struct StageState {
    /// First stored result per task: (publisher original rank, payload).
    results: BTreeMap<usize, (usize, Vec<f64>)>,
    /// `(task, rank)` cancellations: that rank may no longer publish
    /// that task.
    cancelled: BTreeSet<(usize, usize)>,
    /// Per-rank in-progress heartbeat streams.
    pending: BTreeMap<usize, Vec<TaskHeartbeat>>,
    /// Ranks that finished the stage, with their straggle factor.
    done: BTreeMap<usize, f64>,
    /// Total heartbeats observed.
    heartbeats: u64,
}

type StageKey = (usize, String);

/// The cross-rank progress board: heartbeats, result publication with
/// first-result-wins plus bitwise duplicate comparison, cancellations,
/// and a failure-aware rendezvous that hands every rank the full stage
/// timing record. Cloned handles share state (like
/// [`crate::cluster::RecoveryStash`]); entries are namespaced by
/// `(recovery round, stage label)` so recovery rounds never observe a
/// previous round's heartbeats.
#[derive(Debug, Clone, Default)]
pub struct SpeculationBoard {
    inner: Arc<Mutex<BTreeMap<StageKey, StageState>>>,
}

impl SpeculationBoard {
    fn key(round: usize, stage: &str) -> StageKey {
        (round, stage.to_string())
    }

    /// Record one completed task's heartbeat for `rank`.
    pub fn heartbeat(&self, round: usize, stage: &str, rank: usize, hb: TaskHeartbeat) {
        let mut inner = self.inner.lock();
        let st = inner.entry(Self::key(round, stage)).or_default();
        st.pending.entry(rank).or_default().push(hb);
        st.heartbeats += 1;
    }

    /// Total heartbeats observed for a stage so far.
    pub fn heartbeats(&self, round: usize, stage: &str) -> u64 {
        self.inner
            .lock()
            .get(&Self::key(round, stage))
            .map_or(0, |st| st.heartbeats)
    }

    /// Publish a task result. The first publication is stored; later
    /// ones are bit-compared against it; a publication from a rank that
    /// was cancelled for this task is rejected outright.
    pub fn publish(
        &self,
        round: usize,
        stage: &str,
        task: usize,
        rank: usize,
        payload: &[f64],
    ) -> PublishOutcome {
        let mut inner = self.inner.lock();
        let st = inner.entry(Self::key(round, stage)).or_default();
        if st.cancelled.contains(&(task, rank)) {
            return PublishOutcome::Rejected;
        }
        match st.results.get(&task) {
            Some((_, stored)) => {
                let identical = stored.len() == payload.len()
                    && stored
                        .iter()
                        .zip(payload)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                PublishOutcome::Duplicate { identical }
            }
            None => {
                st.results.insert(task, (rank, payload.to_vec()));
                PublishOutcome::Stored
            }
        }
    }

    /// Cancel `rank`'s replica (or owner) execution of `task`: any later
    /// publication from that rank for that task is rejected.
    pub fn cancel(&self, round: usize, stage: &str, task: usize, rank: usize) {
        let mut inner = self.inner.lock();
        let st = inner.entry(Self::key(round, stage)).or_default();
        st.cancelled.insert((task, rank));
    }

    /// The stored result for `task`, if any: (publisher rank, payload).
    pub fn result(&self, round: usize, stage: &str, task: usize) -> Option<(usize, Vec<f64>)> {
        self.inner
            .lock()
            .get(&Self::key(round, stage))
            .and_then(|st| st.results.get(&task).cloned())
    }

    /// Mark `rank` finished with the stage, sealing its heartbeat stream
    /// and recording its straggle factor for the replica cost model.
    pub fn finish(&self, round: usize, stage: &str, rank: usize, straggle: f64) {
        let mut inner = self.inner.lock();
        let st = inner.entry(Self::key(round, stage)).or_default();
        st.pending.entry(rank).or_default();
        st.done.insert(rank, straggle);
    }

    fn timings_if_complete(
        &self,
        round: usize,
        stage: &str,
        expected: &[usize],
    ) -> Option<Vec<RankTimings>> {
        let inner = self.inner.lock();
        let st = inner.get(&Self::key(round, stage))?;
        if !expected.iter().all(|r| st.done.contains_key(r)) {
            return None;
        }
        Some(
            expected
                .iter()
                .map(|&r| RankTimings {
                    rank: r,
                    straggle: st.done.get(&r).copied().unwrap_or(1.0),
                    tasks: st.pending.get(&r).cloned().unwrap_or_default(),
                })
                .collect(),
        )
    }

    /// Failure-aware rendezvous: block until every rank in `expected`
    /// has called [`SpeculationBoard::finish`] for this stage, then
    /// return the complete timing record (sorted by `expected` order).
    ///
    /// Polls in [`WAIT_SLICE`] increments like every other blocking wait
    /// in the runtime: a peer failure surfaces as
    /// [`MpiError::RankFailed`], a revocation as [`MpiError::Revoked`],
    /// and silence past the rank's watchdog as
    /// [`MpiError::WatchdogTimeout`] — never a hang, never a panic.
    pub fn wait_timings(
        &self,
        ctx: &RankCtx,
        round: usize,
        stage: &str,
        expected: &[usize],
    ) -> Result<Vec<RankTimings>, MpiError> {
        let start = Instant::now();
        let watchdog = ctx.watchdog();
        loop {
            if let Some(timings) = self.timings_if_complete(round, stage, expected) {
                return Ok(timings);
            }
            if let Some(abort) = ctx.abort_state() {
                if abort.is_revoked() {
                    return Err(MpiError::Revoked {
                        phase: "speculation_wait",
                    });
                }
                if abort.is_aborted() {
                    let rank = abort.first_failure().unwrap_or(usize::MAX);
                    return Err(MpiError::RankFailed {
                        rank,
                        phase: "speculation_wait",
                    });
                }
            }
            if start.elapsed() >= watchdog {
                return Err(MpiError::WatchdogTimeout {
                    phase: "speculation_wait",
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            std::thread::sleep(WAIT_SLICE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::model::MachineModel;
    use std::time::Duration;

    fn uniform_timings(
        world: usize,
        tasks_per_rank: usize,
        straggler: (usize, f64),
    ) -> Vec<RankTimings> {
        (0..world)
            .map(|r| {
                let factor = if r == straggler.0 { straggler.1 } else { 1.0 };
                RankTimings {
                    rank: r,
                    straggle: factor,
                    tasks: (0..tasks_per_rank)
                        .map(|k| TaskHeartbeat {
                            task: r * tasks_per_rank + k,
                            nominal: 1.0,
                            actual: factor,
                        })
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn no_hedging_below_min_samples_or_single_rank() {
        let policy = DeadlinePolicy::default();
        let single = uniform_timings(1, 4, (0, 3.0));
        let sched = plan_hedges(&single, &policy);
        assert!(sched.events.is_empty());
        assert_eq!(sched.makespan, makespan_unhedged(&single));

        let few = vec![
            RankTimings {
                rank: 0,
                straggle: 1.0,
                tasks: vec![TaskHeartbeat {
                    task: 0,
                    nominal: 1.0,
                    actual: 1.0,
                }],
            },
            RankTimings {
                rank: 1,
                straggle: 1.0,
                tasks: vec![],
            },
        ];
        let strict = DeadlinePolicy {
            min_samples: 2,
            ..DeadlinePolicy::default()
        };
        assert!(plan_hedges(&few, &strict).events.is_empty());
    }

    #[test]
    fn single_straggler_recovers_most_of_the_slowdown() {
        let timings = uniform_timings(4, 4, (1, 4.0));
        let policy = DeadlinePolicy::default();
        let sched = plan_hedges(&timings, &policy);
        let unhedged = makespan_unhedged(&timings);
        let healthy = makespan_healthy(&timings);
        assert!(!sched.events.is_empty(), "straggler tasks must be hedged");
        assert!(sched.makespan < unhedged);
        let recovered = (unhedged - sched.makespan) / (unhedged - healthy);
        assert!(
            recovered >= 0.5,
            "hedging must recover >= 50% of the slowdown, got {recovered:.3} \
             (healthy {healthy}, hedged {}, unhedged {unhedged})",
            sched.makespan
        );
        // Healthy ranks are never flagged.
        for ev in &sched.events {
            assert_eq!(ev.owner, 1);
            assert_ne!(ev.replica, 1);
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_record() {
        let timings = uniform_timings(4, 6, (2, 3.0));
        let policy = DeadlinePolicy::default();
        let a = plan_hedges(&timings, &policy);
        let b = plan_hedges(&timings, &policy);
        assert_eq!(a, b);
        // Shuffled input order must not change the schedule.
        let mut rev = timings;
        rev.reverse();
        assert_eq!(plan_hedges(&rev, &policy), a);
    }

    #[test]
    fn healthy_record_plans_no_hedges() {
        let timings = uniform_timings(4, 4, (0, 1.0));
        let sched = plan_hedges(&timings, &DeadlinePolicy::default());
        assert!(sched.events.is_empty());
        assert!((sched.makespan - 4.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_floor_suppresses_tiny_task_hedges() {
        let timings = uniform_timings(4, 4, (1, 3.0));
        let policy = DeadlinePolicy {
            floor: 100.0,
            ..DeadlinePolicy::default()
        };
        let sched = plan_hedges(&timings, &policy);
        assert!(sched.events.is_empty(), "floor must suppress hedging");
        assert_eq!(sched.deadline, 100.0);
    }

    #[test]
    fn board_first_result_wins_and_bit_compares_duplicates() {
        let board = SpeculationBoard::default();
        assert_eq!(
            board.publish(0, "sel", 3, 0, &[1.0, 2.0]),
            PublishOutcome::Stored
        );
        assert_eq!(
            board.publish(0, "sel", 3, 2, &[1.0, 2.0]),
            PublishOutcome::Duplicate { identical: true }
        );
        assert_eq!(
            board.publish(0, "sel", 3, 2, &[1.0, 2.0 + 1e-16]),
            PublishOutcome::Duplicate { identical: true },
            "2.0 + 1e-16 rounds to 2.0 exactly"
        );
        assert_eq!(
            board.publish(0, "sel", 3, 2, &[1.0, 2.5]),
            PublishOutcome::Duplicate { identical: false }
        );
        assert_eq!(
            board.publish(0, "sel", 3, 2, &[1.0]),
            PublishOutcome::Duplicate { identical: false },
            "length mismatch is a divergence"
        );
        // The stored payload is still the first one.
        assert_eq!(board.result(0, "sel", 3), Some((0, vec![1.0, 2.0])));
    }

    #[test]
    fn cancelled_replicas_never_publish() {
        let board = SpeculationBoard::default();
        board.cancel(0, "est", 7, 3);
        assert_eq!(
            board.publish(0, "est", 7, 3, &[9.0]),
            PublishOutcome::Rejected
        );
        assert_eq!(
            board.result(0, "est", 7),
            None,
            "rejected payload not stored"
        );
        // Another rank can still publish.
        assert_eq!(
            board.publish(0, "est", 7, 0, &[9.0]),
            PublishOutcome::Stored
        );
    }

    #[test]
    fn namespaces_isolate_rounds_and_stages() {
        let board = SpeculationBoard::default();
        board.publish(0, "sel", 0, 0, &[1.0]);
        assert_eq!(board.result(1, "sel", 0), None);
        assert_eq!(board.result(0, "est", 0), None);
        board.heartbeat(
            0,
            "sel",
            0,
            TaskHeartbeat {
                task: 0,
                nominal: 1.0,
                actual: 1.0,
            },
        );
        assert_eq!(board.heartbeats(0, "sel"), 1);
        assert_eq!(board.heartbeats(1, "sel"), 0);
    }

    #[test]
    fn wait_timings_rendezvous_hands_every_rank_the_record() {
        let b = SpeculationBoard::default();
        let report = Cluster::new(3, MachineModel::deterministic()).run(move |ctx, world| {
            let r = world.rank();
            b.heartbeat(
                0,
                "sel",
                r,
                TaskHeartbeat {
                    task: r,
                    nominal: 1.0,
                    actual: if r == 1 { 3.0 } else { 1.0 },
                },
            );
            b.finish(0, "sel", r, if r == 1 { 3.0 } else { 1.0 });
            b.wait_timings(ctx, 0, "sel", &[0, 1, 2])
                .map_err(|e| e.to_string())
        });
        for res in &report.results {
            let timings = res.as_ref().expect("rendezvous must complete");
            assert_eq!(timings.len(), 3);
            assert_eq!(timings[1].straggle, 3.0);
            assert_eq!(timings[1].tasks[0].actual, 3.0);
        }
    }

    #[test]
    fn wait_timings_surfaces_watchdog_timeout_not_a_hang() {
        let b = SpeculationBoard::default();
        let report = Cluster::new(2, MachineModel::deterministic())
            .with_watchdog(Duration::from_millis(40))
            .run(move |ctx, world| {
                let r = world.rank();
                // Rank 1 never finishes: both waiters must time out.
                if r == 0 {
                    b.finish(0, "sel", 0, 1.0);
                }
                b.wait_timings(ctx, 0, "sel", &[0, 1])
            });
        for res in &report.results {
            match res {
                Err(MpiError::WatchdogTimeout { phase, .. }) => {
                    assert_eq!(*phase, "speculation_wait");
                }
                other => panic!("expected watchdog timeout, got {other:?}"),
            }
        }
    }
}
