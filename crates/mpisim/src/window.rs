//! One-sided communication windows (`MPI_Win` analogue).
//!
//! The paper's two data-movement innovations both ride on MPI one-sided
//! communication: the Tier-2 randomized shuffle of `UoI_LASSO` and the
//! distributed Kronecker product / vectorisation of `UoI_VAR`, where a
//! small set of `n_reader` ranks expose `X` and `Y` through windows and
//! hundreds of thousands of compute ranks `get` their blocks.
//!
//! The virtual-time model captures the crucial bottleneck: a window's
//! owning rank serialises the transfers it serves. Each `get`/`put`
//! occupies the target for `alpha + bytes*beta`, inflated by the cluster's
//! oversubscription factor (one executed get stands for `P_model/P_exec`
//! modeled gets), so the distribution time of the Kronecker build grows
//! with `P_model / n_readers` exactly as Figs 9–10 report.

use crate::comm::{Comm, RankCtx, WindowFault};
use crate::fault::MpiError;
use crate::ledger::Phase;
use parking_lot::{Mutex, RwLock};

/// Flip one mantissa bit of the first element — the deterministic
/// "corrupted transfer" a [`crate::FaultPlan`] injects.
fn corrupt_first(buf: &mut [f64]) {
    if let Some(x) = buf.first_mut() {
        *x = f64::from_bits(x.to_bits() ^ (1 << 52));
    }
}

pub(crate) struct WindowInner {
    /// Per-rank exposed buffers (empty for ranks that exposed nothing).
    data: Vec<RwLock<Vec<f64>>>,
    /// Virtual time until which each target rank's window is busy serving.
    busy: Vec<Mutex<f64>>,
    /// Occupancy inflation applied per executed transfer. When every rank
    /// exposes a buffer the window set scales with the modeled machine
    /// (per-window load is rank-count independent -> 1.0); when only a
    /// fixed subset exposes (the Kronecker `n_reader` pattern) each
    /// executed transfer stands for `oversub` modeled ones -> oversub.
    occ_multiplier: f64,
}

/// Handle to a collectively created window on a communicator.
pub struct Window {
    inner: std::sync::Arc<WindowInner>,
    comm_size: usize,
}

impl Window {
    /// Collectively create a window over `comm`. Each rank exposes
    /// `local` (possibly empty). Charged to the distribution phase.
    pub fn create(ctx: &mut RankCtx, comm: &Comm, local: Vec<f64>) -> Window {
        let size = comm.size();
        if size == 1 {
            let inner = std::sync::Arc::new(WindowInner {
                data: vec![RwLock::new(local)],
                busy: vec![Mutex::new(0.0)],
                occ_multiplier: 1.0,
            });
            ctx.charge(
                Phase::Distribution,
                ctx.model().barrier_time(comm.modeled_size(ctx)),
            );
            return Window {
                inner,
                comm_size: 1,
            };
        }
        // Each rank deposits its exposed buffer into the communicator's
        // collective slots *by move* — window creation registers memory, it
        // does not copy it, so the only modeled cost is a barrier. SPMD
        // discipline guarantees at most one create() is in flight per
        // communicator, so after the registration barrier every rank finds
        // the fresh window at key `window_seq - 1`.
        comm.deposit_slot(ctx, local);
        if comm.rank() == 0 {
            let buffers = comm.take_slots();
            let exposers = buffers.iter().filter(|b| !b.is_empty()).count();
            let occ_multiplier = if exposers >= size { 1.0 } else { ctx.oversub() };
            let seq = comm
                .inner
                .window_seq
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let inner = std::sync::Arc::new(WindowInner {
                data: buffers.into_iter().map(RwLock::new).collect(),
                busy: (0..size).map(|_| Mutex::new(0.0)).collect(),
                occ_multiplier,
            });
            comm.inner.windows.lock().insert(seq, inner);
        }
        comm.barrier_phase(ctx, Phase::Distribution);
        let key = comm
            .inner
            .window_seq
            .load(std::sync::atomic::Ordering::SeqCst)
            - 1;
        // A missing registration is a runtime invariant violation, not a
        // rank fault: escalate a typed internal error (caught by the
        // cluster's panic capture) instead of an anonymous `expect`.
        let inner = match comm.inner.windows.lock().get(&key) {
            Some(inner) => inner.clone(),
            None => std::panic::panic_any(MpiError::Internal {
                what: format!("window registry missing fresh window {key}"),
            }),
        };
        Window {
            inner,
            comm_size: size,
        }
    }

    /// Number of ranks exposing buffers.
    pub fn comm_size(&self) -> usize {
        self.comm_size
    }

    /// Length of the buffer exposed by `target`.
    pub fn len_of(&self, target: usize) -> usize {
        self.inner.data[target].read().len()
    }

    /// One-sided read of `range` from `target`'s buffer into a fresh
    /// vector. Charged to distribution with target-side serialisation.
    pub fn get(&self, ctx: &mut RankCtx, target: usize, range: std::ops::Range<usize>) -> Vec<f64> {
        let mut out = vec![0.0; range.len()];
        self.get_into(ctx, target, range, &mut out);
        out
    }

    /// One-sided read into a caller-provided buffer.
    pub fn get_into(
        &self,
        ctx: &mut RankCtx,
        target: usize,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert!(target < self.comm_size, "window get: bad target");
        assert_eq!(out.len(), range.len());
        match ctx.window_fault() {
            WindowFault::Drop => {
                // Transfer lost in flight: the destination buffer keeps
                // whatever it held; the op is still charged below.
                out.fill(0.0);
            }
            fault => {
                let src = self.inner.data[target].read();
                out.copy_from_slice(&src[range]);
                drop(src);
                if matches!(fault, WindowFault::Corrupt) {
                    corrupt_first(out);
                }
            }
        }
        self.charge_transfer(ctx, target, out.len() * 8);
    }

    /// One-sided write of `data` into `target`'s buffer at `offset`.
    pub fn put(&self, ctx: &mut RankCtx, target: usize, offset: usize, data: &[f64]) {
        assert!(target < self.comm_size, "window put: bad target");
        let fault = ctx.window_fault();
        if !matches!(fault, WindowFault::Drop) {
            let mut dst = self.inner.data[target].write();
            assert!(
                offset + data.len() <= dst.len(),
                "window put: write of {} at {offset} exceeds buffer {}",
                data.len(),
                dst.len()
            );
            dst[offset..offset + data.len()].copy_from_slice(data);
            if matches!(fault, WindowFault::Corrupt) {
                corrupt_first(&mut dst[offset..offset + data.len()]);
            }
        }
        self.charge_transfer_kind(ctx, target, data.len() * 8, "put");
    }

    /// Read back this rank's own exposed buffer (after remote puts).
    pub fn local_copy(&self, rank: usize) -> Vec<f64> {
        self.inner.data[rank].read().clone()
    }

    /// Apply the serialisation cost model for a transfer of `bytes`
    /// against `target`'s window.
    ///
    /// Queueing model: the window serves transfers serially. One executed
    /// transfer stands for `oversub` modeled transfers, so it *occupies*
    /// the window for `oversub * (alpha + bytes*beta)`; the requester
    /// itself waits for its queue position and then pays one transfer's
    /// service time. Few readers serving many ranks therefore back up —
    /// the Fig 9/10 distribution blow-up.
    fn charge_transfer(&self, ctx: &mut RankCtx, target: usize, bytes: usize) {
        self.charge_transfer_kind(ctx, target, bytes, "get")
    }

    fn charge_transfer_kind(
        &self,
        ctx: &mut RankCtx,
        target: usize,
        bytes: usize,
        kind: &'static str,
    ) {
        let service = ctx.model().onesided_time(bytes);
        let occupancy = service * self.inner.occ_multiplier;
        let start = {
            let mut busy = self.inner.busy[target].lock();
            let start = busy.max(ctx.clock());
            *busy = start + occupancy;
            start
        };
        ctx.advance_to(start + service, Phase::Distribution);
        let rank = ctx.world_rank();
        ctx.telemetry()
            .record_with(|| uoi_telemetry::TraceEvent::WindowTransfer {
                rank,
                kind,
                target,
                bytes,
                t_start: start,
                t_end: start + service,
            });
    }

    /// Synchronise all window users (an `MPI_Win_fence` analogue); charged
    /// to the distribution phase.
    pub fn fence(&self, ctx: &mut RankCtx, comm: &Comm) {
        comm.barrier_phase(ctx, Phase::Distribution);
    }

    /// Open a non-blocking access epoch: every `get_into` issued through
    /// the epoch is treated as in flight *concurrently* from the current
    /// virtual time (the `MPI_Get ... MPI_Win_fence` pattern the paper's
    /// distributed Kronecker product uses). Windows still serialise the
    /// requests they serve, but a slow queue on one window no longer
    /// delays requests to others. Call [`WindowEpoch::finish`] to close
    /// the epoch and charge the elapsed distribution time.
    pub fn epoch<'w>(&'w self, ctx: &RankCtx) -> WindowEpoch<'w> {
        WindowEpoch {
            win: self,
            issue_clock: ctx.clock(),
            max_end: ctx.clock(),
        }
    }
}

/// An open non-blocking window-access epoch (see [`Window::epoch`]).
pub struct WindowEpoch<'w> {
    win: &'w Window,
    issue_clock: f64,
    max_end: f64,
}

impl WindowEpoch<'_> {
    /// Issue a non-blocking one-sided read; completion is deferred to
    /// [`WindowEpoch::finish`].
    pub fn get_into(
        &mut self,
        ctx: &mut RankCtx,
        target: usize,
        range: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert!(target < self.win.comm_size, "window get: bad target");
        assert_eq!(out.len(), range.len());
        match ctx.window_fault() {
            WindowFault::Drop => out.fill(0.0),
            fault => {
                let src = self.win.inner.data[target].read();
                out.copy_from_slice(&src[range]);
                drop(src);
                if matches!(fault, WindowFault::Corrupt) {
                    corrupt_first(out);
                }
            }
        }
        let bytes = out.len() * 8;
        let service = ctx.model().onesided_time(bytes);
        let occupancy = service * self.win.inner.occ_multiplier;
        let (start, end) = {
            let mut busy = self.win.inner.busy[target].lock();
            let start = busy.max(self.issue_clock);
            *busy = start + occupancy;
            (start, start + service)
        };
        if end > self.max_end {
            self.max_end = end;
        }
        let rank = ctx.world_rank();
        ctx.telemetry()
            .record_with(|| uoi_telemetry::TraceEvent::WindowTransfer {
                rank,
                kind: "get_async",
                target,
                bytes,
                t_start: start,
                t_end: end,
            });
    }

    /// Complete the epoch: the rank's clock advances to the completion of
    /// its slowest outstanding request (charged to distribution).
    pub fn finish(self, ctx: &mut RankCtx) {
        ctx.advance_to(self.max_end, Phase::Distribution);
    }
}
