//! Stress and determinism tests for the SPMD runtime: large rank counts,
//! deep communicator nesting, window churn, and reproducibility of both
//! data and virtual time.

use uoi_mpisim::{Cluster, MachineModel, Phase, Window};

#[test]
fn sixty_four_ranks_mixed_collectives() {
    let report = Cluster::new(64, MachineModel::deterministic()).run(|ctx, world| {
        let mut acc = 0.0;
        for round in 0..5 {
            let mut v = vec![(world.rank() * round) as f64; 32];
            world.allreduce_sum(ctx, &mut v);
            acc += v[0];
            world.barrier(ctx);
        }
        // Gather/scatter round-trip.
        let g = world.gather(ctx, 0, &[world.rank() as f64]);
        let chunks = g.map(|all| all.into_iter().map(|p| vec![p[0] * 2.0]).collect());
        let mine = world.scatter(ctx, 0, chunks);
        (acc, mine[0])
    });
    let sum_ranks: f64 = (0..64).map(|r| r as f64).sum();
    for (r, &(acc, doubled)) in report.results.iter().enumerate() {
        let expected: f64 = (0..5).map(|round| sum_ranks * round as f64).sum();
        assert_eq!(acc, expected);
        assert_eq!(doubled, r as f64 * 2.0);
    }
}

#[test]
fn deterministic_virtual_time_across_runs() {
    let run = || {
        Cluster::new(8, MachineModel::knl()) // noise ON — still deterministic
            .modeled_ranks(1024)
            .run(|ctx, world| {
                for _ in 0..10 {
                    let mut v = vec![1.0; 512];
                    world.allreduce_sum(ctx, &mut v);
                    ctx.compute_flops(1e6, 1e5);
                }
                ctx.clock()
            })
            .clocks
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "virtual clocks must be reproducible run-to-run");
}

#[test]
fn deterministic_allreduce_data_with_noncommutative_floats() {
    // Values chosen so that different summation orders give different
    // last-ulp results; the slot-ordered reduction must be stable.
    let run = || {
        Cluster::new(16, MachineModel::deterministic())
            .run(|ctx, world| {
                let x = 0.1
                    * (world.rank() as f64 + 1.0)
                    * 1e10_f64.powi((world.rank() % 3) as i32 - 1);
                let mut v = vec![x];
                world.allreduce_sum(ctx, &mut v);
                v[0]
            })
            .results
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    // All ranks agree bitwise.
    for w in a.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

#[test]
fn three_level_nesting_with_uneven_groups() {
    // 12 ranks -> 3 groups of 4 -> 2 subgroups of 2.
    let report = Cluster::new(12, MachineModel::deterministic()).run(|ctx, world| {
        let g1 = world.split(ctx, (world.rank() % 3) as i64, world.rank() as i64);
        assert_eq!(g1.size(), 4);
        let g2 = g1.split(ctx, (g1.rank() / 2) as i64, g1.rank() as i64);
        assert_eq!(g2.size(), 2);
        let mut v = vec![1.0];
        g2.allreduce_sum(ctx, &mut v);
        // And the world still works afterwards.
        let mut w = vec![1.0];
        world.allreduce_sum(ctx, &mut w);
        (v[0], w[0])
    });
    for &(sub, world_sum) in &report.results {
        assert_eq!(sub, 2.0);
        assert_eq!(world_sum, 12.0);
    }
}

#[test]
fn window_churn_many_windows() {
    // Repeated create/use cycles must not leak state or deadlock.
    let report = Cluster::new(6, MachineModel::deterministic()).run(|ctx, world| {
        let mut total = 0.0;
        for round in 0..8 {
            let local: Vec<f64> = (0..4)
                .map(|i| (world.rank() * 100 + round * 10 + i) as f64)
                .collect();
            let win = Window::create(ctx, world, local);
            win.fence(ctx, world);
            let peer = (world.rank() + 1) % world.size();
            let got = win.get(ctx, peer, 0..4);
            total += got[0];
            win.fence(ctx, world);
        }
        total
    });
    for (r, &t) in report.results.iter().enumerate() {
        let peer = (r + 1) % 6;
        let expected: f64 = (0..8).map(|round| (peer * 100 + round * 10) as f64).sum();
        assert_eq!(t, expected);
    }
}

#[test]
fn concurrent_sibling_groups_do_not_interfere() {
    // Two disjoint subgroups run different numbers of collectives
    // concurrently; each must see only its own data.
    let report = Cluster::new(8, MachineModel::deterministic()).run(|ctx, world| {
        let color = (world.rank() < 4) as i64;
        let sub = world.split(ctx, color, world.rank() as i64);
        let rounds = if color == 1 { 7 } else { 3 };
        let mut last = 0.0;
        for _ in 0..rounds {
            let mut v = vec![world.rank() as f64];
            sub.allreduce_sum(ctx, &mut v);
            last = v[0];
        }
        last
    });
    for (r, &v) in report.results.iter().enumerate() {
        let expected = if r < 4 {
            0.0 + 1.0 + 2.0 + 3.0
        } else {
            4.0 + 5.0 + 6.0 + 7.0
        };
        assert_eq!(v, expected);
    }
}

#[test]
fn ledger_phases_partition_the_clock() {
    let report = Cluster::new(4, MachineModel::knl())
        .modeled_ranks(4096)
        .run(|ctx, world| {
            ctx.charge_io(0.25);
            ctx.compute_flops(1e8, 1e7);
            let local = if world.rank() == 0 {
                vec![0.5; 128]
            } else {
                vec![]
            };
            let win = Window::create(ctx, world, local);
            let _ = win.get(ctx, 0, 0..64);
            win.fence(ctx, world);
            let mut v = vec![1.0; 64];
            world.allreduce_sum(ctx, &mut v);
        });
    for (clock, l) in report.clocks.iter().zip(&report.ledgers) {
        assert!((clock - l.total()).abs() < 1e-9);
        assert!(l.get(Phase::DataIo) >= 0.25);
        assert!(l.get(Phase::Compute) > 0.0);
        assert!(l.get(Phase::Distribution) > 0.0);
        assert!(l.get(Phase::Comm) > 0.0);
    }
}

#[test]
fn p2p_interleaved_with_collectives() {
    let report = Cluster::new(4, MachineModel::deterministic()).run(|ctx, world| {
        // Odd ranks send to even ranks, then everyone allreduces.
        if world.rank() % 2 == 1 {
            world.send(ctx, world.rank() - 1, 1, &[world.rank() as f64]);
        }
        let received = if world.rank() % 2 == 0 {
            let (_, p) = world.recv(ctx, Some(world.rank() + 1), Some(1));
            p[0]
        } else {
            0.0
        };
        let mut v = vec![received];
        world.allreduce_sum(ctx, &mut v);
        v[0]
    });
    for &v in &report.results {
        assert_eq!(v, 1.0 + 3.0);
    }
}
