//! Telemetry invariants over real cluster runs: span nesting is
//! well-formed, per-rank PhaseCharge totals reconcile with the ledger
//! and the virtual clock, collective/window events carry consistent
//! virtual intervals, and a JSONL trace round-trips losslessly.

use std::collections::HashMap;
use std::sync::Arc;
use uoi_mpisim::{
    Cluster, JsonlSink, MachineModel, MemorySink, Phase, Telemetry, TraceEvent, Window,
};

fn traced_cluster(n: usize) -> (Cluster, Arc<MemorySink>) {
    let sink = Arc::new(MemorySink::new());
    let cluster = Cluster::new(n, MachineModel::deterministic())
        .with_telemetry(Telemetry::with_sink(sink.clone()));
    (cluster, sink)
}

#[test]
fn phase_charges_reconcile_with_ledger_and_clock() {
    let (cluster, sink) = traced_cluster(4);
    let report = cluster.run(|ctx, world| {
        ctx.compute_flops(1e6, 1e7);
        let mut v = vec![1.0; 128];
        world.allreduce_sum(ctx, &mut v);
        ctx.charge_io(0.25);
        world.barrier(ctx);
    });

    let mut per_rank: HashMap<usize, f64> = HashMap::new();
    let mut per_rank_phase: HashMap<(usize, &'static str), f64> = HashMap::new();
    for ev in sink.snapshot() {
        if let TraceEvent::PhaseCharge {
            rank,
            phase,
            seconds,
            ..
        } = ev
        {
            *per_rank.entry(rank).or_default() += seconds;
            *per_rank_phase.entry((rank, phase)).or_default() += seconds;
        }
    }
    for rank in 0..4 {
        let total = per_rank[&rank];
        let ledger = report.ledgers[rank];
        assert!(
            (total - ledger.total()).abs() < 1e-9,
            "rank {rank}: trace total {total} != ledger {}",
            ledger.total()
        );
        assert!((total - report.clocks[rank]).abs() < 1e-9);
        // Phase-level reconciliation, not just the grand total.
        for ph in Phase::ALL {
            let traced = per_rank_phase
                .get(&(rank, ph.label()))
                .copied()
                .unwrap_or(0.0);
            assert!(
                (traced - ledger.get(ph)).abs() < 1e-9,
                "rank {rank} phase {}: {traced} != {}",
                ph.label(),
                ledger.get(ph)
            );
        }
    }
}

#[test]
fn spans_nest_well_formed() {
    let (cluster, sink) = traced_cluster(3);
    cluster.run(|ctx, world| {
        ctx.span("outer", |ctx| {
            ctx.compute_flops(1e5, 1e6);
            ctx.span("inner", |ctx| {
                let mut v = vec![1.0];
                world.allreduce_sum(ctx, &mut v);
            });
            ctx.span("inner2", |ctx| ctx.compute_membound(1e4));
        });
    });

    // Per rank: every SpanEnd matches the most recent open SpanStart
    // (LIFO), every span closes, and parents are the enclosing span.
    let mut stacks: HashMap<usize, Vec<u64>> = HashMap::new();
    let mut names: HashMap<u64, String> = HashMap::new();
    let mut parents: HashMap<u64, Option<u64>> = HashMap::new();
    let mut starts: HashMap<u64, f64> = HashMap::new();
    let mut span_events = 0;
    for ev in sink.snapshot() {
        match ev {
            TraceEvent::SpanStart {
                id,
                parent,
                name,
                rank,
                t,
            } => {
                span_events += 1;
                let stack = stacks.entry(rank).or_default();
                assert_eq!(
                    parent,
                    stack.last().copied(),
                    "parent must be enclosing span"
                );
                stack.push(id);
                names.insert(id, name);
                parents.insert(id, parent);
                starts.insert(id, t);
            }
            TraceEvent::SpanEnd { id, rank, t } => {
                span_events += 1;
                let stack = stacks.entry(rank).or_default();
                assert_eq!(stack.pop(), Some(id), "spans must close LIFO");
                assert!(t >= starts[&id], "span must not end before it starts");
            }
            _ => {}
        }
    }
    for (rank, stack) in &stacks {
        assert!(stack.is_empty(), "rank {rank} left spans open: {stack:?}");
    }
    // 3 ranks x 3 spans x (start + end).
    assert_eq!(span_events, 3 * 3 * 2);
    // Ids are unique across ranks.
    assert_eq!(names.len(), 9);
    let inner_parents: Vec<_> = names
        .iter()
        .filter(|(_, n)| n.as_str() == "inner")
        .map(|(id, _)| parents[id])
        .collect();
    assert!(inner_parents.iter().all(|p| p.is_some()));
}

#[test]
fn collective_events_have_consistent_intervals() {
    let (cluster, sink) = traced_cluster(4);
    cluster.run(|ctx, world| {
        let mut v = vec![1.0; 256];
        world.allreduce_sum(ctx, &mut v);
        let mut b = vec![0.0; 16];
        world.bcast(ctx, 0, &mut b);
        world.allgather(ctx, &[1.0, 2.0]);
    });
    let collectives: Vec<_> = sink
        .snapshot()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Collective {
                op,
                bytes,
                t_start,
                t_end,
                t_min,
                t_max,
                ..
            } => Some((op, bytes, t_start, t_end, t_min, t_max)),
            _ => None,
        })
        .collect();
    let ops: Vec<&str> = collectives.iter().map(|c| c.0.as_str()).collect();
    assert!(ops.contains(&"allreduce"));
    assert!(ops.contains(&"bcast"));
    assert!(ops.contains(&"allgather"));
    for (op, bytes, t_start, t_end, t_min, t_max) in &collectives {
        assert!(t_end >= t_start, "{op}: interval must be forward in time");
        assert!(
            (t_end - t_start - t_max).abs() < 1e-12,
            "{op}: end = start + t_max"
        );
        assert!(t_min <= t_max, "{op}: min <= max");
        assert!(*bytes > 0, "{op}: bytes recorded");
    }
    // One allreduce event for the whole communicator, not one per rank.
    assert_eq!(ops.iter().filter(|o| **o == "allreduce").count(), 1);
}

#[test]
fn window_transfers_are_traced() {
    let (cluster, sink) = traced_cluster(4);
    cluster.run(|ctx, world| {
        let local = if world.rank() == 0 {
            vec![1.0; 64]
        } else {
            Vec::new()
        };
        let win = Window::create(ctx, world, local);
        let _ = win.get(ctx, 0, 0..32);
        win.put(ctx, 0, 0, &[9.0]);
        win.fence(ctx, world);
    });
    let transfers: Vec<_> = sink
        .snapshot()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::WindowTransfer {
                kind,
                target,
                bytes,
                t_start,
                t_end,
                ..
            } => Some((kind, target, bytes, t_start, t_end)),
            _ => None,
        })
        .collect();
    let gets = transfers.iter().filter(|t| t.0 == "get").count();
    let puts = transfers.iter().filter(|t| t.0 == "put").count();
    assert_eq!(gets, 4, "one traced get per rank");
    assert_eq!(puts, 4, "one traced put per rank");
    for (kind, target, bytes, t_start, t_end) in transfers {
        assert_eq!(target, 0);
        assert!(
            bytes == 32 * 8 || bytes == 8,
            "{kind}: unexpected size {bytes}"
        );
        assert!(t_end > t_start);
    }
}

#[test]
fn iallreduce_keeps_ledger_reconciliation() {
    // The rolled-back inner allreduce must not leak trace charges.
    let (cluster, sink) = traced_cluster(4);
    let report = cluster.run(|ctx, world| {
        let mut v = vec![1.0; 1 << 12];
        let pending = world.iallreduce_sum(ctx, &mut v);
        ctx.compute_flops(1e7, 1e7);
        pending.wait(ctx);
    });
    let mut per_rank: HashMap<usize, f64> = HashMap::new();
    for ev in sink.snapshot() {
        if let TraceEvent::PhaseCharge { rank, seconds, .. } = ev {
            *per_rank.entry(rank).or_default() += seconds;
        }
    }
    for rank in 0..4 {
        assert!(
            (per_rank[&rank] - report.ledgers[rank].total()).abs() < 1e-9,
            "rank {rank}: iallreduce leaked trace charges"
        );
    }
    // The deferred collective is summarised once, by rank 0.
    let i_events = sink
        .snapshot()
        .into_iter()
        .filter(|e| matches!(e, TraceEvent::Collective { op, .. } if op == "iallreduce"))
        .count();
    assert_eq!(i_events, 1);
}

#[test]
fn jsonl_trace_round_trips_through_disk() {
    let path = std::env::temp_dir().join("uoi_mpisim_trace_round_trip.jsonl");
    let sink = Arc::new(JsonlSink::create(&path).unwrap());
    let memory = Arc::new(MemorySink::new());
    // Record the same run into both sinks via two handles is impossible
    // (one handle, one sink), so run twice deterministically instead.
    let run = |telemetry: Telemetry| {
        Cluster::new(3, MachineModel::deterministic())
            .with_telemetry(telemetry)
            .run(|ctx, world| {
                ctx.span("work", |ctx| {
                    ctx.compute_flops(2e6, 1e7);
                    let mut v = vec![world.rank() as f64];
                    world.allreduce_sum(ctx, &mut v);
                });
            })
    };
    run(Telemetry::with_sink(sink));
    run(Telemetry::with_sink(memory.clone()));
    let from_disk = JsonlSink::read_events(&path).unwrap();
    let from_memory = memory.snapshot();
    assert_eq!(from_disk.len(), from_memory.len());
    // Span ids differ between runs (global allocator); compare
    // everything else via the JSON encoding with ids masked.
    let mask = |e: &TraceEvent| {
        let mut j = e.to_json().to_string_compact();
        if let TraceEvent::SpanStart { id, .. } | TraceEvent::SpanEnd { id, .. } = e {
            j = j.replace(&format!("\"id\":{id}"), "\"id\":X");
        }
        j
    };
    // Event streams are recorded concurrently across rank threads, so
    // order can differ run-to-run; compare as multisets.
    let mut a: Vec<String> = from_disk.iter().map(mask).collect();
    let mut b: Vec<String> = from_memory.iter().map(mask).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disabled_telemetry_records_nothing() {
    let report = Cluster::new(2, MachineModel::deterministic()).run(|ctx, world| {
        // Spans through a disabled handle must be free and id-less.
        let id = ctx.span_enter("noop");
        assert_eq!(id, 0);
        ctx.span_exit(id);
        let mut v = vec![1.0];
        world.allreduce_sum(ctx, &mut v);
        v[0]
    });
    assert_eq!(report.results, vec![2.0, 2.0]);
}

#[test]
fn run_summary_matches_sim_report() {
    let (cluster, _sink) = traced_cluster(4);
    let report = cluster.run(|ctx, world| {
        ctx.compute_flops(1e6, 1e7);
        let mut v = vec![1.0; 64];
        world.allreduce_sum(ctx, &mut v);
    });
    let summary = report.run_summary();
    assert_eq!(summary.exec_ranks, 4);
    assert_eq!(summary.modeled_ranks, 4);
    assert!((summary.makespan - report.makespan()).abs() < 1e-12);
    let pm = report.phase_max();
    assert!((summary.phase_max.compute - pm.compute).abs() < 1e-12);
    assert!((summary.phase_max.comm - pm.comm).abs() < 1e-12);
    assert_eq!(summary.collectives, report.events.len());
}

/// Satellite invariant for the profiler: at every completed collective
/// the Comm-ledger charge equals the traced `wait + cost` exactly, and
/// an injected straggler shows up as *wait* on its peers, not on
/// itself.
#[test]
fn collective_wait_accounts_for_straggler_idle() {
    let sink = Arc::new(MemorySink::new());
    let report = Cluster::new(2, MachineModel::deterministic())
        .with_telemetry(Telemetry::with_sink(sink.clone()))
        .with_fault_plan(uoi_mpisim::FaultPlan::new(0).straggler(1, 5.0))
        .run(|ctx, world| {
            for _ in 0..3 {
                ctx.compute_flops(5e7, 1e7);
                let mut v = vec![1.0; 64];
                world.allreduce_sum(ctx, &mut v);
            }
        });

    let mut waits: HashMap<usize, f64> = HashMap::new();
    let mut wait_cost: HashMap<usize, f64> = HashMap::new();
    for ev in sink.snapshot() {
        if let TraceEvent::CollectiveWait {
            rank, wait, cost, ..
        } = ev
        {
            assert!(wait >= 0.0 && cost >= 0.0);
            *waits.entry(rank).or_default() += wait;
            *wait_cost.entry(rank).or_default() += wait + cost;
        }
    }
    // The healthy rank idles at every allreduce waiting for the 5x
    // straggler; the straggler itself never waits.
    assert!(waits[&0] > 0.0, "healthy rank must accumulate idle");
    assert!(
        waits[&1].abs() < 1e-12,
        "straggler never waits, got {}",
        waits[&1]
    );
    // wait + cost reproduces the entire Comm ledger of each rank: the
    // allreduces are the only Comm charges in this run.
    for rank in 0..2 {
        let comm = report.ledgers[rank].get(Phase::Comm);
        let traced = wait_cost[&rank];
        assert!(
            (comm - traced).abs() < 1e-9,
            "rank {rank}: comm ledger {comm} != traced wait+cost {traced}"
        );
    }
}

/// A rank killed mid-run must still leave a flushed, parseable JSONL
/// trace behind: the failure path flushes telemetry before reporting,
/// and the replayer tolerates the crash-truncated span stack.
#[test]
fn crashed_rank_trace_is_flushed_and_parseable() {
    let path = std::env::temp_dir().join("uoi_mpisim_crash_trace.jsonl");
    let sink = Arc::new(JsonlSink::create(&path).unwrap());
    let result = Cluster::new(3, MachineModel::deterministic())
        .with_telemetry(Telemetry::with_sink(sink))
        .with_fault_plan(uoi_mpisim::FaultPlan::new(1).crash_rank(2, 1))
        .try_run(|ctx, world| {
            ctx.span("doomed", |ctx| {
                for _ in 0..4 {
                    ctx.compute_flops(1e6, 1e7);
                    let mut v = vec![1.0; 16];
                    world.allreduce_sum(ctx, &mut v);
                }
            });
        });
    assert!(result.is_err(), "the injected crash must fail the run");

    let events = JsonlSink::read_events(&path).unwrap();
    assert!(!events.is_empty(), "crash path must flush the trace");
    // The crashed rank's events made it to disk, including the fault
    // marker and an opened-but-never-closed span.
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Fault { rank: 2, kind, .. } if kind == "rank_crash")));
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::SpanStart { rank: 2, name, .. } if name == "doomed")));
    // The timeline replayer accepts the truncated stream: the crashed
    // rank's open span still classifies its charges.
    let timeline = uoi_telemetry::build_timeline(&events);
    let crashed = &timeline.ranks[&2];
    assert!(crashed.clock > 0.0);
    assert!(!crashed.intervals.is_empty());
    let _ = std::fs::remove_file(&path);
}
