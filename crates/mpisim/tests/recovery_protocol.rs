//! Shrink-and-recover protocol tests (ISSUE 5 tentpole, mpisim layer).
//!
//! Two levels are exercised:
//!
//! * the in-runtime ULFM-style protocol — survivors of a crashed
//!   collective `revoke` the communicator, run the deterministic
//!   failed-set agreement, `try_shrink` to a densely re-ranked
//!   replacement, and resume collectives on it without deadlock;
//! * the cluster-level driver [`Cluster::try_run_recovering`] — bounded
//!   recovery rounds that re-execute the SPMD closure on the shrunken
//!   world, with deterministic failure attribution (crashes by
//!   own-accord death, stragglers by the suspect set), a cross-round
//!   [`uoi_mpisim::RecoveryStash`], and typed exhaustion/fatal errors.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use uoi_mpisim::{Cluster, FaultPlan, MachineModel, MpiError, RecoveryError};

fn det_cluster(n: usize) -> Cluster {
    Cluster::new(n, MachineModel::deterministic())
}

/// Survivors of a mid-allreduce crash revoke, agree on the failed set,
/// shrink to a 3-rank communicator with dense re-ranking, and complete a
/// collective on it — all within one `try_run` whose overall result
/// still reports the crash.
#[test]
fn revoke_agree_shrink_resumes_collectives() {
    // (old rank) -> (agreed failed set, new rank, new size, allreduce sum)
    type Out = BTreeMap<usize, (Vec<usize>, usize, usize, f64)>;
    let out: Arc<Mutex<Out>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = out.clone();

    let res = det_cluster(4)
        .with_fault_plan(FaultPlan::new(11).crash_rank(2, 0))
        .with_watchdog(Duration::from_secs(5))
        .try_run(|ctx, world| {
            let mut v = vec![world.rank() as f64 + 1.0];
            let err = world
                .try_allreduce_sum(ctx, &mut v)
                .expect_err("rank 2 dies entering this collective");
            let seen = match err {
                MpiError::RankFailed { rank, .. } if rank < world.size() => vec![rank],
                _ => Vec::new(),
            };
            // ULFM sequence: revoke -> agree -> shrink -> resume.
            world.revoke();
            assert!(world.is_revoked());
            let failed = world
                .try_agree_failed(ctx, &seen)
                .expect("agreement must complete on survivors");
            let sub = world
                .try_shrink(ctx, &failed)
                .expect("shrink must produce a working communicator");
            let mut w = vec![1.0];
            sub.try_allreduce_sum(ctx, &mut w)
                .expect("collectives on the shrunken communicator must work");
            sink.lock()
                .unwrap()
                .insert(world.rank(), (failed, sub.rank(), sub.size(), w[0]));
        });

    // The run as a whole still reports the crashed rank.
    let err = res.err().expect("the crashed rank fails the run");
    assert_eq!(err.root_cause().rank, 2);

    let got = out.lock().unwrap();
    assert_eq!(
        got.keys().copied().collect::<Vec<_>>(),
        vec![0, 1, 3],
        "all three survivors complete the recovery sequence"
    );
    for (&old_rank, (failed, new_rank, new_size, sum)) in got.iter() {
        assert_eq!(failed, &vec![2], "agreed failed set is exactly rank 2");
        assert_eq!(*new_size, 3);
        // Dense re-ranking in ascending old-rank order: 0->0, 1->1, 3->2.
        let expect_new = if old_rank < 2 { old_rank } else { old_rank - 1 };
        assert_eq!(*new_rank, expect_new);
        assert_eq!(*sum, 3.0, "3-rank allreduce of ones");
    }
}

/// A revoked communicator fails fast: a pending barrier on another
/// thread wakes with `MpiError::Revoked` instead of blocking until the
/// watchdog.
#[test]
fn revoke_wakes_pending_collectives() {
    let report = det_cluster(3)
        .with_watchdog(Duration::from_secs(5))
        .run(|ctx, world| {
            if world.rank() == 0 {
                // Let peers park in the barrier, then revoke.
                std::thread::sleep(Duration::from_millis(50));
                world.revoke();
                None
            } else {
                world.try_barrier(ctx).err()
            }
        });
    for r in 1..3 {
        match report.results[r] {
            Some(MpiError::Revoked { .. }) => {}
            ref other => panic!("rank {r} must see Revoked, got {other:?}"),
        }
    }
}

/// An injected hang (straggler-timeout fault) surfaces deterministically:
/// the hung rank marks itself suspect, peers trip the watchdog, and the
/// `SimError` carries the suspect set for attribution.
#[test]
fn hang_marks_suspect_and_trips_watchdog() {
    let started = Instant::now();
    let res = det_cluster(3)
        .with_fault_plan(FaultPlan::new(7).hang_rank(1, 0))
        .with_watchdog(Duration::from_millis(200))
        .try_run(|ctx, world| {
            let mut v = vec![1.0];
            let _ = world.try_allreduce_sum(ctx, &mut v);
            // Escalate so the run reports failure on timeout.
            if let Err(e) = world.try_barrier(ctx) {
                std::panic::panic_any(e);
            }
        });
    let err = res.err().expect("a hung rank must fail the run");
    assert_eq!(err.suspected, vec![1], "the hung rank declared itself");
    assert!(
        err.failures
            .iter()
            .any(|f| matches!(f.error, Some(MpiError::WatchdogTimeout { .. }))),
        "peers observe the hang as a watchdog timeout"
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "hang resolution is watchdog-bounded"
    );
}

/// The recovery driver re-executes after a crash: round 0 loses rank 2,
/// round 1 runs the closure on the shrunken 3-rank world and succeeds.
/// The stash persists surviving ranks' entries and drops the dead
/// rank's.
#[test]
fn try_run_recovering_recovers_from_crash() {
    let (report, log) = det_cluster(4)
        .with_fault_plan(FaultPlan::new(5).crash_rank(2, 1))
        .with_watchdog(Duration::from_secs(5))
        .try_run_recovering(2, |ctx, world, rctx| {
            let orig = rctx.original_rank(world.rank());
            rctx.stash().put(orig, "mark", vec![orig as f64]);
            let mut v = vec![orig as f64 + 1.0];
            world.allreduce_sum(ctx, &mut v); // step 0: everyone survives
            let mut w = vec![orig as f64 + 1.0];
            world.allreduce_sum(ctx, &mut w); // step 1: rank 2 dies (round 0)
            if rctx.is_recovery_round() {
                // Survivors' round-0 stash entries persist; the failed
                // rank's were dropped by the driver.
                assert!(rctx.stash().get(0, "mark").is_some());
                assert!(rctx.stash().get(2, "mark").is_none());
                assert_eq!(rctx.failed, vec![2]);
            }
            w[0]
        })
        .expect("one crash within a 2-round budget must recover");

    assert_eq!(log.rounds.len(), 2, "one failed round plus one success");
    assert_eq!(log.rounds[0].world, 4);
    assert_eq!(log.rounds[0].newly_failed, vec![2]);
    assert_eq!(log.rounds[1].world, 3);
    assert!(log.rounds[1].newly_failed.is_empty());
    assert_eq!(log.recovery_rounds(), 1);
    assert_eq!(log.failed_ranks(), vec![2]);
    // Survivors 0, 1, 3: sum of (orig + 1) = 1 + 2 + 4 = 7.
    assert_eq!(report.results, vec![7.0, 7.0, 7.0]);
}

/// Straggler-timeout recovery: the hung rank is attributed through the
/// suspect set and excluded; the re-execution completes.
#[test]
fn try_run_recovering_recovers_from_hang() {
    let (report, log) = det_cluster(4)
        .with_fault_plan(FaultPlan::new(9).hang_rank(1, 0))
        .with_watchdog(Duration::from_millis(250))
        .try_run_recovering(1, |ctx, world, rctx| {
            let orig = rctx.original_rank(world.rank());
            let mut v = vec![orig as f64];
            world.allreduce_sum(ctx, &mut v);
            v[0]
        })
        .expect("a hang must be attributed and recovered");
    assert_eq!(log.failed_ranks(), vec![1]);
    assert_eq!(log.rounds[0].newly_failed, vec![1]);
    // Survivors 0, 2, 3: sum of originals = 5.
    assert_eq!(report.results, vec![5.0, 5.0, 5.0]);
}

/// `max_recovery_rounds = 0` never re-executes: the first failure comes
/// back as typed exhaustion carrying the failed set, so callers can fall
/// back to degraded mode.
#[test]
fn try_run_recovering_zero_rounds_exhausts() {
    let err = det_cluster(4)
        .with_fault_plan(FaultPlan::new(5).crash_rank(2, 0))
        .with_watchdog(Duration::from_secs(5))
        .try_run_recovering(0, |ctx, world, _rctx| {
            let mut v = vec![1.0];
            world.allreduce_sum(ctx, &mut v);
            v[0]
        })
        .err()
        .expect("zero rounds cannot absorb a crash");
    match err {
        RecoveryError::Exhausted {
            rounds,
            failed,
            last,
        } => {
            assert_eq!(rounds, 1);
            assert_eq!(failed, vec![2]);
            assert_eq!(last.root_cause().rank, 2);
        }
        other => panic!("expected Exhausted, got {other}"),
    }
}

/// A failure with no attributable culprit (pure SPMD mismatch: a rank
/// leaves the program early, the peer times out, nobody is suspect) is
/// fatal — re-executing the same program cannot help.
#[test]
fn try_run_recovering_unattributable_failure_is_fatal() {
    let err = det_cluster(2)
        .with_watchdog(Duration::from_millis(150))
        .try_run_recovering(3, |ctx, world, _rctx| {
            if world.rank() == 1 {
                return 0.0; // Protocol mismatch: skips the collective.
            }
            let mut v = vec![1.0];
            if let Err(e) = world.try_allreduce_sum(ctx, &mut v) {
                std::panic::panic_any(e);
            }
            v[0]
        })
        .err()
        .expect("an unattributable failure must not be retried");
    match err {
        RecoveryError::Fatal(sim) => {
            assert!(sim
                .failures
                .iter()
                .all(|f| matches!(f.error, Some(MpiError::WatchdogTimeout { .. }))));
            assert!(sim.suspected.is_empty());
        }
        other => panic!("expected Fatal, got {other}"),
    }
}

/// Two sequential faults within the budget: each round loses one more
/// rank, and the third round's two survivors finish the job.
#[test]
fn try_run_recovering_handles_sequential_faults() {
    let (report, log) = det_cluster(4)
        .with_fault_plan(FaultPlan::new(3).crash_rank(3, 0).crash_rank(1, 1))
        .with_watchdog(Duration::from_secs(5))
        .try_run_recovering(2, |ctx, world, rctx| {
            let orig = rctx.original_rank(world.rank());
            let mut v = vec![orig as f64];
            world.allreduce_sum(ctx, &mut v); // step 0: rank 3 dies (round 0)
            let mut w = vec![orig as f64];
            world.allreduce_sum(ctx, &mut w); // step 1: rank 1 dies (round 1)
            w[0]
        })
        .expect("two sequential crashes fit in a 2-round budget");
    assert_eq!(log.rounds.len(), 3);
    assert_eq!(log.rounds[0].newly_failed, vec![3]);
    assert_eq!(log.rounds[1].newly_failed, vec![1]);
    assert_eq!(log.failed_ranks(), vec![1, 3]);
    // Survivors 0 and 2: 0 + 2 = 2.
    assert_eq!(report.results, vec![2.0, 2.0]);
}
