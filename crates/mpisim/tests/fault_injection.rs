//! Fault-injection acceptance tests for the simulated-MPI runtime.
//!
//! These exercise the ISSUE 3 acceptance criteria end to end: a rank
//! killed mid-`allreduce_sum` must surface as [`MpiError::RankFailed`]
//! on every surviving rank within the watchdog timeout — no hang, no
//! process abort — and the whole failure set must come back as a
//! [`SimError`] value from [`Cluster::try_run`].
//!
//! The `fault_matrix_cell` test at the bottom is parameterised through
//! `FAULT_SEED` / `FAULT_KIND` environment variables so the CI fault
//! matrix can sweep seeds x fault kinds without recompiling.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use uoi_mpisim::{Cluster, FaultPlan, MachineModel, MpiError, Phase, Window};

fn det_cluster(n: usize) -> Cluster {
    Cluster::new(n, MachineModel::deterministic())
}

/// Acceptance: kill one rank mid-allreduce; the three survivors each
/// observe `MpiError::RankFailed { rank: 2, .. }` through the fallible
/// collective, `try_run` returns a `SimError` whose root cause names the
/// injected crash, and the whole thing resolves well inside the watchdog.
#[test]
fn killed_rank_mid_allreduce_surfaces_rank_failed() {
    let observed: Arc<Mutex<Vec<(usize, MpiError)>>> = Arc::new(Mutex::new(Vec::new()));
    let obs = observed.clone();
    let started = Instant::now();

    let res = det_cluster(4)
        .with_fault_plan(FaultPlan::new(3).crash_rank(2, 1))
        .with_watchdog(Duration::from_secs(5))
        .try_run(|ctx, world| {
            // Three allreduce rounds; rank 2 is killed entering round 1.
            for round in 0..3 {
                let mut v = vec![(world.rank() + round) as f64];
                if let Err(e) = world.try_allreduce_sum(ctx, &mut v) {
                    obs.lock().unwrap().push((world.rank(), e));
                    return;
                }
            }
        });

    // No hang: failure detection is condvar-slice bounded, far under the
    // 5s watchdog.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "run must not hang"
    );

    let err = res.err().expect("a killed rank must fail the run");
    assert_eq!(err.failures.len(), 1, "only the injected crash panicked");
    assert_eq!(err.failures[0].rank, 2);
    assert!(
        err.failures[0].message.contains("fault injection"),
        "message should name the injection: {}",
        err.failures[0].message
    );
    assert!(err.failures[0].message.contains("step 1"));
    assert_eq!(err.root_cause().rank, 2);

    let seen = observed.lock().unwrap();
    let mut ranks: Vec<usize> = seen.iter().map(|&(r, _)| r).collect();
    ranks.sort_unstable();
    assert_eq!(
        ranks,
        vec![0, 1, 3],
        "all three survivors observe the failure"
    );
    for (_, e) in seen.iter() {
        match e {
            MpiError::RankFailed { rank, .. } => assert_eq!(*rank, 2),
            other => panic!("survivors must see RankFailed, got {other:?}"),
        }
    }
}

/// A rank that silently exits the SPMD program (protocol mismatch, not a
/// crash) trips the watchdog on its peer: `try_run` succeeds — nobody
/// panicked — but the peer's result carries `WatchdogTimeout`.
#[test]
fn missing_peer_trips_watchdog_without_abort() {
    let report = det_cluster(2)
        .with_watchdog(Duration::from_millis(200))
        .run(|ctx, world| {
            if world.rank() == 1 {
                return None; // Skips the collective entirely.
            }
            let mut v = vec![1.0];
            world.try_allreduce_sum(ctx, &mut v).err()
        });
    match report.results[0] {
        Some(MpiError::WatchdogTimeout { waited_ms, .. }) => {
            assert!(waited_ms >= 200, "waited only {waited_ms}ms");
        }
        ref other => panic!("expected watchdog timeout on rank 0, got {other:?}"),
    }
    assert_eq!(report.results[1], None);
}

/// An injected straggler scales its local compute charges by exactly the
/// configured factor; healthy ranks are untouched.
#[test]
fn straggler_scales_local_compute() {
    let report = det_cluster(3)
        .with_fault_plan(FaultPlan::new(0).straggler(1, 3.0))
        .run(|ctx, world| {
            ctx.compute_flops(1e9, 1e9);
            world.barrier(ctx);
            ctx.ledger().get(Phase::Compute)
        });
    let healthy = report.results[0];
    assert!(healthy > 0.0);
    assert!((report.results[2] - healthy).abs() < 1e-12);
    let ratio = report.results[1] / healthy;
    assert!(
        (ratio - 3.0).abs() < 1e-9,
        "straggler must run exactly 3x slower, got {ratio}"
    );
}

/// Dropped window ops read zeros; corrupted ops flip a bit in the first
/// element only. Healthy ranks see the exposed data unchanged.
#[test]
fn window_drop_and_corrupt_faults_apply_per_op() {
    let report = det_cluster(3)
        .with_fault_plan(
            FaultPlan::new(0)
                .drop_window_op(1, 0)
                .corrupt_window_op(2, 0),
        )
        .run(|ctx, world| {
            let local = if world.rank() == 0 {
                vec![5.0; 4]
            } else {
                Vec::new()
            };
            let win = Window::create(ctx, world, local);
            let got = win.get(ctx, 0, 0..4);
            win.fence(ctx, world);
            got
        });
    assert_eq!(
        report.results[0],
        vec![5.0; 4],
        "healthy rank reads clean data"
    );
    assert_eq!(report.results[1], vec![0.0; 4], "dropped op reads zeros");
    let corrupted = &report.results[2];
    assert_ne!(corrupted[0], 5.0, "corrupt op must flip a bit in element 0");
    assert_eq!(
        &corrupted[1..],
        &[5.0; 3][..],
        "only element 0 is corrupted"
    );
}

/// Two ranks crashing at the *same* collective step must both surface in
/// the failure set, with a deterministic root cause — the lowest-ranked
/// own-accord death — regardless of thread scheduling. Crash injection
/// fires at collective *entry*, before any shared state is touched, so
/// neither crash can mask the other.
#[test]
fn double_fault_same_step_surfaces_both_deterministically() {
    let run = || {
        det_cluster(6)
            .with_fault_plan(FaultPlan::new(0).crash_rank(1, 2).crash_rank(3, 2))
            .with_watchdog(Duration::from_secs(5))
            .try_run(|ctx, world| {
                for _ in 0..4 {
                    let mut v = vec![world.rank() as f64];
                    if world.try_allreduce_sum(ctx, &mut v).is_err() {
                        return;
                    }
                }
            })
            .err()
            .expect("two injected crashes must fail the run")
    };
    let a = run();
    let b = run();
    for err in [&a, &b] {
        // Both own-accord deaths are present, ordered by rank, and both
        // carry no structured error (they died, they did not observe).
        let own: Vec<usize> = err
            .failures
            .iter()
            .filter(|f| f.error.is_none())
            .map(|f| f.rank)
            .collect();
        assert_eq!(own, vec![1, 3], "both crashed ranks surface, rank-ordered");
        for f in &err.failures {
            if f.error.is_none() {
                assert!(
                    f.message.contains("crash at collective step 2"),
                    "crash message names the step: {}",
                    f.message
                );
            }
        }
        // Root cause is deterministic: failures are rank-ordered, so the
        // first own-accord death (rank 1) wins both runs.
        assert_eq!(err.root_cause().rank, 1);
    }
    assert_eq!(a.root_cause().message, b.root_cause().message);
    assert_eq!(a.failures.len(), b.failures.len());
}

/// One CI fault-matrix cell: seed and fault kind come from the
/// environment (`FAULT_SEED`, `FAULT_KIND` in {crash, straggler,
/// window_drop}), so the workflow can sweep the grid without recompiling.
/// Every cell asserts the same invariants: the run terminates (no hang,
/// no process abort) and the outcome is bit-identical across a rerun
/// with the same seed.
#[test]
fn fault_matrix_cell() {
    let seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let kind = std::env::var("FAULT_KIND").unwrap_or_else(|_| "crash".to_string());
    const WORLD: usize = 4;

    match kind.as_str() {
        "crash" => {
            let run = || {
                det_cluster(WORLD)
                    .with_fault_plan(FaultPlan::new(seed).with_random_crash(WORLD, 3))
                    .with_watchdog(Duration::from_secs(5))
                    .try_run(|ctx, world| {
                        for _ in 0..3 {
                            let mut v = vec![world.rank() as f64];
                            if world.try_allreduce_sum(ctx, &mut v).is_err() {
                                return;
                            }
                        }
                    })
            };
            let a = run().err().expect("a random crash must fail the run");
            let b = run()
                .err()
                .expect("rerun with the same seed must fail identically");
            assert_eq!(a.root_cause().rank, b.root_cause().rank);
            assert_eq!(a.root_cause().message, b.root_cause().message);
            assert!(a.root_cause().message.contains("fault injection"));
        }
        "straggler" => {
            let run = || {
                det_cluster(WORLD)
                    .with_fault_plan(FaultPlan::new(seed).with_random_straggler(WORLD, 2.0))
                    .run(|ctx, _world| {
                        ctx.compute_flops(1e8, 1e9);
                        ctx.ledger().get(Phase::Compute)
                    })
                    .results
            };
            let a = run();
            let b = run();
            assert_eq!(a, b, "straggler charge must be deterministic");
            let slow = a
                .iter()
                .filter(|&&t| t > a.iter().cloned().fold(f64::MAX, f64::min))
                .count();
            assert_eq!(slow, 1, "exactly one rank straggles");
        }
        "window_drop" => {
            let run = || {
                det_cluster(WORLD)
                    .with_fault_plan(FaultPlan::new(seed).with_random_window_drops(WORLD, 2, 3))
                    .run(|ctx, world| {
                        let local = if world.rank() == 0 {
                            (0..8).map(|x| x as f64 + 1.0).collect()
                        } else {
                            Vec::new()
                        };
                        let win = Window::create(ctx, world, local);
                        let first = win.get(ctx, 0, 0..4);
                        let second = win.get(ctx, 0, 4..8);
                        win.fence(ctx, world);
                        (first, second)
                    })
                    .results
            };
            let a = run();
            let b = run();
            assert_eq!(a, b, "dropped ops must replay identically");
            for (first, second) in &a {
                assert!(
                    first == &vec![1.0, 2.0, 3.0, 4.0] || first == &vec![0.0; 4],
                    "gets are either clean or dropped-to-zero: {first:?}"
                );
                assert!(second == &vec![5.0, 6.0, 7.0, 8.0] || second == &vec![0.0; 4]);
            }
        }
        other => panic!("unknown FAULT_KIND {other:?} (use crash|straggler|window_drop)"),
    }
}
