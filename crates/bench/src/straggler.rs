//! Env-gated straggler hedging study for the single-node figure
//! harnesses.
//!
//! `UOI_STRAGGLER=<factor>` attaches a compact recovering fit to the
//! harness run: a 4-rank simulated cluster where one rank computes
//! `factor`x slower, with speculative hedging gated by `UOI_SPECULATE`.
//! The study asserts the hedged fit stays bit-identical to the serial
//! fit and records the three modeled makespans — healthy, unhedged
//! (straggler, no hedging), hedged — in the `RunReport` params, so a
//! snapshot can gate "speculation recovers the straggler-induced
//! slowdown" without a second run: all three numbers derive from the
//! same observed task-timing record.
//!
//! The epoch-watchdog timeout in effect (`UOI_WATCHDOG_MS` or the
//! default) is recorded unconditionally so every report is
//! self-describing about its hang-detection budget.

use std::time::Duration;

use uoi_core::{
    ExecMode, RecoveryConfig, SpeculationConfig, SpeculationReport, UoiFitter, UoiLassoConfig,
    UoiVarConfig, UoiVarFitter,
};
use uoi_data::{LinearConfig, VarConfig, VarProcess};
use uoi_mpisim::{watchdog_from_env, FaultPlan};
use uoi_solvers::AdmmConfig;
use uoi_telemetry::RunReport;

/// Environment variable carrying the straggler slowdown factor; unset or
/// not a finite factor > 1 means "no study".
pub const UOI_STRAGGLER_ENV: &str = "UOI_STRAGGLER";

const WORLD: usize = 4;
const STRAGGLER_RANK: usize = 1;

/// The requested straggler factor, when the study is switched on.
pub fn straggler_factor() -> Option<f64> {
    let factor: f64 = std::env::var(UOI_STRAGGLER_ENV).ok()?.trim().parse().ok()?;
    (factor.is_finite() && factor > 1.0).then_some(factor)
}

/// Which pipeline the harness benchmarks; the study mirrors it.
#[derive(Debug, Clone, Copy)]
pub enum StudyPipeline {
    Lasso,
    Var,
}

fn study_rcfg(factor: f64) -> RecoveryConfig {
    RecoveryConfig {
        enabled: true,
        world: WORLD,
        max_rounds: 2,
        plan: Some(FaultPlan::new(7).straggler(STRAGGLER_RANK, factor)),
        watchdog: effective_watchdog(),
        get_attempts: 4,
        speculation: SpeculationConfig::from_env(),
    }
}

/// The watchdog in effect: the validated `UOI_WATCHDOG_MS` override or
/// the recovery default.
fn effective_watchdog() -> Duration {
    watchdog_from_env().unwrap_or(RecoveryConfig::default().watchdog)
}

fn lasso_study(rcfg: &RecoveryConfig) -> Option<SpeculationReport> {
    let ds = LinearConfig {
        n_samples: 160,
        n_features: 16,
        n_nonzero: 4,
        snr: 16.0,
        seed: 29,
        ..Default::default()
    }
    .generate();
    let cfg = UoiLassoConfig::builder()
        .b1(8)
        .b2(8)
        .q(8)
        .lambda_min_ratio(3e-2)
        .admm(AdmmConfig {
            max_iter: 1500,
            abstol: 1e-8,
            reltol: 1e-7,
            ..Default::default()
        })
        .support_tol(1e-6)
        .seed(13)
        .build()
        .expect("study lasso config");
    let serial = UoiFitter::new(cfg.clone())
        .fit(&ds.x, &ds.y)
        .expect("study serial fit");
    let hedged = UoiFitter::new(cfg)
        .mode(ExecMode::Recovering(rcfg.clone()))
        .fit(&ds.x, &ds.y)
        .expect("study recovering fit");
    for (a, b) in hedged.beta.iter().zip(&serial.beta) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "straggler study: hedged lasso fit must be bit-identical to serial"
        );
    }
    hedged.speculation
}

fn var_study(rcfg: &RecoveryConfig) -> Option<SpeculationReport> {
    let series = VarProcess::generate(&VarConfig {
        p: 4,
        order: 1,
        density: 0.25,
        target_radius: 0.6,
        noise_std: 1.0,
        seed: 5,
    })
    .simulate(150, 40, 7);
    let cfg = UoiVarConfig::builder()
        .b1(8)
        .b2(8)
        .q(6)
        .lambda_min_ratio(5e-2)
        .admm(AdmmConfig {
            max_iter: 800,
            abstol: 1e-7,
            reltol: 1e-6,
            ..Default::default()
        })
        .seed(21)
        .block_len(Some(12))
        .build()
        .expect("study var config");
    let serial = UoiVarFitter::new(cfg.clone())
        .fit(&series)
        .expect("study serial var fit");
    let hedged = UoiVarFitter::new(cfg)
        .mode(ExecMode::Recovering(rcfg.clone()))
        .fit(&series)
        .expect("study recovering var fit");
    for (a, b) in hedged.vec_beta.iter().zip(&serial.vec_beta) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "straggler study: hedged var fit must be bit-identical to serial"
        );
    }
    hedged.speculation
}

/// Record the effective watchdog and, when `UOI_STRAGGLER` is set, run
/// the hedging study and fold its account into the report params.
pub fn annotate_with_study(report: RunReport, pipeline: StudyPipeline) -> RunReport {
    let mut report = report.param("watchdog_ms", effective_watchdog().as_millis() as u64);
    let Some(factor) = straggler_factor() else {
        return report;
    };

    let rcfg = study_rcfg(factor);
    let speculate = rcfg.speculation.enabled;
    report = report
        .param("straggler_factor", factor)
        .param("speculate", speculate);

    let spec = match pipeline {
        StudyPipeline::Lasso => lasso_study(&rcfg),
        StudyPipeline::Var => var_study(&rcfg),
    };
    let Some(spec) = spec else {
        println!(
            "straggler study: factor {factor}x, speculation off — no hedging account \
             (set UOI_SPECULATE=1 for makespan recovery)"
        );
        return report;
    };

    let recovered = spec.recovered_fraction().unwrap_or(0.0);
    println!(
        "straggler study: factor {factor}x, {} hedges ({} won, {} cancelled); modeled \
         makespan healthy {:.4}s / unhedged {:.4}s / hedged {:.4}s -> recovered {:.0}%",
        spec.hedges_spawned(),
        spec.hedges_won(),
        spec.hedges_cancelled(),
        spec.makespan_healthy(),
        spec.makespan_unhedged(),
        spec.makespan_hedged(),
        100.0 * recovered
    );
    report
        .param("hedges_spawned", spec.hedges_spawned())
        .param("hedges_won", spec.hedges_won())
        .param("hedges_cancelled", spec.hedges_cancelled())
        .param("speculation_heartbeats", spec.heartbeats())
        .param("speculation_makespan_healthy", spec.makespan_healthy())
        .param("speculation_makespan_unhedged", spec.makespan_unhedged())
        .param("speculation_makespan_hedged", spec.makespan_hedged())
        .param("speculation_recovered", recovered)
}
