//! Reusable scaling workloads: the representative `UoI_LASSO` and
//! `UoI_VAR` runs the weak/strong-scaling figures execute at each Table I
//! point.
//!
//! The key convention (see DESIGN.md §2): the **per-core block sizes are
//! the paper's real ones** — weak scaling keeps ~the same rows per core
//! that 128 GB / 4,352 cores implies, strong scaling shrinks them as
//! 1 TB / P — while only `exec_ranks` of the modeled cores actually run.
//! Virtual-time collectives and window transfers are costed at the
//! modeled core count, so the reported phase breakdown is the modeled
//! machine's, not the host's.

use std::sync::{Arc, Mutex};

use uoi_core::uoi_lasso::UoiLassoConfig;
use uoi_core::uoi_var::UoiVarConfig;
use uoi_core::{DistOptions, ExecMode, UoiVarFitter};
use uoi_data::rng::{normal_vec, substream};
use uoi_data::{VarConfig, VarProcess};
use uoi_linalg::Matrix;
use uoi_mpisim::{Cluster, MachineModel, PhaseLedger, SimReport};
use uoi_solvers::{AdmmConfig, DistLassoAdmm};
use uoi_telemetry::{Json, Telemetry};
use uoi_tieredio::distribution::tier2_shuffle;

/// Parameters of one representative `UoI_LASSO` scaling run.
#[derive(Debug, Clone)]
pub struct LassoScalingRun {
    /// Rows resident on each (modeled) core.
    pub rows_per_core: usize,
    /// Feature count (paper: 20,101).
    pub features: usize,
    /// Modeled core count (Table I).
    pub modeled_cores: usize,
    /// Executed ranks.
    pub exec_ranks: usize,
    /// Selection bootstraps.
    pub b1: usize,
    /// Estimation bootstraps.
    pub b2: usize,
    /// Lambda count.
    pub q: usize,
    /// Aggregate dataset bytes charged to the parallel read.
    pub io_bytes: f64,
    /// Machine model.
    pub model: MachineModel,
    /// Seed.
    pub seed: u64,
}

impl LassoScalingRun {
    /// Execute the run and return the simulation report (per-rank phase
    /// ledgers evaluated at the modeled core count).
    pub fn execute(&self) -> SimReport<PhaseLedger> {
        self.execute_traced(Telemetry::disabled())
    }

    /// [`execute`](Self::execute) with a telemetry handle attached, so
    /// harnesses running under `UOI_TRACE=1` capture the run's timeline.
    pub fn execute_traced(&self, telemetry: Telemetry) -> SimReport<PhaseLedger> {
        let rows = self.rows_per_core.max(2);
        let p = self.features;
        let (b1, b2, q) = (self.b1, self.b2, self.q);
        let io_bytes = self.io_bytes;
        let seed = self.seed;
        Cluster::new(self.exec_ranks, self.model.clone())
            .modeled_ranks(self.modeled_cores)
            .with_telemetry(telemetry)
            .run(move |ctx, world| {
                let c = world.size();
                let n_local_total = rows; // per executed rank (== per core)
                let n_global = n_local_total * c;

                // --- Data I/O: striped parallel read of the dataset. ---
                let t_read = ctx
                    .model()
                    .io
                    .parallel_read_time(world.modeled_size(ctx), io_bytes);
                ctx.charge_io(t_read);

                // --- Resident Tier-1 block: synthetic rows. ---
                let mut rng = substream(seed, world.rank() as u64);
                let x_data = normal_vec(&mut rng, n_local_total * p, 0.0, 1.0);
                let block = {
                    // y = first 10 features sum + noise, appended as last col.
                    let mut b = Matrix::zeros(n_local_total, p + 1);
                    for i in 0..n_local_total {
                        let row = &x_data[i * p..(i + 1) * p];
                        let y: f64 =
                            row.iter().take(10).sum::<f64>() + 0.1 * ((i % 7) as f64 - 3.0);
                        b.row_mut(i)[..p].copy_from_slice(row);
                        b.row_mut(i)[p] = y;
                    }
                    b
                };
                ctx.compute_membound((n_local_total * p * 8) as f64);

                // Shared lambda grid from a local estimate of lambda_max,
                // averaged across ranks (one tiny allreduce).
                let xt_local = {
                    let cols: Vec<usize> = (0..p).collect();
                    block.gather_cols(&cols)
                };
                let y_local = block.col(p);
                let mut lmax = vec![uoi_linalg::norm_inf(&uoi_linalg::gemv_t(
                    &xt_local, &y_local,
                ))];
                ctx.compute_flops(2.0 * (n_local_total * p) as f64, 0.0);
                world.allreduce_sum(ctx, &mut lmax);
                let lmax = (lmax[0] / c as f64).max(1e-9);
                let lambdas = uoi_solvers::geometric_grid(lmax, 0.05 * lmax, q);

                let admm = AdmmConfig {
                    max_iter: 80,
                    ..Default::default()
                };
                let mut last_support: Vec<usize> = (0..10.min(p)).collect();

                // --- Selection: b1 bootstraps x q lambdas. ---
                for k in 0..b1 {
                    let mut rng = substream(seed ^ 0xB001, k as u64);
                    let my_rows: Vec<usize> = (0..n_local_total)
                        .map(|_| uoi_data::bootstrap::row_bootstrap(&mut rng, n_global, 1)[0])
                        .collect();
                    let (boot, _) = tier2_shuffle(ctx, world, block.clone(), n_global, &my_rows);
                    let cols: Vec<usize> = (0..p).collect();
                    let xb = boot.gather_cols(&cols);
                    let yb = boot.col(p);
                    let solver = DistLassoAdmm::new(ctx, world, xb, admm.clone());
                    let sols = solver.solve_path(ctx, world, &yb, &lambdas);
                    if let Some(s) = sols.last() {
                        let sup = uoi_solvers::support_of(&s.beta, 1e-6);
                        if !sup.is_empty() {
                            last_support = sup;
                        }
                    }
                }

                // --- Estimation: b2 OLS fits on the running support. ---
                for k in 0..b2 {
                    let mut rng = substream(seed ^ 0xE571, k as u64);
                    let my_rows: Vec<usize> = (0..n_local_total)
                        .map(|_| uoi_data::bootstrap::row_bootstrap(&mut rng, n_global, 1)[0])
                        .collect();
                    let (boot, _) = tier2_shuffle(ctx, world, block.clone(), n_global, &my_rows);
                    let cols: Vec<usize> = (0..p).collect();
                    let xb = boot.gather_cols(&cols).gather_cols(&last_support);
                    let yb = boot.col(p);
                    let solver = DistLassoAdmm::new(ctx, world, xb, admm.clone());
                    let sol = solver.solve_ols(ctx, world, &yb);
                    let mut loss = vec![uoi_linalg::mse(
                        &boot.gather_cols(&cols).gather_cols(&last_support),
                        &sol.beta,
                        &yb,
                    )];
                    world.allreduce_sum(ctx, &mut loss);
                }

                // --- Output save. ---
                let t_write = ctx
                    .model()
                    .io
                    .parallel_read_time(world.modeled_size(ctx), (p * 8) as f64);
                ctx.charge_io(t_write);

                ctx.ledger()
            })
    }
}

/// Parameters of one representative `UoI_VAR` scaling run.
#[derive(Debug, Clone)]
pub struct VarScalingRun {
    /// Executed node count `p` (scaled from the paper's 356–1000).
    pub features: usize,
    /// Series length (paper: twice the features).
    pub samples: usize,
    /// Modeled core count.
    pub modeled_cores: usize,
    /// Executed ranks.
    pub exec_ranks: usize,
    /// Reader ranks serving the Kronecker windows.
    pub n_readers: usize,
    /// Selection / estimation bootstraps and lambda count.
    pub b1: usize,
    /// Estimation bootstraps.
    pub b2: usize,
    /// Lambda count.
    pub q: usize,
    /// In-rank ADMM worker threads over the response columns; only the
    /// modeled wall-clock depends on it, never the fitted numbers.
    pub threads: usize,
    /// Machine model.
    pub model: MachineModel,
    /// Seed.
    pub seed: u64,
}

/// Phase ledger plus the Kronecker-stage seconds of a VAR run.
pub struct VarRunOutcome {
    /// Per-rank ledgers and events.
    pub report: SimReport<(PhaseLedger, f64)>,
    /// Rank-0 numerical-health report when the run was guarded
    /// (`UOI_NUMERICAL=1`), already serialised for the run report.
    pub numerical: Option<Json>,
}

impl VarRunOutcome {
    /// Slowest-rank ledger with the **compute share corrected to one
    /// modeled core**. The executed ranks split the response columns
    /// `exec_ranks` ways while the modeled machine splits the same total
    /// work `modeled_cores` ways, so per-core computation is the measured
    /// per-rank computation scaled by `exec/modeled`. Communication
    /// (already costed at the modeled size), distribution (shared reader
    /// queues), and I/O need no correction.
    pub fn per_core_ledger(&self) -> PhaseLedger {
        let mut l = self
            .report
            .ledgers
            .iter()
            .copied()
            .fold(PhaseLedger::default(), PhaseLedger::max);
        l.compute *= self.report.exec_ranks as f64 / self.report.modeled_ranks as f64;
        l
    }

    /// Max Kronecker/vectorisation seconds over ranks.
    pub fn kron_seconds(&self) -> f64 {
        self.report
            .results
            .iter()
            .map(|&(_, k)| k)
            .fold(0.0, f64::max)
    }
}

impl VarScalingRun {
    /// Execute the distributed `UoI_VAR` fit and return per-rank
    /// `(ledger, kron_seconds)`.
    pub fn execute(&self) -> VarRunOutcome {
        self.execute_traced(Telemetry::disabled())
    }

    /// [`execute`](Self::execute) with a telemetry handle attached, so
    /// harnesses running under `UOI_TRACE=1` capture the run's timeline.
    pub fn execute_traced(&self, telemetry: Telemetry) -> VarRunOutcome {
        let proc = VarProcess::generate(&VarConfig {
            p: self.features,
            order: 1,
            density: 0.05,
            target_radius: 0.6,
            noise_std: 1.0,
            seed: self.seed,
        });
        let series = proc.simulate(self.samples, 50, self.seed ^ 0x5E);
        // UOI_NUMERICAL=1 arms the numerical-resilience guards; the
        // fitted numbers stay bit-identical on the clean simulated series
        // and rank 0's health report is threaded out for the run report.
        let guarded = std::env::var("UOI_NUMERICAL").is_ok_and(|v| v == "1");
        let var_cfg = UoiVarConfig {
            order: 1,
            block_len: None,
            base: UoiLassoConfig {
                b1: self.b1,
                b2: self.b2,
                q: self.q,
                lambda_min_ratio: 5e-2,
                admm: AdmmConfig {
                    max_iter: 200,
                    threads: self.threads.max(1),
                    ..Default::default()
                },
                support_tol: 1e-6,
                seed: self.seed,
                numerical: if guarded {
                    uoi_core::NumericalConfig::guarded()
                } else {
                    uoi_core::NumericalConfig::default()
                },
                ..Default::default()
            },
        };
        let fitter = UoiVarFitter::new(var_cfg).mode(ExecMode::Dist(
            DistOptions::default()
                .layout(uoi_core::ParallelLayout::admm_only())
                .n_readers(self.n_readers),
        ));
        let numerical_out = Arc::new(Mutex::new(None));
        let numerical_slot = Arc::clone(&numerical_out);
        let report = Cluster::new(self.exec_ranks, self.model.clone())
            .modeled_ranks(self.modeled_cores)
            .with_telemetry(telemetry)
            .run(move |ctx, world| {
                let (fit, kron) = fitter.fit_on(ctx, world, &series);
                if world.rank() == 0 {
                    if let Some(health) = &fit.numerical {
                        *numerical_slot.lock().unwrap() = Some(health.to_json());
                    }
                }
                (ctx.ledger(), kron.kron_seconds)
            });
        let numerical = numerical_out.lock().unwrap().take();
        VarRunOutcome { report, numerical }
    }
}

/// Analytic paper-scale `UoI_VAR` phase ledger for one Table I point.
///
/// The executed runs shrink `p` for tractability; this closed form
/// evaluates the same workload structure (lockstep per-round allreduce of
/// the full `p^2` estimate, full-lag-matrix pulls through `n_reader`
/// windows) at the paper's `p` and core count, using the ADMM round count
/// measured from the executed run. `d = 1`, `N = 2p` as in the paper.
///
/// Returns the per-core ledger and the Kronecker seconds (== the
/// distribution component).
#[allow(clippy::too_many_arguments)]
pub fn var_paper_ledger(
    p: usize,
    cores: usize,
    b1: usize,
    b2: usize,
    q: usize,
    iters_per_solve: f64,
    n_readers: usize,
    model: &MachineModel,
) -> (PhaseLedger, f64) {
    let pf = p as f64;
    let n = 2.0 * pf - 1.0;
    let dp = pf; // d = 1
    let c = cores as f64;

    // Compute: per-round x-updates over all p columns, plus one
    // factorisation per bootstrap and the estimation OLS fits.
    let rounds = (b1 * q) as f64 * iters_per_solve;
    let iter_flops_total = rounds * pf * 2.0 * dp * dp;
    let factor_flops = b1 as f64 * (n * dp * dp.min(n) + dp * dp * dp / 3.0);
    let est_flops = (b2 * q) as f64 * pf * n * 16.0;
    let per_core_flops = (iter_flops_total + factor_flops + est_flops) / c;
    let compute = model.compute_time(per_core_flops, n * dp * 8.0 / c);

    // Communication: one allreduce of the vectorised estimate per round.
    let comm = rounds * model.allreduce_time(cores, p * p * 8 + 8)
        + (b2 * q) as f64 * model.allreduce_time(cores, p * p * 8 + 16);

    // Distribution (Kron + vec): every core pulls the full (Y | X) lag
    // matrix once per bootstrap; the n_reader windows serialise the
    // aggregate load.
    let pulls = (b1 + 2 * b2) as f64;
    let row_bytes = (pf + dp) * 8.0;
    let aggregate_msgs = c * n * pulls;
    let aggregate_bytes = aggregate_msgs * row_bytes;
    let kron =
        (aggregate_msgs * model.alpha + aggregate_bytes * model.beta) / n_readers.max(1) as f64;

    let io = model.io.parallel_read_time(cores, n * pf * 8.0);
    (
        PhaseLedger {
            compute,
            comm,
            distribution: kron,
            io,
        },
        kron,
    )
}

/// Estimate the mean ADMM rounds per (bootstrap, lambda) solve from an
/// executed run's allreduce event count.
pub fn measured_rounds_per_solve(
    report: &SimReport<(PhaseLedger, f64)>,
    b1: usize,
    q: usize,
) -> f64 {
    let events = report.allreduce_events().count() as f64;
    (events / (b1 * q) as f64).max(1.0)
}
