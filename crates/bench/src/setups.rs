//! The paper's experimental setups (Table I) and the standard workload
//! builders shared by the figure harnesses.

use uoi_mpisim::MachineModel;

/// Bytes in a paper "GB".
pub const GB: f64 = 1024.0 * 1024.0 * 1024.0;

/// The fixed `UoI_LASSO` feature count used across all datasets
/// ("kept a constant at 20,101 features").
pub const LASSO_FEATURES: usize = 20_101;

/// One (data size, core count) row of Table I.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Paper dataset / problem size in bytes.
    pub bytes: f64,
    /// Paper core count.
    pub cores: usize,
}

/// Table I single-node row (both algorithms): 16 GB on 68 cores.
pub fn single_node() -> ScalePoint {
    ScalePoint {
        bytes: 16.0 * GB,
        cores: 68,
    }
}

/// Table I weak-scaling rows for `UoI_LASSO`.
pub fn lasso_weak() -> Vec<ScalePoint> {
    [
        (128.0, 4_352),
        (256.0, 8_704),
        (512.0, 17_408),
        (1024.0, 34_816),
        (2048.0, 69_632),
        (4096.0, 139_264),
        (8192.0, 278_528),
    ]
    .into_iter()
    .map(|(gb, cores)| ScalePoint {
        bytes: gb * GB,
        cores,
    })
    .collect()
}

/// Table I strong-scaling rows for `UoI_LASSO` (1 TB fixed).
pub fn lasso_strong() -> (f64, Vec<usize>) {
    (1024.0 * GB, vec![17_408, 34_816, 69_632, 139_264])
}

/// Table I weak-scaling rows for `UoI_VAR`.
pub fn var_weak() -> Vec<ScalePoint> {
    [
        (128.0, 2_176),
        (256.0, 4_352),
        (512.0, 8_704),
        (1024.0, 17_408),
        (2048.0, 34_816),
        (4096.0, 69_632),
        (8192.0, 139_264),
    ]
    .into_iter()
    .map(|(gb, cores)| ScalePoint {
        bytes: gb * GB,
        cores,
    })
    .collect()
}

/// Table I strong-scaling rows for `UoI_VAR` (1 TB fixed).
pub fn var_strong() -> (f64, Vec<usize>) {
    (1024.0 * GB, vec![4_352, 8_704, 17_408, 34_816])
}

/// The `UoI_VAR` feature count for a given problem size: the paper
/// anchors 356 features at 128 GB and 1000 at 8 TB; with `N = 2p`
/// samples the vectorised dense problem grows as `p^4`, so
/// `p(bytes) = 356 * (bytes / 128 GB)^{1/4}` reproduces both anchors.
pub fn var_features(bytes: f64) -> usize {
    (356.0 * (bytes / (128.0 * GB)).powf(0.25)).round() as usize
}

/// Total `UoI_LASSO` sample rows for a dataset of `bytes`.
pub fn lasso_rows(bytes: f64) -> usize {
    (bytes / (8.0 * LASSO_FEATURES as f64)).round() as usize
}

/// The standard machine model for the harnesses (KNL preset,
/// deterministic unless a figure needs the noise — Fig 5 turns it on).
pub fn machine() -> MachineModel {
    MachineModel::deterministic()
}

/// The machine model with collective noise enabled (Fig 5).
pub fn machine_noisy() -> MachineModel {
    MachineModel::knl()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        assert_eq!(lasso_weak().len(), 7);
        assert_eq!(var_weak().len(), 7);
        // LASSO weak points double both axes.
        for w in lasso_weak().windows(2) {
            assert!((w[1].bytes / w[0].bytes - 2.0).abs() < 1e-12);
            assert_eq!(w[1].cores, w[0].cores * 2);
        }
        // VAR uses half the LASSO cores at each size.
        for (l, v) in lasso_weak().iter().zip(var_weak()) {
            assert_eq!(l.cores, v.cores * 2);
        }
    }

    #[test]
    fn var_feature_anchors() {
        assert_eq!(var_features(128.0 * GB), 356);
        let p8tb = var_features(8192.0 * GB);
        assert!((995..=1010).contains(&p8tb), "8TB features {p8tb}");
    }

    #[test]
    fn lasso_rows_at_16gb() {
        // 16 GB / (8 B x 20101 features) ≈ 107k samples.
        let n = lasso_rows(16.0 * GB);
        assert!((100_000..115_000).contains(&n), "{n}");
    }
}
