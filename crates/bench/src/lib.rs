//! # uoi-bench
//!
//! Shared infrastructure for the experiment harnesses: result tables
//! (printed and saved as CSV under `results/`), scale-factor handling,
//! and the standard machine/experiment configurations keyed to the
//! paper's Table I.
//!
//! Every table and figure of the paper has a binary in `src/bin/`
//! (`cargo run -p uoi-bench --release --bin fig4_lasso_weak`, ...). Paper
//! sizes are *modeled* through `uoi-mpisim`'s virtual clock at the
//! paper's core counts while the executed working sets are scaled by
//! `UOI_SCALE` (bytes divisor, default 1024: "GB" becomes "MB").

#![allow(clippy::needless_range_loop)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use uoi_telemetry::{
    analyze, build_timeline, ConvergenceReport, JsonlSink, MemorySink, MetricsRegistry,
    OpenMetricsExporter, ProgressPlan, ProgressTracker, TeeSink, Telemetry, TraceEvent,
};
pub use uoi_telemetry::{RunReport, RunSummary, RUN_REPORT_SCHEMA};

pub mod setups;
pub mod straggler;
pub mod workload;

/// Executed rank count for the harnesses (`UOI_EXEC_RANKS`, default 8).
pub fn exec_ranks() -> usize {
    std::env::var("UOI_EXEC_RANKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// The dataset scale divisor (`UOI_SCALE`, default 1024): executed
/// problems are `paper_bytes / scale`.
pub fn scale_divisor() -> u64 {
    std::env::var("UOI_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// Quick mode trims bootstrap counts for CI-speed runs
/// (`UOI_QUICK=1`).
pub fn quick_mode() -> bool {
    std::env::var("UOI_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Format a byte count the way the paper labels its x-axes.
pub fn fmt_bytes(bytes: f64) -> String {
    const KB: f64 = 1024.0;
    if bytes >= KB * KB * KB * KB {
        format!("{:.0}TB", bytes / (KB * KB * KB * KB))
    } else if bytes >= KB * KB * KB {
        format!("{:.0}GB", bytes / (KB * KB * KB))
    } else if bytes >= KB * KB {
        format!("{:.0}MB", bytes / (KB * KB))
    } else if bytes >= KB {
        format!("{:.0}KB", bytes / KB)
    } else {
        format!("{bytes:.0}B")
    }
}

/// A result table that prints aligned to stdout and saves as CSV.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "=== {} ===", self.title);
        let line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        let _ = writeln!(s, "{}", line.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(s, "{}", line.join("  "));
        }
        s
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Stringified rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Start a `RunReport` carrying this table (schema
    /// `uoi.run_report/v1`) plus the standard harness knobs. Callers
    /// chain `.param(..)`, `.with_summary(..)`, `.with_metrics(..)`
    /// and hand the result to [`emit_run_report`].
    pub fn run_report(&self, bench: &str) -> RunReport {
        RunReport::new(bench, self.title.clone())
            .param("exec_ranks", exec_ranks())
            .param("scale_divisor", scale_divisor())
            .param("quick", quick_mode())
            .with_table(&self.headers, &self.rows)
    }

    /// Print to stdout and save `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        let dir = results_dir();
        std::fs::create_dir_all(&dir).ok();
        let mut csv = self.headers.join(",") + "\n";
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let path = dir.join(format!("{name}.csv"));
        if std::fs::write(&path, csv).is_ok() {
            println!("[saved {}]", path.display());
        }
    }
}

/// `results/` at the workspace root (overridable via `UOI_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("UOI_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    // Walk up from the executable's cwd to find the workspace root.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from("results")
}

/// Write a `RunReport` as `results/<bench>.json` (schema
/// `uoi.run_report/v1`), announcing the path like `Table::emit`.
pub fn emit_run_report(report: &RunReport) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    match report.write_to_dir(&dir) {
        Ok(path) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[run report not saved: {e}]"),
    }
}

/// Opt-in tracing for a harness run (`UOI_TRACE=1`).
///
/// When enabled, every rank's trace events are tee'd into two sinks: a
/// `results/<bench>.trace.jsonl` file (the `uoi-trace` CLI converts it
/// to a Perfetto-loadable Chrome trace) and an in-memory sink replayed
/// after the run into the per-phase/per-rank breakdown attached to the
/// `RunReport`. Disabled (the default) this is a no-op handle: spans
/// and trace events cost one branch.
pub struct BenchTrace {
    telemetry: Telemetry,
    metrics: Option<Arc<MetricsRegistry>>,
    memory: Option<Arc<MemorySink>>,
    jsonl: Option<Arc<JsonlSink>>,
    trace_path: Option<PathBuf>,
    prom_path: Option<PathBuf>,
    exporter: Option<OpenMetricsExporter>,
}

impl BenchTrace {
    /// Build from the environment: tracing on iff `UOI_TRACE=1`.
    pub fn from_env(bench: &str) -> Self {
        if std::env::var("UOI_TRACE")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Self::enabled(bench)
        } else {
            Self {
                telemetry: Telemetry::disabled(),
                metrics: None,
                memory: None,
                jsonl: None,
                trace_path: None,
                prom_path: None,
                exporter: None,
            }
        }
    }

    /// Build with tracing forced on (tests; `from_env` for harnesses).
    ///
    /// Alongside the JSONL trace, a shared [`MetricsRegistry`] collects
    /// the solver counters and a background [`OpenMetricsExporter`]
    /// rewrites `results/<bench>.metrics.prom` periodically (interval
    /// from `UOI_METRICS_INTERVAL_MS`, default 1000), with a final
    /// snapshot on shutdown — a Prometheus scrape target for the run.
    pub fn enabled(bench: &str) -> Self {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("{bench}.trace.jsonl"));
        let prom_path = dir.join(format!("{bench}.metrics.prom"));
        let metrics = Arc::new(MetricsRegistry::new());
        let interval = std::env::var("UOI_METRICS_INTERVAL_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1000u64);
        let exporter = OpenMetricsExporter::spawn(
            prom_path.clone(),
            metrics.clone(),
            std::time::Duration::from_millis(interval.max(10)),
        );
        let memory = Arc::new(MemorySink::new());
        match JsonlSink::create(&path) {
            Ok(file) => {
                let file = Arc::new(file.with_metrics(metrics.clone()));
                let tee = Arc::new(TeeSink::new(vec![memory.clone() as _, file.clone() as _]));
                Self {
                    telemetry: Telemetry::new(tee, metrics.clone()),
                    metrics: Some(metrics),
                    memory: Some(memory),
                    jsonl: Some(file),
                    trace_path: Some(path),
                    prom_path: Some(prom_path),
                    exporter: Some(exporter),
                }
            }
            Err(e) => {
                eprintln!(
                    "[trace file {} not writable: {e}; tracing to memory only]",
                    path.display()
                );
                Self {
                    telemetry: Telemetry::new(memory.clone() as _, metrics.clone()),
                    metrics: Some(metrics),
                    memory: Some(memory),
                    jsonl: None,
                    trace_path: None,
                    prom_path: Some(prom_path),
                    exporter: Some(exporter),
                }
            }
        }
    }

    /// Whether tracing is live.
    pub fn enabled_now(&self) -> bool {
        self.memory.is_some()
    }

    /// The handle to pass to `Cluster::with_telemetry` (cheap clone).
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// The shared metrics registry, when tracing is live.
    pub fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.metrics.clone()
    }

    /// Flush sinks and attach the per-phase breakdown, the convergence
    /// report, and the metrics snapshot (plus the dropped-record count,
    /// when a trace file is in play) to `report`. Stops the periodic
    /// exporter after a final snapshot, so the `.prom` file reflects the
    /// completed run. A no-op passthrough when tracing is off.
    pub fn annotate(&self, report: RunReport) -> RunReport {
        let Some(memory) = &self.memory else {
            return report;
        };
        self.telemetry.flush();
        let events = memory.snapshot();
        let breakdown = analyze(&build_timeline(&events));
        let mut report = report.with_breakdown(breakdown.to_json());
        let convergence = ConvergenceReport::from_events(&events);
        if convergence.tasks > 0 {
            report = report.with_convergence(convergence.to_json());
        }
        if let Some(m) = &self.metrics {
            report = report.with_metrics(m.snapshot());
        }
        if let Some(file) = &self.jsonl {
            report = report.with_dropped_records(file.dropped_records());
        }
        if let Some(exporter) = &self.exporter {
            exporter.stop();
            // One more write with the final progress gauges folded in —
            // the periodic exporter only sees the metrics registry.
            if let (Some(path), Some(m)) = (&self.prom_path, &self.metrics) {
                let progress = self.final_progress();
                let _ = uoi_telemetry::write_openmetrics(path, &m.snapshot(), progress.as_ref());
                println!("[saved {}]", path.display());
            }
        }
        if let Some(path) = &self.trace_path {
            println!("[saved {}]", path.display());
        }
        report
    }

    /// Replay the in-memory trace through a [`ProgressTracker`] and
    /// return the final snapshot (`None` when tracing is off or no
    /// convergence records were emitted). The plan is derived from the
    /// observed task census, so completion is exactly 1.0 at fit end.
    pub fn final_progress(&self) -> Option<uoi_telemetry::ProgressSnapshot> {
        let memory = self.memory.as_ref()?;
        let events = memory.snapshot();
        let (mut sel, mut est) = (0usize, 0usize);
        for e in &events {
            if let TraceEvent::Convergence { stage, .. } = e {
                if *stage == "selection" {
                    sel += 1;
                } else {
                    est += 1;
                }
            }
        }
        if sel + est == 0 {
            return None;
        }
        let mut tracker = ProgressTracker::new(ProgressPlan {
            selection_tasks: sel,
            estimation_tasks: est,
        });
        for e in &events {
            tracker.observe(e);
        }
        Some(tracker.snapshot())
    }
}

/// Write an arbitrary text artifact under `results/`.
pub fn save_artifact(name: &str, contents: &str) {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(name);
    if std::fs::write(&path, contents).is_ok() {
        println!("[saved {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512.0), "512B");
        assert_eq!(fmt_bytes(16.0 * 1024.0 * 1024.0 * 1024.0), "16GB");
        assert_eq!(fmt_bytes(8.0 * 1024f64.powi(4)), "8TB");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("=== demo ==="));
        assert!(r.contains("bbbb"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
