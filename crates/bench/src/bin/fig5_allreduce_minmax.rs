//! Fig 5: `T_min` / `T_max` of one `MPI_Allreduce` across the weak-scaling
//! points — the paper's communication-variability analysis. The payload
//! is uniform (the 20,101-feature estimate vector), so the min/max spread
//! measures performance variability of the collective.

use uoi_bench::setups::{lasso_weak, machine_noisy, LASSO_FEATURES};
use uoi_bench::{emit_run_report, exec_ranks, fmt_bytes, BenchTrace, Table};
use uoi_mpisim::Cluster;

fn main() {
    let payload = LASSO_FEATURES; // doubles per allreduce, as in Fig 4/6
    let reps = 24;
    let mut t = Table::new(
        "Fig 5 — MPI_Allreduce T_min / T_max across weak-scaling points",
        &[
            "data size",
            "cores",
            "payload",
            "T_min (s)",
            "T_mean (s)",
            "T_max (s)",
            "max/min",
        ],
    );
    let mut last_summary = None;
    let mut last_trace = None;
    for point in lasso_weak() {
        let trace = BenchTrace::from_env(&format!("fig5_allreduce_minmax.c{}", point.cores));
        let report = Cluster::new(exec_ranks(), machine_noisy())
            .modeled_ranks(point.cores)
            .with_telemetry(trace.telemetry())
            .run(move |ctx, world| {
                for _ in 0..reps {
                    let mut v = vec![1.0; payload];
                    world.allreduce_sum(ctx, &mut v);
                }
            });
        let (mut t_min, mut t_max, mut t_sum, mut n) = (f64::INFINITY, 0.0_f64, 0.0, 0usize);
        for ev in report.allreduce_events() {
            t_min = t_min.min(ev.t_min);
            t_max = t_max.max(ev.t_max);
            t_sum += ev.t_mean;
            n += 1;
        }
        last_summary = Some(report.run_summary());
        last_trace = Some(trace);
        t.row(&[
            fmt_bytes(point.bytes),
            point.cores.to_string(),
            format!("{}B", payload * 8),
            format!("{t_min:.6}"),
            format!("{:.6}", t_sum / n.max(1) as f64),
            format!("{t_max:.6}"),
            format!("{:.2}", t_max / t_min.max(1e-12)),
        ]);
    }
    t.emit("fig5_allreduce_minmax");
    let mut rep = t
        .run_report("fig5_allreduce_minmax")
        .param("payload_bytes", payload * 8);
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    if let Some(trace) = &last_trace {
        rep = trace.annotate(rep);
    }
    emit_run_report(&rep);
    println!(
        "paper shape check: mean cost grows with log(cores); a persistent T_max/T_min spread\n\
         reflects communication performance variability, yet scaling remains good."
    );
}
