//! Fig 10: strong scaling of `UoI_VAR` — the 1 TB problem (p ≈ 599) on
//! 4,352 to 34,816 cores (Table I).
//!
//! Paper shape: computation scales near-ideally (sparse kernels);
//! communication grows but barely affects the total; the distributed
//! Kronecker + vectorisation time grows with core count (more compute
//! cores pulling from the same reader windows).

use uoi_bench::setups::{machine, var_features, var_strong};
use uoi_bench::workload::{measured_rounds_per_solve, var_paper_ledger, VarScalingRun};
use uoi_bench::{emit_run_report, exec_ranks, quick_mode, Table};
use uoi_mpisim::Phase;

fn main() {
    let (bytes, cores_list) = var_strong();
    let paper_p = var_features(bytes);
    let p = (paper_p / 8).max(24);
    let (b1, b2, q) = if quick_mode() { (3, 2, 2) } else { (6, 4, 4) };

    let mut t = Table::new(
        &format!("Fig 10 — UoI_VAR strong scaling (1 TB fixed, paper p={paper_p}, exec p={p})"),
        &[
            "cores",
            "computation (s)",
            "ideal compute (s)",
            "communication (s)",
            "distribution (s)",
            "kron+vec (s)",
            "total (s)",
        ],
    );
    let mut base = None;
    let mut last_summary = None;
    for &cores in &cores_list {
        let run = VarScalingRun {
            features: p,
            samples: 2 * p,
            modeled_cores: cores,
            exec_ranks: exec_ranks(),
            n_readers: 4,
            b1,
            b2,
            q,
            threads: 1,
            model: machine(),
            seed: 23,
        };
        let out = run.execute();
        last_summary = Some(out.report.run_summary());
        let rounds = measured_rounds_per_solve(&out.report, b1, q);
        // Paper configuration (B1=30, B2=20, q=20, n_reader=64).
        let (l, kron) = var_paper_ledger(paper_p, cores, 30, 20, 20, rounds, 64, &machine());
        let compute = l.get(Phase::Compute);
        let b = *base.get_or_insert(compute * cores_list[0] as f64);
        t.row(&[
            cores.to_string(),
            format!("{compute:.3}"),
            format!("{:.3}", b / cores as f64),
            format!("{:.3}", l.get(Phase::Comm)),
            format!("{:.3}", l.get(Phase::Distribution)),
            format!("{kron:.3}"),
            format!("{:.3}", l.total()),
        ]);
    }
    t.emit("fig10_var_strong");
    let mut rep = t.run_report("fig10_var_strong").param("paper_p", paper_p);
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    emit_run_report(&rep);
    println!(
        "paper shape check: near-ideal compute scaling; Kron+vec distribution grows with\n\
         core count (reader-window serialisation) as in the weak-scaling runs."
    );
}
