//! Fig 11: the Granger-causality analysis — a VAR(1) fit to first
//! differences of weekly closes of 50 companies over two years, with
//! `B1 = 40, B2 = 5` "selected to create a strong pressure toward sparse
//! parameter estimates". The paper reports < 40 edges out of 2,500 and a
//! hub company (Google) depending on firms across several sectors.
//!
//! Substitution (DESIGN.md §2): a sector-structured synthetic market with
//! known ground-truth dynamics replaces the S&P closes; the preprocessing
//! (weekly aggregation, first differences) is identical, and unlike the
//! paper we can also score the recovered network against the truth.

use std::sync::Arc;
use uoi_bench::{emit_run_report, quick_mode, save_artifact, Table};
use uoi_core::uoi_lasso::UoiLassoConfig;
use uoi_core::uoi_var::UoiVarConfig;
use uoi_core::{SelectionCounts, UoiVarFitter};
use uoi_data::preprocess::{aggregate_last, first_differences};
use uoi_data::{FinanceConfig, DAYS_PER_WEEK};
use uoi_solvers::AdmmConfig;
use uoi_telemetry::{MetricsRegistry, Telemetry};

fn main() {
    let market = FinanceConfig {
        n_companies: 50,
        weeks: 104,
        seed: 2013,
        ..Default::default()
    }
    .generate();
    // The paper's preprocessing: daily closes -> weekly closes -> first
    // differences (plausibly stationary).
    let weekly = aggregate_last(&market.daily_closes, DAYS_PER_WEEK);
    let diffs = first_differences(&weekly);
    println!(
        "Fig 11 input: {} weekly differences x {} companies",
        diffs.rows(),
        diffs.cols()
    );

    let (b1, b2) = if quick_mode() { (12, 5) } else { (24, 5) };
    // Solver metrics (ADMM convergence, warm-start hit rates, support
    // sizes) land in the run report.
    let metrics = Arc::new(MetricsRegistry::new());
    let cfg = UoiVarConfig {
        order: 1,
        block_len: None,
        base: UoiLassoConfig {
            b1,
            b2,
            q: 16,
            lambda_min_ratio: 5e-2,
            admm: AdmmConfig {
                max_iter: 800,
                ..Default::default()
            },
            support_tol: 1e-7,
            seed: 2014,
            telemetry: Telemetry::with_metrics(metrics.clone()),
            ..Default::default()
        },
    };
    let fit = UoiVarFitter::new(cfg).fit(&diffs).expect("UoI_VAR fit");
    let net = fit.network(0.0);

    let mut t = Table::new(
        &format!("Fig 11 — Granger network of 50 companies (B1={b1}, B2={b2})"),
        &["metric", "value"],
    );
    t.row(&["possible edges".into(), (50 * 50).to_string()]);
    t.row(&["selected edges".into(), net.edge_count().to_string()]);
    t.row(&[
        "edges excl. self-loops".into(),
        net.edge_count_no_loops().to_string(),
    ]);
    t.row(&["network density".into(), format!("{:.4}", net.density())]);
    let degrees = net.degrees();
    let (hub, hub_deg) = degrees
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .map(|(i, d)| (i, *d))
        .unwrap_or((0, 0));
    t.row(&[
        "highest-degree node".into(),
        format!("{} (degree {hub_deg})", market.tickers[hub]),
    ]);
    // Ground-truth comparison (impossible with the paper's real data).
    let truth_adj = market.truth.true_adjacency();
    let truth: Vec<usize> = (0..50 * 50)
        .filter(|&k| truth_adj[(k / 50, k % 50)] != 0.0)
        .collect();
    let recovered: Vec<usize> = {
        let adj = net.adjacency();
        (0..50 * 50)
            .filter(|&k| adj[(k / 50, k % 50)] != 0.0)
            .collect()
    };
    let counts = SelectionCounts::compare(&recovered, &truth, 2500);
    t.row(&["true edges (generator)".into(), truth.len().to_string()]);
    t.row(&[
        "edge precision".into(),
        format!("{:.3}", counts.precision()),
    ]);
    t.row(&["edge recall".into(), format!("{:.3}", counts.recall())]);
    t.row(&["edge F1".into(), format!("{:.3}", counts.f1())]);
    t.emit("fig11_sp500_network");
    emit_run_report(
        &t.run_report("fig11_sp500_network")
            .param("b1", b1)
            .param("b2", b2)
            .with_metrics(metrics.snapshot()),
    );

    // Edge list and DOT rendering (the paper's directed-graph figure).
    let mut edges = String::from("from,to,weight,lag\n");
    for e in &net.edges {
        edges.push_str(&format!(
            "{},{},{:.4},{}\n",
            market.tickers[e.from], market.tickers[e.to], e.weight, e.lag
        ));
    }
    save_artifact("fig11_edges.csv", &edges);
    save_artifact("fig11_network.dot", &net.to_dot(&market.tickers));

    println!(
        "paper shape check: sparse selection ({} edges of 2500; paper reports < 40) with an\n\
         interpretable hub structure.",
        net.edge_count()
    );
}
