//! Fig 9: weak scaling of `UoI_VAR` — problem sizes 128 GB to 8 TB on
//! 2,176 to 139,264 cores (Table I), features growing 356 → 1000.
//!
//! Paper shape (log-scale y): computation has near-ideal weak scaling;
//! communication grows with core count; the **distributed Kronecker
//! product + vectorisation (distribution) grows steeply** because a few
//! reader cores serve ever more compute cores — at ≥2 TB distribution
//! dominates the runtime.

use uoi_bench::setups::{machine, var_features, var_weak};
use uoi_bench::workload::{measured_rounds_per_solve, var_paper_ledger, VarScalingRun};
use uoi_bench::{emit_run_report, exec_ranks, fmt_bytes, quick_mode, Table};
use uoi_mpisim::Phase;

fn main() {
    // Paper config: B1 = 30, B2 = 20, q = 20, no P_B/P_lambda
    // parallelism. We keep the same ratios at reduced absolute counts.
    let (b1, b2, q) = if quick_mode() { (3, 2, 2) } else { (6, 4, 4) };
    // Executed node count is the paper's p scaled by 1/8 (the p^4 problem
    // explosion keeps even scaled runs faithful in *shape*).
    let p_scale = 8;

    let mut t = Table::new(
        &format!("Fig 9 — UoI_VAR weak scaling, paper-scale model calibrated by executed runs (B1:B2:q ratio 30:20:20 at {b1}:{b2}:{q})"),
        &[
            "problem",
            "cores",
            "paper p",
            "exec p",
            "computation (s)",
            "communication (s)",
            "distribution (s)",
            "kron+vec (s)",
            "total (s)",
        ],
    );
    let mut last_summary = None;
    for point in var_weak() {
        let paper_p = var_features(point.bytes);
        let p = (paper_p / p_scale).max(24);
        let run = VarScalingRun {
            features: p,
            samples: 2 * p,
            modeled_cores: point.cores,
            exec_ranks: exec_ranks(),
            n_readers: 4,
            b1,
            b2,
            q,
            threads: 1,
            model: machine(),
            seed: 19,
        };
        let out = run.execute();
        last_summary = Some(out.report.run_summary());
        let rounds = measured_rounds_per_solve(&out.report, b1, q);
        // Evaluate the analytic model at the paper's full configuration
        // (B1=30, B2=20, q=20, n_reader=64), calibrated by the measured
        // ADMM round count.
        let (l, kron) = var_paper_ledger(paper_p, point.cores, 30, 20, 20, rounds, 64, &machine());
        t.row(&[
            fmt_bytes(point.bytes),
            point.cores.to_string(),
            paper_p.to_string(),
            p.to_string(),
            format!("{:.3}", l.get(Phase::Compute)),
            format!("{:.3}", l.get(Phase::Comm)),
            format!("{:.3}", l.get(Phase::Distribution)),
            format!("{kron:.3}"),
            format!("{:.3}", l.total()),
        ]);
    }
    t.emit("fig9_var_weak");
    let mut rep = t.run_report("fig9_var_weak");
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    emit_run_report(&rep);
    println!(
        "paper shape check: distribution (Kron+vec) grows steeply with core count — the\n\
         n_reader windows serialise against ever more compute cores — and overtakes\n\
         computation at the largest problems."
    );
}
