//! Ablation: the communication-avoiding `UoI_VAR` variant the paper's
//! Discussion (§V) proposes — "using local computation modules to create
//! the matrix and then have a one-time communication" — versus the
//! implemented distributed-Kronecker path.
//!
//! The serial column-decomposed solver (`uoi_core::fit_uoi_var`) *is* the
//! communication-avoiding limit: it exploits
//! `(I ⊗ X)^T (I ⊗ X) = I ⊗ (X^T X)` so each response column solves
//! locally against one shared factorisation, with no per-iteration
//! estimate exchange. We compare the two paths' statistical output
//! (identical) and their modeled communication/distribution cost.

use uoi_bench::setups::machine;
use uoi_bench::{emit_run_report, quick_mode, BenchTrace, Table};
use uoi_core::uoi_lasso::UoiLassoConfig;
use uoi_core::uoi_var::UoiVarConfig;
use uoi_core::{DistOptions, ExecMode, ParallelLayout, UoiVarFitter};
use uoi_data::{VarConfig, VarProcess};
use uoi_mpisim::{Cluster, Phase};
use uoi_solvers::AdmmConfig;

fn main() {
    let p = if quick_mode() { 16 } else { 24 };
    let proc = VarProcess::generate(&VarConfig {
        p,
        order: 1,
        density: 0.1,
        target_radius: 0.6,
        noise_std: 1.0,
        seed: 77,
    });
    let series = proc.simulate(600, 80, 78);

    let base = UoiLassoConfig {
        b1: 6,
        b2: 4,
        q: 8,
        lambda_min_ratio: 2e-2,
        admm: AdmmConfig {
            max_iter: 1500,
            abstol: 1e-8,
            reltol: 1e-7,
            ..Default::default()
        },
        support_tol: 1e-6,
        seed: 79,
        ..Default::default()
    };
    let var_cfg = UoiVarConfig {
        order: 1,
        block_len: None,
        base,
    };

    // Communication-avoiding path (serial column decomposition).
    let t0 = std::time::Instant::now();
    let ca_fit = UoiVarFitter::new(var_cfg.clone())
        .fit(&series)
        .expect("serial VAR fit");
    let ca_wall = t0.elapsed().as_secs_f64();

    // Distributed-Kronecker path on a simulated partition.
    let fitter = UoiVarFitter::new(var_cfg).mode(ExecMode::Dist(
        DistOptions::default()
            .layout(ParallelLayout::admm_only())
            .n_readers(4),
    ));
    let series2 = series;
    let trace = BenchTrace::from_env("ablation_comm_avoiding");
    let report = Cluster::new(8, machine())
        .modeled_ranks(1024)
        .with_telemetry(trace.telemetry())
        .run(move |ctx, world| {
            let (fit, kron) = fitter.fit_on(ctx, world, &series2);
            (fit, kron.kron_seconds, ctx.ledger())
        });
    let (dist_fit, kron, ledger) = &report.results[0];

    // Statistical agreement.
    let mut max_diff = 0.0_f64;
    for (a, b) in ca_fit.vec_beta.iter().zip(&dist_fit.vec_beta) {
        max_diff = max_diff.max((a - b).abs());
    }

    let mut t = Table::new(
        "Ablation — distributed Kronecker vs communication-avoiding column decomposition",
        &["metric", "distributed-Kron", "comm-avoiding"],
    );
    t.row(&[
        "per-iteration estimate allreduce".into(),
        "yes (d*p^2 doubles/round)".into(),
        "none (local solves)".into(),
    ]);
    t.row(&[
        "modeled communication (s)".into(),
        format!("{:.4}", ledger.get(Phase::Comm)),
        "0".into(),
    ]);
    t.row(&[
        "modeled Kron distribution (s)".into(),
        format!("{kron:.4}"),
        "0 (one-time gather only)".into(),
    ]);
    t.row(&[
        "host wall time (s)".into(),
        "n/a (simulated)".into(),
        format!("{ca_wall:.3}"),
    ]);
    t.row(&[
        "max |coef difference|".into(),
        format!("{max_diff:.2e}"),
        "reference".into(),
    ]);
    t.row(&[
        "selected supports identical".into(),
        (ca_fit.supports_per_lambda == dist_fit.supports_per_lambda).to_string(),
        "reference".into(),
    ]);
    t.emit("ablation_comm_avoiding");
    emit_run_report(
        &trace.annotate(
            t.run_report("ablation_comm_avoiding")
                .param("p", p)
                .with_summary(report.run_summary()),
        ),
    );
    println!(
        "take-away: the two paths are statistically interchangeable; all of the distributed\n\
         path's communication + Kron-distribution time is the price of the paper's explicit\n\
         vectorised formulation — exactly the overhead §V proposes to avoid."
    );
}
