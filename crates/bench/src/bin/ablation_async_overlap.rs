//! Ablation: the paper's stated future work — "we are evaluating
//! non-blocking MPI and asynchronous execution models to enable further
//! scaling" (§IV-A4).
//!
//! We compare the blocking ADMM round structure (x-update, then a
//! blocking `MPI_Allreduce` of the estimates) against an overlapped
//! variant where the allreduce is issued non-blocking and the next
//! iteration's local x-update computation hides it, across the Table I
//! weak-scaling core counts.

use uoi_bench::setups::{lasso_weak, machine, LASSO_FEATURES};
use uoi_bench::{emit_run_report, exec_ranks, BenchTrace, Table};
use uoi_mpisim::Cluster;

fn main() {
    let payload = LASSO_FEATURES; // the estimate vector of the paper's solver
    let rounds = 60;
    let flops_per_round = 4.0 * 196.0 * LASSO_FEATURES as f64; // one Woodbury x-update
    let ws = 196.0 * LASSO_FEATURES as f64 * 8.0;

    let mut t = Table::new(
        "Ablation — blocking vs non-blocking allreduce in the ADMM round loop",
        &[
            "cores",
            "blocking makespan (s)",
            "overlapped makespan (s)",
            "saved",
        ],
    );
    let mut last_summary = None;
    let mut last_trace = None;
    for point in lasso_weak() {
        let blocking = Cluster::new(exec_ranks(), machine())
            .modeled_ranks(point.cores)
            .run(move |ctx, world| {
                for _ in 0..rounds {
                    ctx.compute_flops(flops_per_round, ws);
                    let mut v = vec![1.0; payload];
                    world.allreduce_sum(ctx, &mut v);
                }
            })
            .makespan();
        let trace = BenchTrace::from_env(&format!("ablation_async_overlap.c{}", point.cores));
        let overlapped_report = Cluster::new(exec_ranks(), machine())
            .modeled_ranks(point.cores)
            .with_telemetry(trace.telemetry())
            .run(move |ctx, world| {
                let mut pending = None;
                for _ in 0..rounds {
                    ctx.compute_flops(flops_per_round, ws);
                    // Complete the previous round's reduce (one-step-stale
                    // consensus), then launch this round's.
                    if let Some(p) = pending.take() {
                        uoi_mpisim::PendingReduce::wait(p, ctx);
                    }
                    let mut v = vec![1.0; payload];
                    pending = Some(world.iallreduce_sum(ctx, &mut v));
                }
                if let Some(p) = pending {
                    p.wait(ctx);
                }
            });
        let overlapped = overlapped_report.makespan();
        last_summary = Some(overlapped_report.run_summary());
        last_trace = Some(trace);
        t.row(&[
            point.cores.to_string(),
            format!("{blocking:.4}"),
            format!("{overlapped:.4}"),
            format!("{:.1}%", 100.0 * (1.0 - overlapped / blocking)),
        ]);
    }
    t.emit("ablation_async_overlap");
    let mut rep = t
        .run_report("ablation_async_overlap")
        .param("rounds", rounds);
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    if let Some(trace) = &last_trace {
        rep = trace.annotate(rep);
    }
    emit_run_report(&rep);
    println!(
        "take-away: overlapping the estimate allreduce behind the next x-update hides a\n\
         growing share of the communication as the core count rises — quantifying the\n\
         benefit of the paper's proposed non-blocking execution model (at the price of\n\
         one-step-stale consensus, which ADMM tolerates)."
    );
}
