//! Fig 8: exploiting `UoI_VAR`'s algorithmic parallelism — `P_B x
//! P_lambda` configurations with `B1 = B2 = 32`, `q = 16` over problem
//! sizes 16–128 GB.
//!
//! Paper shape: computation decreases as `P_lambda` grows, while the
//! distributed Kronecker product + vectorisation time *increases* when
//! `P_B` shrinks — the Kron build runs once per bootstrap per group, so
//! lower bootstrap parallelism means more sequential Kron rounds.

use uoi_bench::setups::machine;
use uoi_bench::{emit_run_report, fmt_bytes, quick_mode, BenchTrace, Table};
use uoi_core::uoi_lasso::UoiLassoConfig;
use uoi_core::uoi_var::UoiVarConfig;
use uoi_core::{DistOptions, ExecMode, ParallelLayout, UoiVarFitter};
use uoi_data::{VarConfig, VarProcess};
use uoi_mpisim::{Cluster, Phase};
use uoi_solvers::AdmmConfig;

fn main() {
    let sizes: &[(f64, usize)] = &[(16.0, 1_088), (32.0, 2_176), (64.0, 4_352), (128.0, 8_704)];
    let configs: &[(usize, usize)] = &[(8, 1), (4, 2), (2, 4), (1, 8)];
    let (b, q, p) = if quick_mode() {
        (8, 8, 32)
    } else {
        (16, 8, 48)
    };
    let exec = 8; // one executed rank per group at 8x1 ... 1x8

    let mut t = Table::new(
        &format!("Fig 8 — UoI_VAR P_B x P_lambda sweep (B1=B2={b}, q={q}, p={p})"),
        &[
            "problem",
            "cores",
            "PBxPL",
            "computation (s)",
            "communication (s)",
            "distribution (s)",
            "kron+vec (s)",
            "total (s)",
        ],
    );

    let mut last_summary = None;
    let mut last_trace = None;
    for &(gb, cores) in sizes {
        let bytes = gb * 1024.0 * 1024.0 * 1024.0;
        let proc = VarProcess::generate(&VarConfig {
            p,
            order: 1,
            density: 0.06,
            target_radius: 0.6,
            noise_std: 1.0,
            seed: 31,
        });
        let series = proc.simulate(2 * p, 50, 41);
        for &(p_b, p_l) in configs {
            let var_cfg = UoiVarConfig {
                order: 1,
                block_len: None,
                base: UoiLassoConfig {
                    b1: b,
                    b2: b,
                    q,
                    lambda_min_ratio: 5e-2,
                    admm: AdmmConfig {
                        max_iter: 150,
                        ..Default::default()
                    },
                    support_tol: 1e-6,
                    seed: 17,
                    ..Default::default()
                },
            };
            let fitter = UoiVarFitter::new(var_cfg).mode(ExecMode::Dist(
                DistOptions::default()
                    .layout(ParallelLayout { p_b, p_lambda: p_l })
                    .n_readers(4),
            ));
            let series = series.clone();
            let trace =
                BenchTrace::from_env(&format!("fig8_var_parallelism.c{cores}_pb{p_b}_pl{p_l}"));
            let report = Cluster::new(exec, machine())
                .modeled_ranks(cores)
                .with_telemetry(trace.telemetry())
                .run(move |ctx, world| {
                    let (_, kron) = fitter.fit_on(ctx, world, &series);
                    (ctx.ledger(), kron.kron_seconds)
                });
            let l = report.results.iter().map(|&(l, _)| l).fold(
                uoi_mpisim::PhaseLedger::default(),
                uoi_mpisim::PhaseLedger::max,
            );
            let kron = report.results.iter().map(|&(_, k)| k).fold(0.0, f64::max);
            last_summary = Some(report.run_summary());
            last_trace = Some(trace);
            t.row(&[
                fmt_bytes(bytes),
                cores.to_string(),
                format!("{p_b}x{p_l}"),
                format!("{:.3}", l.get(Phase::Compute)),
                format!("{:.3}", l.get(Phase::Comm)),
                format!("{:.3}", l.get(Phase::Distribution)),
                format!("{kron:.3}"),
                format!("{:.3}", l.total()),
            ]);
        }
    }
    t.emit("fig8_var_parallelism");
    let mut rep = t.run_report("fig8_var_parallelism");
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    if let Some(trace) = &last_trace {
        rep = trace.annotate(rep);
    }
    emit_run_report(&rep);
    println!(
        "paper shape check: Kron+vec time grows as P_B shrinks (more sequential bootstrap\n\
         rounds per group); computation falls as parallelism spreads the lambda path."
    );
}
