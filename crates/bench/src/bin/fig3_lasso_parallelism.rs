//! Fig 3: exploiting `UoI_LASSO`'s algorithmic parallelism — the
//! `P_B x P_lambda` configuration sweep (16x2, 8x4, 4x8, 2x16) with
//! `B1 = B2 = q = 48`, doubling the dataset and the ADMM cores together
//! (paper: 16 GB–128 GB on 2,176–17,408 cores; the per-core block is
//! constant at ≈48 rows x 20,101 features across the sweep).
//!
//! We execute one rank per (P_B, P_lambda) group, so each executed rank
//! carries exactly one modeled ADMM core's block; collective costs are
//! evaluated at the paper's core counts.

use uoi_bench::setups::{machine, LASSO_FEATURES};
use uoi_bench::{emit_run_report, fmt_bytes, quick_mode, BenchTrace, Table};
use uoi_core::{DistOptions, ExecMode, ParallelLayout, UoiFitter, UoiLassoConfig};
use uoi_data::LinearConfig;
use uoi_mpisim::{Cluster, Phase};
use uoi_solvers::AdmmConfig;

fn main() {
    let sizes: &[(f64, usize)] = &[(16.0, 2_176), (32.0, 4_352), (64.0, 8_704), (128.0, 17_408)];
    let configs: &[(usize, usize)] = &[(16, 2), (8, 4), (4, 8), (2, 16)];
    // Full mode keeps the paper's 48/48 ratios at reduced absolute counts
    // so a single host core finishes in minutes; quick mode shrinks again.
    let (b, q, p, max_iter) = if quick_mode() {
        (8, 8, 1_024, 25)
    } else {
        (16, 16, 4_096, 30)
    };
    let exec = 32; // one executed rank per (P_B, P_lambda) group

    let mut t = Table::new(
        &format!("Fig 3 — P_B x P_lambda sweep (B1=B2=q={b}, p={p})"),
        &[
            "dataset",
            "total cores",
            "ADMM cores",
            "PBxPL",
            "computation (s)",
            "communication (s)",
            "distribution (s)",
            "total (s)",
        ],
    );

    let mut last_summary = None;
    let mut last_trace = None;
    for &(gb, cores) in sizes {
        let bytes = gb * 1024.0 * 1024.0 * 1024.0;
        // Per-core rows are constant across the sweep (both axes double).
        let rows_per_core =
            ((bytes / (8.0 * LASSO_FEATURES as f64 * cores as f64)).round() as usize).max(8);
        let ds = LinearConfig {
            n_samples: rows_per_core, // one modeled core's block per rank
            n_features: p,
            n_nonzero: 10,
            snr: 8.0,
            seed: 3,
            ..Default::default()
        }
        .generate();

        for &(p_b, p_l) in configs {
            let layout = ParallelLayout { p_b, p_lambda: p_l };
            let cfg = UoiLassoConfig {
                b1: b,
                b2: b,
                q,
                lambda_min_ratio: 5e-2,
                admm: AdmmConfig {
                    max_iter,
                    ..Default::default()
                },
                support_tol: 1e-6,
                seed: 5,
                ..Default::default()
            };
            let (x, y) = (ds.x.clone(), ds.y.clone());
            let trace =
                BenchTrace::from_env(&format!("fig3_lasso_parallelism.c{cores}_pb{p_b}_pl{p_l}"));
            let report = Cluster::new(exec, machine())
                .modeled_ranks(cores)
                .with_telemetry(trace.telemetry())
                .run(move |ctx, world| {
                    let fitter = UoiFitter::new(cfg.clone())
                        .mode(ExecMode::Dist(DistOptions::default().layout(layout)));
                    let _ = fitter.fit_on(ctx, world, &x, &y);
                    ctx.ledger()
                });
            let l = report.phase_max();
            last_summary = Some(report.run_summary());
            last_trace = Some(trace);
            t.row(&[
                fmt_bytes(bytes),
                cores.to_string(),
                (cores / (p_b * p_l)).to_string(),
                format!("{p_b}x{p_l}"),
                format!("{:.3}", l.get(Phase::Compute)),
                format!("{:.3}", l.get(Phase::Comm)),
                format!("{:.3}", l.get(Phase::Distribution)),
                format!("{:.3}", l.total()),
            ]);
        }
    }
    t.emit("fig3_lasso_parallelism");
    let mut rep = t.run_report("fig3_lasso_parallelism");
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    if let Some(trace) = &last_trace {
        rep = trace.annotate(rep);
    }
    emit_run_report(&rep);
    println!(
        "paper shape check: runtimes within a dataset differ by P_B x P_lambda; communication\n\
         grows with ADMM cores across datasets. NOTE (see EXPERIMENTS.md): with warm-started\n\
         lambda paths and per-group shuffles this implementation favours high-P_B configs,\n\
         whereas the paper reports 2x16 fastest."
    );
}
