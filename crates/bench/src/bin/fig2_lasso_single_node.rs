//! Fig 2: `UoI_LASSO` single-node runtime breakdown (16 GB-class dataset,
//! `B1 = B2 = 5`, `q = 8`, 68 KNL cores).
//!
//! The paper reports ~90% of the runtime in computation and <10% in
//! communication, with small distribution and data-I/O bars. We run the
//! full distributed pipeline (SHF file → Tier-1 read → Tier-2 shuffles →
//! consensus ADMM → reduces) on a scaled dataset with the cost model
//! evaluated at 68 cores and print the same four bars.

use uoi_bench::setups::{machine, single_node};
use uoi_bench::straggler::{annotate_with_study, StudyPipeline};
use uoi_bench::{
    emit_run_report, exec_ranks, fmt_bytes, quick_mode, scale_divisor, BenchTrace, Table,
};
use std::sync::{Arc, Mutex};

use uoi_core::{DistOptions, ExecMode, NumericalConfig, ParallelLayout, UoiFitter, UoiLassoConfig};
use uoi_data::LinearConfig;
use uoi_mpisim::{Cluster, Phase};
use uoi_solvers::{AdmmConfig, PathSchedule};

fn main() {
    let point = single_node();
    let scaled_bytes = point.bytes / scale_divisor() as f64;
    // Scaled shape: keep the paper's B1/B2/q; shrink p and n together.
    let p = if quick_mode() { 256 } else { 512 };
    let n = ((scaled_bytes / (8.0 * p as f64)) as usize).max(64);
    println!(
        "Fig 2 setup: paper {} on {} cores -> executed {} ({} x {}), {} ranks modeled as {} cores",
        fmt_bytes(point.bytes),
        point.cores,
        fmt_bytes(scaled_bytes),
        n,
        p,
        exec_ranks(),
        point.cores
    );

    let ds = LinearConfig {
        n_samples: n,
        n_features: p,
        n_nonzero: 20,
        snr: 8.0,
        seed: 2,
        ..Default::default()
    }
    .generate();

    // In-rank ADMM workers over the lambda path: UOI_THREADS overrides,
    // and any multi-threaded run switches to the fused lockstep schedule
    // so adjacent lambdas share one factorisation per round.
    let threads = AdmmConfig::env_threads(4);
    let schedule = if threads > 1 {
        PathSchedule::Fused
    } else {
        PathSchedule::Sequential
    };
    // UOI_NUMERICAL=1 arms the numerical-resilience guards; the fitted
    // numbers are bit-identical on this clean dataset and the run report
    // gains a `numerical` health block (consumed by bench_snapshot.sh).
    let guarded = std::env::var("UOI_NUMERICAL").is_ok_and(|v| v == "1");
    let cfg = UoiLassoConfig {
        b1: 5,
        b2: 5,
        q: 8,
        lambda_min_ratio: 5e-2,
        admm: AdmmConfig {
            max_iter: 150,
            threads,
            schedule,
            ..Default::default()
        },
        support_tol: 1e-6,
        seed: 11,
        numerical: if guarded {
            NumericalConfig::guarded()
        } else {
            NumericalConfig::default()
        },
        ..Default::default()
    };
    let (x, y) = (ds.x.clone(), ds.y);
    let numerical_out = Arc::new(Mutex::new(None));
    let numerical_slot = Arc::clone(&numerical_out);
    let paper_bytes = point.bytes;
    let trace = BenchTrace::from_env("fig2_lasso_single_node");
    let report = Cluster::new(exec_ranks(), machine())
        .modeled_ranks(point.cores)
        .with_telemetry(trace.telemetry())
        .run(move |ctx, world| {
            // Parallel HDF5-style load of the (paper-sized) dataset plus a
            // result save at the end — the paper's "Data I/O" bar.
            ctx.span("read_t1.load", |ctx| {
                let t_read = ctx
                    .model()
                    .io
                    .parallel_read_time(world.modeled_size(ctx), paper_bytes);
                ctx.charge_io(t_read);
            });
            let fitter = UoiFitter::new(cfg.clone()).mode(ExecMode::Dist(
                DistOptions::default().layout(ParallelLayout::admm_only()),
            ));
            let fit = fitter.fit_on(ctx, world, &x, &y);
            if world.rank() == 0 {
                if let Some(health) = &fit.numerical {
                    *numerical_slot.lock().unwrap() = Some(health.to_json());
                }
            }
            ctx.span("checkpoint.save", |ctx| {
                let t_save = ctx
                    .model()
                    .io
                    .parallel_read_time(world.modeled_size(ctx), (fit.beta.len() * 8) as f64);
                ctx.charge_io(t_save);
            });
            ctx.ledger()
        });

    let l = report.phase_max();
    let total = l.total().max(1e-12);
    let mut t = Table::new(
        "Fig 2 — UoI_LASSO single-node runtime breakdown (B1=B2=5, q=8)",
        &["phase", "seconds", "% of total"],
    );
    for ph in Phase::ALL {
        t.row(&[
            ph.label().into(),
            format!("{:.4}", l.get(ph)),
            format!("{:.1}%", 100.0 * l.get(ph) / total),
        ]);
    }
    t.row(&["Total".into(), format!("{total:.4}"), "100.0%".into()]);
    t.emit("fig2_lasso_single_node");
    let mut rr = t
        .run_report("fig2_lasso_single_node")
        .param("modeled_cores", point.cores)
        .param("threads", threads)
        .param("admm_schedule", format!("{schedule:?}"))
        .param("gram_kernel", uoi_linalg::gram::KERNEL_VARIANT)
        .with_summary(report.run_summary());
    if let Some(health) = numerical_out.lock().unwrap().take() {
        rr = rr.with_numerical(health);
    }
    emit_run_report(&trace.annotate(annotate_with_study(rr, StudyPipeline::Lasso)));

    println!(
        "paper shape check: computation {:.0}% (paper ~90%), communication {:.0}% (paper <10%)",
        100.0 * l.compute / total,
        100.0 * l.comm / total
    );
}
