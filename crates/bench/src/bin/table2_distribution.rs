//! Table II: Randomized Data Distribution vs the conventional
//! single-reader strategy — read time and distribution time at 16 GB,
//! 128 GB, 256 GB, 512 GB and 1 TB.
//!
//! Each paper size is run at an executed scale (real SHF file on disk,
//! real shuffles) with the I/O cost model evaluated at the *paper* size
//! and Table I core count — so the seconds printed are the modeled
//! machine's, comparable with the paper's columns. The paper's 16 GB row
//! was "not striped into OSTs"; we reproduce that by modeling it with a
//! single-stripe file.

use uoi_bench::setups::{lasso_rows, machine};
use uoi_bench::{emit_run_report, exec_ranks, fmt_bytes, BenchTrace, Table};
use uoi_linalg::Matrix;
use uoi_mpisim::Cluster;
use uoi_tieredio::distribution::{conventional, randomized, ConventionalConfig};
use uoi_tieredio::shf::{write_matrix, ShfDataset};

fn main() {
    // (paper GB, cores) rows of Table II; cores follow Table I.
    let rows: &[(f64, usize, bool)] = &[
        (16.0, 68, false), // single node, unstriped in the paper
        (128.0, 4_352, true),
        (256.0, 8_704, true),
        (512.0, 17_408, true),
        (1024.0, 34_816, true),
    ];

    // One scaled on-disk dataset reused for the real data movement.
    let exec = exec_ranks();
    let n_exec = 512;
    let p_exec = 64;
    let src = Matrix::from_fn(n_exec, p_exec, |i, j| (i * p_exec + j) as f64 * 0.001);
    let path = std::env::temp_dir().join(format!("uoi_table2_{}.shf", std::process::id()));
    write_matrix(&path, &src).expect("write scaled dataset");
    let ds = ShfDataset::open(&path).expect("open scaled dataset");

    let mut t = Table::new(
        "Table II — data read + distribution time (modeled seconds at paper scale)",
        &[
            "data size",
            "cores",
            "conv read (s)",
            "conv distr (s)",
            "rand read (s)",
            "rand distr (s)",
            "speedup (read)",
        ],
    );

    let mut last_summary = None;
    let mut last_trace = None;
    for &(gb, cores, striped) in rows {
        let bytes = gb * 1024.0 * 1024.0 * 1024.0;
        let mut model = machine();
        if !striped {
            model.io.stripe_count = 1;
        }
        // Conventional: one pass per UoI phase over the file in 64 MB
        // chunks (the paper's reader cannot cache the dataset).
        let conv_cfg = ConventionalConfig {
            chunk_bytes: 64 << 20,
            passes: 2,
        };

        // Real (scaled) execution to validate both paths move identical
        // data; the virtual ledger uses the *scaled* byte count, so for
        // the table we evaluate the same formulas at paper scale below.
        let ds2 = ds.clone();
        let cc = conv_cfg.clone();
        let trace = BenchTrace::from_env(&format!("table2_distribution.c{cores}"));
        let report = Cluster::new(exec, model.clone())
            .modeled_ranks(cores)
            .with_telemetry(trace.telemetry())
            .run(move |ctx, world| {
                let rows: Vec<usize> = (0..16).map(|i| (i * 31 + world.rank() * 7) % 512).collect();
                let (a, _tc) = conventional(ctx, world, &ds2, &rows, &cc);
                let (b, tr) = randomized(ctx, world, &ds2, &rows);
                assert_eq!(a, b, "strategies must deliver identical rows");
                tr
            });
        let rand_distr_scaled = report.results[0].distribute;
        last_summary = Some(report.run_summary());
        last_trace = Some(trace);

        // Paper-scale modeled times.
        let chunks = (bytes / conv_cfg.chunk_bytes as f64).ceil() as usize * conv_cfg.passes;
        let conv_read = model
            .io
            .serial_chunked_read_time(bytes * conv_cfg.passes as f64, chunks);
        // Conventional distribution: root scatters every rank's block.
        let conv_distr = model.gather_time(cores, (bytes / cores as f64) as usize);
        let rand_read = model.io.parallel_read_time(cores, bytes);
        // Randomized distribution: Tier-2 shuffle of each rank's block
        // through p parallel windows — per-window serving time for one
        // block of rows.
        let rows_total = lasso_rows(bytes) as f64;
        let row_bytes = bytes / rows_total;
        let rows_per_core = rows_total / cores as f64;
        let rand_distr =
            rows_per_core * model.onesided_time(row_bytes as usize) + rand_distr_scaled.min(1.0); // executed component (sub-second)

        t.row(&[
            fmt_bytes(bytes),
            cores.to_string(),
            format!("{conv_read:.2}"),
            format!("{conv_distr:.3}"),
            format!("{rand_read:.3}"),
            format!("{rand_distr:.3}"),
            format!("{:.0}x", conv_read / rand_read.max(1e-9)),
        ]);
    }
    t.emit("table2_distribution");
    let mut rep = t.run_report("table2_distribution");
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    if let Some(trace) = &last_trace {
        rep = trace.annotate(rep);
    }
    emit_run_report(&rep);
    println!(
        "paper shape check: conventional read grows linearly into the thousands of seconds \
         (5+ hours past 1 TB); randomized read stays below ~100 s."
    );
    std::fs::remove_file(&path).ok();
}
