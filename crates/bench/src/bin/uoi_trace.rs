//! `uoi-trace` — convert a JSONL trace captured with `UOI_TRACE=1` into
//! a Chrome trace-format JSON (load it at <https://ui.perfetto.dev> or
//! `chrome://tracing`) and print the per-rank / per-phase breakdown and
//! load-imbalance report.
//!
//! ```text
//! uoi-trace results/fig2_lasso_single_node.trace.jsonl
//! uoi-trace run.trace.jsonl --chrome out.json --no-report
//! ```
//!
//! By default the Chrome trace lands next to the input
//! (`<stem>.chrome.json`) and the text report goes to stdout. When a
//! sibling run report (`<bench>.json` for a `<bench>.trace.jsonl`
//! input) records dropped trace records, a warning is printed — the
//! timeline is then incomplete and per-phase sums undercount.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use uoi_telemetry::{analyze, build_timeline, to_chrome_trace, Json, JsonlSink};

struct Args {
    input: PathBuf,
    chrome_out: Option<PathBuf>,
    report: bool,
    run_report: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: uoi-trace <trace.jsonl> [--chrome <out.json>] [--no-report] \
         [--run-report <report.json>]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut input = None;
    let mut chrome_out = None;
    let mut report = true;
    let mut run_report = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => chrome_out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--no-report" => report = false,
            "--run-report" => {
                run_report = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "-h" | "--help" => usage(),
            _ if input.is_none() => input = Some(PathBuf::from(a)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    Args {
        input,
        chrome_out,
        report,
        run_report,
    }
}

/// `results/<bench>.trace.jsonl` → `results/<bench>.json`, the run
/// report the harness wrote alongside the trace.
fn sibling_run_report(input: &Path) -> Option<PathBuf> {
    let name = input.file_name()?.to_str()?;
    let bench = name.strip_suffix(".trace.jsonl")?;
    let p = input.with_file_name(format!("{bench}.json"));
    p.exists().then_some(p)
}

/// Dropped-record count recorded under `telemetry.dropped_records` in a
/// run report, if any.
fn dropped_records(path: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = Json::parse(&text).ok()?;
    let n = json.get("telemetry")?.get("dropped_records")?.as_num()?;
    Some(n as u64)
}

fn main() -> ExitCode {
    let args = parse_args();
    let events = match JsonlSink::read_events(&args.input) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("uoi-trace: cannot read {}: {e}", args.input.display());
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        eprintln!(
            "uoi-trace: {} holds no trace events (was the run started with UOI_TRACE=1?)",
            args.input.display()
        );
        return ExitCode::FAILURE;
    }

    if let Some(report_path) = args
        .run_report
        .clone()
        .or_else(|| sibling_run_report(&args.input))
    {
        if let Some(n) = dropped_records(&report_path) {
            if n > 0 {
                eprintln!(
                    "uoi-trace: WARNING: {} reports {n} dropped trace record(s); \
                     the timeline is incomplete and per-phase sums undercount",
                    report_path.display()
                );
            }
        }
    }

    let timeline = build_timeline(&events);
    let breakdown = analyze(&timeline);

    let chrome_path = args.chrome_out.clone().unwrap_or_else(|| {
        let stem = args
            .input
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| n.strip_suffix(".jsonl").unwrap_or(n).to_string())
            .unwrap_or_else(|| "trace".to_string());
        args.input.with_file_name(format!("{stem}.chrome.json"))
    });
    let chrome = to_chrome_trace(&events);
    if let Err(e) = std::fs::write(&chrome_path, chrome.to_string_compact()) {
        eprintln!("uoi-trace: cannot write {}: {e}", chrome_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "[saved {} — open it at https://ui.perfetto.dev or chrome://tracing]",
        chrome_path.display()
    );

    if args.report {
        println!();
        print!("{}", breakdown.render());
    }
    ExitCode::SUCCESS
}
