//! `uoi-trace` — inspect a JSONL trace captured with `UOI_TRACE=1`.
//!
//! ```text
//! uoi-trace results/fig2_lasso_single_node.trace.jsonl   # legacy: chrome + report
//! uoi-trace breakdown run.trace.jsonl --strict           # per-phase report, gate on drops
//! uoi-trace convergence run.trace.jsonl [--json]         # solver-quality report
//! uoi-trace numerical run.trace.jsonl [--json]           # numerical-health report
//! uoi-trace progress run.trace.jsonl [--json]            # replayed progress/ETA
//! uoi-trace export-metrics run.trace.jsonl [--out m.prom]
//! ```
//!
//! The legacy single-argument form converts the trace into a Chrome
//! trace-format JSON (load it at <https://ui.perfetto.dev> or
//! `chrome://tracing`) and prints the per-rank / per-phase breakdown.
//! By default the Chrome trace lands next to the input
//! (`<stem>.chrome.json`). When a sibling run report (`<bench>.json`
//! for a `<bench>.trace.jsonl` input) records dropped trace records, a
//! warning is printed — the timeline is then incomplete and per-phase
//! sums undercount; `breakdown --strict` turns that warning into a
//! nonzero exit for CI gates.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use uoi_telemetry::{
    analyze, build_timeline, parse_openmetrics, render_openmetrics, to_chrome_trace,
    ConvergenceReport, Json, JsonlSink, MetricsRegistry, NumericalHealthReport, ProgressPlan,
    ProgressTracker, TraceEvent,
};

struct Args {
    input: PathBuf,
    chrome_out: Option<PathBuf>,
    report: bool,
    run_report: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: uoi-trace <trace.jsonl> [--chrome <out.json>] [--no-report] \
         [--run-report <report.json>]\n\
         \x20      uoi-trace breakdown <trace.jsonl> [--strict] [--run-report <report.json>]\n\
         \x20      uoi-trace convergence <trace.jsonl> [--json]\n\
         \x20      uoi-trace numerical <trace.jsonl> [--json]\n\
         \x20      uoi-trace progress <trace.jsonl> [--json]\n\
         \x20      uoi-trace export-metrics <trace.jsonl> [--out <metrics.prom>]"
    );
    std::process::exit(2)
}

fn parse_args(argv: &[String]) -> Args {
    let mut input = None;
    let mut chrome_out = None;
    let mut report = true;
    let mut run_report = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => chrome_out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--no-report" => report = false,
            "--run-report" => {
                run_report = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "-h" | "--help" => usage(),
            _ if input.is_none() => input = Some(PathBuf::from(a)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    Args {
        input,
        chrome_out,
        report,
        run_report,
    }
}

/// `results/<bench>.trace.jsonl` → `results/<bench>.json`, the run
/// report the harness wrote alongside the trace.
fn sibling_run_report(input: &Path) -> Option<PathBuf> {
    let name = input.file_name()?.to_str()?;
    let bench = name.strip_suffix(".trace.jsonl")?;
    let p = input.with_file_name(format!("{bench}.json"));
    p.exists().then_some(p)
}

/// Dropped-record count recorded under `telemetry.dropped_records` in a
/// run report, if any.
fn dropped_records(path: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = Json::parse(&text).ok()?;
    let n = json.get("telemetry")?.get("dropped_records")?.as_num()?;
    Some(n as u64)
}

fn load_events(input: &Path) -> Result<Vec<TraceEvent>, ExitCode> {
    let events = match JsonlSink::read_events(input) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("uoi-trace: cannot read {}: {e}", input.display());
            return Err(ExitCode::FAILURE);
        }
    };
    if events.is_empty() {
        eprintln!(
            "uoi-trace: {} holds no trace events (was the run started with UOI_TRACE=1?)",
            input.display()
        );
        return Err(ExitCode::FAILURE);
    }
    Ok(events)
}

/// `(input, flag_present)` for the single-flag subcommands.
fn subcommand_args(argv: &[String], flag: &str) -> (PathBuf, bool) {
    let mut input = None;
    let mut present = false;
    for a in argv {
        match a.as_str() {
            s if s == flag => present = true,
            "-h" | "--help" => usage(),
            _ if input.is_none() => input = Some(PathBuf::from(a)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    (input, present)
}

/// Replay the trace through a [`ProgressTracker`] whose plan is the
/// observed task census (the completed trace knows its own totals).
fn replay_progress(events: &[TraceEvent]) -> Option<ProgressTracker> {
    let (mut sel, mut est) = (0usize, 0usize);
    for e in events {
        if let TraceEvent::Convergence { stage, .. } = e {
            if *stage == "selection" {
                sel += 1;
            } else {
                est += 1;
            }
        }
    }
    if sel + est == 0 {
        return None;
    }
    let mut tracker = ProgressTracker::new(ProgressPlan {
        selection_tasks: sel,
        estimation_tasks: est,
    });
    for e in events {
        tracker.observe(e);
    }
    Some(tracker)
}

fn cmd_convergence(argv: &[String]) -> ExitCode {
    let (input, as_json) = subcommand_args(argv, "--json");
    let events = match load_events(&input) {
        Ok(ev) => ev,
        Err(c) => return c,
    };
    let report = ConvergenceReport::from_events(&events);
    if report.tasks == 0 {
        eprintln!(
            "uoi-trace: {} holds no convergence records (older trace, or telemetry \
             was metrics-only)",
            input.display()
        );
        return ExitCode::FAILURE;
    }
    if as_json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        print!("{}", report.render());
    }
    ExitCode::SUCCESS
}

fn cmd_numerical(argv: &[String]) -> ExitCode {
    let (input, as_json) = subcommand_args(argv, "--json");
    let events = match load_events(&input) {
        Ok(ev) => ev,
        Err(c) => return c,
    };
    let report = NumericalHealthReport::from_events(&events);
    if report.events == 0 {
        eprintln!(
            "uoi-trace: {} holds no numerical records (run was clean and unguarded, \
             or predates the resilience subsystem)",
            input.display()
        );
        return ExitCode::FAILURE;
    }
    if as_json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        print!("{}", report.render());
    }
    ExitCode::SUCCESS
}

fn cmd_progress(argv: &[String]) -> ExitCode {
    let (input, as_json) = subcommand_args(argv, "--json");
    let events = match load_events(&input) {
        Ok(ev) => ev,
        Err(c) => return c,
    };
    let Some(mut tracker) = replay_progress(&events) else {
        eprintln!(
            "uoi-trace: {} holds no convergence records to derive progress from",
            input.display()
        );
        return ExitCode::FAILURE;
    };
    let snap = tracker.snapshot();
    if as_json {
        println!("{}", snap.to_json().to_string_pretty());
    } else {
        println!("{}", snap.render());
    }
    ExitCode::SUCCESS
}

fn cmd_export_metrics(argv: &[String]) -> ExitCode {
    // export-metrics takes `--out <path>`, not a boolean flag.
    let mut input = None;
    let mut out = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "-h" | "--help" => usage(),
            _ if input.is_none() => input = Some(PathBuf::from(a)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let events = match load_events(&input) {
        Ok(ev) => ev,
        Err(c) => return c,
    };
    // Rebuild the solver-health metrics a live run's registry would
    // hold, from the convergence records alone.
    let registry = MetricsRegistry::new();
    for e in &events {
        if let TraceEvent::Convergence {
            stage,
            iterations,
            converged,
            ..
        } = e
        {
            registry.observe("solver.iterations", *iterations as f64);
            registry.incr("solver.nonconverged", u64::from(!converged));
            registry.incr(&format!("uoi.tasks.{stage}"), 1);
        }
    }
    let snapshot = registry.snapshot();
    let progress = replay_progress(&events).map(|mut t| t.snapshot());
    let text = render_openmetrics(&snapshot, progress.as_ref());
    if let Err(e) = parse_openmetrics(&text) {
        eprintln!("uoi-trace: internal error: exposition fails its own lint: {e}");
        return ExitCode::FAILURE;
    }
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("uoi-trace: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("[saved {}]", path.display());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_breakdown(argv: &[String]) -> ExitCode {
    let mut input = None;
    let mut strict = false;
    let mut run_report = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strict" => strict = true,
            "--run-report" => {
                run_report = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "-h" | "--help" => usage(),
            _ if input.is_none() => input = Some(PathBuf::from(a)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let events = match load_events(&input) {
        Ok(ev) => ev,
        Err(c) => return c,
    };
    let breakdown = analyze(&build_timeline(&events));
    print!("{}", breakdown.render());

    let report_path = run_report.or_else(|| sibling_run_report(&input));
    match report_path.as_deref().and_then(dropped_records) {
        Some(n) if n > 0 => {
            eprintln!(
                "uoi-trace: {} dropped trace record(s) recorded in {}; the timeline is \
                 incomplete and per-phase sums undercount",
                n,
                report_path.as_deref().unwrap_or(&input).display()
            );
            if strict {
                return ExitCode::FAILURE;
            }
        }
        Some(_) => {}
        None => {
            if strict {
                eprintln!(
                    "uoi-trace: --strict needs a run report with a telemetry.dropped_records \
                     count (none found next to {})",
                    input.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn legacy_main(argv: &[String]) -> ExitCode {
    let args = parse_args(argv);
    let events = match load_events(&args.input) {
        Ok(ev) => ev,
        Err(c) => return c,
    };

    if let Some(report_path) = args
        .run_report
        .clone()
        .or_else(|| sibling_run_report(&args.input))
    {
        if let Some(n) = dropped_records(&report_path) {
            if n > 0 {
                eprintln!(
                    "uoi-trace: WARNING: {} reports {n} dropped trace record(s); \
                     the timeline is incomplete and per-phase sums undercount",
                    report_path.display()
                );
            }
        }
    }

    let timeline = build_timeline(&events);
    let breakdown = analyze(&timeline);

    let chrome_path = args.chrome_out.clone().unwrap_or_else(|| {
        let stem = args
            .input
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| n.strip_suffix(".jsonl").unwrap_or(n).to_string())
            .unwrap_or_else(|| "trace".to_string());
        args.input.with_file_name(format!("{stem}.chrome.json"))
    });
    let chrome = to_chrome_trace(&events);
    if let Err(e) = std::fs::write(&chrome_path, chrome.to_string_compact()) {
        eprintln!("uoi-trace: cannot write {}: {e}", chrome_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "[saved {} — open it at https://ui.perfetto.dev or chrome://tracing]",
        chrome_path.display()
    );

    if args.report {
        println!();
        print!("{}", breakdown.render());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(|s| s.as_str()) {
        Some("convergence") => cmd_convergence(&argv[1..]),
        Some("numerical") => cmd_numerical(&argv[1..]),
        Some("progress") => cmd_progress(&argv[1..]),
        Some("export-metrics") => cmd_export_metrics(&argv[1..]),
        Some("breakdown") => cmd_breakdown(&argv[1..]),
        _ => legacy_main(&argv),
    }
}
