//! Statistical validation: the §I claims behind UoI — "low false
//! positives and low false negatives" selection with "low-bias,
//! low-variance" estimation, versus LASSO (cross-validated), MCP, and
//! ridge — on synthetic linear and VAR families with known ground truth.
//!
//! This reproduces the comparison the paper inherits from [10]/[11]:
//! UoI should match or beat LASSO's recall while cutting its false
//! positives, and its OLS-averaged estimates should show far less
//! shrinkage bias.

use std::sync::Arc;
use uoi_bench::{emit_run_report, quick_mode, Table};
use uoi_core::uoi_lasso::UoiLassoConfig;
use uoi_core::uoi_var::UoiVarConfig;
use uoi_core::{estimation_error, SelectionCounts, UoiFitter, UoiVarFitter};
use uoi_data::{LinearConfig, VarConfig, VarProcess};
use uoi_solvers::{lasso_cd, mcp_cd, ridge, support_of, AdmmConfig, CdConfig};
use uoi_telemetry::{MetricsRegistry, Telemetry};

fn main() {
    let trials = if quick_mode() { 3 } else { 6 };
    linear_comparison(trials);
    var_comparison(trials);
}

fn linear_comparison(trials: usize) {
    let p = 40;
    let metrics = Arc::new(MetricsRegistry::new());
    let mut rows: Vec<(&str, f64, f64, f64, f64)> = vec![
        ("UoI_LASSO", 0.0, 0.0, 0.0, 0.0),
        ("LASSO (CV)", 0.0, 0.0, 0.0, 0.0),
        ("MCP", 0.0, 0.0, 0.0, 0.0),
        ("Ridge", 0.0, 0.0, 0.0, 0.0),
    ];
    for trial in 0..trials {
        let ds = LinearConfig {
            n_samples: 150,
            n_features: p,
            n_nonzero: 8,
            snr: 6.0,
            seed: 100 + trial as u64,
            ..Default::default()
        }
        .generate();

        // UoI.
        let uoi = UoiFitter::new(UoiLassoConfig {
            b1: 10,
            b2: 10,
            q: 16,
            lambda_min_ratio: 2e-2,
            admm: AdmmConfig {
                max_iter: 800,
                ..Default::default()
            },
            support_tol: 1e-7,
            seed: trial as u64,
            telemetry: Telemetry::with_metrics(metrics.clone()),
            ..Default::default()
        })
        .fit(&ds.x, &ds.y)
        .expect("UoI_LASSO fit");
        // LASSO with a small held-out lambda selection (the standard
        // practical baseline).
        let beta_lasso = lasso_cv(&ds.x, &ds.y);
        // MCP at a fixed sensible lambda, gamma = 3.
        let lam = uoi_solvers::lambda_max(&ds.x, &ds.y) * 0.05;
        let beta_mcp = mcp_cd(&ds.x, &ds.y, lam, 3.0, &CdConfig::default());
        let beta_ridge = ridge(&ds.x, &ds.y, 1.0);

        for (row, beta) in rows
            .iter_mut()
            .zip([uoi.beta.clone(), beta_lasso, beta_mcp, beta_ridge])
        {
            let support = support_of(&beta, 1e-6);
            let c = SelectionCounts::compare(&support, &ds.support_true, p);
            let e = estimation_error(&beta, &ds.beta_true);
            row.1 += c.false_positives as f64;
            row.2 += c.false_negatives as f64;
            row.3 += c.f1();
            row.4 += e.support_bias;
        }
    }
    let mut t = Table::new(
        &format!("Selection accuracy — sparse linear model ({trials} trials, p=40, s=8)"),
        &["method", "false pos", "false neg", "F1", "support bias"],
    );
    for (name, fp, fneg, f1, bias) in &rows {
        t.row(&[
            name.to_string(),
            format!("{:.1}", fp / trials as f64),
            format!("{:.1}", fneg / trials as f64),
            format!("{:.3}", f1 / trials as f64),
            format!("{:+.3}", bias / trials as f64),
        ]);
    }
    t.emit("stat_linear_accuracy");
    emit_run_report(
        &t.run_report("stat_linear_accuracy")
            .param("trials", trials)
            .with_metrics(metrics.snapshot()),
    );
    println!(
        "claim check: UoI_LASSO should show the LASSO's recall with far fewer false\n\
         positives and near-zero bias (OLS-averaged estimates vs LASSO shrinkage).\n"
    );
}

fn var_comparison(trials: usize) {
    let p = 12;
    let metrics = Arc::new(MetricsRegistry::new());
    let mut rows: Vec<(&str, f64, f64, f64)> = vec![
        ("UoI_VAR", 0.0, 0.0, 0.0),
        ("LASSO-VAR", 0.0, 0.0, 0.0),
        ("MCP-VAR", 0.0, 0.0, 0.0),
    ];
    for trial in 0..trials {
        let proc = VarProcess::generate(&VarConfig {
            p,
            order: 1,
            density: 0.12,
            target_radius: 0.65,
            noise_std: 1.0,
            seed: 300 + trial as u64,
        });
        let series = proc.simulate(700, 100, 400 + trial as u64);
        let truth: Vec<usize> = {
            let v = uoi_core::flatten_coefficients(&proc.coeffs);
            v.iter()
                .enumerate()
                .filter(|(_, x)| x.abs() > 0.0)
                .map(|(i, _)| i)
                .collect()
        };
        // UoI_VAR.
        let fit = UoiVarFitter::new(UoiVarConfig {
            order: 1,
            block_len: None,
            base: UoiLassoConfig {
                b1: 8,
                b2: 6,
                q: 12,
                lambda_min_ratio: 2e-2,
                admm: AdmmConfig {
                    max_iter: 600,
                    ..Default::default()
                },
                support_tol: 1e-7,
                seed: trial as u64,
                telemetry: Telemetry::with_metrics(metrics.clone()),
                ..Default::default()
            },
        })
        .fit(&series)
        .expect("UoI_VAR fit");
        // Plain LASSO / MCP per-column on the lag regression at a fixed
        // moderate lambda (ratio chosen generously for the baselines).
        let reg = uoi_core::VarRegression::build(&series, 1);
        let mut lasso_vec = vec![0.0; p * p];
        let mut mcp_vec = vec![0.0; p * p];
        for i in 0..p {
            let yi = reg.y.col(i);
            let lam = uoi_solvers::lambda_max(&reg.x, &yi) * 0.05;
            let bl = lasso_cd(&reg.x, &yi, lam, &CdConfig::default());
            let bm = mcp_cd(&reg.x, &yi, lam, 3.0, &CdConfig::default());
            lasso_vec[i * p..(i + 1) * p].copy_from_slice(&bl);
            mcp_vec[i * p..(i + 1) * p].copy_from_slice(&bm);
        }

        for (row, vecb) in rows.iter_mut().zip([&fit.vec_beta, &lasso_vec, &mcp_vec]) {
            let support = support_of(vecb, 1e-6);
            let c = SelectionCounts::compare(&support, &truth, p * p);
            row.1 += c.false_positives as f64;
            row.2 += c.false_negatives as f64;
            row.3 += c.f1();
        }
    }
    let mut t = Table::new(
        &format!("Selection accuracy — VAR(1) network recovery ({trials} trials, p=12)"),
        &["method", "false pos", "false neg", "F1"],
    );
    for (name, fp, fneg, f1) in &rows {
        t.row(&[
            name.to_string(),
            format!("{:.1}", fp / trials as f64),
            format!("{:.1}", fneg / trials as f64),
            format!("{:.3}", f1 / trials as f64),
        ]);
    }
    t.emit("stat_var_accuracy");
    emit_run_report(
        &t.run_report("stat_var_accuracy")
            .param("trials", trials)
            .with_metrics(metrics.snapshot()),
    );
    println!(
        "claim check: UoI_VAR's intersection suppresses the baselines' false positives at\n\
         comparable recall — the \"superior selection accuracy\" of §I / ref [11]."
    );
}

/// A small 80/20 cross-validated LASSO baseline over a lambda grid.
fn lasso_cv(x: &uoi_linalg::Matrix, y: &[f64]) -> Vec<f64> {
    let n = x.rows();
    let cut = n * 4 / 5;
    let train_idx: Vec<usize> = (0..cut).collect();
    let eval_idx: Vec<usize> = (cut..n).collect();
    let xt = x.gather_rows(&train_idx);
    let yt: Vec<f64> = train_idx.iter().map(|&i| y[i]).collect();
    let xe = x.gather_rows(&eval_idx);
    let ye: Vec<f64> = eval_idx.iter().map(|&i| y[i]).collect();
    let lmax = uoi_solvers::lambda_max(&xt, &yt);
    let grid = uoi_solvers::geometric_grid(lmax, 1e-3 * lmax, 20);
    let mut best: Option<(f64, f64)> = None;
    for &lam in &grid {
        let beta = lasso_cd(&xt, &yt, lam, &CdConfig::default());
        let loss = uoi_linalg::mse(&xe, &beta, &ye);
        if best.is_none_or(|(l, _)| loss < l) {
            best = Some((loss, lam));
        }
    }
    let lam = best.map(|(_, l)| l).unwrap_or(lmax * 0.1);
    lasso_cd(x, y, lam, &CdConfig::default())
}
