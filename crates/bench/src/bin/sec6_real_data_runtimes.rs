//! §VI runtime analysis on the real-data substitutes:
//!
//! * Finance: 470 companies, 195 weekly-difference samples — the paper's
//!   ≈80 GB vectorised problem on 2,176 cores measured 376.87 s
//!   computation, 4.74 s communication, 16.409 s Kronecker +
//!   vectorisation.
//! * Neuroscience: 192 electrodes, 51,111 samples — the paper's ≈1.3 TB
//!   problem on 81,600 cores measured 96.9 s computation, 1,598.72 s
//!   communication, 3,034.4 s distribution.
//!
//! We execute scaled fits on the synthetic substitutes (exercising the
//! full pipeline) and print the modeled paper-scale phase times next to
//! the paper's measurements.

use uoi_bench::setups::machine;
use uoi_bench::workload::{measured_rounds_per_solve, var_paper_ledger, VarScalingRun};
use uoi_bench::{emit_run_report, exec_ranks, quick_mode, Table};
use uoi_mpisim::Phase;

struct RealCase {
    name: &'static str,
    paper_p: usize,
    paper_samples: usize,
    cores: usize,
    n_readers: usize,
    paper_compute: f64,
    paper_comm: f64,
    paper_distr: f64,
}

fn main() {
    let cases = [
        RealCase {
            name: "S&P finance (470 companies)",
            paper_p: 470,
            paper_samples: 195,
            cores: 2_176,
            n_readers: 64,
            paper_compute: 376.87,
            paper_comm: 4.74,
            paper_distr: 16.409,
        },
        RealCase {
            name: "NHP reaching (192 electrodes)",
            paper_p: 192,
            paper_samples: 51_111,
            cores: 81_600,
            n_readers: 8,
            paper_compute: 96.9,
            paper_comm: 1_598.72,
            paper_distr: 3_034.4,
        },
    ];
    let (b1, b2, q) = if quick_mode() { (3, 2, 2) } else { (6, 4, 4) };

    let mut t = Table::new(
        "§VI — real-data runtimes: paper measured vs modeled (seconds)",
        &[
            "case",
            "cores",
            "paper comp",
            "model comp",
            "paper comm",
            "model comm",
            "paper distr",
            "model distr",
        ],
    );
    let mut last_summary = None;
    for case in &cases {
        // Executed scaled fit on the synthetic substitute to calibrate
        // convergence behaviour.
        let exec_p = (case.paper_p / 8).max(24);
        let run = VarScalingRun {
            features: exec_p,
            samples: (case.paper_samples / 16).clamp(2 * exec_p, 1500),
            modeled_cores: case.cores,
            exec_ranks: exec_ranks(),
            n_readers: 4,
            b1,
            b2,
            q,
            threads: 1,
            model: machine(),
            seed: 29,
        };
        let out = run.execute();
        last_summary = Some(out.report.run_summary());
        let rounds = measured_rounds_per_solve(&out.report, b1, q);
        let (l, _) = var_paper_ledger(
            case.paper_p,
            case.cores,
            b1,
            b2,
            q,
            rounds,
            case.n_readers,
            &machine(),
        );
        t.row(&[
            case.name.into(),
            case.cores.to_string(),
            format!("{:.1}", case.paper_compute),
            format!("{:.1}", l.get(Phase::Compute)),
            format!("{:.1}", case.paper_comm),
            format!("{:.1}", l.get(Phase::Comm)),
            format!("{:.1}", case.paper_distr),
            format!("{:.1}", l.get(Phase::Distribution)),
        ]);
    }
    t.emit("sec6_real_data_runtimes");
    let mut rep = t.run_report("sec6_real_data_runtimes");
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    emit_run_report(&rep);
    println!(
        "paper shape check: finance (moderate cores) is computation-dominated; the neuro case\n\
         (81,600 cores, few readers) flips to communication/distribution-dominated — the same\n\
         qualitative regime change the paper reports. Absolute seconds differ (synthetic\n\
         substitutes, scaled B1/B2/q — see EXPERIMENTS.md)."
    );
}
