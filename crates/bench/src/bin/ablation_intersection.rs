//! Ablation: the strictness of the Intersection (eq. 3) — the defining
//! design choice of UoI. Sweeping the soft-intersection threshold from
//! 0.5 (majority vote) to 1.0 (the paper's strict intersection) traces
//! the false-positive / false-negative trade-off, with plain LASSO as the
//! no-intersection endpoint.

use std::sync::Arc;
use uoi_bench::{emit_run_report, quick_mode, Table};
use uoi_core::uoi_lasso::UoiLassoConfig;
use uoi_core::{SelectionCounts, UoiFitter};
use uoi_data::LinearConfig;
use uoi_solvers::{lasso_cd, support_of, CdConfig};
use uoi_telemetry::{MetricsRegistry, Telemetry};

fn main() {
    let trials = if quick_mode() { 3 } else { 5 };
    let p = 40;
    let fracs = [0.5, 0.7, 0.9, 1.0];

    let mut t = Table::new(
        &format!(
            "Ablation — intersection strictness ({trials} trials, p={p}, s=8, correlated design)"
        ),
        &["intersection", "false pos", "false neg", "F1"],
    );
    let metrics = Arc::new(MetricsRegistry::new());
    let mut rows: Vec<(String, f64, f64, f64)> = fracs
        .iter()
        .map(|f| (format!("{f:.1} x B1"), 0.0, 0.0, 0.0))
        .collect();
    rows.push(("LASSO (none)".into(), 0.0, 0.0, 0.0));

    for trial in 0..trials {
        let ds = LinearConfig {
            n_samples: 150,
            n_features: p,
            n_nonzero: 8,
            snr: 5.0,
            rho_design: 0.5, // correlated design stresses selection
            seed: 700 + trial as u64,
            ..Default::default()
        }
        .generate();
        for (row, &frac) in rows.iter_mut().zip(&fracs) {
            let fit = UoiFitter::new(UoiLassoConfig {
                b1: 12,
                b2: 10,
                q: 16,
                lambda_min_ratio: 2e-2,
                intersection_frac: frac,
                seed: trial as u64,
                telemetry: Telemetry::with_metrics(metrics.clone()),
                ..Default::default()
            })
            .fit(&ds.x, &ds.y)
            .expect("UoI_LASSO fit");
            let c = SelectionCounts::compare(&fit.support, &ds.support_true, p);
            row.1 += c.false_positives as f64;
            row.2 += c.false_negatives as f64;
            row.3 += c.f1();
        }
        // No-intersection endpoint: plain LASSO at a moderate lambda.
        let lam = uoi_solvers::lambda_max(&ds.x, &ds.y) * 0.05;
        let beta = lasso_cd(&ds.x, &ds.y, lam, &CdConfig::default());
        let c = SelectionCounts::compare(&support_of(&beta, 1e-6), &ds.support_true, p);
        let last = rows.last_mut().unwrap();
        last.1 += c.false_positives as f64;
        last.2 += c.false_negatives as f64;
        last.3 += c.f1();
    }
    for (name, fp, fneg, f1) in &rows {
        t.row(&[
            name.clone(),
            format!("{:.1}", fp / trials as f64),
            format!("{:.1}", fneg / trials as f64),
            format!("{:.3}", f1 / trials as f64),
        ]);
    }
    t.emit("ablation_intersection");
    emit_run_report(
        &t.run_report("ablation_intersection")
            .param("trials", trials)
            .with_metrics(metrics.snapshot()),
    );
    println!(
        "take-away: false positives fall monotonically as the intersection tightens toward\n\
         the paper's strict B1-of-B1 rule, at a small false-negative cost — the eq. 3\n\
         mechanism in isolation."
    );
}
