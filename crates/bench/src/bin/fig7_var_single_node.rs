//! Fig 7: `UoI_VAR` single-node runtime breakdown (16 GB-class problem,
//! `B1 = B2 = 5`, `q = 8`, 68 cores).
//!
//! Paper shape: computation ≈88% of the runtime; the distributed
//! Kronecker product + vectorisation constitutes >98% of the distribution
//! bar; communication grows relative to `UoI_LASSO` because of the
//! vectorised problem-size explosion.

use uoi_bench::setups::{machine, single_node, var_features};
use uoi_bench::straggler::{annotate_with_study, StudyPipeline};
use uoi_bench::workload::VarScalingRun;
use uoi_bench::{emit_run_report, exec_ranks, fmt_bytes, quick_mode, BenchTrace, Table};
use uoi_mpisim::Phase;
use uoi_solvers::AdmmConfig;

fn main() {
    let point = single_node();
    // Paper features at 16 GB ≈ 212; execute a scaled-down node count.
    let paper_p = var_features(point.bytes);
    let p = if quick_mode() { 48 } else { 128 };
    println!(
        "Fig 7 setup: paper {} (p={paper_p}) on {} cores -> executed p={p}, {} ranks modeled as {} cores",
        fmt_bytes(point.bytes),
        point.cores,
        exec_ranks(),
        point.cores,
    );
    // In-rank ADMM workers over the response columns (UOI_THREADS
    // overrides): each lockstep round charges ceil(columns/threads)
    // column-updates of modeled compute instead of all of them.
    let threads = AdmmConfig::env_threads(4);
    let run = VarScalingRun {
        features: p,
        samples: 2 * p,
        modeled_cores: point.cores,
        exec_ranks: exec_ranks(),
        n_readers: 4,
        b1: 5,
        b2: 5,
        q: 8,
        threads,
        model: machine(),
        seed: 13,
    };
    let trace = BenchTrace::from_env("fig7_var_single_node");
    let mut out = run.execute_traced(trace.telemetry());
    let l = out.per_core_ledger();
    let kron_max = out.kron_seconds();
    let total = l.total().max(1e-12);

    let mut t = Table::new(
        "Fig 7 — UoI_VAR single-node runtime breakdown (B1=B2=5, q=8)",
        &["phase", "seconds", "% of total"],
    );
    for ph in Phase::ALL {
        t.row(&[
            ph.label().into(),
            format!("{:.4}", l.get(ph)),
            format!("{:.1}%", 100.0 * l.get(ph) / total),
        ]);
    }
    t.row(&[
        "  (Kron+vec within Distribution)".into(),
        format!("{kron_max:.4}"),
        format!(
            "{:.1}%",
            100.0 * kron_max / l.get(Phase::Distribution).max(1e-12)
        ),
    ]);
    t.row(&["Total".into(), format!("{total:.4}"), "100.0%".into()]);
    t.emit("fig7_var_single_node");
    let mut rr = t
        .run_report("fig7_var_single_node")
        .param("exec_p", p)
        .param("threads", threads)
        .param("gram_kernel", uoi_linalg::gram::KERNEL_VARIANT)
        .with_summary(out.report.run_summary());
    if let Some(health) = out.numerical.take() {
        rr = rr.with_numerical(health);
    }
    emit_run_report(&trace.annotate(annotate_with_study(rr, StudyPipeline::Var)));

    println!(
        "paper shape check: computation {:.0}% (paper ~88%); Kron+vec is {:.0}% of the\n\
         distribution bar (paper >98%).",
        100.0 * l.compute / total,
        100.0 * kron_max / l.get(Phase::Distribution).max(1e-12)
    );
}
