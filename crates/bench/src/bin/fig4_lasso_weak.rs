//! Fig 4: weak scaling of `UoI_LASSO` — 128 GB / 4,352 cores doubling to
//! 8 TB / 278,528 cores, per-core block fixed (~196 rows x 20,101
//! features per core).
//!
//! Paper shape: computation is nearly flat (ideal weak scaling, slight
//! rise at 8 TB); communication (`MPI_Allreduce`-dominated) grows with
//! the core count.

use uoi_bench::setups::{lasso_rows, lasso_weak, machine, LASSO_FEATURES};
use uoi_bench::workload::LassoScalingRun;
use uoi_bench::{emit_run_report, exec_ranks, fmt_bytes, quick_mode, Table};
use uoi_mpisim::Phase;

fn main() {
    let (b1, b2, q) = if quick_mode() { (1, 1, 2) } else { (2, 2, 4) };
    let mut t = Table::new(
        "Fig 4 — UoI_LASSO weak scaling (fixed per-core block)",
        &[
            "data size",
            "cores",
            "rows/core",
            "computation (s)",
            "communication (s)",
            "distribution (s)",
            "data I/O (s)",
            "total (s)",
        ],
    );
    let mut last_summary = None;
    for point in lasso_weak() {
        let rows_per_core = (lasso_rows(point.bytes) as f64 / point.cores as f64).round() as usize;
        let run = LassoScalingRun {
            rows_per_core,
            features: LASSO_FEATURES,
            modeled_cores: point.cores,
            exec_ranks: exec_ranks(),
            b1,
            b2,
            q,
            io_bytes: point.bytes,
            model: machine(),
            seed: 7,
        };
        let report = run.execute();
        let l = report.phase_max();
        last_summary = Some(report.run_summary());
        t.row(&[
            fmt_bytes(point.bytes),
            point.cores.to_string(),
            rows_per_core.to_string(),
            format!("{:.3}", l.get(Phase::Compute)),
            format!("{:.3}", l.get(Phase::Comm)),
            format!("{:.3}", l.get(Phase::Distribution)),
            format!("{:.3}", l.get(Phase::DataIo)),
            format!("{:.3}", l.total()),
        ]);
    }
    t.emit("fig4_lasso_weak");
    let mut rep = t.run_report("fig4_lasso_weak");
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    emit_run_report(&rep);
    println!(
        "paper shape check: computation ~flat across the sweep; communication grows with core count."
    );
}
