//! Fig 6: strong scaling of `UoI_LASSO` — the 1 TB problem on 17,408 to
//! 139,264 cores (Table I).
//!
//! Paper shape: computation drops with core count and goes *below* the
//! ideal trend at 139,264 cores (per-core blocks start fitting in cache,
//! and AVX-512 gets denser work) — our machine model reproduces this
//! through its cache-speedup term. Communication grows with core count
//! but the solver converges faster at the largest scale.

use uoi_bench::setups::{lasso_rows, lasso_strong, machine, LASSO_FEATURES};
use uoi_bench::workload::LassoScalingRun;
use uoi_bench::{emit_run_report, exec_ranks, fmt_bytes, quick_mode, Table};
use uoi_mpisim::Phase;

fn main() {
    let (bytes, cores_list) = lasso_strong();
    let (b1, b2, q) = if quick_mode() { (1, 1, 2) } else { (2, 2, 4) };
    let total_rows = lasso_rows(bytes);

    let mut t = Table::new(
        "Fig 6 — UoI_LASSO strong scaling (1 TB fixed)",
        &[
            "cores",
            "rows/core",
            "computation (s)",
            "ideal compute (s)",
            "communication (s)",
            "distribution (s)",
            "total (s)",
        ],
    );
    let mut base_compute = None;
    let mut last_summary = None;
    for &cores in &cores_list {
        let rows_per_core = (total_rows as f64 / cores as f64).round() as usize;
        let run = LassoScalingRun {
            rows_per_core,
            features: LASSO_FEATURES,
            modeled_cores: cores,
            exec_ranks: exec_ranks(),
            b1,
            b2,
            q,
            io_bytes: bytes,
            model: machine(),
            seed: 9,
        };
        let report = run.execute();
        let l = report.phase_max();
        last_summary = Some(report.run_summary());
        let compute = l.get(Phase::Compute);
        let base = *base_compute.get_or_insert(compute * cores_list[0] as f64);
        let ideal = base / cores as f64;
        t.row(&[
            cores.to_string(),
            rows_per_core.to_string(),
            format!("{compute:.3}"),
            format!("{ideal:.3}"),
            format!("{:.3}", l.get(Phase::Comm)),
            format!("{:.3}", l.get(Phase::Distribution)),
            format!("{:.3}", l.total()),
        ]);
    }
    t.emit("fig6_lasso_strong");
    let mut rep = t
        .run_report("fig6_lasso_strong")
        .param("problem_bytes", bytes);
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    emit_run_report(&rep);
    println!(
        "paper shape check: computation near-ideal 1/P, dipping below ideal at the largest\n\
         core count (cache effect); communication grows with P. Problem: {} fixed.",
        fmt_bytes(bytes)
    );
}
