//! Table I: the performance-analysis setup — data sizes and core counts
//! for every single-node, weak-scaling, and strong-scaling run of both
//! algorithms, plus the scaled executed configurations this reproduction
//! uses at each point.

use uoi_bench::setups::{
    lasso_rows, lasso_strong, lasso_weak, single_node, var_features, var_strong, var_weak,
    LASSO_FEATURES,
};
use uoi_bench::{emit_run_report, exec_ranks, fmt_bytes, Table};

fn main() {
    let mut t = Table::new(
        "Table I — performance analysis setup",
        &[
            "analysis",
            "data size",
            "cores (UoI_LASSO)",
            "cores (UoI_VAR)",
            "LASSO rows",
            "VAR features",
            "executed ranks",
        ],
    );
    let sn = single_node();
    t.row(&[
        "Single Node".into(),
        fmt_bytes(sn.bytes),
        sn.cores.to_string(),
        sn.cores.to_string(),
        lasso_rows(sn.bytes).to_string(),
        var_features(sn.bytes).to_string(),
        exec_ranks().to_string(),
    ]);
    for (l, v) in lasso_weak().iter().zip(var_weak()) {
        t.row(&[
            "Weak Scaling".into(),
            fmt_bytes(l.bytes),
            l.cores.to_string(),
            v.cores.to_string(),
            lasso_rows(l.bytes).to_string(),
            var_features(v.bytes).to_string(),
            exec_ranks().to_string(),
        ]);
    }
    let (lb, lcores) = lasso_strong();
    let (vb, vcores) = var_strong();
    for (lc, vc) in lcores.iter().zip(&vcores) {
        t.row(&[
            "Strong Scaling".into(),
            fmt_bytes(lb),
            lc.to_string(),
            vc.to_string(),
            lasso_rows(lb).to_string(),
            var_features(vb).to_string(),
            exec_ranks().to_string(),
        ]);
    }
    t.emit("table1_setup");
    emit_run_report(&t.run_report("table1_setup"));
    println!(
        "UoI_LASSO feature count fixed at {LASSO_FEATURES}; VAR samples are twice the features."
    );
}
