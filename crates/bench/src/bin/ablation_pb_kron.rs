//! Ablation: the §V mitigation — "one of the ways to avoid the
//! [distribution] problem is by utilizing `P_B` parallelism" — and the
//! effect of the reader count on the distributed Kronecker build.
//!
//! Two sweeps at a fixed problem: (a) `P_B` from 1 to 8 with everything
//! else fixed (more bootstrap groups -> fewer sequential Kron rounds per
//! group); (b) `n_readers` from 1 to 8 (more windows -> less
//! serialisation).

use uoi_bench::setups::machine;
use uoi_bench::{emit_run_report, quick_mode, BenchTrace, RunSummary, Table};
use uoi_core::uoi_lasso::UoiLassoConfig;
use uoi_core::uoi_var::UoiVarConfig;
use uoi_core::{DistOptions, ExecMode, ParallelLayout, UoiVarFitter};
use uoi_data::{VarConfig, VarProcess};
use uoi_mpisim::Cluster;
use uoi_solvers::AdmmConfig;

fn run_case(
    series: &uoi_linalg::Matrix,
    p_b: usize,
    n_readers: usize,
    b: usize,
) -> (f64, f64, RunSummary, BenchTrace) {
    let var_cfg = UoiVarConfig {
        order: 1,
        block_len: None,
        base: UoiLassoConfig {
            b1: b,
            b2: b / 2,
            q: 4,
            lambda_min_ratio: 5e-2,
            admm: AdmmConfig {
                max_iter: 200,
                ..Default::default()
            },
            support_tol: 1e-6,
            seed: 83,
            ..Default::default()
        },
    };
    let fitter = UoiVarFitter::new(var_cfg).mode(ExecMode::Dist(
        DistOptions::default()
            .layout(ParallelLayout { p_b, p_lambda: 1 })
            .n_readers(n_readers),
    ));
    let series = series.clone();
    // Separate trace per sweep point: virtual clocks restart at zero
    // for every cluster, so merged timelines would overlap.
    let trace = BenchTrace::from_env(&format!("ablation_pb_kron.pb{p_b}_r{n_readers}"));
    let report = Cluster::new(8, machine())
        .modeled_ranks(8 * 512)
        .with_telemetry(trace.telemetry())
        .run(move |ctx, world| {
            let (_, kron) = fitter.fit_on(ctx, world, &series);
            (kron.kron_seconds, ctx.clock())
        });
    let kron = report.results.iter().map(|&(k, _)| k).fold(0.0, f64::max);
    let total = report.makespan();
    let summary = report.run_summary();
    (kron, total, summary, trace)
}

fn main() {
    let p = if quick_mode() { 16 } else { 24 };
    let b = 8;
    let proc = VarProcess::generate(&VarConfig {
        p,
        order: 1,
        density: 0.1,
        target_radius: 0.6,
        noise_std: 1.0,
        seed: 81,
    });
    let series = proc.simulate(500, 80, 82);

    let mut t = Table::new(
        &format!("Ablation — P_B parallelism vs Kron distribution time (B1={b}, p={p})"),
        &["P_B", "n_readers", "kron+vec (s)", "total (s)"],
    );
    let mut last_summary = None;
    let mut last_trace = None;
    for &p_b in &[1usize, 2, 4, 8] {
        let (kron, total, summary, trace) = run_case(&series, p_b, 4, b);
        last_summary = Some(summary);
        last_trace = Some(trace);
        t.row(&[
            p_b.to_string(),
            "4".into(),
            format!("{kron:.4}"),
            format!("{total:.4}"),
        ]);
    }
    for &readers in &[1usize, 2, 8] {
        let (kron, total, summary, trace) = run_case(&series, 1, readers, b);
        last_summary = Some(summary);
        last_trace = Some(trace);
        t.row(&[
            "1".into(),
            readers.to_string(),
            format!("{kron:.4}"),
            format!("{total:.4}"),
        ]);
    }
    t.emit("ablation_pb_kron");
    let mut rep = t
        .run_report("ablation_pb_kron")
        .param("p", p)
        .param("b1", b);
    if let Some(s) = last_summary {
        rep = rep.with_summary(s);
    }
    if let Some(trace) = &last_trace {
        rep = trace.annotate(rep);
    }
    emit_run_report(&rep);
    println!(
        "take-away: raising P_B cuts the sequential Kron rounds per group (the §V\n\
         mitigation); raising n_readers divides the window serialisation."
    );
}
