//! Convergence & progress observability acceptance (ISSUE 9): a traced
//! fig2-style fit must yield a [`ConvergenceReport`] whose task count
//! equals `B1·|λ-path| + B2`, selection probabilities in `[0, 1]` that
//! are byte-identical across reruns, and a replayed
//! [`ProgressTracker`] whose completion reaches exactly 1.0 at fit end
//! with monotone non-increasing ETA updates along the way.

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use std::sync::Arc;

use uoi_core::uoi_lasso_dist::fit_uoi_lasso_dist;
use uoi_core::{fit_uoi_lasso, ParallelLayout, UoiLassoConfig};
use uoi_data::LinearConfig;
use uoi_mpisim::{Cluster, MachineModel};
use uoi_solvers::AdmmConfig;
use uoi_telemetry::{
    ConvergenceReport, MemorySink, ProgressPlan, ProgressTracker, Telemetry, TraceEvent,
    CONVERGENCE_SCHEMA,
};

const B1: usize = 4;
const B2: usize = 3;
const Q: usize = 5;

fn dataset() -> uoi_data::LinearDataset {
    LinearConfig {
        n_samples: 90,
        n_features: 20,
        n_nonzero: 4,
        snr: 8.0,
        seed: 5,
        ..Default::default()
    }
    .generate()
}

fn cfg(telemetry: Telemetry) -> UoiLassoConfig {
    UoiLassoConfig::builder()
        .b1(B1)
        .b2(B2)
        .q(Q)
        .seed(13)
        .telemetry(telemetry)
        .build()
        .unwrap()
}

/// One traced serial fit → the raw convergence events.
fn traced_serial_events(ds: &uoi_data::LinearDataset) -> Vec<TraceEvent> {
    let sink = Arc::new(MemorySink::new());
    let _fit = fit_uoi_lasso(&ds.x, &ds.y, &cfg(Telemetry::with_sink(sink.clone())));
    sink.snapshot()
}

#[test]
fn convergence_report_counts_tasks_and_is_rerun_stable() {
    let ds = dataset();
    let events = traced_serial_events(&ds);
    let report = ConvergenceReport::from_events(&events);

    // Task census: one selection record per (bootstrap, λ) pair plus
    // one estimation record per estimation bootstrap.
    assert_eq!(report.selection.tasks, B1 * Q);
    assert_eq!(report.estimation.tasks, B2);
    assert_eq!(report.tasks, B1 * Q + B2);

    // Selection-stability block: a probability per feature, all in
    // [0, 1], over exactly the B1 selection bootstraps.
    assert_eq!(report.stability.bootstraps, B1);
    assert_eq!(report.stability.n_features, 20);
    assert_eq!(report.stability.selection_probability.len(), 20);
    for p in &report.stability.selection_probability {
        assert!(
            (0.0..=1.0).contains(p),
            "selection probability {p} outside [0,1]"
        );
    }
    assert!(
        report
            .stability
            .selection_probability
            .iter()
            .any(|&p| p > 0.0),
        "a well-posed fit must select something"
    );
    // Churn is one entry per λ-path step transition.
    assert_eq!(report.stability.support_churn.len(), Q.saturating_sub(1));

    let json = report.to_json();
    assert_eq!(
        json.get("schema").and_then(uoi_telemetry::Json::as_str),
        Some(CONVERGENCE_SCHEMA)
    );

    // Byte-identical across reruns: the report ignores timestamps and
    // sorts tasks deterministically, so a second identical fit must
    // serialize to the same bytes.
    let rerun = ConvergenceReport::from_events(&traced_serial_events(&ds));
    assert_eq!(
        json.to_string_compact(),
        rerun.to_json().to_string_compact(),
        "ConvergenceReport must be byte-identical across reruns"
    );
}

#[test]
fn progress_replay_completes_exactly_with_monotone_eta() {
    let ds = dataset();
    let (x, y) = (ds.x.clone(), ds.y);

    // Distributed fig2-style run: the simulated cluster's virtual clock
    // gives the convergence records real (deterministic) timestamps, so
    // the ETA model has data to work with.
    let sink = Arc::new(MemorySink::new());
    let fit_cfg = UoiLassoConfig {
        b1: B1,
        b2: B2,
        q: Q,
        admm: AdmmConfig::default(),
        seed: 13,
        ..Default::default()
    };
    Cluster::new(4, MachineModel::deterministic())
        .with_telemetry(Telemetry::with_sink(sink.clone()))
        .run(move |ctx, world| {
            fit_uoi_lasso_dist(ctx, world, &x, &y, &fit_cfg, ParallelLayout::admm_only())
                .support
                .len()
        });

    let mut events: Vec<TraceEvent> = sink
        .snapshot()
        .into_iter()
        .filter(|e| matches!(e, TraceEvent::Convergence { .. }))
        .collect();
    assert_eq!(
        events.len(),
        B1 * Q + B2,
        "group leaders must emit exactly one record per task"
    );
    // Replay in completion order, the order a live monitor sees.
    events.sort_by(|a, b| {
        let t = |e: &TraceEvent| match e {
            TraceEvent::Convergence { t, .. } => *t,
            _ => 0.0,
        };
        t(a).total_cmp(&t(b))
    });

    let mut tracker = ProgressTracker::new(ProgressPlan::for_fit(B1, B2, Q));
    assert_eq!(tracker.plan().total(), B1 * Q + B2);
    let mut last_eta = f64::INFINITY;
    let mut last_completion = 0.0;
    for ev in &events {
        tracker.observe(ev);
        let snap = tracker.snapshot();
        assert!(
            snap.completion >= last_completion,
            "completion must be non-decreasing"
        );
        last_completion = snap.completion;
        if let Some(eta) = snap.eta_seconds {
            assert!(
                eta <= last_eta + 1e-12,
                "ETA must be monotone non-increasing, got {eta} after {last_eta}"
            );
            last_eta = eta;
        }
    }

    let end = tracker.snapshot();
    assert_eq!(end.completed, B1 * Q + B2);
    assert_eq!(end.selection_done, B1 * Q);
    assert_eq!(end.estimation_done, B2);
    assert_eq!(
        end.completion, 1.0,
        "completion must be exactly 1.0 at fit end"
    );
    assert_eq!(end.eta_seconds, Some(0.0));
    assert_eq!(end.nonconverged, 0, "fig2-style fit must fully converge");
}
