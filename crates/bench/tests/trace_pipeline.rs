//! End-to-end traced-pipeline acceptance: a fig2-style distributed
//! `UoI_LASSO` run under `BenchTrace` must (a) leave a Perfetto-loadable
//! Chrome trace and a JSONL trace on disk, (b) attach a breakdown to
//! the `RunReport` whose per-rank phase sums agree with wall time
//! within 5% (they agree to fp round-off by construction), and (c)
//! expose an injected straggler as collective-wait *idle* on the
//! healthy ranks.

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter`/`UoiVarFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use uoi_bench::BenchTrace;
use uoi_core::uoi_lasso_dist::fit_uoi_lasso_dist;
use uoi_core::{ParallelLayout, UoiLassoConfig};
use uoi_data::LinearConfig;
use uoi_mpisim::{Cluster, FaultPlan, MachineModel};
use uoi_solvers::AdmmConfig;
use uoi_telemetry::{analyze, build_timeline, Json, JsonlSink, PipelinePhase};

fn small_cfg() -> UoiLassoConfig {
    UoiLassoConfig {
        b1: 3,
        b2: 3,
        q: 4,
        lambda_min_ratio: 5e-2,
        admm: AdmmConfig {
            max_iter: 60,
            ..Default::default()
        },
        support_tol: 1e-6,
        seed: 11,
        ..Default::default()
    }
}

#[test]
fn traced_fig2_style_run_produces_consistent_artifacts() {
    // The whole test shares one results dir; `UOI_RESULTS_DIR` routes
    // every artifact there (single #[test], so no env races in-process).
    let dir = std::env::temp_dir().join(format!("uoi_trace_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("UOI_RESULTS_DIR", &dir);

    let ds = LinearConfig {
        n_samples: 96,
        n_features: 24,
        n_nonzero: 4,
        snr: 8.0,
        seed: 2,
        ..Default::default()
    }
    .generate();
    let cfg = small_cfg();
    let (x, y) = (ds.x.clone(), ds.y);

    // --- Traced run with an injected 4x straggler on rank 1. ---
    let trace = BenchTrace::enabled("trace_pipeline_test");
    assert!(trace.enabled_now());
    let report = Cluster::new(4, MachineModel::deterministic())
        .with_telemetry(trace.telemetry())
        .with_fault_plan(FaultPlan::new(0).straggler(1, 4.0))
        .run(move |ctx, world| {
            let fit = fit_uoi_lasso_dist(ctx, world, &x, &y, &cfg, ParallelLayout::admm_only());
            ctx.span("checkpoint.save", |ctx| ctx.charge_io(1e-3));
            fit.support.len()
        });

    let run_report = trace.annotate(
        uoi_bench::Table::new("trace pipeline test", &["k"])
            .run_report("trace_pipeline_test")
            .with_summary(report.run_summary()),
    );
    let doc = run_report.to_json();

    // (a) JSONL trace on disk, parseable, with zero dropped records.
    let trace_path = dir.join("trace_pipeline_test.trace.jsonl");
    let events = JsonlSink::read_events(&trace_path).unwrap();
    assert!(!events.is_empty());
    assert_eq!(
        doc.get("telemetry")
            .and_then(|t| t.get("dropped_records"))
            .and_then(Json::as_num),
        Some(0.0)
    );

    // (b) Breakdown attached, sums within 5% of per-rank wall time.
    let breakdown = doc
        .get("breakdown")
        .expect("annotate must attach a breakdown");
    let per_rank = breakdown.get("per_rank").and_then(Json::as_arr).unwrap();
    assert_eq!(per_rank.len(), 4);
    for rk in per_rank {
        let wall = rk.get("wall").and_then(Json::as_num).unwrap();
        let phases = rk.get("phases").unwrap();
        let sum: f64 = PipelinePhase::ALL
            .iter()
            .filter_map(|ph| phases.get(ph.label()))
            .filter_map(|s| s.get("wall").and_then(Json::as_num))
            .sum();
        assert!(wall > 0.0);
        assert!(
            ((sum - wall) / wall).abs() < 0.05,
            "phase sum {sum} vs wall {wall} off by more than 5%"
        );
    }

    // (c) The straggler's peers idle at collectives; the straggler
    // itself (rank 1) barely waits. Recompute from the raw events so the
    // assertion covers the whole path, not just the serialised numbers.
    let analysis = analyze(&build_timeline(&events));
    assert!(analysis.max_sum_error() < 1e-9);
    let idle_of = |rank: usize| {
        analysis
            .ranks
            .iter()
            .find(|r| r.rank == rank)
            .map(|r| r.idle)
            .unwrap()
    };
    let healthy_idle = [0usize, 2, 3].map(idle_of);
    let straggler_idle = idle_of(1);
    for (i, idle) in healthy_idle.iter().enumerate() {
        assert!(
            *idle > straggler_idle * 10.0,
            "healthy rank {i} idle {idle} should dwarf straggler idle {straggler_idle}"
        );
    }
    assert!(healthy_idle.iter().all(|&i| i > 0.0));

    // (d) Chrome trace export is valid JSON of the expected shape.
    let chrome = uoi_telemetry::to_chrome_trace(&events);
    let parsed = Json::parse(&chrome.to_string_compact()).unwrap();
    let evs = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert!(evs.len() > 4, "expected events, got {}", evs.len());
    for ev in evs {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap();
        assert!(
            matches!(ph, "X" | "i" | "C" | "M"),
            "unexpected phase type {ph}"
        );
        if ph == "X" {
            assert!(ev.get("dur").and_then(Json::as_num).unwrap() >= 0.0);
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
