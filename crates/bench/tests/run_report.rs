//! End-to-end run-report pipeline: a simulated cluster run's `RunReport`
//! must reconcile with the `SimReport` phase ledger — through the JSON
//! serialisation round-trip — within 1e-9, and `emit_run_report` must
//! land a schema-tagged document on disk.

use uoi_bench::{emit_run_report, Table};
use uoi_mpisim::{Cluster, MachineModel, PhaseLedger};
use uoi_telemetry::{Json, RunSummary, RUN_REPORT_SCHEMA};

fn run_cluster() -> uoi_mpisim::SimReport<PhaseLedger> {
    Cluster::new(4, MachineModel::deterministic())
        .modeled_ranks(256)
        .run(|ctx, world| {
            ctx.compute_flops(1e7 * (world.rank() + 1) as f64, 8192.0);
            let mut v = vec![1.0; 512];
            world.allreduce_sum(ctx, &mut v);
            ctx.charge_io(1e-3);
            ctx.ledger()
        })
}

#[test]
fn report_phase_totals_reconcile_with_sim_ledger() {
    let report = run_cluster();
    let summary = report.run_summary();

    // The summary must be the ledger, not an approximation of it.
    let lmax = report.phase_max();
    assert!((summary.phase_max.compute - lmax.compute).abs() < 1e-9);
    assert!((summary.phase_max.comm - lmax.comm).abs() < 1e-9);
    assert!((summary.phase_max.distribution - lmax.distribution).abs() < 1e-9);
    assert!((summary.phase_max.io - lmax.io).abs() < 1e-9);
    assert!((summary.makespan - report.makespan()).abs() < 1e-9);
    assert_eq!(summary.exec_ranks, 4);
    assert_eq!(summary.modeled_ranks, 256);
    assert!(summary.collectives >= 1);

    // Ledger sum invariant: each rank's clock equals its phase total, so
    // the mean phase total equals the mean clock.
    let mean_clock: f64 = report.clocks.iter().sum::<f64>() / report.clocks.len() as f64;
    assert!((summary.phase_mean.total() - mean_clock).abs() < 1e-9);

    // ... and the reconciliation must survive the JSON round-trip.
    let mut t = Table::new("reconciliation check", &["rank", "clock"]);
    for (r, c) in report.clocks.iter().enumerate() {
        t.row(&[r.to_string(), format!("{c:.12}")]);
    }
    let doc = t
        .run_report("run_report_reconciliation")
        .with_summary(summary)
        .to_json_string();
    let parsed = Json::parse(&doc).expect("report must be valid JSON");
    assert_eq!(
        parsed.get("schema").unwrap().as_str(),
        Some(RUN_REPORT_SCHEMA)
    );
    let round =
        RunSummary::from_json(parsed.get("summary").unwrap()).expect("summary must deserialise");
    assert!((round.phase_max.compute - lmax.compute).abs() < 1e-9);
    assert!((round.phase_max.comm - lmax.comm).abs() < 1e-9);
    assert!((round.phase_max.distribution - lmax.distribution).abs() < 1e-9);
    assert!((round.phase_max.io - lmax.io).abs() < 1e-9);
    assert!((round.phase_mean.total() - mean_clock).abs() < 1e-9);
}

#[test]
fn emit_run_report_writes_schema_uniform_json() {
    let dir = std::env::temp_dir().join(format!("uoi_run_report_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("UOI_RESULTS_DIR", &dir);

    let report = run_cluster();
    let mut t = Table::new("emit check", &["cores", "total (s)"]);
    t.row(&["256".into(), format!("{:.6}", report.makespan())]);
    emit_run_report(
        &t.run_report("run_report_emit_check")
            .param("modeled_cores", 256usize)
            .with_summary(report.run_summary()),
    );

    let path = dir.join("run_report_emit_check.json");
    let text = std::fs::read_to_string(&path).expect("report file must exist");
    let doc = Json::parse(&text).expect("must parse");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some(RUN_REPORT_SCHEMA));
    assert_eq!(
        doc.get("bench").unwrap().as_str(),
        Some("run_report_emit_check")
    );
    // The table's numeric cell arrives as a JSON number.
    let rows = doc
        .get("table")
        .unwrap()
        .get("rows")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(rows[0].as_arr().unwrap()[0].as_num(), Some(256.0));
    // Summary carries the simulated makespan.
    let sum = RunSummary::from_json(doc.get("summary").unwrap()).unwrap();
    assert!((sum.makespan - report.makespan()).abs() < 1e-9);

    std::env::remove_var("UOI_RESULTS_DIR");
    std::fs::remove_dir_all(&dir).ok();
}
