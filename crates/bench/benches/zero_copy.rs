//! Criterion microbenchmarks of the zero-copy bootstrap kernels: the
//! weighted Gram accumulation that replaces `gather_rows` + `syrk_t`,
//! the blocked right-looking Cholesky, and the allocation-free
//! workspace ADMM against the allocating reference path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uoi_data::bootstrap::{resample_weights, row_bootstrap};
use uoi_data::rng::substream;
use uoi_linalg::{gemv_t_weighted, syrk_t, syrk_t_weighted, Cholesky, Matrix};
use uoi_solvers::{AdmmConfig, AdmmWorkspace, LassoAdmm};

fn matrix(n: usize, p: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, p, |i, j| {
        (((i * 31 + j * 17 + seed) % 1009) as f64 - 504.0) / 504.0
    })
}

/// Weighted Gram accumulation vs materialising the resample first —
/// the tentpole replacement in the selection loop.
fn bench_weighted_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootstrap_gram");
    for &(n, p) in &[(512usize, 64usize), (2048, 128)] {
        let x = matrix(n, p, 7);
        let mut rng = substream(42, 0);
        let idx = row_bootstrap(&mut rng, n, n);
        let w = resample_weights(&idx, n);
        g.throughput(Throughput::Elements((n * p * p) as u64));
        let label = format!("{n}x{p}");
        g.bench_with_input(BenchmarkId::new("weighted", &label), &n, |b, _| {
            b.iter(|| syrk_t_weighted(black_box(&x), black_box(&w)))
        });
        g.bench_with_input(BenchmarkId::new("materialized", &label), &n, |b, _| {
            b.iter(|| syrk_t(&x.gather_rows(black_box(&idx))))
        });
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
        g.bench_with_input(BenchmarkId::new("weighted_rhs", &label), &n, |b, _| {
            b.iter(|| gemv_t_weighted(black_box(&x), black_box(&w), black_box(&y)))
        });
    }
    g.finish();
}

/// Blocked right-looking factorisation (kicks in at order >= 128)
/// against orders below the dispatch threshold for reference.
fn bench_blocked_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocked_cholesky");
    for &p in &[96usize, 192, 384] {
        let x = matrix(2 * p, p, 11);
        let mut gram = syrk_t(&x);
        for i in 0..p {
            gram[(i, i)] += p as f64;
        }
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| Cholesky::factor(black_box(&gram)).unwrap())
        });
    }
    g.finish();
}

/// Warm-path ADMM: the allocation-free workspace solve vs the
/// allocating per-call path, on a full lambda path as in selection.
fn bench_admm_warm_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("admm_warm");
    let (n, p) = (400usize, 80usize);
    let x = matrix(n, p, 13);
    let y: Vec<f64> = (0..n)
        .map(|i| 2.0 * x[(i, 1)] - x[(i, 3)] + 0.1 * ((i % 11) as f64 - 5.0))
        .collect();
    let solver = LassoAdmm::new(x, AdmmConfig::default());
    let xty = solver.prepare_rhs(&y);
    let lambdas: Vec<f64> = (0..24).map(|i| 0.5 * 0.8f64.powi(i)).collect();

    g.bench_function("workspace", |b| {
        b.iter(|| {
            let mut ws = AdmmWorkspace::new();
            let mut z = vec![0.0; p];
            let mut u = vec![0.0; p];
            for &lam in &lambdas {
                solver.solve_warm_with(black_box(&xty), lam, &mut z, &mut u, &mut ws);
            }
            z
        })
    });
    // The pre-optimisation path: recompute X^T y and allocate fresh
    // iterate/workspace vectors at every lambda.
    g.bench_function("allocating", |b| {
        b.iter(|| {
            let mut z = vec![0.0; p];
            for &lam in &lambdas {
                let sol = solver.solve_warm(black_box(&y), lam, z.clone(), vec![0.0; p]);
                z = sol.beta;
            }
            z
        })
    });
    g.finish();
}

criterion_group!(
    zero_copy,
    bench_weighted_syrk,
    bench_blocked_cholesky,
    bench_admm_warm_paths
);
criterion_main!(zero_copy);
