//! Criterion microbenchmarks of the optimisation layer: soft threshold,
//! serial LASSO-ADMM (cold / warm / OLS), coordinate descent, and the
//! bootstrap samplers feeding the UoI maps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uoi_data::bootstrap::{block_bootstrap, row_bootstrap};
use uoi_data::rng::seeded;
use uoi_linalg::Matrix;
use uoi_solvers::{lasso_cd, soft_threshold_vec, AdmmConfig, CdConfig, LassoAdmm};

fn problem(n: usize, p: usize) -> (Matrix, Vec<f64>) {
    let x = Matrix::from_fn(n, p, |i, j| {
        (((i * 131 + j * 37) % 509) as f64 - 254.0) / 254.0
    });
    let y: Vec<f64> = (0..n)
        .map(|i| 2.0 * x[(i, 1)] - x[(i, 3)] + 0.1 * ((i % 11) as f64 - 5.0))
        .collect();
    (x, y)
}

fn bench_prox(c: &mut Criterion) {
    let a: Vec<f64> = (0..100_000)
        .map(|i| (i as f64 * 0.013).sin() * 3.0)
        .collect();
    let mut out = vec![0.0; a.len()];
    c.bench_function("soft_threshold_100k", |b| {
        b.iter(|| soft_threshold_vec(black_box(&a), 0.5, &mut out))
    });
}

fn bench_admm(c: &mut Criterion) {
    let mut g = c.benchmark_group("lasso_admm");
    for &(n, p) in &[(200usize, 50usize), (100, 400)] {
        let (x, y) = problem(n, p);
        let label = format!("{n}x{p}");
        g.bench_with_input(BenchmarkId::new("factor", &label), &n, |b, _| {
            b.iter(|| LassoAdmm::new(black_box(x.clone()), AdmmConfig::default()))
        });
        let solver = LassoAdmm::new(x.clone(), AdmmConfig::default());
        let lam = uoi_solvers::lambda_max(&x, &y) * 0.1;
        g.bench_with_input(BenchmarkId::new("solve", &label), &n, |b, _| {
            b.iter(|| solver.solve(black_box(&y), lam))
        });
        let lambdas = uoi_solvers::lambda_path(&x, &y, 10, 1e-2);
        g.bench_with_input(BenchmarkId::new("path10", &label), &n, |b, _| {
            b.iter(|| solver.solve_path(black_box(&y), &lambdas))
        });
        g.bench_with_input(BenchmarkId::new("ols", &label), &n, |b, _| {
            b.iter(|| solver.solve_ols(black_box(&y)))
        });
    }
    g.finish();
}

fn bench_cd(c: &mut Criterion) {
    let (x, y) = problem(200, 50);
    let lam = uoi_solvers::lambda_max(&x, &y) * 0.1;
    c.bench_function("lasso_cd_200x50", |b| {
        b.iter(|| lasso_cd(black_box(&x), &y, lam, &CdConfig::default()))
    });
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootstrap");
    g.bench_function("row_10k", |b| {
        let mut rng = seeded(1);
        b.iter(|| row_bootstrap(&mut rng, 10_000, 10_000))
    });
    g.bench_function("block_10k", |b| {
        let mut rng = seeded(2);
        b.iter(|| block_bootstrap(&mut rng, 10_000, 10_000, 22))
    });
    g.finish();
}

criterion_group! {
    name = solvers;
    config = Criterion::default().sample_size(20);
    targets = bench_prox, bench_admm, bench_cd, bench_bootstrap
}
criterion_main!(solvers);
