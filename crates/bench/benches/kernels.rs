//! Criterion microbenchmarks of the linear-algebra kernels the solvers
//! are built on — the operations the paper's roofline analysis profiles
//! (gemm / gemv / Cholesky / sparse Kronecker products).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uoi_linalg::{gemm, gemv, gemv_t, syrk_t, Cholesky, CsrMatrix, IdentityKron, Matrix};

fn matrix(n: usize, p: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, p, |i, j| {
        (((i * 31 + j * 17 + seed) % 1009) as f64 - 504.0) / 504.0
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let a = matrix(n, n, 1);
        let b = matrix(n, n, 2);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| gemm(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv");
    for &(n, p) in &[(256usize, 1024usize), (1024, 256), (2048, 2048)] {
        let a = matrix(n, p, 3);
        let x: Vec<f64> = (0..p).map(|i| (i as f64 * 0.37).sin()).collect();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        g.throughput(Throughput::Elements((2 * n * p) as u64));
        g.bench_with_input(BenchmarkId::new("Ax", format!("{n}x{p}")), &n, |b, _| {
            b.iter(|| gemv(black_box(&a), black_box(&x)))
        });
        g.bench_with_input(BenchmarkId::new("Atx", format!("{n}x{p}")), &n, |b, _| {
            b.iter(|| gemv_t(black_box(&a), black_box(&xt)))
        });
    }
    g.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky");
    for &p in &[32usize, 64, 128] {
        let x = matrix(2 * p, p, 5);
        let mut gram = syrk_t(&x);
        for i in 0..p {
            gram[(i, i)] += 1.0;
        }
        g.bench_with_input(BenchmarkId::new("factor", p), &p, |b, _| {
            b.iter(|| Cholesky::factor(black_box(&gram)).unwrap())
        });
        let ch = Cholesky::factor(&gram).unwrap();
        let rhs: Vec<f64> = (0..p).map(|i| i as f64).collect();
        g.bench_with_input(BenchmarkId::new("solve", p), &p, |b, _| {
            b.iter(|| ch.solve(black_box(&rhs)))
        });
    }
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse");
    // The UoI_VAR block-diagonal structure: I_p ⊗ X with X (2p x p).
    for &p in &[32usize, 64] {
        let x = matrix(2 * p, p, 7);
        let op = IdentityKron::new(x.clone(), p);
        let explicit: CsrMatrix = op.explicit();
        let v: Vec<f64> = (0..p * p).map(|i| (i as f64 * 0.11).sin()).collect();
        g.bench_with_input(BenchmarkId::new("kron_spmv_explicit", p), &p, |b, _| {
            b.iter(|| explicit.spmv(black_box(&v)))
        });
        g.bench_with_input(BenchmarkId::new("kron_matvec_lazy", p), &p, |b, _| {
            b.iter(|| op.matvec(black_box(&v)))
        });
    }
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_gemv, bench_cholesky, bench_sparse
}
criterion_main!(kernels);
