//! Criterion microbenchmarks of the linear-algebra kernels the solvers
//! are built on — the operations the paper's roofline analysis profiles
//! (gemm / gemv / Cholesky / sparse Kronecker products).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uoi_linalg::{gemm, gemv, gemv_t, kernels, syrk_t, Cholesky, CsrMatrix, IdentityKron, Matrix};

fn matrix(n: usize, p: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, p, |i, j| {
        (((i * 31 + j * 17 + seed) % 1009) as f64 - 504.0) / 504.0
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let a = matrix(n, n, 1);
        let b = matrix(n, n, 2);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| gemm(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_gemv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv");
    for &(n, p) in &[(256usize, 1024usize), (1024, 256), (2048, 2048)] {
        let a = matrix(n, p, 3);
        let x: Vec<f64> = (0..p).map(|i| (i as f64 * 0.37).sin()).collect();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        g.throughput(Throughput::Elements((2 * n * p) as u64));
        g.bench_with_input(BenchmarkId::new("Ax", format!("{n}x{p}")), &n, |b, _| {
            b.iter(|| gemv(black_box(&a), black_box(&x)))
        });
        g.bench_with_input(BenchmarkId::new("Atx", format!("{n}x{p}")), &n, |b, _| {
            b.iter(|| gemv_t(black_box(&a), black_box(&xt)))
        });
    }
    g.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky");
    for &p in &[32usize, 64, 128] {
        let x = matrix(2 * p, p, 5);
        let mut gram = syrk_t(&x);
        for i in 0..p {
            gram[(i, i)] += 1.0;
        }
        g.bench_with_input(BenchmarkId::new("factor", p), &p, |b, _| {
            b.iter(|| Cholesky::factor(black_box(&gram)).unwrap())
        });
        let ch = Cholesky::factor(&gram).unwrap();
        let rhs: Vec<f64> = (0..p).map(|i| i as f64).collect();
        g.bench_with_input(BenchmarkId::new("solve", p), &p, |b, _| {
            b.iter(|| ch.solve(black_box(&rhs)))
        });
    }
    g.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse");
    // The UoI_VAR block-diagonal structure: I_p ⊗ X with X (2p x p).
    for &p in &[32usize, 64] {
        let x = matrix(2 * p, p, 7);
        let op = IdentityKron::new(x.clone(), p);
        let explicit: CsrMatrix = op.explicit();
        let v: Vec<f64> = (0..p * p).map(|i| (i as f64 * 0.11).sin()).collect();
        g.bench_with_input(BenchmarkId::new("kron_spmv_explicit", p), &p, |b, _| {
            b.iter(|| explicit.spmv(black_box(&v)))
        });
        g.bench_with_input(BenchmarkId::new("kron_matvec_lazy", p), &p, |b, _| {
            b.iter(|| op.matvec(black_box(&v)))
        });
    }
    g.finish();
}

fn bench_inner_kernels(c: &mut Criterion) {
    // The ADMM inner-loop primitives from `uoi_linalg::kernels`: these are
    // the hot loops the `admm_local` phase spends its modeled time in.
    let mut g = c.benchmark_group("inner_kernels");
    for &n in &[256usize, 4096] {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).cos()).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("dot", n), &n, |bench, _| {
            bench.iter(|| kernels::dot(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("axpy", n), &n, |bench, _| {
            let mut y = b.clone();
            bench.iter(|| kernels::axpy(black_box(1.7), black_box(&a), black_box(&mut y)))
        });
        g.bench_with_input(BenchmarkId::new("soft_threshold", n), &n, |bench, _| {
            let mut out = vec![0.0; n];
            bench.iter(|| kernels::soft_threshold(black_box(&a), black_box(0.4), &mut out))
        });
    }
    g.finish();
}

fn bench_symv(c: &mut Criterion) {
    // Blocked symmetric matvec of the x-update vs the general gemv it
    // replaces — the win is halved memory traffic on the Gram matrix.
    let mut g = c.benchmark_group("symv");
    for &p in &[128usize, 512] {
        let x = matrix(2 * p, p, 9);
        let gram = syrk_t(&x);
        let v: Vec<f64> = (0..p).map(|i| (i as f64 * 0.29).sin()).collect();
        g.throughput(Throughput::Elements((p * p) as u64));
        g.bench_with_input(BenchmarkId::new("symv", p), &p, |b, _| {
            let mut out = vec![0.0; p];
            b.iter(|| kernels::symv(black_box(&gram), black_box(&v), &mut out))
        });
        g.bench_with_input(BenchmarkId::new("gemv", p), &p, |b, _| {
            b.iter(|| gemv(black_box(&gram), black_box(&v)))
        });
    }
    g.finish();
}

fn bench_multi_rhs_solve(c: &mut Criterion) {
    // Fused multi-RHS triangular solves over one shared Cholesky factor
    // (the multi-lambda lockstep round) vs one substitution per RHS.
    let mut g = c.benchmark_group("multi_rhs_solve");
    for &(p, nrhs) in &[(64usize, 8usize), (128, 16), (256, 33)] {
        let x = matrix(2 * p, p, 11);
        let mut gram = syrk_t(&x);
        for i in 0..p {
            gram[(i, i)] += 1.0;
        }
        let ch = Cholesky::factor(&gram).unwrap();
        let rhs: Vec<Vec<f64>> = (0..nrhs)
            .map(|k| (0..p).map(|i| ((i + k) as f64 * 0.19).sin()).collect())
            .collect();
        g.throughput(Throughput::Elements((p * p * nrhs) as u64));
        let id = format!("{p}x{nrhs}");
        g.bench_with_input(BenchmarkId::new("fused", &id), &p, |b, _| {
            b.iter(|| {
                let mut work = rhs.clone();
                let mut cols: Vec<&mut [f64]> = work.iter_mut().map(|c| c.as_mut_slice()).collect();
                ch.solve_multi_in_place(black_box(&mut cols));
                work
            })
        });
        g.bench_with_input(BenchmarkId::new("per_rhs", &id), &p, |b, _| {
            b.iter(|| {
                let mut work = rhs.clone();
                for col in &mut work {
                    ch.solve_in_place(black_box(col));
                }
                work
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_gemv, bench_cholesky, bench_sparse,
        bench_inner_kernels, bench_symv, bench_multi_rhs_solve
}
criterion_main!(kernels);
