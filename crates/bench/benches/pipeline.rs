//! Criterion benchmarks of the end-to-end pipelines at laptop scale:
//! serial `UoI_LASSO` and `UoI_VAR` fits, the VAR lag-matrix build, the
//! SHF hyperslab read, and the simulated cluster's collective round-trip.

// Pins the deprecated free-function fit surface deliberately; new code
// uses `UoiFitter`/`UoiVarFitter` (see crates/core/src/fitter.rs).
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uoi_core::uoi_lasso::{fit_uoi_lasso, UoiLassoConfig};
use uoi_core::uoi_var::{fit_uoi_var, UoiVarConfig};
use uoi_core::VarRegression;
use uoi_data::{LinearConfig, VarConfig, VarProcess};
use uoi_mpisim::{Cluster, MachineModel};
use uoi_solvers::AdmmConfig;

fn quick_cfg() -> UoiLassoConfig {
    UoiLassoConfig {
        b1: 5,
        b2: 5,
        q: 8,
        lambda_min_ratio: 5e-2,
        admm: AdmmConfig {
            max_iter: 300,
            ..Default::default()
        },
        support_tol: 1e-6,
        seed: 1,
        ..Default::default()
    }
}

fn bench_uoi_lasso(c: &mut Criterion) {
    let ds = LinearConfig {
        n_samples: 120,
        n_features: 40,
        n_nonzero: 6,
        seed: 5,
        ..Default::default()
    }
    .generate();
    c.bench_function("uoi_lasso_120x40", |b| {
        b.iter(|| fit_uoi_lasso(black_box(&ds.x), &ds.y, &quick_cfg()))
    });
}

fn bench_uoi_var(c: &mut Criterion) {
    let proc = VarProcess::generate(&VarConfig {
        p: 10,
        order: 1,
        density: 0.12,
        seed: 3,
        ..Default::default()
    });
    let series = proc.simulate(400, 50, 4);
    let cfg = UoiVarConfig {
        order: 1,
        block_len: None,
        base: quick_cfg(),
    };
    c.bench_function("uoi_var_400x10", |b| {
        b.iter(|| fit_uoi_var(black_box(&series), &cfg))
    });
}

fn bench_var_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("var_regression_build");
    for &p in &[50usize, 200] {
        let series =
            uoi_linalg::Matrix::from_fn(2 * p, p, |i, j| ((i * 7 + j * 3) % 13) as f64 - 6.0);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| VarRegression::build(black_box(&series), 1))
        });
    }
    g.finish();
}

fn bench_shf(c: &mut Criterion) {
    let m = uoi_linalg::Matrix::from_fn(2048, 64, |i, j| (i * 64 + j) as f64);
    let path = std::env::temp_dir().join(format!("uoi_bench_{}.shf", std::process::id()));
    uoi_tieredio::write_matrix(&path, &m).unwrap();
    let ds = uoi_tieredio::ShfDataset::open(&path).unwrap();
    c.bench_function("shf_hyperslab_512rows", |b| {
        b.iter(|| ds.read_rows(black_box(700), 1212).unwrap())
    });
    std::fs::remove_file(&path).ok();
}

fn bench_cluster_allreduce(c: &mut Criterion) {
    c.bench_function("cluster8_allreduce_x100", |b| {
        b.iter(|| {
            Cluster::new(8, MachineModel::deterministic()).run(|ctx, world| {
                for _ in 0..100 {
                    let mut v = vec![1.0; 256];
                    world.allreduce_sum(ctx, &mut v);
                }
            })
        })
    });
}

criterion_group! {
    name = pipeline;
    // End-to-end fits are seconds-long; keep the sample budget small.
    config = Criterion::default().sample_size(10);
    targets = bench_uoi_lasso,
        bench_uoi_var,
        bench_var_build,
        bench_shf,
        bench_cluster_allreduce
}
criterion_main!(pipeline);
