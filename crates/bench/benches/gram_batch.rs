//! Criterion benchmarks of the batched multi-bootstrap Gram engine
//! (`uoi_linalg::gram`): the batched one-pass kernel against (a) the
//! per-bootstrap weighted-SYRK loop it replaces and (b) the materialise-
//! then-SYRK baseline the zero-copy path already beat. Shapes follow the
//! fig2 (LASSO single node, tall n x p) and fig7 (VAR, square-ish dp)
//! pipeline workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uoi_linalg::{syrk_t_weighted, syrk_t_weighted_batch, Matrix};

fn matrix(n: usize, p: usize, seed: usize) -> Matrix {
    Matrix::from_fn(n, p, |i, j| {
        (((i * 31 + j * 17 + seed) % 1009) as f64 - 504.0) / 504.0
    })
}

/// Bootstrap-style multiplicity weights: roughly 1/e zeros, integer mass.
fn weights(n: usize, seed: u64) -> Vec<f64> {
    let mut w = vec![0.0f64; n];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        w[(state % n as u64) as usize] += 1.0;
    }
    w
}

fn bench_gram_batch(c: &mut Criterion) {
    // (label, n, p): fig2 solves tall blocks per rank; fig7's VAR
    // vectorisation works on the dp-wide lag regression.
    let shapes = [("fig2_block", 512usize, 256usize), ("fig7_var", 384, 128)];
    const B: usize = 5; // the paper's B1 = B2 = 5 pipeline setting
    for (label, n, p) in shapes {
        let a = matrix(n, p, 7);
        let ws: Vec<Vec<f64>> = (0..B).map(|k| weights(n, 1 + k as u64)).collect();
        let wrefs: Vec<&[f64]> = ws.iter().map(|w| w.as_slice()).collect();
        let mut g = c.benchmark_group(format!("gram_batch/{label}"));
        g.throughput(Throughput::Elements((B * n * p * p) as u64));
        g.bench_with_input(BenchmarkId::new("batched", B), &B, |bench, _| {
            bench.iter(|| syrk_t_weighted_batch(black_box(&a), black_box(&wrefs)))
        });
        g.bench_with_input(BenchmarkId::new("per_bootstrap_loop", B), &B, |bench, _| {
            bench.iter(|| {
                wrefs
                    .iter()
                    .map(|w| syrk_t_weighted(black_box(&a), w))
                    .collect::<Vec<_>>()
            })
        });
        g.bench_with_input(BenchmarkId::new("materialized", B), &B, |bench, _| {
            bench.iter(|| {
                ws.iter()
                    .map(|w| {
                        // Gather the resample physically (row copies with
                        // multiplicity), then build the plain Gram — the
                        // pre-zero-copy reference cost.
                        let rows: Vec<usize> = w
                            .iter()
                            .enumerate()
                            .flat_map(|(i, &c)| std::iter::repeat_n(i, c as usize))
                            .collect();
                        let xb = black_box(&a).gather_rows(&rows);
                        uoi_linalg::syrk_t(&xb)
                    })
                    .collect::<Vec<_>>()
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_gram_batch);
criterion_main!(benches);
