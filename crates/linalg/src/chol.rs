//! Cholesky factorisation and triangular solves for symmetric
//! positive-definite systems.
//!
//! The ADMM x-update solves `(X^T X + rho I) x = b` once per iteration with a
//! *fixed* left-hand side, so the factorisation is computed once and cached
//! (see `uoi-solvers::admm`). This mirrors the `LLT` decomposition the
//! reference C++ used from Eigen3.

use crate::dense::Matrix;
use rayon::prelude::*;

/// Order below which the unblocked factorisation is used directly.
const CHOL_BLOCK_THRESHOLD: usize = 128;
/// Panel width of the blocked right-looking factorisation.
const CHOL_NB: usize = 64;

/// Error raised when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Pivot index at which the factorisation broke down.
    pub pivot: usize,
    /// The offending pivot value.
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} has value {:.3e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Small orders use the classic
    /// unblocked algorithm; larger ones switch to a blocked right-looking
    /// factorisation (panel factor + rayon-parallel trailing update) that
    /// keeps the working set cache-resident and parallelises the O(n³)
    /// syrk/gemm bulk of the work.
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "Cholesky: matrix must be square");
        // Copy the lower triangle; the factorisation proceeds in place.
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
        }
        Self::factor_in_place(l)
    }

    /// Like [`Cholesky::factor`], but reading only the **upper** triangle
    /// of `a` (i.e. factoring `a`'s transpose image, which for a symmetric
    /// matrix is the same thing).
    ///
    /// This is the entry point for upper-stored Grams from
    /// [`crate::gram`]: the batched SYRK engine never writes the strict
    /// lower triangle, and this constructor lets the solver consume such a
    /// matrix without the O(p²) mirror pass. For a fully symmetric input
    /// the result is bit-identical to [`Cholesky::factor`].
    pub fn factor_upper(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "Cholesky: matrix must be square");
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            let row = l.row_mut(i);
            for k in 0..=i {
                row[k] = a[(k, i)];
            }
        }
        Self::factor_in_place(l)
    }

    /// Dispatch on order once the lower triangle has been staged in `l`.
    fn factor_in_place(l: Matrix) -> Result<Self, NotPositiveDefinite> {
        if l.rows() < CHOL_BLOCK_THRESHOLD {
            Self::factor_unblocked(l)
        } else {
            Self::factor_blocked(l)
        }
    }

    fn factor_unblocked(mut l: Matrix) -> Result<Self, NotPositiveDefinite> {
        let n = l.rows();
        for j in 0..n {
            // Diagonal entry: the original value survives at (j, j) until
            // this very step overwrites it.
            let mut d = l[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(NotPositiveDefinite { pivot: j, value: d });
            }
            let dsqrt = d.sqrt();
            l[(j, j)] = dsqrt;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = l[(i, j)];
                // Dot of rows i and j of L restricted to [0, j).
                let (ri, rj) = (l.row(i), l.row(j));
                for k in 0..j {
                    s -= ri[k] * rj[k];
                }
                l[(i, j)] = s / dsqrt;
            }
        }
        Ok(Self { l })
    }

    /// Blocked right-looking variant: factor an NB-wide diagonal panel,
    /// triangular-solve the column panel below it, then apply the rank-NB
    /// trailing update with rows distributed across rayon workers.
    fn factor_blocked(mut l: Matrix) -> Result<Self, NotPositiveDefinite> {
        let n = l.rows();
        let mut panel = Vec::new();
        for k in (0..n).step_by(CHOL_NB) {
            let kb = CHOL_NB.min(n - k);
            let k_end = k + kb;
            // 1. Unblocked factor of the diagonal block L11. Contributions
            //    from columns < k were already subtracted by earlier trailing
            //    updates, so inner sums only span the current panel.
            for j in k..k_end {
                let mut d = l[(j, j)];
                {
                    let rj = &l.row(j)[k..j];
                    for v in rj {
                        d -= v * v;
                    }
                }
                if d <= 0.0 || !d.is_finite() {
                    return Err(NotPositiveDefinite { pivot: j, value: d });
                }
                let dsqrt = d.sqrt();
                l[(j, j)] = dsqrt;
                for i in (j + 1)..k_end {
                    let mut s = l[(i, j)];
                    let (ri, rj) = (l.row(i), l.row(j));
                    for t in k..j {
                        s -= ri[t] * rj[t];
                    }
                    l[(i, j)] = s / dsqrt;
                }
            }
            // 2. Panel solve: L21 = A21 * L11^-T, row by row.
            for i in k_end..n {
                for j in k..k_end {
                    let mut s = l[(i, j)];
                    let (ri, rj) = (l.row(i), l.row(j));
                    for t in k..j {
                        s -= ri[t] * rj[t];
                    }
                    l[(i, j)] = s / l[(j, j)];
                }
            }
            if k_end == n {
                break;
            }
            // 3. Trailing update A22 -= L21 L21^T. The panel is copied out so
            //    the row-parallel update borrows it immutably while each
            //    worker owns a disjoint row of the trailing block.
            let trailing = n - k_end;
            panel.clear();
            panel.reserve(trailing * kb);
            for i in k_end..n {
                panel.extend_from_slice(&l.row(i)[k..k_end]);
            }
            let ncols = n;
            l.as_mut_slice()[k_end * ncols..]
                .par_chunks_mut(ncols)
                .enumerate()
                .for_each(|(off, row)| {
                    let i = k_end + off;
                    let pi = &panel[off * kb..off * kb + kb];
                    for jj in k_end..=i {
                        let pj = &panel[(jj - k_end) * kb..(jj - k_end) * kb + kb];
                        row[jj] -= crate::blas::dot(pi, pj);
                    }
                });
        }
        // The strict upper triangle was never written and stays zero.
        Ok(Self { l })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via forward + back substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        self.solve_in_place(&mut y);
        y
    }

    /// In-place variant of [`Cholesky::solve`].
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.order();
        assert_eq!(b.len(), n, "Cholesky::solve: rhs length mismatch");
        forward_substitute(&self.l, b);
        back_substitute_transposed(&self.l, b);
    }

    /// Fused multi-RHS solve: forward + back substitution over several
    /// right-hand sides at once, sharing this factorisation.
    ///
    /// Each `L` row (forward pass) and `L` column (back pass) is loaded
    /// once and applied to every column before moving on — the factor is
    /// streamed through cache once per pass instead of once per RHS. The
    /// per-column arithmetic order is exactly that of
    /// [`Cholesky::solve_in_place`], so every column's result is
    /// bit-identical to solving it alone.
    pub fn solve_multi_in_place(&self, cols: &mut [&mut [f64]]) {
        let n = self.order();
        for b in cols.iter() {
            assert_eq!(b.len(), n, "Cholesky::solve_multi: rhs length mismatch");
        }
        forward_substitute_multi(&self.l, cols);
        back_substitute_transposed_multi(&self.l, cols);
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.order());
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j));
            out.set_col(j, &col);
        }
        out
    }

    /// log-determinant of `A` (`2 * sum log diag(L)`), used by
    /// information-criterion diagnostics.
    pub fn log_det(&self) -> f64 {
        (0..self.order()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Solve `L y = b` in place for lower-triangular `L`.
pub fn forward_substitute(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    for i in 0..n {
        let row = l.row(i);
        let mut s = b[i];
        for k in 0..i {
            s -= row[k] * b[k];
        }
        b[i] = s / row[i];
    }
}

/// Solve `L^T x = y` in place for lower-triangular `L` (i.e. an
/// upper-triangular solve against the transpose, without materialising it).
pub fn back_substitute_transposed(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * b[k];
        }
        b[i] = s / l[(i, i)];
    }
}

/// Multi-RHS [`forward_substitute`]: row loop outside, RHS loop inside, so
/// each `L` row is read once for all columns. Per-column arithmetic order
/// (and therefore every result bit) matches the single-RHS version.
pub fn forward_substitute_multi(l: &Matrix, cols: &mut [&mut [f64]]) {
    let n = l.rows();
    for i in 0..n {
        let row = l.row(i);
        let d = row[i];
        for b in cols.iter_mut() {
            let mut s = b[i];
            for k in 0..i {
                s -= row[k] * b[k];
            }
            b[i] = s / d;
        }
    }
}

/// Multi-RHS [`back_substitute_transposed`]; same sharing and bit-identity
/// argument as [`forward_substitute_multi`].
pub fn back_substitute_transposed_multi(l: &Matrix, cols: &mut [&mut [f64]]) {
    let n = l.rows();
    for i in (0..n).rev() {
        let d = l[(i, i)];
        for b in cols.iter_mut() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s -= l[(k, i)] * b[k];
            }
            b[i] = s / d;
        }
    }
}

/// Convenience: solve the SPD system `a x = b` with a one-shot factorisation.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NotPositiveDefinite> {
    Ok(Cholesky::factor(a)?.solve(b))
}

/// Solve the regularised normal equations `(X^T X + ridge I) beta = X^T y`.
///
/// With `ridge = 0` this is ordinary least squares (requires full column
/// rank); a tiny positive `ridge` is the standard jitter fallback.
pub fn solve_normal_equations(
    x: &Matrix,
    y: &[f64],
    ridge: f64,
) -> Result<Vec<f64>, NotPositiveDefinite> {
    let mut gram = crate::blas::syrk_t(x);
    if ridge != 0.0 {
        for i in 0..gram.rows() {
            gram[(i, i)] += ridge;
        }
    }
    let rhs = crate::blas::gemv_t(x, y);
    solve_spd(&gram, &rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, gemv};

    fn spd_test_matrix(n: usize) -> Matrix {
        // A = B^T B + n I is SPD for any B.
        let b = Matrix::from_fn(n + 3, n, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let mut a = crate::blas::syrk_t(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_test_matrix(8);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let rec = gemm(l, &l.transpose());
        assert!(rec.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd_test_matrix(10);
        let x_true: Vec<f64> = (0..10).map(|i| (i as f64) - 4.5).collect();
        let b = gemv(&a, &x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = spd_test_matrix(6);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(6, 3, |i, j| (i + j) as f64);
        let x = ch.solve_matrix(&b);
        assert!(gemm(&a, &x).approx_eq(&b, 1e-9));
    }

    #[test]
    fn blocked_factor_matches_unblocked() {
        // 150 > CHOL_BLOCK_THRESHOLD exercises the blocked right-looking path
        // (including a partial final panel); compare against the unblocked
        // reference on the same matrix.
        let a = spd_test_matrix(150);
        let blocked = Cholesky::factor(&a).unwrap();
        let mut staged = Matrix::zeros(150, 150);
        for i in 0..150 {
            staged.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
        }
        let reference = Cholesky::factor_unblocked(staged).unwrap();
        assert!(blocked.factor_l().approx_eq(reference.factor_l(), 1e-8));
        let rec = gemm(blocked.factor_l(), &blocked.factor_l().transpose());
        assert!(rec.approx_eq(&a, 1e-7));
        // Solves agree too.
        let x_true: Vec<f64> = (0..150).map(|i| ((i % 13) as f64) - 6.0).collect();
        let b = gemv(&a, &x_true);
        let x = blocked.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn blocked_factor_rejects_non_spd() {
        // Indefinite matrix large enough for the blocked path: B^T B minus a
        // large diagonal shift flips eigenvalues negative.
        let mut a = spd_test_matrix(140);
        a[(133, 133)] = -5.0e4;
        let err = Cholesky::factor(&a).unwrap_err();
        assert!(err.pivot <= 133);
        assert!(err.value <= 0.0 || !err.value.is_finite());
    }

    #[test]
    fn factor_upper_bit_identical_on_symmetric_input() {
        // Both the unblocked (n < 128) and blocked dispatch, on a fully
        // symmetric matrix: reading the upper triangle must reproduce the
        // lower-triangle factorisation bit for bit.
        for n in [1, 9, 57, 150] {
            let a = spd_test_matrix(n);
            let lower = Cholesky::factor(&a).unwrap();
            let upper = Cholesky::factor_upper(&a).unwrap();
            for (g, w) in upper
                .factor_l()
                .as_slice()
                .iter()
                .zip(lower.factor_l().as_slice())
            {
                assert_eq!(g.to_bits(), w.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn factor_upper_ignores_strict_lower_garbage() {
        let a = spd_test_matrix(40);
        let mut upper_only = a.clone();
        for i in 0..40 {
            for j in 0..i {
                upper_only[(i, j)] = f64::NAN;
            }
        }
        let from_full = Cholesky::factor_upper(&a).unwrap();
        let from_upper = Cholesky::factor_upper(&upper_only).unwrap();
        for (g, w) in from_upper
            .factor_l()
            .as_slice()
            .iter()
            .zip(from_full.factor_l().as_slice())
        {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn non_spd_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = Cholesky::factor(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn log_det_identity_is_zero() {
        let ch = Cholesky::factor(&Matrix::identity(5)).unwrap();
        assert!(ch.log_det().abs() < 1e-14);
    }

    #[test]
    fn multi_rhs_solve_bit_identical_to_single() {
        for n in [1, 3, 17, 140] {
            let a = spd_test_matrix(n);
            let ch = Cholesky::factor(&a).unwrap();
            let mut cols: Vec<Vec<f64>> = (0..5)
                .map(|c| {
                    (0..n)
                        .map(|i| ((i * 7 + c * 13 + 3) % 19) as f64 * 0.41 - 2.0)
                        .collect()
                })
                .collect();
            let singles: Vec<Vec<f64>> = cols.iter().map(|b| ch.solve(b)).collect();
            let mut views: Vec<&mut [f64]> = cols.iter_mut().map(|c| c.as_mut_slice()).collect();
            ch.solve_multi_in_place(&mut views);
            for (got, want) in cols.iter().zip(&singles) {
                for (g, w) in got.iter().zip(want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "n={n}");
                }
            }
        }
    }

    #[test]
    fn normal_equations_exact_fit() {
        // y = 2 x0 - 3 x1 exactly.
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]);
        let y = [2.0, -3.0, -1.0, 1.0];
        let beta = solve_normal_equations(&x, &y, 0.0).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-10);
        assert!((beta[1] + 3.0).abs() < 1e-10);
    }
}
