//! Cholesky factorisation and triangular solves for symmetric
//! positive-definite systems.
//!
//! The ADMM x-update solves `(X^T X + rho I) x = b` once per iteration with a
//! *fixed* left-hand side, so the factorisation is computed once and cached
//! (see `uoi-solvers::admm`). This mirrors the `LLT` decomposition the
//! reference C++ used from Eigen3.

use crate::dense::Matrix;

/// Error raised when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Pivot index at which the factorisation broke down.
    pub pivot: usize,
    /// The offending pivot value.
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite: pivot {} has value {:.3e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "Cholesky: matrix must be square");
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(NotPositiveDefinite { pivot: j, value: d });
            }
            let dsqrt = d.sqrt();
            l[(j, j)] = dsqrt;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                // Dot of rows i and j of L restricted to [0, j).
                let (ri, rj) = (l.row(i), l.row(j));
                for k in 0..j {
                    s -= ri[k] * rj[k];
                }
                l[(i, j)] = s / dsqrt;
            }
        }
        Ok(Self { l })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via forward + back substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        self.solve_in_place(&mut y);
        y
    }

    /// In-place variant of [`Cholesky::solve`].
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.order();
        assert_eq!(b.len(), n, "Cholesky::solve: rhs length mismatch");
        forward_substitute(&self.l, b);
        back_substitute_transposed(&self.l, b);
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.order());
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j));
            out.set_col(j, &col);
        }
        out
    }

    /// log-determinant of `A` (`2 * sum log diag(L)`), used by
    /// information-criterion diagnostics.
    pub fn log_det(&self) -> f64 {
        (0..self.order()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Solve `L y = b` in place for lower-triangular `L`.
pub fn forward_substitute(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    for i in 0..n {
        let row = l.row(i);
        let mut s = b[i];
        for k in 0..i {
            s -= row[k] * b[k];
        }
        b[i] = s / row[i];
    }
}

/// Solve `L^T x = y` in place for lower-triangular `L` (i.e. an
/// upper-triangular solve against the transpose, without materialising it).
pub fn back_substitute_transposed(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * b[k];
        }
        b[i] = s / l[(i, i)];
    }
}

/// Convenience: solve the SPD system `a x = b` with a one-shot factorisation.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NotPositiveDefinite> {
    Ok(Cholesky::factor(a)?.solve(b))
}

/// Solve the regularised normal equations `(X^T X + ridge I) beta = X^T y`.
///
/// With `ridge = 0` this is ordinary least squares (requires full column
/// rank); a tiny positive `ridge` is the standard jitter fallback.
pub fn solve_normal_equations(
    x: &Matrix,
    y: &[f64],
    ridge: f64,
) -> Result<Vec<f64>, NotPositiveDefinite> {
    let mut gram = crate::blas::syrk_t(x);
    if ridge != 0.0 {
        for i in 0..gram.rows() {
            gram[(i, i)] += ridge;
        }
    }
    let rhs = crate::blas::gemv_t(x, y);
    solve_spd(&gram, &rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, gemv};

    fn spd_test_matrix(n: usize) -> Matrix {
        // A = B^T B + n I is SPD for any B.
        let b = Matrix::from_fn(n + 3, n, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let mut a = crate::blas::syrk_t(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_test_matrix(8);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let rec = gemm(l, &l.transpose());
        assert!(rec.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_recovers_rhs() {
        let a = spd_test_matrix(10);
        let x_true: Vec<f64> = (0..10).map(|i| (i as f64) - 4.5).collect();
        let b = gemv(&a, &x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = spd_test_matrix(6);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_fn(6, 3, |i, j| (i + j) as f64);
        let x = ch.solve_matrix(&b);
        assert!(gemm(&a, &x).approx_eq(&b, 1e-9));
    }

    #[test]
    fn non_spd_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = Cholesky::factor(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn log_det_identity_is_zero() {
        let ch = Cholesky::factor(&Matrix::identity(5)).unwrap();
        assert!(ch.log_det().abs() < 1e-14);
    }

    #[test]
    fn normal_equations_exact_fit() {
        // y = 2 x0 - 3 x1 exactly.
        let x = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, 1.0],
        ]);
        let y = [2.0, -3.0, -1.0, 1.0];
        let beta = solve_normal_equations(&x, &y, 0.0).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-10);
        assert!((beta[1] + 3.0).abs() < 1e-10);
    }
}
