//! BLAS-style dense kernels: dot/axpy (level 1), gemv (level 2), and a
//! cache-blocked, rayon-parallel gemm / syrk (level 3).
//!
//! The reference implementation leaned on Intel MKL for these; here we write
//! straightforward blocked kernels. They are not MKL-fast, but they expose
//! the same computational structure (the solvers' flop counts and
//! memory-traffic ratios are identical), which is what the scaling study
//! measures.

use crate::dense::Matrix;
use rayon::prelude::*;

/// Minimum total flop count before a kernel bothers spawning rayon tasks.
const PAR_FLOP_THRESHOLD: usize = 1 << 18;

/// Micro-kernel block edge for gemm (tuned for ~32 KiB L1 working sets).
const MC: usize = 64;
const KC: usize = 128;

/// Dot product of two equal-length slices.
///
/// Delegates to [`crate::kernels::dot`], whose lane-unrolled accumulation
/// is bit-identical to the historical 4-way unrolled loop here.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::dot(a, b)
}

/// `y += alpha * x`. Delegates to [`crate::kernels::axpy`] (elementwise,
/// so bit-identical to the historical scalar loop).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    crate::kernels::axpy(alpha, x, y)
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `||a - b||` without materialising the difference vector.
///
/// The accumulation structure mirrors [`dot`] exactly (4-way unrolled, same
/// order), so the result is bit-identical to `norm2` of the materialised
/// difference — which lets the ADMM inner loop drop its `r` temporary
/// without perturbing convergence decisions.
#[inline]
pub fn norm2_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = c * 4;
        let d0 = a[i] - b[i];
        let d1 = a[i + 1] - b[i + 1];
        let d2 = a[i + 2] - b[i + 2];
        let d3 = a[i + 3] - b[i + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..n {
        let d = a[i] - b[i];
        s += d * d;
    }
    s.sqrt()
}

/// `||c * (a - b)||` without materialising the scaled difference
/// (bit-identical to `norm2` of the materialised vector; see [`norm2_diff`]).
#[inline]
pub fn norm2_scaled_diff(c: f64, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for ch in 0..chunks {
        let i = ch * 4;
        let d0 = c * (a[i] - b[i]);
        let d1 = c * (a[i + 1] - b[i + 1]);
        let d2 = c * (a[i + 2] - b[i + 2]);
        let d3 = c * (a[i + 3] - b[i + 3]);
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..n {
        let d = c * (a[i] - b[i]);
        s += d * d;
    }
    s.sqrt()
}

/// `||c * x||` without materialising the scaled vector
/// (bit-identical to `norm2` of the materialised vector; see [`norm2_diff`]).
#[inline]
pub fn norm2_scaled(c: f64, x: &[f64]) -> f64 {
    let n = x.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for ch in 0..chunks {
        let i = ch * 4;
        let d0 = c * x[i];
        let d1 = c * x[i + 1];
        let d2 = c * x[i + 2];
        let d3 = c * x[i + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..n {
        let d = c * x[i];
        s += d * d;
    }
    s.sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// `a - b` as a fresh vector.
pub fn vsub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + b` as a fresh vector.
pub fn vadd(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Matrix-vector product `A * x`.
///
/// Row-major layout makes this a sequence of dot products; rows are
/// processed in parallel above the flop threshold.
pub fn gemv(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), x.len(), "gemv: dimension mismatch");
    let flops = a.rows() * a.cols() * 2;
    if flops >= PAR_FLOP_THRESHOLD {
        (0..a.rows())
            .into_par_iter()
            .map(|i| dot(a.row(i), x))
            .collect()
    } else {
        (0..a.rows()).map(|i| dot(a.row(i), x)).collect()
    }
}

/// Transposed matrix-vector product `A^T * x` without materialising `A^T`.
pub fn gemv_t(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), x.len(), "gemv_t: dimension mismatch");
    let cols = a.cols();
    let flops = a.rows() * cols * 2;
    if flops >= PAR_FLOP_THRESHOLD && cols >= 64 {
        // Parallelise over row blocks and reduce partial column sums.
        let nblocks = rayon::current_num_threads().max(1);
        let block = a.rows().div_ceil(nblocks);
        (0..a.rows())
            .into_par_iter()
            .step_by(block.max(1))
            .map(|start| {
                let end = (start + block).min(a.rows());
                let mut acc = vec![0.0; cols];
                for i in start..end {
                    axpy(x[i], a.row(i), &mut acc);
                }
                acc
            })
            .reduce(
                || vec![0.0; cols],
                |mut a, b| {
                    for (ai, bi) in a.iter_mut().zip(&b) {
                        *ai += bi;
                    }
                    a
                },
            )
    } else {
        let mut y = vec![0.0; cols];
        for i in 0..a.rows() {
            axpy(x[i], a.row(i), &mut y);
        }
        y
    }
}

/// General matrix-matrix product `A * B`.
///
/// Cache-blocked (`MC x KC` panels) with rayon parallelism over row panels.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "gemm: inner dimension mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    let flops = 2 * m * n * k;

    let body = |i_panel: usize, c_panel: &mut [f64]| {
        let i_end = (i_panel + MC).min(m);
        for k_panel in (0..k).step_by(KC) {
            let k_end = (k_panel + KC).min(k);
            for i in i_panel..i_end {
                let a_row = a.row(i);
                let c_row = &mut c_panel[(i - i_panel) * n..(i - i_panel) * n + n];
                for kk in k_panel..k_end {
                    let aik = a_row[kk];
                    if aik != 0.0 {
                        axpy(aik, b.row(kk), c_row);
                    }
                }
            }
        }
    };

    if flops >= PAR_FLOP_THRESHOLD {
        let n_cols = n;
        c.as_mut_slice()
            .par_chunks_mut(MC * n_cols)
            .enumerate()
            .for_each(|(pi, chunk)| body(pi * MC, chunk));
    } else {
        for i_panel in (0..m).step_by(MC) {
            let i_end = (i_panel + MC).min(m);
            // Safe split: operate on the owned rows of this panel.
            let range = i_panel * n..i_end * n;
            let mut panel = vec![0.0; range.len()];
            body(i_panel, &mut panel);
            c.as_mut_slice()[range].copy_from_slice(&panel);
        }
    }
    c
}

/// Symmetric rank-k update computing the Gram matrix `A^T * A`
/// (the `X^T X` of the ADMM x-update).
///
/// Only the upper triangle is computed directly (by the packed, tiled
/// engine in [`crate::gram`]); the result is mirrored so callers get a
/// full symmetric matrix. Callers that only read the upper triangle
/// should use [`crate::gram::syrk_t_upper`] and skip the mirror.
pub fn syrk_t(a: &Matrix) -> Matrix {
    crate::gram::syrk_t_upper(a).into_full()
}

/// Matrix-vector product `A * x` written into a caller-owned buffer.
///
/// Produces results bit-identical to [`gemv`] (same per-row dot products)
/// without allocating; `out` is resized to `a.rows()` if needed.
pub fn gemv_into(a: &Matrix, x: &[f64], out: &mut Vec<f64>) {
    assert_eq!(a.cols(), x.len(), "gemv_into: dimension mismatch");
    out.clear();
    out.reserve(a.rows());
    let flops = a.rows() * a.cols() * 2;
    if flops >= PAR_FLOP_THRESHOLD {
        (0..a.rows())
            .into_par_iter()
            .map(|i| dot(a.row(i), x))
            .collect_into_vec(out);
    } else {
        out.extend((0..a.rows()).map(|i| dot(a.row(i), x)));
    }
}

/// Transposed matrix-vector product `A^T * x` written into a caller-owned
/// buffer. Serial accumulation (bit-identical to the serial [`gemv_t`] path).
pub fn gemv_t_into(a: &Matrix, x: &[f64], out: &mut Vec<f64>) {
    assert_eq!(a.rows(), x.len(), "gemv_t_into: dimension mismatch");
    out.clear();
    out.resize(a.cols(), 0.0);
    for i in 0..a.rows() {
        axpy(x[i], a.row(i), out);
    }
}

/// Weighted Gram matrix `A^T diag(w) A = Σ_i w_i a_i a_iᵀ`.
///
/// With `w` the integer multiplicities of a bootstrap resample this equals
/// the Gram of the materialised resample (`gather_rows` + [`syrk_t`]) without
/// ever copying the design matrix; rows with `w_i == 0` (out-of-bag) are
/// skipped entirely. Routed through the packed, tiled engine in
/// [`crate::gram`] (one `w` is a batch of one); batching several resamples
/// through [`crate::gram::syrk_t_weighted_batch`] amortizes one pass over
/// `a` across all of them.
pub fn syrk_t_weighted(a: &Matrix, w: &[f64]) -> Matrix {
    assert_eq!(a.rows(), w.len(), "syrk_t_weighted: weight length mismatch");
    crate::gram::syrk_t_weighted_upper(a, w).into_full()
}

/// Weighted transposed matrix-vector product `A^T diag(w) x = Σ_i w_i x_i a_i`.
///
/// With bootstrap multiplicities `w` this equals `X_b^T y_b` of the
/// materialised resample without copying rows. The parallel path combines
/// block partials in ascending block order, so results are deterministic for
/// a fixed thread count.
pub fn gemv_t_weighted(a: &Matrix, w: &[f64], x: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), w.len(), "gemv_t_weighted: weight length mismatch");
    assert_eq!(a.rows(), x.len(), "gemv_t_weighted: dimension mismatch");
    let cols = a.cols();
    let flops = a.rows() * cols * 3;
    if flops >= PAR_FLOP_THRESHOLD && cols >= 64 {
        let nblocks = rayon::current_num_threads().max(1);
        let block = a.rows().div_ceil(nblocks).max(1);
        let starts: Vec<usize> = (0..a.rows()).step_by(block).collect();
        let partials: Vec<Vec<f64>> = starts
            .into_par_iter()
            .map(|start| {
                let end = (start + block).min(a.rows());
                let mut acc = vec![0.0; cols];
                for i in start..end {
                    let c = w[i] * x[i];
                    if c != 0.0 {
                        axpy(c, a.row(i), &mut acc);
                    }
                }
                acc
            })
            .collect();
        let mut y = vec![0.0; cols];
        for acc in partials {
            for (yi, ai) in y.iter_mut().zip(&acc) {
                *yi += ai;
            }
        }
        y
    } else {
        let mut y = vec![0.0; cols];
        for i in 0..a.rows() {
            let c = w[i] * x[i];
            if c != 0.0 {
                axpy(c, a.row(i), &mut y);
            }
        }
        y
    }
}

/// Weighted sum of squares `Σ_i w_i x_i²` (the `y^T y` term of a weighted
/// residual-sum-of-squares computed from Gram-space quantities).
pub fn weighted_sumsq(w: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), x.len());
    let mut s = 0.0;
    for (wi, xi) in w.iter().zip(x) {
        if *wi != 0.0 {
            s += wi * xi * xi;
        }
    }
    s
}

/// Mean squared error `||y - X beta||^2 / n` (the loss used in the UoI
/// model-estimation scoring step).
pub fn mse(x: &Matrix, beta: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.rows(), y.len());
    let pred = gemv(x, beta);
    let n = y.len().max(1) as f64;
    pred.iter()
        .zip(y)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n
}

/// [`mse`] with a caller-owned prediction buffer: bit-identical result,
/// zero allocations once `pred` has capacity `x.rows()`.
pub fn mse_into(x: &Matrix, beta: &[f64], y: &[f64], pred: &mut Vec<f64>) -> f64 {
    assert_eq!(x.rows(), y.len());
    gemv_into(x, beta, pred);
    let n = y.len().max(1) as f64;
    pred.iter()
        .zip(y)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n
}

/// Coefficient of determination R^2 on (`x`,`y`) for `beta`.
pub fn r_squared(x: &Matrix, beta: &[f64], y: &[f64]) -> f64 {
    let n = y.len();
    if n == 0 {
        return 0.0;
    }
    let mean = y.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
    let pred = gemv(x, beta);
    let ss_res: f64 = pred.iter().zip(y).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// [`r_squared`] with a caller-owned prediction buffer: bit-identical result,
/// zero allocations once `pred` has capacity `x.rows()`.
pub fn r_squared_into(x: &Matrix, beta: &[f64], y: &[f64], pred: &mut Vec<f64>) -> f64 {
    let n = y.len();
    if n == 0 {
        return 0.0;
    }
    let mean = y.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - mean) * (v - mean)).sum();
    gemv_into(x, beta, pred);
    let ss_res: f64 = pred.iter().zip(y).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_gemm(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&a, &b), 35.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(norm_inf(&[-1.0, 2.0, -3.0]), 3.0);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(gemv(&a, &[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(gemv_t(&a, &[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn gemm_small_matches_naive() {
        let a = Matrix::from_fn(7, 5, |i, j| (i + 2 * j) as f64 * 0.5);
        let b = Matrix::from_fn(5, 6, |i, j| (3 * i + j) as f64 * 0.25 - 1.0);
        assert!(gemm(&a, &b).approx_eq(&naive_gemm(&a, &b), 1e-12));
    }

    #[test]
    fn gemm_large_parallel_matches_naive() {
        let a = Matrix::from_fn(150, 90, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(90, 110, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        assert!(gemm(&a, &b).approx_eq(&naive_gemm(&a, &b), 1e-9));
    }

    #[test]
    fn syrk_matches_gemm_transpose() {
        let a = Matrix::from_fn(40, 25, |i, j| ((i + j * j) % 7) as f64 - 3.0);
        let expected = gemm(&a.transpose(), &a);
        assert!(syrk_t(&a).approx_eq(&expected, 1e-10));
    }

    #[test]
    fn syrk_large_parallel_path() {
        let a = Matrix::from_fn(200, 80, |i, j| ((i * 13 + j * 29) % 17) as f64 * 0.1);
        let expected = gemm(&a.transpose(), &a);
        assert!(syrk_t(&a).approx_eq(&expected, 1e-9));
    }

    #[test]
    fn gemv_large_parallel_path() {
        let a = Matrix::from_fn(600, 700, |i, j| ((i + j) % 5) as f64);
        let x: Vec<f64> = (0..700).map(|i| (i % 3) as f64).collect();
        let seq: Vec<f64> = (0..600).map(|i| dot(a.row(i), &x)).collect();
        assert_eq!(gemv(&a, &x), seq);
        let xt: Vec<f64> = (0..600).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut expected = vec![0.0; 700];
        for i in 0..600 {
            axpy(xt[i], a.row(i), &mut expected);
        }
        let got = gemv_t(&a, &xt);
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_syrk_matches_materialized() {
        let a = Matrix::from_fn(30, 12, |i, j| ((i * 5 + j * 11) % 9) as f64 - 4.0);
        // Bootstrap-style integer multiplicities, including zeros (OOB rows).
        let idx: Vec<usize> = (0..30).map(|i| (i * 17 + 3) % 30).collect();
        let mut w = vec![0.0; 30];
        for &i in &idx {
            w[i] += 1.0;
        }
        let gathered = a.gather_rows(&idx);
        let expected = syrk_t(&gathered);
        let got = syrk_t_weighted(&a, &w);
        assert!(got.approx_eq(&expected, 1e-10));
    }

    #[test]
    fn weighted_syrk_large_parallel_path() {
        let a = Matrix::from_fn(120, 64, |i, j| ((i * 13 + j * 29) % 17) as f64 * 0.1);
        let w: Vec<f64> = (0..120).map(|i| ((i * 7) % 4) as f64).collect();
        let idx: Vec<usize> = (0..120)
            .flat_map(|i| std::iter::repeat_n(i, (i * 7) % 4))
            .collect();
        let expected = syrk_t(&a.gather_rows(&idx));
        assert!(syrk_t_weighted(&a, &w).approx_eq(&expected, 1e-9));
    }

    #[test]
    fn weighted_gemv_t_matches_materialized() {
        let a = Matrix::from_fn(25, 7, |i, j| ((i + 3 * j) % 6) as f64 - 2.0);
        let y: Vec<f64> = (0..25).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let idx: Vec<usize> = (0..25).map(|i| (i * 11 + 2) % 25).collect();
        let mut w = vec![0.0; 25];
        for &i in &idx {
            w[i] += 1.0;
        }
        let yb: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
        let expected = gemv_t(&a.gather_rows(&idx), &yb);
        let got = gemv_t_weighted(&a, &w, &y);
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-10, "{g} vs {e}");
        }
        assert!((weighted_sumsq(&w, &y) - yb.iter().map(|v| v * v).sum::<f64>()).abs() < 1e-10);
    }

    #[test]
    fn weighted_kernels_empty_and_zero_weights() {
        let a = Matrix::from_fn(5, 3, |i, j| (i + j) as f64);
        let w = vec![0.0; 5];
        let g = syrk_t_weighted(&a, &w);
        assert!(g.approx_eq(&Matrix::zeros(3, 3), 0.0));
        assert_eq!(gemv_t_weighted(&a, &w, &[1.0; 5]), vec![0.0; 3]);
        let empty = Matrix::zeros(0, 4);
        assert_eq!(syrk_t_weighted(&empty, &[]).shape(), (4, 4));
        assert_eq!(gemv_t_weighted(&empty, &[], &[]), vec![0.0; 4]);
    }

    #[test]
    fn fused_norms_bit_identical() {
        let a: Vec<f64> = (0..37)
            .map(|i| ((i * 13 + 5) % 11) as f64 * 0.37 - 2.0)
            .collect();
        let b: Vec<f64> = (0..37)
            .map(|i| ((i * 7 + 2) % 9) as f64 * 0.51 - 1.3)
            .collect();
        let rho = 1.7;
        assert_eq!(norm2_diff(&a, &b).to_bits(), norm2(&vsub(&a, &b)).to_bits());
        let scaled: Vec<f64> = a.iter().zip(&b).map(|(x, y)| rho * (x - y)).collect();
        assert_eq!(
            norm2_scaled_diff(rho, &a, &b).to_bits(),
            norm2(&scaled).to_bits()
        );
        let ra: Vec<f64> = a.iter().map(|v| rho * v).collect();
        assert_eq!(norm2_scaled(rho, &a).to_bits(), norm2(&ra).to_bits());
    }

    #[test]
    fn into_variants_bit_identical() {
        let x = Matrix::from_fn(40, 6, |i, j| ((i * 3 + j) % 7) as f64 - 3.0);
        let beta = [0.5, -1.0, 0.0, 2.0, -0.25, 1.5];
        let y: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let mut pred = Vec::new();
        assert_eq!(
            mse_into(&x, &beta, &y, &mut pred).to_bits(),
            mse(&x, &beta, &y).to_bits()
        );
        assert_eq!(
            r_squared_into(&x, &beta, &y, &mut pred).to_bits(),
            r_squared(&x, &beta, &y).to_bits()
        );
        let mut out = Vec::new();
        gemv_into(&x, &beta, &mut out);
        assert_eq!(out, gemv(&x, &beta));
        let mut outt = Vec::new();
        gemv_t_into(&x, &y, &mut outt);
        let reference = {
            let mut acc = vec![0.0; 6];
            for i in 0..40 {
                axpy(y[i], x.row(i), &mut acc);
            }
            acc
        };
        assert_eq!(outt, reference);
    }

    #[test]
    fn mse_and_r2() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = [2.0, 4.0, 6.0];
        assert!(mse(&x, &[2.0], &y).abs() < 1e-15);
        assert!((r_squared(&x, &[2.0], &y) - 1.0).abs() < 1e-15);
        // Predicting the mean gives R^2 = 0 only if predictions equal mean;
        // a zero coefficient predicts 0, worse than the mean here.
        assert!(r_squared(&x, &[0.0], &y) < 0.0 + 1e-12);
    }
}
