//! Spectral-radius estimation for (possibly non-symmetric) matrices.
//!
//! The VAR(d) stability constraint (paper eq. 6) — `det(I - Σ A_j z^j) ≠ 0`
//! for `|z| ≤ 1` — is equivalent to the spectral radius of the companion
//! matrix being `< 1`. Power iteration on a non-symmetric matrix can
//! oscillate when the dominant eigenvalues are a complex pair, so we
//! estimate `ρ(A)` from the geometric growth rate of `||A^k v||`, which is
//! robust to complex dominant pairs.

use crate::blas::{gemv, norm2};
use crate::dense::Matrix;

/// Estimate the spectral radius of a square matrix.
///
/// Runs `iters` matrix-vector products starting from a deterministic
/// pseudo-random vector and returns the average per-step growth factor over
/// the tail half of the iteration (Gelfand's formula in practice).
pub fn spectral_radius(a: &Matrix, iters: usize) -> f64 {
    let n = a.rows();
    assert_eq!(n, a.cols(), "spectral_radius: matrix must be square");
    if n == 0 {
        return 0.0;
    }
    // Deterministic quasi-random start vector (SplitMix-style hash) to avoid
    // pathological alignment with an eigen-null direction.
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    let nv = norm2(&v);
    if nv == 0.0 {
        return 0.0;
    }
    for x in &mut v {
        *x /= nv;
    }

    let iters = iters.max(8);
    let mut log_growth_tail = 0.0;
    let tail_start = iters / 2;
    let mut tail_count = 0usize;
    for k in 0..iters {
        let w = gemv(a, &v);
        let nw = norm2(&w);
        if nw == 0.0 || !nw.is_finite() {
            // Nilpotent directions collapse to zero: radius estimate from
            // what we have so far (or 0).
            return if tail_count > 0 {
                (log_growth_tail / tail_count as f64).exp()
            } else {
                0.0
            };
        }
        if k >= tail_start {
            log_growth_tail += nw.ln();
            tail_count += 1;
        }
        v = w;
        for x in &mut v {
            *x /= nw;
        }
    }
    (log_growth_tail / tail_count.max(1) as f64).exp()
}

/// Build the `dp x dp` companion matrix of a VAR(d) system with coefficient
/// matrices `a_mats = [A_1, ..., A_d]`, each `p x p`:
///
/// ```text
/// [ A_1 A_2 ... A_d ]
/// [  I   0  ...  0  ]
/// [  0   I  ...  0  ]
/// [  0   0 ... I 0  ]
/// ```
pub fn companion_matrix(a_mats: &[Matrix]) -> Matrix {
    assert!(!a_mats.is_empty(), "companion_matrix: need at least one A");
    let p = a_mats[0].rows();
    for a in a_mats {
        assert_eq!(
            a.shape(),
            (p, p),
            "companion_matrix: A matrices must be p x p"
        );
    }
    let d = a_mats.len();
    let mut c = Matrix::zeros(d * p, d * p);
    for (j, a) in a_mats.iter().enumerate() {
        for r in 0..p {
            for cc in 0..p {
                c[(r, j * p + cc)] = a[(r, cc)];
            }
        }
    }
    for k in 1..d {
        for i in 0..p {
            c[(k * p + i, (k - 1) * p + i)] = 1.0;
        }
    }
    c
}

/// True when the VAR(d) process with coefficients `a_mats` is stable
/// (companion spectral radius strictly below `1 - margin`).
pub fn var_is_stable(a_mats: &[Matrix], margin: f64) -> bool {
    spectral_radius(&companion_matrix(a_mats), 60) < 1.0 - margin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_radius() {
        let a = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, -0.9]]);
        let r = spectral_radius(&a, 200);
        assert!((r - 0.9).abs() < 1e-3, "got {r}");
    }

    #[test]
    fn rotation_complex_pair() {
        // 0.8 * rotation: complex eigenvalues of magnitude 0.8 — the case
        // plain power iteration fails on.
        let c = 0.8 * (0.3_f64).cos();
        let s = 0.8 * (0.3_f64).sin();
        let a = Matrix::from_rows(&[&[c, -s], &[s, c]]);
        let r = spectral_radius(&a, 200);
        assert!((r - 0.8).abs() < 1e-6, "got {r}");
    }

    #[test]
    fn nilpotent_radius_zero() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let r = spectral_radius(&a, 50);
        assert!(r < 0.3, "nilpotent radius estimate too large: {r}");
    }

    #[test]
    fn companion_var1_is_a1() {
        let a1 = Matrix::from_rows(&[&[0.2, 0.1], &[0.0, 0.3]]);
        let c = companion_matrix(std::slice::from_ref(&a1));
        assert_eq!(c, a1);
    }

    #[test]
    fn companion_var2_structure() {
        let a1 = Matrix::filled(2, 2, 0.1);
        let a2 = Matrix::filled(2, 2, 0.2);
        let c = companion_matrix(&[a1, a2]);
        assert_eq!(c.shape(), (4, 4));
        assert_eq!(c[(0, 0)], 0.1);
        assert_eq!(c[(0, 2)], 0.2);
        assert_eq!(c[(2, 0)], 1.0); // identity block
        assert_eq!(c[(3, 1)], 1.0);
        assert_eq!(c[(2, 2)], 0.0);
    }

    #[test]
    fn stability_check() {
        let stable = Matrix::from_rows(&[&[0.3, 0.0], &[0.1, 0.2]]);
        assert!(var_is_stable(&[stable], 0.01));
        let unstable = Matrix::from_rows(&[&[1.1, 0.0], &[0.0, 0.5]]);
        assert!(!var_is_stable(&[unstable], 0.01));
    }
}
